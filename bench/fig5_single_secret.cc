/**
 * @file
 * Reproduces the Figure-5 single-secret attack: getSecret(id, key)
 * runs once; MicroScope replays on the count++ handle and denoises
 * two channels — the divider-latency channel that reveals whether
 * secrets[id] is subnormal (§4.3's "fine-grain property about an
 * instruction's execution"), and the cache channel that reveals the
 * line of secrets[id].
 */

#include <cstdio>

#include "attack/single_secret.hh"

using namespace uscope;

int
main()
{
    std::printf("==============================================================\n");
    std::printf("Figure 5: single-secret attack on getSecret(id, key)\n");
    std::printf("==============================================================\n\n");

    std::printf("%-12s %-10s %-12s %-14s %-12s %s\n", "secrets[id]",
                "slow/rep", "verdict", "line (true)", "replays", "ok");
    for (unsigned id : {64u, 137u, 321u, 500u}) {
        for (bool subnormal : {false, true}) {
            attack::SingleSecretConfig config;
            config.id = id;
            config.subnormal = subnormal;
            config.seed = 42 + id;
            const auto result = attack::runSingleSecretAttack(config);
            const bool line_ok = result.inferredLine &&
                                 *result.inferredLine ==
                                     result.trueLine;
            std::printf("%-12s %3llu/%-6llu %-12s %4d (%4u)%7llu     %s\n",
                        subnormal ? "subnormal" : "normal",
                        static_cast<unsigned long long>(
                            result.slowSamples),
                        static_cast<unsigned long long>(
                            result.replaysDone),
                        result.inferredSubnormal ? "subnormal"
                                                 : "normal",
                        result.inferredLine
                            ? static_cast<int>(*result.inferredLine)
                            : -1,
                        result.trueLine,
                        static_cast<unsigned long long>(
                            result.replaysDone),
                        (result.inferredSubnormal == subnormal &&
                         line_ok)
                            ? "yes"
                            : "NO");
        }
    }
    std::printf("\nBoth channels denoised from a single logical run of the\n");
    std::printf("function; prior subnormal attacks [7] needed whole-program\n");
    std::printf("timing over many runs.\n");
    return 0;
}
