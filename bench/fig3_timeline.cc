/**
 * @file
 * Renders Figure 3: the timeline of one MicroScope replay cycle —
 * attack setup, the victim's TLB miss and tunable page walk, the
 * speculative window executing the sensitive code, the page fault,
 * the Replayer's handler work, and the resume that starts the next
 * replay.  Events are taken live from the machine via the memory
 * probe and the engine callbacks.
 */

#include <cstdio>
#include <vector>

#include "attack/victims.hh"
#include "common/logging.hh"
#include "core/microscope.hh"
#include "os/machine.hh"

using namespace uscope;

int
main()
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const attack::VictimImage victim =
        attack::buildControlFlowVictim(kernel, true);

    struct Event
    {
        Cycles cycle;
        std::string text;
    };
    std::vector<Event> events;
    auto log_event = [&](const std::string &text) {
        events.push_back({machine.cycle(), text});
    };

    machine.core().setMemProbe([&](unsigned ctx, VAddr va, PAddr,
                                   bool is_store, bool faulted) {
        if (ctx != 0)
            return;
        if (pageBase(va) == pageBase(victim.handle)) {
            log_event(faulted
                          ? "victim: replay handle misses TLB, walks, "
                            "PTE present=0 -> fault latched"
                          : "victim: replay handle translates (released)");
        } else if (pageBase(va) == victim.transmitB && !is_store) {
            log_event("victim: SPECULATIVE load of div operands "
                      "(sensitive window)");
        }
    });

    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle + 0x20;
    recipe.confidence = 3;
    recipe.onReplay = [&](const ms::ReplayEvent &ev) {
        log_event(format("replayer: page fault #%llu reaches ROB head; "
                         "squash; monitor measurement taken",
                         static_cast<unsigned long long>(
                             ev.replayIndex)));
        return true;
    };
    recipe.beforeResume = [&](const ms::ReplayEvent &) {
        log_event("replayer: present stays 0; flush PGD/PUD/PMD/PTE "
                  "lines + PWC + TLB entry; stage walk; resume victim");
    };
    scope.setRecipe(std::move(recipe));

    log_event("replayer: arm() — flush handle data line, clear "
              "present bit, flush translation path, stage walk");
    scope.arm();
    kernel.startOnContext(victim.pid, 0, victim.program);
    machine.runUntilHalted(0, 10'000'000);
    log_event("victim: released after 3 replays; handle retires; "
              "single logical run completes");

    std::printf("==============================================================\n");
    std::printf("Figure 3: timeline of a MicroScope attack (3 replays)\n");
    std::printf("==============================================================\n");
    for (const Event &event : events)
        std::printf("%10llu  %s\n",
                    static_cast<unsigned long long>(event.cycle),
                    event.text.c_str());

    std::printf("\nfaults taken: %llu, victim instructions squashed: %llu,"
                "\nvictim instructions retired: %llu (architecturally "
                "exactly one run)\n",
                static_cast<unsigned long long>(
                    kernel.faultCount(victim.pid)),
                static_cast<unsigned long long>(
                    machine.core().stats(0).squashed),
                static_cast<unsigned long long>(
                    machine.core().stats(0).retired));
    return 0;
}
