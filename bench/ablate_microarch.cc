/**
 * @file
 * Ablation: how robust is the Figure-10 attack to the victim
 * machine's microarchitecture?  The paper evaluates one Xeon; here we
 * sweep the parameters the attack's physics depend on:
 *
 *  - ROB size: bounds the speculative window (§4.1.1 "potentially
 *    until the ROB is full");
 *  - divider latency: the magnitude of the contention signal;
 *  - fault-handler cost: the fraction of time the Monitor samples
 *    contention-free (the paper's explanation for the sub-threshold
 *    mass in Figure 10);
 *  - Monitor burst length (cont): the sampling granularity.
 */

#include <cstdio>

#include "attack/port_contention.hh"
#include "common/logging.hh"

using namespace uscope;

namespace
{

void
runRow(const char *label, const attack::PortContentionConfig &base)
{
    attack::PortContentionConfig config = base;
    config.victimDivides = false;
    const auto mul_run = attack::runPortContentionAttack(config);
    config.victimDivides = true;
    const auto div_run = attack::runPortContentionAttack(config);
    std::printf("  %-28s mul=%-4llu div=%-5llu verdicts %s/%s  %s\n",
                label,
                static_cast<unsigned long long>(mul_run.aboveThreshold),
                static_cast<unsigned long long>(div_run.aboveThreshold),
                mul_run.inferredDivides ? "DIV" : "mul",
                div_run.inferredDivides ? "div" : "MUL",
                (!mul_run.inferredDivides && div_run.inferredDivides)
                    ? "attack works"
                    : "ATTACK FAILS");
}

} // namespace

int
main()
{
    attack::PortContentionConfig base;
    base.samples = 4000;
    base.replays = 60;
    base.seed = 42;

    std::printf("==============================================================\n");
    std::printf("Ablation: attack robustness vs. machine parameters\n");
    std::printf("(4000 samples, 60 replays; above-threshold counts)\n");
    std::printf("==============================================================\n");

    std::printf("\nROB entries per context (window bound):\n");
    for (unsigned rob : {32u, 64u, 112u, 224u}) {
        attack::PortContentionConfig config = base;
        config.machine.core.robPerContext = rob;
        config.machine.core.schedWindow = rob;
        runRow(format("ROB = %u", rob).c_str(), config);
    }

    std::printf("\ndivider latency (signal magnitude; threshold "
                "recalibrated to\nthe machine, as a real attacker "
                "would):\n");
    for (Cycles lat : {12u, 24u, 48u}) {
        attack::PortContentionConfig config = base;
        config.machine.core.divLatency = lat;
        config.machine.core.fdivLatency = lat;
        // Uncontended burst ~= cont * lat + fixed overhead; one victim
        // divide adds ~lat.  Calibrate between the two.
        config.threshold = config.cont * lat + 24;
        runRow(format("div latency = %llu (thr %llu)",
                      static_cast<unsigned long long>(lat),
                      static_cast<unsigned long long>(config.threshold))
                   .c_str(),
               config);
    }

    std::printf("\nfault-handler base cost (replay period):\n");
    for (Cycles cost : {600u, 1800u, 6000u}) {
        attack::PortContentionConfig config = base;
        config.machine.costs.faultBase = cost;
        runRow(format("handler = %llu cycles",
                      static_cast<unsigned long long>(cost))
                   .c_str(),
               config);
    }

    std::printf("\nMonitor burst length (cont):\n");
    for (unsigned cont : {2u, 4u, 8u}) {
        attack::PortContentionConfig config = base;
        config.cont = cont;
        // Uncontended burst scales with cont; keep the threshold a
        // fixed margin above it, as a real attacker would calibrate.
        config.threshold = cont * 24 + 24;
        runRow(format("cont = %u (thr %llu)", cont,
                      static_cast<unsigned long long>(config.threshold))
                   .c_str(),
               config);
    }

    std::printf("\nThe attack holds across the sweep as long as the window\n");
    std::printf("fits the two divides (every ROB here) and the attacker\n");
    std::printf("calibrates the threshold to the Monitor's burst length.\n");
    return 0;
}
