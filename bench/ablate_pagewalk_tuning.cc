/**
 * @file
 * Ablation of §4.1.2: "The Replayer can tune the duration of the page
 * walk time to take from a few cycles to over one thousand cycles, by
 * ensuring that the desired page table entries are either present or
 * absent from the cache hierarchy."
 *
 * Two sweeps:
 *  1. Walk latency vs (levels fetched x cache level of the entries),
 *     measured directly at the MMU.
 *  2. Replay-window size (number of distinct victim loads that
 *     executed speculatively per replay) vs the same staging — the
 *     knob's effect on what the attacker can observe per replay.
 *
 * Sweep 2 builds one fresh Machine per grid point, so it runs as an
 * exp::CampaignRunner campaign (16 trials, sharded across workers)
 * and exports to bench-results/ablate_pagewalk_tuning.json.
 */

#include <cstdio>
#include <vector>

#include "core/microscope.hh"
#include "cpu/program.hh"
#include "exp/campaign.hh"
#include "exp/result_sink.hh"
#include "os/machine.hh"

using namespace uscope;

namespace
{

const char *
levelName(mem::HitLevel level)
{
    return mem::hitLevelName(level);
}

/** Victim: handle load, then 56 independent loads to distinct lines. */
struct WindowVictim
{
    os::Pid pid;
    VAddr handle;
    VAddr probe;  ///< 56-line probe region.
    std::shared_ptr<const cpu::Program> program;
};

constexpr unsigned probeLines = 56;

WindowVictim
makeWindowVictim(os::Kernel &kernel)
{
    WindowVictim victim;
    victim.pid = kernel.createProcess("window-victim");
    victim.handle = kernel.allocVirtual(victim.pid, pageSize);
    victim.probe = kernel.allocVirtual(victim.pid, pageSize);

    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(victim.handle))
        .movi(2, static_cast<std::int64_t>(victim.probe))
        .ld(3, 1, 0);  // replay handle
    for (unsigned line = 0; line < probeLines; ++line)
        b.ld(4, 2, static_cast<std::int64_t>(line * lineSize));
    b.halt();
    victim.program =
        std::make_shared<const cpu::Program>(b.build());
    return victim;
}

/** Lines of the probe region touched in one replay window. */
unsigned
windowSize(unsigned fetch_levels, mem::HitLevel where,
           const os::MachineConfig &mcfg, Cycles *cycles_out = nullptr)
{
    os::Machine machine(mcfg);
    auto &kernel = machine.kernel();
    const WindowVictim victim = makeWindowVictim(kernel);
    const PAddr probe_pa = *kernel.translate(victim.pid, victim.probe);

    unsigned touched = 0;
    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle;
    recipe.confidence = 3;
    recipe.walkPlan = ms::PageWalkPlan::uniform(where, fetch_levels);
    recipe.onReplay = [&](const ms::ReplayEvent &ev) {
        if (ev.replayIndex == 3) {  // warmed window
            for (unsigned line = 0; line < probeLines; ++line) {
                touched +=
                    kernel.timedProbePhys(probe_pa + line * lineSize)
                        .latency < 100;
            }
        }
        return true;
    };
    recipe.beforeResume = [&](const ms::ReplayEvent &) {
        kernel.primeRange(probe_pa, probeLines * lineSize);
    };
    scope.setRecipe(std::move(recipe));

    kernel.primeRange(probe_pa, probeLines * lineSize);
    scope.arm();
    kernel.startOnContext(victim.pid, 0, victim.program);
    machine.runUntilHalted(0, 10'000'000);
    if (cycles_out)
        *cycles_out = machine.cycle();
    return touched;
}

} // namespace

int
main()
{
    std::printf("==============================================================\n");
    std::printf("Ablation (§4.1.2): tuning the page-walk duration\n");
    std::printf("==============================================================\n\n");

    std::printf("1) Hardware walk latency (cycles) vs staging:\n");
    std::printf("%-18s", "entries staged at");
    for (unsigned levels = 1; levels <= 4; ++levels)
        std::printf("  %u level(s)", levels);
    std::printf("\n");

    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("walker");
    const VAddr va = kernel.allocVirtual(pid, pageSize);
    ms::Microscope scope(machine);
    scope.provideReplayHandle(pid, va);

    for (mem::HitLevel where :
         {mem::HitLevel::L1, mem::HitLevel::L2, mem::HitLevel::L3,
          mem::HitLevel::Dram}) {
        std::printf("%-18s", levelName(where));
        for (unsigned levels = 1; levels <= 4; ++levels) {
            scope.initiatePageWalk(va, levels, where);
            const auto result = machine.mmu().translate(
                va, kernel.pcidOf(pid), kernel.pageTable(pid).root());
            std::printf("  %9llu",
                        static_cast<unsigned long long>(
                            result.walk.latency));
        }
        std::printf("\n");
    }

    std::printf("\n2) Replay-window size: distinct victim loads executed\n");
    std::printf("   speculatively per replay (of %u possible):\n",
                probeLines);

    // The 4x4 staging grid as a campaign: one Machine per grid point.
    const mem::HitLevel stagings[] = {mem::HitLevel::L1,
                                      mem::HitLevel::L2,
                                      mem::HitLevel::L3,
                                      mem::HitLevel::Dram};
    std::vector<unsigned> windows(16);

    exp::CampaignSpec spec;
    spec.name = "ablate_pagewalk_tuning";
    spec.trials = windows.size();
    spec.masterSeed = 42;
    spec.cycleBudget = 20'000'000;
    spec.body = [&](const exp::TrialContext &ctx) {
        const mem::HitLevel where = stagings[ctx.index / 4];
        const unsigned levels = 1 + ctx.index % 4;
        // Reproduction: pin the paper sweep's seed rather than the
        // derived per-trial seed, so the table matches EXPERIMENTS.md.
        os::MachineConfig mcfg;
        mcfg.seed = 42;
        Cycles cycles = 0;
        const unsigned window = windowSize(levels, where, mcfg, &cycles);
        windows[ctx.index] = window;

        exp::TrialOutput out;
        out.simCycles = cycles;
        out.metric.add(window);
        out.payload = exp::json::Value::object()
                          .set("staged_at", levelName(where))
                          .set("levels_fetched", levels)
                          .set("window_lines", window)
                          .set("probe_lines", probeLines);
        return out;
    };
    const exp::CampaignResult campaign = exp::runCampaign(spec);

    std::printf("%-18s", "entries staged at");
    for (unsigned levels = 1; levels <= 4; ++levels)
        std::printf("  %u level(s)", levels);
    std::printf("\n");
    for (unsigned row = 0; row < 4; ++row) {
        std::printf("%-18s", levelName(stagings[row]));
        for (unsigned col = 0; col < 4; ++col)
            std::printf("  %9u", windows[row * 4 + col]);
        std::printf("\n");
    }

    exp::JsonFileSink sink("bench-results");
    sink.consume(campaign);
    std::printf("\ncampaign: %zu trials on %u workers in %.2fs; "
                "JSON: %s\n",
                campaign.trialCount, campaign.workers,
                campaign.wallSeconds, sink.lastPath().c_str());

    std::printf("\nShape check: latency spans 'a few cycles' (1 level in L1)\n");
    std::printf("to 'over one thousand cycles' (4 levels in DRAM), and the\n");
    std::printf("window grows with it until the ROB bounds it (§4.1.1).\n");
    return 0;
}
