/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: how fast
 * the substrate executes, so users can budget experiment sweeps.
 */

#include <benchmark/benchmark.h>

#include "core/microscope.hh"
#include "cpu/program.hh"
#include "crypto/aes.hh"
#include "crypto/aes_codegen.hh"
#include "os/machine.hh"

using namespace uscope;

namespace
{

std::shared_ptr<const cpu::Program>
share(cpu::Program program)
{
    return std::make_shared<const cpu::Program>(std::move(program));
}

void
BM_CoreTickIdle(benchmark::State &state)
{
    os::Machine machine;
    for (auto _ : state)
        machine.tick();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoreTickIdle);

void
BM_AluLoopThroughput(benchmark::State &state)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("p");
    cpu::ProgramBuilder b;
    b.movi(1, 0)
        .movi(2, 1'000'000'000)
        .label("loop")
        .addi(1, 1, 1)
        .addi(3, 3, 2)
        .xor_(4, 1, 3)
        .blt(1, 2, "loop")
        .halt();
    kernel.startOnContext(pid, 0, share(b.build()));
    std::uint64_t retired = 0;
    for (auto _ : state) {
        machine.tick();
        ++retired;
    }
    state.counters["retired/cycle"] = benchmark::Counter(
        static_cast<double>(machine.core().stats(0).retired) /
        static_cast<double>(retired));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AluLoopThroughput);

void
BM_CacheHierarchyAccess(benchmark::State &state)
{
    mem::Hierarchy hierarchy;
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            hierarchy.access(rng.below(1 << 20) * lineSize));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess);

void
BM_FullPageWalk(benchmark::State &state)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("p");
    const VAddr va = kernel.allocVirtual(pid, pageSize);
    for (auto _ : state) {
        kernel.invlpg(pid, va);
        machine.mmu().flushPwcAll();
        benchmark::DoNotOptimize(machine.mmu().translate(
            va, kernel.pcidOf(pid), kernel.pageTable(pid).root()));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullPageWalk);

void
BM_AesDecryptNative(benchmark::State &state)
{
    std::uint8_t key[16] = {};
    crypto::AesKey dec(key, 128, true);
    std::uint8_t block[16] = {1, 2, 3};
    std::uint8_t out[16];
    for (auto _ : state) {
        crypto::decryptBlock(dec, block, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AesDecryptNative);

void
BM_AesDecryptSimulated(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        os::Machine machine;
        auto &kernel = machine.kernel();
        const os::Pid pid = kernel.createProcess("aes");
        std::uint8_t key[16] = {};
        crypto::AesKey dec(key, 128, true);
        const auto layout = crypto::setupAesVictim(kernel, pid, dec);
        std::uint8_t ct[16] = {9, 9, 9};
        crypto::loadCiphertext(kernel, pid, layout, ct);
        kernel.startOnContext(
            pid, 0,
            share(crypto::buildAesDecryptProgram(layout)));
        state.ResumeTiming();
        machine.runUntilHalted(0, 10'000'000);
        state.counters["sim-cycles"] =
            static_cast<double>(machine.cycle());
    }
}
BENCHMARK(BM_AesDecryptSimulated)->Unit(benchmark::kMillisecond);

void
BM_OneReplayCycle(benchmark::State &state)
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("victim");
    const VAddr handle = kernel.allocVirtual(pid, pageSize);

    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(handle))
        .label("spin")
        .ld(2, 1, 0)
        .addi(3, 3, 1)
        .jmp("spin");
    kernel.startOnContext(pid, 0, share(b.build()));

    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = pid;
    recipe.replayHandle = handle;
    recipe.confidence = 1'000'000'000;
    scope.setRecipe(std::move(recipe));
    scope.arm();

    for (auto _ : state) {
        const std::uint64_t before = scope.stats().totalReplays;
        machine.runUntil(
            [&]() { return scope.stats().totalReplays > before; },
            1'000'000);
    }
    state.counters["sim-cycles/replay"] = benchmark::Counter(
        static_cast<double>(machine.cycle()) /
        static_cast<double>(scope.stats().totalReplays));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OneReplayCycle);

} // namespace

BENCHMARK_MAIN();
