/**
 * @file
 * Reproduces Table 2: the MicroScope user API — each operation is
 * exercised against a live victim and its semantics demonstrated with
 * observed machine state.
 */

#include <cstdio>

#include "common/logging.hh"
#include "core/microscope.hh"
#include "cpu/program.hh"
#include "os/machine.hh"

using namespace uscope;

int
main()
{
    os::Machine machine;
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("victim");
    const VAddr handle = kernel.allocVirtual(pid, pageSize);
    const VAddr pivot = kernel.allocVirtual(pid, pageSize);
    const VAddr monitored = kernel.allocVirtual(pid, pageSize);

    ms::Microscope scope(machine);

    std::printf("==============================================================\n");
    std::printf("Table 2: API used by a user process to access MicroScope\n");
    std::printf("==============================================================\n\n");
    std::printf("%-24s %-16s %s\n", "function", "operands",
                "semantics (observed)");

    scope.provideReplayHandle(pid, handle);
    std::printf("%-24s %-16s recipe handle = %#llx\n",
                "provide_replay_handle", "addr",
                static_cast<unsigned long long>(
                    scope.recipe().replayHandle));

    scope.providePivot(pivot);
    std::printf("%-24s %-16s recipe pivot  = %#llx (different page)\n",
                "provide_pivot", "addr",
                static_cast<unsigned long long>(*scope.recipe().pivot));

    scope.provideMonitorAddr(monitored);
    std::printf("%-24s %-16s %zu monitor address(es) registered\n",
                "provide_monitor_addr", "addr",
                scope.recipe().monitorAddrs.size());

    for (unsigned length = 1; length <= 4; ++length) {
        scope.initiatePageWalk(monitored, length, mem::HitLevel::Dram);
        const auto result = machine.mmu().translate(
            monitored, kernel.pcidOf(pid),
            kernel.pageTable(pid).root());
        std::printf("%-24s %-16s next walk fetched %u level(s), "
                    "%llu cycles\n",
                    "initiate_page_walk",
                    format("addr, len=%u", length).c_str(),
                    result.walk.ptFetches,
                    static_cast<unsigned long long>(
                        result.walk.latency));
    }

    scope.initiatePageFault(handle);
    const auto faulting = machine.mmu().translate(
        handle, kernel.pcidOf(pid), kernel.pageTable(pid).root());
    std::printf("%-24s %-16s present=0, next access faults after a "
                "%llu-cycle walk\n",
                "initiate_page_fault", "addr",
                static_cast<unsigned long long>(faulting.walk.latency));
    std::printf("\n(fault observed: %s; mapping preserved: %s)\n",
                faulting.fault ? "yes" : "NO",
                kernel.translate(pid, handle) ? "yes" : "NO");
    return 0;
}
