/**
 * @file
 * Reproduces Figure 11: the latency the Replayer observes probing each
 * of the 16 cache lines of AES table Td1 after each of three replays
 * of one round iteration — Replay 0 against warm caches (mixed
 * levels), Replays 1 and 2 after priming (accessed lines hit L1 at
 * <60 cycles, everything else misses to memory at >300 cycles).
 *
 * Also runs the full single-stepping extraction of §4.4 and the
 * round-1 key-nibble recovery extension.
 */

#include <cstdio>

#include "attack/aes_attack.hh"

using namespace uscope;

int
main()
{
    attack::AesAttackConfig config;
    for (unsigned i = 0; i < 16; ++i) {
        config.key[i] = static_cast<std::uint8_t>(i);
        config.plaintext[i] = static_cast<std::uint8_t>(0x20 + i);
    }

    std::printf("==============================================================\n");
    std::printf("Figure 11: probe latency of Td1's 16 lines across 3 replays\n");
    std::printf("Paper bands: L1 < 60 cy, L2/L3 100-200 cy, memory > 300 cy\n");
    std::printf("==============================================================\n\n");

    const attack::Fig11Result fig11 = attack::runFig11(config);

    std::printf("%-10s", "line:");
    for (unsigned line = 0; line < 16; ++line)
        std::printf("%5u", line);
    std::printf("\n");
    for (std::size_t replay = 0; replay < fig11.replays.size();
         ++replay) {
        std::printf("Replay %zu: ", replay);
        for (unsigned line = 0; line < 16; ++line)
            std::printf("%5llu",
                        static_cast<unsigned long long>(
                            fig11.replays[replay].latency[line]));
        std::printf("  (cycles)\n");
    }

    std::printf("\nground-truth Td1 lines accessed in the window: { ");
    for (unsigned line : fig11.expectedLines)
        std::printf("%u ", line);
    std::printf("}\n");
    for (std::size_t i = 0; i < fig11.measuredLines.size(); ++i) {
        std::printf("lines classified hot after primed replay %zu: { ",
                    i + 1);
        for (unsigned line : fig11.measuredLines[i])
            std::printf("%u ", line);
        std::printf("}\n");
    }
    std::printf("consistent across primed replays: %s\n",
                fig11.consistentAcrossPrimedReplays ? "yes" : "NO");
    std::printf("matches ground truth (noiseless): %s\n",
                fig11.matchesGroundTruth ? "yes" : "NO");

    std::printf("\n--------------------------------------------------------------\n");
    std::printf("Full single-stepped extraction (one logical decryption)\n");
    std::printf("--------------------------------------------------------------\n");
    const attack::AesExtractionResult extraction =
        attack::runAesExtraction(config);
    std::printf("episodes (t-groups stepped):  %zu\n",
                extraction.episodes.size());
    std::printf("total replays:                %llu\n",
                static_cast<unsigned long long>(
                    extraction.totalReplays));
    std::printf("total page faults induced:    %llu\n",
                static_cast<unsigned long long>(extraction.totalFaults));
    std::printf("plaintext still correct:      %s\n",
                extraction.plaintextCorrect ? "yes" : "NO");

    unsigned stable = 0;
    for (const auto &episode : extraction.episodes)
        stable += episode.stable;
    std::printf("episodes with identical measurements across primed "
                "replays: %u/%zu\n",
                stable, extraction.episodes.size());

    for (unsigned round = 1; round <= 9; ++round) {
        const auto lines = extraction.roundLines(round);
        std::printf("  round %u lines  Td0:{", round);
        for (unsigned line : lines[0])
            std::printf("%u ", line);
        std::printf("} Td1:{");
        for (unsigned line : lines[1])
            std::printf("%u ", line);
        std::printf("} Td2:{");
        for (unsigned line : lines[2])
            std::printf("%u ", line);
        std::printf("} Td3:{");
        for (unsigned line : lines[3])
            std::printf("%u ", line);
        std::printf("}\n");
    }

    const auto nibbles = attack::recoverRound1Nibbles(extraction);
    const auto truth = attack::groundTruthRound1Nibbles(config);
    unsigned recovered = 0;
    unsigned correct = 0;
    std::printf("\nround-1 state-nibble recovery (extension):\n  ");
    for (unsigned i = 0; i < 16; ++i) {
        if (nibbles[i]) {
            ++recovered;
            correct += *nibbles[i] == truth[i];
            std::printf("%X", *nibbles[i]);
        } else {
            std::printf("?");
        }
    }
    std::printf("   (truth: ");
    for (unsigned i = 0; i < 16; ++i)
        std::printf("%X", truth[i]);
    std::printf(")\n  recovered %u/16 nibbles, %u correct, %u wrong\n",
                recovered, correct, recovered - correct);
    return 0;
}
