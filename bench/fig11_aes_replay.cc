/**
 * @file
 * Reproduces Figure 11: the latency the Replayer observes probing each
 * of the 16 cache lines of AES table Td1 after each of three replays
 * of one round iteration — Replay 0 against warm caches (mixed
 * levels), Replays 1 and 2 after priming (accessed lines hit L1 at
 * <60 cycles, everything else misses to memory at >300 cycles).
 *
 * Also runs the full single-stepping extraction of §4.4 and the
 * round-1 key-nibble recovery extension — and, beyond the paper's
 * single key, a randomized-key sweep campaign (exp::CampaignRunner)
 * that measures recovery robustness across keys/plaintexts, exported
 * to bench-results/fig11_aes_replay.json.
 */

#include <cstdio>
#include <vector>

#include "attack/aes_attack.hh"
#include "common/random.hh"
#include "exp/campaign.hh"
#include "exp/result_sink.hh"
#include "obs/chrome_trace.hh"
#include "obs/cli.hh"

using namespace uscope;

namespace
{

constexpr std::size_t keySweepTrials = 6;

attack::AesAttackConfig
paperConfig()
{
    attack::AesAttackConfig config;
    for (unsigned i = 0; i < 16; ++i) {
        config.key[i] = static_cast<std::uint8_t>(i);
        config.plaintext[i] = static_cast<std::uint8_t>(0x20 + i);
    }
    return config;
}

/** Randomized key/plaintext derived from the trial's seed stream. */
attack::AesAttackConfig
sweepConfig(const exp::TrialContext &ctx)
{
    attack::AesAttackConfig config;
    Rng rng(ctx.seed);
    for (unsigned i = 0; i < 16; ++i) {
        config.key[i] = static_cast<std::uint8_t>(rng.below(256));
        config.plaintext[i] = static_cast<std::uint8_t>(rng.below(256));
    }
    config.seed = ctx.seed;
    return config;
}

/** Nibble-recovery scorecard for one extraction. */
struct Recovery
{
    unsigned recovered = 0;
    unsigned correct = 0;
    bool plaintextCorrect = false;
    std::uint64_t replays = 0;
    std::uint64_t faults = 0;
    unsigned stableEpisodes = 0;
    std::size_t episodes = 0;
};

Recovery
scoreExtraction(const attack::AesAttackConfig &config,
                const attack::AesExtractionResult &extraction)
{
    Recovery r;
    const auto nibbles = attack::recoverRound1Nibbles(extraction);
    const auto truth = attack::groundTruthRound1Nibbles(config);
    for (unsigned i = 0; i < 16; ++i) {
        if (nibbles[i]) {
            ++r.recovered;
            r.correct += *nibbles[i] == truth[i];
        }
    }
    r.plaintextCorrect = extraction.plaintextCorrect;
    r.replays = extraction.totalReplays;
    r.faults = extraction.totalFaults;
    r.episodes = extraction.episodes.size();
    for (const auto &episode : extraction.episodes)
        r.stableEpisodes += episode.stable;
    return r;
}

void
printPaperKeyDetail(const attack::AesAttackConfig &config,
                    const attack::Fig11Result &fig11,
                    const attack::AesExtractionResult &extraction)
{
    std::printf("%-10s", "line:");
    for (unsigned line = 0; line < 16; ++line)
        std::printf("%5u", line);
    std::printf("\n");
    for (std::size_t replay = 0; replay < fig11.replays.size();
         ++replay) {
        std::printf("Replay %zu: ", replay);
        for (unsigned line = 0; line < 16; ++line)
            std::printf("%5llu",
                        static_cast<unsigned long long>(
                            fig11.replays[replay].latency[line]));
        std::printf("  (cycles)\n");
    }

    std::printf("\nground-truth Td1 lines accessed in the window: { ");
    for (unsigned line : fig11.expectedLines)
        std::printf("%u ", line);
    std::printf("}\n");
    for (std::size_t i = 0; i < fig11.measuredLines.size(); ++i) {
        std::printf("lines classified hot after primed replay %zu: { ",
                    i + 1);
        for (unsigned line : fig11.measuredLines[i])
            std::printf("%u ", line);
        std::printf("}\n");
    }
    std::printf("consistent across primed replays: %s\n",
                fig11.consistentAcrossPrimedReplays ? "yes" : "NO");
    std::printf("matches ground truth (noiseless): %s\n",
                fig11.matchesGroundTruth ? "yes" : "NO");

    std::printf("\n--------------------------------------------------------------\n");
    std::printf("Full single-stepped extraction (one logical decryption)\n");
    std::printf("--------------------------------------------------------------\n");
    std::printf("episodes (t-groups stepped):  %zu\n",
                extraction.episodes.size());
    std::printf("total replays:                %llu\n",
                static_cast<unsigned long long>(
                    extraction.totalReplays));
    std::printf("total page faults induced:    %llu\n",
                static_cast<unsigned long long>(extraction.totalFaults));
    std::printf("plaintext still correct:      %s\n",
                extraction.plaintextCorrect ? "yes" : "NO");

    unsigned stable = 0;
    for (const auto &episode : extraction.episodes)
        stable += episode.stable;
    std::printf("episodes with identical measurements across primed "
                "replays: %u/%zu\n",
                stable, extraction.episodes.size());

    for (unsigned round = 1; round <= 9; ++round) {
        const auto lines = extraction.roundLines(round);
        std::printf("  round %u lines  Td0:{", round);
        for (unsigned line : lines[0])
            std::printf("%u ", line);
        std::printf("} Td1:{");
        for (unsigned line : lines[1])
            std::printf("%u ", line);
        std::printf("} Td2:{");
        for (unsigned line : lines[2])
            std::printf("%u ", line);
        std::printf("} Td3:{");
        for (unsigned line : lines[3])
            std::printf("%u ", line);
        std::printf("}\n");
    }

    const auto nibbles = attack::recoverRound1Nibbles(extraction);
    const auto truth = attack::groundTruthRound1Nibbles(config);
    unsigned recovered = 0;
    unsigned correct = 0;
    std::printf("\nround-1 state-nibble recovery (extension):\n  ");
    for (unsigned i = 0; i < 16; ++i) {
        if (nibbles[i]) {
            ++recovered;
            correct += *nibbles[i] == truth[i];
            std::printf("%X", *nibbles[i]);
        } else {
            std::printf("?");
        }
    }
    std::printf("   (truth: ");
    for (unsigned i = 0; i < 16; ++i)
        std::printf("%X", truth[i]);
    std::printf(")\n  recovered %u/16 nibbles, %u correct, %u wrong\n",
                recovered, correct, recovered - correct);
}

} // namespace

int
main(int argc, char **argv)
{
    const obs::BenchObsOptions obsOpts = obs::parseBenchObsOptions(
        argc, argv, "bench-results/fig11_aes_replay.trace.json");

    std::printf("==============================================================\n");
    std::printf("Figure 11: probe latency of Td1's 16 lines across 3 replays\n");
    std::printf("Paper bands: L1 < 60 cy, L2/L3 100-200 cy, memory > 300 cy\n");
    std::printf("==============================================================\n\n");

    // One campaign: trial 0 reproduces Figure 11 on the paper's key,
    // trial 1 runs the full extraction on the same key, trials 2..N
    // sweep random keys/plaintexts to measure recovery robustness.
    attack::Fig11Result fig11Detail;
    attack::AesExtractionResult extractionDetail;
    std::vector<Recovery> recoveries(2 + keySweepTrials);

    exp::CampaignSpec spec;
    spec.name = "fig11_aes_replay";
    spec.trials = 2 + keySweepTrials;
    spec.masterSeed = 42;
    spec.body = [&](const exp::TrialContext &ctx) {
        exp::TrialOutput out;
        if (ctx.index == 0) {
            // Trial 0 carries the event trace: one Figure-11 replay
            // timeline is what --trace is for.
            attack::AesAttackConfig config = paperConfig();
            config.machine.obs.traceEvents = obsOpts.trace;
            config.machine.obs.traceCapacity = obsOpts.traceCapacity;
            config.machine.fastForward =
                obsOpts.fastForward.value_or(true);
            const attack::Fig11Result fig11 = attack::runFig11(config);
            out.payload =
                exp::json::Value::object()
                    .set("kind", "fig11")
                    .set("consistent",
                         fig11.consistentAcrossPrimedReplays)
                    .set("matches_ground_truth",
                         fig11.matchesGroundTruth);
            exp::json::Value probes = exp::json::Value::array();
            for (const attack::LineProbe &probe : fig11.replays) {
                exp::json::Value row = exp::json::Value::array();
                for (Cycles latency : probe.latency)
                    row.push(latency);
                probes.push(std::move(row));
            }
            out.payload.set("probe_latencies", std::move(probes));
            out.metric.add(fig11.matchesGroundTruth ? 1.0 : 0.0);
            out.metrics = fig11.metrics;
            fig11Detail = std::move(fig11);
            return out;
        }

        attack::AesAttackConfig config =
            ctx.index == 1 ? paperConfig() : sweepConfig(ctx);
        config.machine.fastForward = obsOpts.fastForward.value_or(true);
        const attack::AesExtractionResult extraction =
            attack::runAesExtraction(config);
        const Recovery recovery = scoreExtraction(config, extraction);
        out.metric.add(recovery.recovered
                           ? static_cast<double>(recovery.correct) /
                                 recovery.recovered
                           : 0.0);
        out.metrics = extraction.metrics;
        out.scope.episodes = recovery.episodes;
        out.scope.totalReplays = recovery.replays;
        out.scope.handleFaults = recovery.faults;
        out.payload =
            exp::json::Value::object()
                .set("kind",
                     ctx.index == 1 ? "extraction-paper-key"
                                    : "extraction-random-key")
                .set("nibbles_recovered",
                     std::uint64_t{recovery.recovered})
                .set("nibbles_correct", std::uint64_t{recovery.correct})
                .set("plaintext_correct", recovery.plaintextCorrect)
                .set("episodes", std::uint64_t{recovery.episodes})
                .set("stable_episodes",
                     std::uint64_t{recovery.stableEpisodes})
                .set("total_replays", recovery.replays);
        recoveries[ctx.index] = recovery;
        if (ctx.index == 1)
            extractionDetail = extraction;
        return out;
    };

    const exp::CampaignResult campaign = exp::runCampaign(spec);

    printPaperKeyDetail(paperConfig(), fig11Detail, extractionDetail);

    std::printf("\n--------------------------------------------------------------\n");
    std::printf("Randomized-key sweep (%zu extra extractions, campaign "
                "runner)\n",
                keySweepTrials);
    std::printf("--------------------------------------------------------------\n");
    for (std::size_t i = 2; i < recoveries.size(); ++i) {
        const Recovery &r = recoveries[i];
        std::printf("  trial %zu: recovered %2u/16 nibbles (%2u correct, "
                    "%u wrong), plaintext %s, %u/%zu episodes stable\n",
                    i, r.recovered, r.correct, r.recovered - r.correct,
                    r.plaintextCorrect ? "ok" : "CORRUPTED",
                    r.stableEpisodes, r.episodes);
    }
    std::printf("  mean per-trial recovery accuracy: %.3f "
                "(1.0 = every recovered nibble correct)\n",
                campaign.aggregate.metric.mean());
    std::printf("\ncampaign: %zu trials (%zu ok) on %u workers in %.2fs; "
                "%llu replays total\n",
                campaign.trialCount, campaign.aggregate.ok,
                campaign.workers, campaign.wallSeconds,
                static_cast<unsigned long long>(
                    campaign.aggregate.scope.totalReplays));

    if (obsOpts.metrics) {
        std::printf("\nmetrics snapshot (merged across %zu trials):\n",
                    campaign.trialCount);
        obs::printMetrics(campaign.aggregate.metrics);
    }
    if (obsOpts.trace) {
        if (obs::writeChromeTrace(obsOpts.tracePath, fig11Detail.events))
            std::printf("\nreplay timeline (Chrome trace-event JSON, "
                        "open in ui.perfetto.dev): %s\n",
                        obsOpts.tracePath.c_str());
    }

    exp::JsonFileSink sink("bench-results");
    sink.consume(campaign);
    std::printf("campaign JSON: %s\n", sink.lastPath().c_str());
    return campaign.aggregate.ok == campaign.trialCount ? 0 : 1;
}
