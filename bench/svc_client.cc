/**
 * @file
 * Command-line client for uscope-campaignd (DESIGN.md §13).
 *
 * Submits one campaign request to a running daemon, streams update
 * frames as NDJSON, and writes the final result + fingerprint to
 * files — which is exactly the shape the svc-smoke CI job needs:
 *
 *   svc_client --socket=S --recipe=fig11_aes_replay --trials=16 \
 *       --stream-every=1 --out=run.ndjson --fingerprint-out=fp.txt
 *
 * `--inprocess` runs the *same* request through exp::runCampaign in
 * this process instead of the service — same recipe registry, same
 * spec construction — producing the reference fingerprint a service
 * run must match byte for byte.  `--wait-ready` pings until the
 * daemon answers; `--shutdown` asks it to exit.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exp/campaign.hh"
#include "obs/chrome_trace.hh"
#include "obs/cli.hh"
#include "obs/log.hh"
#include "obs/prof.hh"
#include "svc/client.hh"
#include "svc/registry.hh"
#include "svc/worker.hh"

using namespace uscope;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --socket=PATH [--recipe=NAME] [options]\n"
        "       %s attach --socket=PATH --recipe=NAME [options]\n"
        "       %s cancel --socket=PATH (--campaign=ID | request "
        "flags)\n"
        "       %s drain --socket=PATH\n"
        "       %s stats --socket=PATH [--watch=SECS] [--json]\n"
        "       %s trace --dir=DIR --out=PATH\n"
        "\n"
        "  --recipe=NAME         registered recipe to run\n"
        "  --name=NAME           campaign name (default: recipe)\n"
        "  --namespace=NS        tenant seed namespace (default: none)\n"
        "  --trials=N            trial count (0 = recipe default)\n"
        "  --seed=N              master seed (default 42)\n"
        "  --max-retries=N       retry budget per trial\n"
        "  --deadline=SEC        wall-clock deadline; past it the\n"
        "                        daemon auto-cancels (checkpoint "
        "kept)\n"
        "  --obs=LEVEL           off|metrics|trace|full (default off)\n"
        "  --stream-every=N      update frame every N trials\n"
        "  --out=PATH            NDJSON stream of updates + result\n"
        "  --fingerprint-out=P   write the result fingerprint to P\n"
        "  --inprocess           run via exp::runCampaign instead of\n"
        "                        the service (reference fingerprint)\n"
        "  --workers=N           worker threads for --inprocess\n"
        "  --wait-ready          ping until the daemon answers, exit\n"
        "  --shutdown            ask the daemon to exit\n"
        "  --log-level=LEVEL     error|warn|info|debug\n"
        "  --log-json            NDJSON log lines on stderr\n"
        "\n"
        "attach: re-bind a campaign already running in the daemon\n"
        "        (matched by request identity) and stream it to its\n"
        "        result, exactly like the submit that started it;\n"
        "        falls back to submit when nothing matches — with a\n"
        "        state dir that resumes from durable checkpoints.\n"
        "cancel: stop a campaign; the daemon replies with the partial\n"
        "        aggregate and keeps the checkpoint for later resume.\n"
        "drain:  ask the daemon to stop accepting work, cut in-flight\n"
        "        shards at a trial boundary, persist resumable\n"
        "        manifests, and exit.\n"
        "stats: one live ops snapshot (table on stdout; --json for\n"
        "       the raw reply as NDJSON; --watch=SECS to poll —\n"
        "       watch survives daemon restarts, reconnecting with\n"
        "       capped exponential backoff).\n"
        "trace: merge every worker's trace-*.json spill under DIR\n"
        "       into one Perfetto/chrome://tracing document at PATH\n"
        "       (one pid lane per worker).\n",
        argv0, argv0, argv0, argv0, argv0, argv0);
}

/** Human-readable rendering of one stats reply. */
void
printStatsTable(const json::Value &stats)
{
    const json::Value *v = stats.get("uptime_seconds");
    std::printf("daemon: uptime %.1fs, %llu workers%s\n",
                v ? v->asDouble() : 0.0,
                static_cast<unsigned long long>(
                    stats.get("workers") ? stats.get("workers")->asU64()
                                         : 0),
                stats.get("shutting_down") &&
                        stats.get("shutting_down")->asBool()
                    ? " (shutting down)"
                    : "");

    if (const json::Value *campaigns = stats.get("campaigns")) {
        for (const json::Value &c : campaigns->items()) {
            const auto u64 = [&](const char *key) {
                const json::Value *f = c.get(key);
                return f ? f->asU64() : 0;
            };
            std::printf(
                "campaign %llu '%s' (%s): %llu/%llu trials, "
                "%llu resumed, %llu steals, %llu worker deaths, "
                "%llu pending shards, obs=%s, age %.1fs\n",
                static_cast<unsigned long long>(u64("id")),
                c.get("name") ? c.get("name")->asString().c_str()
                              : "?",
                c.get("recipe") ? c.get("recipe")->asString().c_str()
                                : "?",
                static_cast<unsigned long long>(u64("completed")),
                static_cast<unsigned long long>(u64("total")),
                static_cast<unsigned long long>(u64("resumed")),
                static_cast<unsigned long long>(u64("steals")),
                static_cast<unsigned long long>(u64("worker_deaths")),
                static_cast<unsigned long long>(u64("pending_shards")),
                c.get("obs") ? c.get("obs")->asString().c_str()
                             : "off",
                c.get("age_seconds")
                    ? c.get("age_seconds")->asDouble()
                    : 0.0);
        }
    }

    if (const json::Value *workers = stats.get("worker_table")) {
        for (const json::Value &w : workers->items()) {
            const auto u64 = [&](const char *key) {
                const json::Value *f = w.get(key);
                return f ? f->asU64() : 0;
            };
            std::printf(
                "worker %llu: pid %lld, %s, %llu spawns, %llu "
                "kills, heartbeat %.2fs ago",
                static_cast<unsigned long long>(u64("id")),
                static_cast<long long>(
                    w.get("pid") ? w.get("pid")->asU64() : 0),
                w.get("busy") && w.get("busy")->asBool() ? "busy"
                                                         : "idle",
                static_cast<unsigned long long>(u64("spawns")),
                static_cast<unsigned long long>(u64("kills")),
                w.get("heartbeat_age_seconds")
                    ? w.get("heartbeat_age_seconds")->asDouble()
                    : 0.0);
            if (const json::Value *counters = w.get("counters")) {
                for (const auto &[name, value] : counters->entries())
                    std::printf(", %s=%llu", name.c_str(),
                                static_cast<unsigned long long>(
                                    value.asU64()));
            }
            std::printf("\n");
        }
    }

    if (const json::Value *prof = stats.get("prof")) {
        for (const auto &[phase, summary] : prof->entries()) {
            std::printf(
                "%s: n=%llu mean=%.6fs max=%.6fs\n", phase.c_str(),
                static_cast<unsigned long long>(
                    summary.get("count") ? summary.get("count")->asU64()
                                         : 0),
                summary.get("mean_seconds")
                    ? summary.get("mean_seconds")->asDouble()
                    : 0.0,
                summary.get("max_seconds")
                    ? summary.get("max_seconds")->asDouble()
                    : 0.0);
        }
    }
}

int
statsMain(const std::string &socket, int watch_seconds, bool as_json)
{
    // Watch mode survives daemon restarts: a one-shot query fails
    // fast, but --watch reconnects with capped exponential backoff
    // (500 ms doubling to 8 s) so a dashboard loop rides out a drain
    // + restart without operator intervention.
    int backoff_ms = 500;
    constexpr int kBackoffCapMs = 8000;
    for (;;) {
        svc::Client client(socket, /*connect_timeout_ms=*/1000);
        std::optional<json::Value> stats;
        if (client.connected())
            stats = client.stats();
        if (!stats) {
            if (watch_seconds <= 0) {
                std::fprintf(stderr,
                             client.connected()
                                 ? "no stats reply from '%s'\n"
                                 : "cannot connect to '%s'\n",
                             socket.c_str());
                return 1;
            }
            std::fprintf(stderr,
                         "daemon at '%s' unreachable; retrying in "
                         "%d ms\n",
                         socket.c_str(), backoff_ms);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff_ms));
            backoff_ms = std::min(backoff_ms * 2, kBackoffCapMs);
            continue;
        }
        backoff_ms = 500; // healthy again; reset the ladder
        if (as_json)
            std::printf("%s\n", stats->dump().c_str());
        else
            printStatsTable(*stats);
        std::fflush(stdout);
        if (watch_seconds <= 0)
            return 0;
        std::this_thread::sleep_for(
            std::chrono::seconds(watch_seconds));
    }
}

int
traceMain(const std::string &dir, const std::string &out_path)
{
    if (dir.empty() || out_path.empty()) {
        std::fprintf(stderr,
                     "trace needs both --dir=DIR and --out=PATH\n");
        return 2;
    }
    std::vector<obs::TraceSpill> spills = obs::loadTraceSpills(dir);
    if (spills.empty()) {
        std::fprintf(stderr, "no trace-*.json spills under '%s'\n",
                     dir.c_str());
        return 1;
    }
    const std::size_t count = spills.size();
    const std::string merged =
        obs::mergeChromeTraces(std::move(spills));
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
        return 1;
    }
    out << merged;
    std::printf("merged %zu spill(s) from '%s' into %s\n", count,
                dir.c_str(), out_path.c_str());
    return 0;
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

} // namespace

int
main(int argc, char **argv)
{
    // Any service binary can be a worker; harmless here, but it keeps
    // the "one binary, every role" invariant uniform.
    int worker_exit = 0;
    if (svc::maybeRunWorkerMain(argc, argv, &worker_exit))
        return worker_exit;
    obs::configureLogFromEnv();

    std::string subcommand;
    int first_flag = 1;
    if (argc > 1 && argv[1][0] != '-') {
        subcommand = argv[1];
        first_flag = 2;
        if (subcommand != "stats" && subcommand != "trace" &&
            subcommand != "attach" && subcommand != "cancel" &&
            subcommand != "drain") {
            std::fprintf(stderr, "unknown subcommand '%s'\n",
                         subcommand.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    std::string socket, out_path, fingerprint_path, trace_dir;
    svc::CampaignRequest request;
    std::size_t stream_every = 0;
    unsigned inprocess_workers = 1;
    int watch_seconds = 0;
    std::uint64_t cancel_id = 0;
    bool inprocess = false, wait_ready = false, shutdown = false;
    bool stats_json = false;

    for (int i = first_flag; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto valueOf = [&](const char *prefix)
            -> std::optional<std::string> {
            const std::size_t n = std::string(prefix).size();
            if (arg.rfind(prefix, 0) == 0)
                return arg.substr(n);
            return std::nullopt;
        };
        // Checked numeric parse: a typo'd --trials=1e6 or --workers=-1
        // is a usage error (exit 2), not a silent 0 or a wrapped
        // 4-billion-worker request.
        const auto numberOf =
            [&](const std::string &text,
                const char *flag) -> std::optional<std::uint64_t> {
            const std::optional<std::uint64_t> n =
                obs::parseUnsignedValue(text.c_str());
            if (!n)
                std::fprintf(stderr,
                             "%s: bad numeric value '%s' (expected an "
                             "unsigned number)\n",
                             flag, text.c_str());
            return n;
        };
        if (auto v = valueOf("--socket="))
            socket = *v;
        else if (auto v = valueOf("--recipe="))
            request.recipe = *v;
        else if (auto v = valueOf("--name="))
            request.name = *v;
        else if (auto v = valueOf("--namespace="))
            request.ns = *v;
        else if (auto v = valueOf("--trials=")) {
            const auto n = numberOf(*v, "--trials");
            if (!n)
                return 2;
            request.trials = static_cast<std::size_t>(*n);
        } else if (auto v = valueOf("--seed=")) {
            const auto n = numberOf(*v, "--seed");
            if (!n)
                return 2;
            request.masterSeed = *n;
        } else if (auto v = valueOf("--max-retries=")) {
            const auto n = numberOf(*v, "--max-retries");
            if (!n)
                return 2;
            request.maxRetries = static_cast<unsigned>(*n);
        } else if (auto v = valueOf("--deadline=")) {
            char *end = nullptr;
            const double sec = std::strtod(v->c_str(), &end);
            if (!end || *end != '\0' || sec < 0.0) {
                std::fprintf(stderr,
                             "--deadline: bad value '%s' (expected "
                             "seconds)\n",
                             v->c_str());
                return 2;
            }
            request.deadlineSeconds = sec;
        } else if (auto v = valueOf("--campaign=")) {
            const auto n = numberOf(*v, "--campaign");
            if (!n)
                return 2;
            cancel_id = *n;
        } else if (auto v = valueOf("--obs=")) {
            const std::optional<obs::ObsLevel> level =
                obs::parseObsLevel(*v);
            if (!level) {
                std::fprintf(stderr, "unknown obs level '%s'\n",
                             v->c_str());
                return 2;
            }
            request.obs = *level;
        } else if (auto v = valueOf("--stream-every=")) {
            const auto n = numberOf(*v, "--stream-every");
            if (!n)
                return 2;
            stream_every = static_cast<std::size_t>(*n);
        } else if (auto v = valueOf("--out="))
            out_path = *v;
        else if (auto v = valueOf("--fingerprint-out="))
            fingerprint_path = *v;
        else if (auto v = valueOf("--workers=")) {
            const auto n = numberOf(*v, "--workers");
            if (!n)
                return 2;
            inprocess_workers = static_cast<unsigned>(*n);
        } else if (auto v = valueOf("--watch=")) {
            const auto n = numberOf(*v, "--watch");
            if (!n)
                return 2;
            watch_seconds = static_cast<int>(*n);
        } else if (auto v = valueOf("--dir="))
            trace_dir = *v;
        else if (auto v = valueOf("--log-level=")) {
            obs::LogConfig lc = obs::logConfig();
            if (auto level = obs::parseLogLevel(*v))
                lc.level = *level;
            obs::configureLog(lc);
        } else if (arg == "--log-json") {
            obs::LogConfig lc = obs::logConfig();
            lc.json = true;
            obs::configureLog(lc);
        } else if (arg == "--json")
            stats_json = true;
        else if (arg == "--inprocess")
            inprocess = true;
        else if (arg == "--wait-ready")
            wait_ready = true;
        else if (arg == "--shutdown")
            shutdown = true;
        else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    obs::installSimLogBridge();

    if (subcommand == "trace")
        return traceMain(trace_dir, out_path);
    if (subcommand == "stats") {
        if (socket.empty()) {
            usage(argv[0]);
            return 2;
        }
        return statsMain(socket, watch_seconds, stats_json);
    }

    if (inprocess) {
        // The reference arm: the identical request through the
        // identical registry, executed by the in-process runner.
        if (request.recipe.empty()) {
            usage(argv[0]);
            return 2;
        }
        exp::CampaignSpec spec = svc::buildSpec(request);
        spec.workers = inprocess_workers;
        const exp::CampaignResult result = exp::runCampaign(spec);
        const std::string fingerprint =
            exp::fnv1aHex(exp::deterministicFingerprint(result));
        std::printf("inprocess: %zu trials, %zu ok, fingerprint %s\n",
                    result.trialCount, result.aggregate.ok,
                    fingerprint.c_str());
        if (!fingerprint_path.empty())
            writeTextFile(fingerprint_path, fingerprint + "\n");
        if (!out_path.empty())
            writeTextFile(out_path,
                          result.toJson(false).dump() + "\n");
        return result.aggregate.failed == 0 ? 0 : 1;
    }

    if (socket.empty()) {
        usage(argv[0]);
        return 2;
    }
    svc::Client client(socket);
    if (!client.connected()) {
        std::fprintf(stderr, "cannot connect to '%s'\n",
                     socket.c_str());
        return 1;
    }
    if (wait_ready) {
        for (int i = 0; i < 100; ++i)
            if (client.ping())
                return 0;
        return 1;
    }
    if (shutdown)
        return client.shutdownDaemon() ? 0 : 1;
    if (subcommand == "drain") {
        if (!client.drainDaemon()) {
            std::fprintf(stderr, "no drain acknowledgement from "
                                 "'%s'\n",
                         socket.c_str());
            return 1;
        }
        std::printf("daemon draining\n");
        return 0;
    }
    if (subcommand == "cancel") {
        if (cancel_id == 0 && request.recipe.empty()) {
            std::fprintf(stderr, "cancel needs --campaign=ID or "
                                 "request flags\n");
            return 2;
        }
        const svc::SubmitResult result =
            cancel_id ? client.cancel(cancel_id)
                      : client.cancel(request);
        if (!result.cancelled) {
            std::fprintf(stderr, "cancel failed: %s\n",
                         result.error.c_str());
            return result.notFound ? 3 : 1;
        }
        std::printf("campaign %llu cancelled (%s)\n",
                    static_cast<unsigned long long>(
                        result.campaignId),
                    result.error.c_str());
        if (!result.partialJson.empty())
            std::printf("partial: %s\n", result.partialJson.c_str());
        return 0;
    }
    if (request.recipe.empty()) {
        usage(argv[0]);
        return 2;
    }

    std::ofstream stream;
    if (!out_path.empty())
        stream.open(out_path, std::ios::binary | std::ios::trunc);
    const auto on_update = [&](const json::Value &update) {
        if (stream.is_open()) {
            stream << update.dump() << '\n';
            stream.flush(); // the smoke test tails this file live
        }
    };
    svc::SubmitResult result;
    if (subcommand == "attach") {
        result = client.attach(request, stream_every, on_update);
        if (result.notFound) {
            // Nothing running matches: either the campaign finished,
            // or a restarted daemon has not resumed it (no state
            // dir).  Submitting is the race-proof fallback — with
            // durable state it resumes, bit-identically.
            std::fprintf(stderr,
                         "no running campaign matches; submitting "
                         "instead\n");
            result = client.submit(request, stream_every, on_update);
        }
    } else {
        result = client.submit(request, stream_every, on_update);
    }
    if (result.cancelled) {
        std::fprintf(stderr, "campaign %llu cancelled (%s)\n",
                     static_cast<unsigned long long>(
                         result.campaignId),
                     result.error.c_str());
        if (!result.partialJson.empty() && stream.is_open())
            stream << result.partialJson << '\n';
        return 3;
    }
    if (result.busy) {
        std::fprintf(stderr, "daemon busy: %s\n",
                     result.error.c_str());
        return 4;
    }
    if (!result.ok) {
        std::fprintf(stderr, "campaign failed: %s\n",
                     result.error.c_str());
        return 1;
    }
    std::printf("service: %zu trials (%zu resumed), %u worker "
                "deaths, %zu steals, %zu updates, fingerprint %s\n",
                result.totalTrials, result.resumedTrials,
                result.workerDeaths, result.steals, result.updates,
                result.fingerprint.c_str());
    if (stream.is_open())
        stream << result.resultJson << '\n';
    if (!fingerprint_path.empty())
        writeTextFile(fingerprint_path, result.fingerprint + "\n");
    return 0;
}
