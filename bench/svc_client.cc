/**
 * @file
 * Command-line client for uscope-campaignd (DESIGN.md §13).
 *
 * Submits one campaign request to a running daemon, streams update
 * frames as NDJSON, and writes the final result + fingerprint to
 * files — which is exactly the shape the svc-smoke CI job needs:
 *
 *   svc_client --socket=S --recipe=fig11_aes_replay --trials=16 \
 *       --stream-every=1 --out=run.ndjson --fingerprint-out=fp.txt
 *
 * `--inprocess` runs the *same* request through exp::runCampaign in
 * this process instead of the service — same recipe registry, same
 * spec construction — producing the reference fingerprint a service
 * run must match byte for byte.  `--wait-ready` pings until the
 * daemon answers; `--shutdown` asks it to exit.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>

#include "exp/campaign.hh"
#include "svc/client.hh"
#include "svc/registry.hh"
#include "svc/worker.hh"

using namespace uscope;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --socket=PATH [--recipe=NAME] [options]\n"
        "\n"
        "  --recipe=NAME         registered recipe to run\n"
        "  --name=NAME           campaign name (default: recipe)\n"
        "  --namespace=NS        tenant seed namespace (default: none)\n"
        "  --trials=N            trial count (0 = recipe default)\n"
        "  --seed=N              master seed (default 42)\n"
        "  --max-retries=N       retry budget per trial\n"
        "  --stream-every=N      update frame every N trials\n"
        "  --out=PATH            NDJSON stream of updates + result\n"
        "  --fingerprint-out=P   write the result fingerprint to P\n"
        "  --inprocess           run via exp::runCampaign instead of\n"
        "                        the service (reference fingerprint)\n"
        "  --workers=N           worker threads for --inprocess\n"
        "  --wait-ready          ping until the daemon answers, exit\n"
        "  --shutdown            ask the daemon to exit\n",
        argv0);
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

} // namespace

int
main(int argc, char **argv)
{
    // Any service binary can be a worker; harmless here, but it keeps
    // the "one binary, every role" invariant uniform.
    int worker_exit = 0;
    if (svc::maybeRunWorkerMain(argc, argv, &worker_exit))
        return worker_exit;

    std::string socket, out_path, fingerprint_path;
    svc::CampaignRequest request;
    std::size_t stream_every = 0;
    unsigned inprocess_workers = 1;
    bool inprocess = false, wait_ready = false, shutdown = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto valueOf = [&](const char *prefix)
            -> std::optional<std::string> {
            const std::size_t n = std::string(prefix).size();
            if (arg.rfind(prefix, 0) == 0)
                return arg.substr(n);
            return std::nullopt;
        };
        if (auto v = valueOf("--socket="))
            socket = *v;
        else if (auto v = valueOf("--recipe="))
            request.recipe = *v;
        else if (auto v = valueOf("--name="))
            request.name = *v;
        else if (auto v = valueOf("--namespace="))
            request.ns = *v;
        else if (auto v = valueOf("--trials="))
            request.trials =
                static_cast<std::size_t>(std::atoll(v->c_str()));
        else if (auto v = valueOf("--seed="))
            request.masterSeed = std::strtoull(v->c_str(), nullptr, 0);
        else if (auto v = valueOf("--max-retries="))
            request.maxRetries =
                static_cast<unsigned>(std::atoi(v->c_str()));
        else if (auto v = valueOf("--stream-every="))
            stream_every =
                static_cast<std::size_t>(std::atoll(v->c_str()));
        else if (auto v = valueOf("--out="))
            out_path = *v;
        else if (auto v = valueOf("--fingerprint-out="))
            fingerprint_path = *v;
        else if (auto v = valueOf("--workers="))
            inprocess_workers =
                static_cast<unsigned>(std::atoi(v->c_str()));
        else if (arg == "--inprocess")
            inprocess = true;
        else if (arg == "--wait-ready")
            wait_ready = true;
        else if (arg == "--shutdown")
            shutdown = true;
        else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (inprocess) {
        // The reference arm: the identical request through the
        // identical registry, executed by the in-process runner.
        if (request.recipe.empty()) {
            usage(argv[0]);
            return 2;
        }
        exp::CampaignSpec spec = svc::buildSpec(request);
        spec.workers = inprocess_workers;
        const exp::CampaignResult result = exp::runCampaign(spec);
        const std::string fingerprint =
            exp::fnv1aHex(exp::deterministicFingerprint(result));
        std::printf("inprocess: %zu trials, %zu ok, fingerprint %s\n",
                    result.trialCount, result.aggregate.ok,
                    fingerprint.c_str());
        if (!fingerprint_path.empty())
            writeTextFile(fingerprint_path, fingerprint + "\n");
        if (!out_path.empty())
            writeTextFile(out_path,
                          result.toJson(false).dump() + "\n");
        return result.aggregate.failed == 0 ? 0 : 1;
    }

    if (socket.empty()) {
        usage(argv[0]);
        return 2;
    }
    svc::Client client(socket);
    if (!client.connected()) {
        std::fprintf(stderr, "cannot connect to '%s'\n",
                     socket.c_str());
        return 1;
    }
    if (wait_ready) {
        for (int i = 0; i < 100; ++i)
            if (client.ping())
                return 0;
        return 1;
    }
    if (shutdown)
        return client.shutdownDaemon() ? 0 : 1;
    if (request.recipe.empty()) {
        usage(argv[0]);
        return 2;
    }

    std::ofstream stream;
    if (!out_path.empty())
        stream.open(out_path, std::ios::binary | std::ios::trunc);
    const svc::SubmitResult result = client.submit(
        request, stream_every, [&](const json::Value &update) {
            if (stream.is_open()) {
                stream << update.dump() << '\n';
                stream.flush(); // the smoke test tails this file live
            }
        });
    if (!result.ok) {
        std::fprintf(stderr, "campaign failed: %s\n",
                     result.error.c_str());
        return 1;
    }
    std::printf("service: %zu trials (%zu resumed), %u worker "
                "deaths, %zu steals, %zu updates, fingerprint %s\n",
                result.totalTrials, result.resumedTrials,
                result.workerDeaths, result.steals, result.updates,
                result.fingerprint.c_str());
    if (stream.is_open())
        stream << result.resultJson << '\n';
    if (!fingerprint_path.empty())
        writeTextFile(fingerprint_path, result.fingerprint + "\n");
    return 0;
}
