/**
 * @file
 * The §4.3 denoising claim, measured: at a fixed nonzero fault/noise
 * rate, the attacker's detection accuracy rises monotonically with the
 * replay count, for both of the paper's victims —
 *
 *  - fig10 (port contention): the Monitor's exceedance ratio grows
 *    with every replayed victim window until it clears the decision
 *    threshold that background jitter alone cannot reach;
 *  - fig11 (AES Prime+Probe): majority-voting the per-replay line
 *    sets votes down the lines an injected interrupt happened to
 *    evict during any single replay.
 *
 * Each (victim, replay-count) cell is one exp campaign under one
 * deterministic FaultPlan, so the whole sweep doubles as the
 * checkpoint/resume proving ground:
 *
 *   --checkpoint=DIR   checkpoint every trial (one subdir per cell)
 *   --die-after=N      _Exit(3) once N trials completed — simulates a
 *                      kill mid-campaign for the CI resume test
 *   --fingerprint=PATH write a wall-clock-free fingerprint of every
 *                      campaign; a killed-then-resumed sweep must
 *                      produce a byte-identical file
 *   --out=DIR          JSON reports via JsonFileSink (default results)
 *   --trials=N         trials per cell (default 16)
 *
 * Exits nonzero when either victim's accuracy curve fails to be
 * monotone non-decreasing with a strict overall rise — the paper's
 * claim, enforced.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "attack/aes_attack.hh"
#include "attack/port_contention.hh"
#include "common/random.hh"
#include "exp/campaign.hh"
#include "exp/checkpoint.hh"
#include "exp/result_sink.hh"
#include "fault/plan.hh"
#include "obs/cli.hh"

using namespace uscope;

namespace
{

/**
 * fig10's fixed noise regime: SMT-style port/scheduling jitter plus a
 * tenth of the Monitor's samples never arriving.  Interrupt residue
 * is deliberately off — an eviction spike in the Monitor's own lines
 * costs a DRAM round trip, which the 120-cycle exceedance rule cannot
 * tell from contention no matter how many replays average it; that
 * regime belongs to the cache-probing victim below.
 */
fault::FaultPlan
fig10Plan()
{
    fault::FaultPlan plan;
    plan.interruptMeanGap = 0;
    plan.preemptMeanGap = 0;
    plan.portJitterRate = 0.02;
    plan.portJitterMax = 3;
    plan.sampleDropRate = 0.10;
    return plan;
}

/**
 * fig11's fixed noise regime — far harsher than FaultPlan::chaos():
 * interrupt residue evicts enough lines that a primed Td line is lost
 * a few percent of the time per window, and timer jitter smears probe
 * latencies (without bridging the L1/DRAM classification gap).
 */
fault::FaultPlan
fig11Plan()
{
    fault::FaultPlan plan;
    // The L3 is sparsely occupied, so an eviction *draw* rarely lands
    // on a resident line: the per-line loss probability per interrupt
    // is draws / (sets * ways) = 32768 / 131072 = 25%.  Frequent small
    // interrupts make losses common enough that one replay is visibly
    // unreliable — rare catastrophic interrupts would only add trial
    // variance without bending the mean curve.
    plan.interruptMeanGap = 700;
    plan.interruptEvictions = 16384;
    plan.preemptMeanGap = 0;
    plan.probeJitterMax = 20;
    plan.sampleDropRate = 0.10;
    return plan;
}

struct Cell
{
    std::string victim;
    std::uint64_t replays = 0;
    double accuracy = 0.0;
    exp::CampaignResult result;
};

struct Options
{
    std::string outDir = "results";
    std::string checkpointDir;
    std::string fingerprintPath;
    std::size_t trials = 16;
    std::size_t dieAfter = 0;  // 0 = never
};

std::size_t completedTrials = 0;

/** Shared progress hook implementing --die-after. */
void
maybeDie(const Options &opt)
{
    ++completedTrials;
    if (opt.dieAfter && completedTrials >= opt.dieAfter) {
        std::printf("--die-after=%zu reached; exiting hard\n",
                    opt.dieAfter);
        std::fflush(stdout);
        std::_Exit(3);
    }
}

exp::CampaignSpec
fig10Cell(std::uint64_t replays, const Options &opt)
{
    exp::CampaignSpec spec;
    spec.name = "denoise_fig10_r" + std::to_string(replays);
    spec.trials = opt.trials;
    spec.masterSeed = 42;
    spec.body = [replays](const exp::TrialContext &ctx) {
        attack::PortContentionConfig config;
        config.victimDivides = ctx.index % 2 == 1;
        config.replays = replays;
        // High sample count => the 0.2% exceedance rule demands many
        // absolute crossings (~9 here after drops); one replay window
        // supplies roughly one, so only accumulation across replays
        // clears it.  That asymmetry IS the denoising curve.
        config.samples = 4500;
        config.seed = ctx.seed;
        config.machine.fault = fig10Plan();
        const attack::PortContentionResult result =
            attack::runPortContentionAttack(config);

        exp::TrialOutput out;
        out.simCycles = result.totalCycles;
        out.metric.add(
            result.inferredDivides == config.victimDivides ? 1.0 : 0.0);
        out.metrics = result.metrics;
        out.payload =
            exp::json::Value::object()
                .set("correct",
                     result.inferredDivides == config.victimDivides)
                .set("above_threshold", result.aboveThreshold)
                .set("samples_dropped", result.samplesDropped);
        return out;
    };
    return spec;
}

exp::CampaignSpec
fig11Cell(std::uint64_t replays, const Options &opt)
{
    exp::CampaignSpec spec;
    spec.name = "denoise_fig11_r" + std::to_string(replays);
    spec.trials = opt.trials;
    spec.masterSeed = 42;
    spec.body = [replays](const exp::TrialContext &ctx) {
        attack::AesAttackConfig config;
        Rng rng(ctx.seed);
        for (unsigned i = 0; i < 16; ++i) {
            config.key[i] = static_cast<std::uint8_t>(rng.below(256));
            config.plaintext[i] =
                static_cast<std::uint8_t>(rng.below(256));
        }
        config.seed = ctx.seed;
        // +1: replay 0 probes the warm cache; the majority vote is
        // over the `replays` primed replays that follow.
        config.replaysPerEpisode = replays + 1;
        config.machine.fault = fig11Plan();
        const attack::Fig11Result fig11 = attack::runFig11(config);

        unsigned line_errors = 0;
        for (unsigned line = 0; line < 16; ++line) {
            const bool measured = fig11.majorityLines.count(line) > 0;
            const bool expected = fig11.expectedLines.count(line) > 0;
            line_errors += measured != expected;
        }

        exp::TrialOutput out;
        out.metric.add(fig11.majorityMatchesGroundTruth ? 1.0 : 0.0);
        out.metrics = fig11.metrics;
        out.payload =
            exp::json::Value::object()
                .set("majority_matches", fig11.majorityMatchesGroundTruth)
                .set("line_errors", line_errors)
                .set("primed_replays",
                     std::uint64_t{fig11.measuredLines.size()});
        return out;
    };
    return spec;
}

/** Accuracy = mean of the campaign's 0/1 primary metric. */
Cell
runCell(exp::CampaignSpec spec, const std::string &victim,
        std::uint64_t replays, const Options &opt)
{
    if (!opt.checkpointDir.empty())
        spec.checkpointDir = opt.checkpointDir + "/" + spec.name;
    spec.progress = [&opt](std::size_t, std::size_t) { maybeDie(opt); };

    Cell cell;
    cell.victim = victim;
    cell.replays = replays;
    cell.result = exp::runCampaign(std::move(spec));
    cell.accuracy = cell.result.aggregate.metric.mean();
    std::printf("  %-6s replays=%-3llu  accuracy %5.1f%%  "
                "(%zu trials, %zu resumed)\n",
                victim.c_str(),
                static_cast<unsigned long long>(replays),
                cell.accuracy * 100, cell.result.trialCount,
                cell.result.resumedTrials);
    std::fflush(stdout);
    return cell;
}

/** Wall-clock-free identity of every campaign, for the CI diff. */
std::string
fingerprint(const std::vector<Cell> &cells)
{
    std::string fp;
    for (const Cell &cell : cells) {
        fp += cell.result.name;
        fp += ' ';
        fp += cell.result.aggregate.toJson().dump();
        for (const exp::TrialResult &trial : cell.result.trials) {
            fp += '\n';
            fp += exp::trialStatusName(trial.status);
            fp += ' ';
            fp += trial.output.payload.dump();
        }
        fp += '\n';
    }
    return fp;
}

bool
monotoneRising(const std::vector<Cell> &cells)
{
    for (std::size_t i = 1; i < cells.size(); ++i)
        if (cells[i].accuracy < cells[i - 1].accuracy)
            return false;
    return cells.back().accuracy > cells.front().accuracy;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *prefix) -> const char * {
            return arg.rfind(prefix, 0) == 0
                       ? arg.c_str() + std::strlen(prefix)
                       : nullptr;
        };
        if (const char *v = value("--out="))
            opt.outDir = v;
        else if (const char *v = value("--checkpoint="))
            opt.checkpointDir = v;
        else if (const char *v = value("--fingerprint="))
            opt.fingerprintPath = v;
        else if (const char *v = value("--trials="))
            opt.trials = obs::requireUnsignedFlag("--trials", v);
        else if (const char *v = value("--die-after="))
            opt.dieAfter = obs::requireUnsignedFlag("--die-after", v);
        else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            return 2;
        }
    }

    std::printf("=========================================================\n");
    std::printf("Denoising sweep (§4.3): accuracy vs replays, fixed noise\n");
    std::printf("=========================================================\n");

    std::vector<Cell> fig10;
    std::printf("\nfig10 victim (port contention, verdict accuracy):\n");
    for (std::uint64_t replays : {1ull, 3ull, 9ull, 27ull})
        fig10.push_back(
            runCell(fig10Cell(replays, opt), "fig10", replays, opt));

    std::vector<Cell> fig11;
    std::printf("\nfig11 victim (AES Prime+Probe, majority-vote match):\n");
    for (std::uint64_t replays : {1ull, 3ull, 5ull, 9ull})
        fig11.push_back(
            runCell(fig11Cell(replays, opt), "fig11", replays, opt));

    exp::JsonFileSink sink(opt.outDir, /*include_trials=*/true);
    for (const auto *cells : {&fig10, &fig11})
        for (const Cell &cell : *cells)
            sink.consume(cell.result);
    std::printf("\nJSON reports in %s/\n", opt.outDir.c_str());

    if (!opt.fingerprintPath.empty()) {
        std::vector<Cell> all;
        for (const auto *cells : {&fig10, &fig11})
            for (const Cell &cell : *cells)
                all.push_back(cell);
        exp::writeFileAtomic(opt.fingerprintPath, fingerprint(all));
        std::printf("fingerprint written to %s\n",
                    opt.fingerprintPath.c_str());
    }

    const bool ok10 = monotoneRising(fig10);
    const bool ok11 = monotoneRising(fig11);
    std::printf("\nmonotone accuracy rise: fig10 %s, fig11 %s\n",
                ok10 ? "yes" : "NO", ok11 ? "yes" : "NO");
    std::printf("Paper's claim (§4.3): replaying the same window lets the\n"
                "attacker average the channel until the noise floor "
                "vanishes.\n");
    return ok10 && ok11 ? 0 : 1;
}
