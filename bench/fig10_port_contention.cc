/**
 * @file
 * Reproduces Figure 10: latencies of 10,000 Monitor measurements
 * while MicroScope replays a victim executing (a) two multiplies or
 * (b) two divides — no loop, a single logical run.
 *
 * Expected shape (paper): with the contention threshold slightly
 * under 120 cycles, the mul victim leaves ~4 samples above it and the
 * div victim ~64 — a ~16x separation that makes the two cases
 * "clearly distinguishable".
 *
 * The whole figure is one exp::CampaignRunner campaign: two headline
 * arms (mul/div at 10,000 samples) plus a 5-seed x {mul,div} sweep,
 * each trial on its own simulated Machine, sharded across worker
 * threads.  The full result set exports to
 * bench-results/fig10_port_contention.json.
 */

#include <cstdio>
#include <vector>

#include "attack/port_contention.hh"
#include "common/stats.hh"
#include "exp/campaign.hh"
#include "exp/result_sink.hh"
#include "obs/chrome_trace.hh"
#include "obs/cli.hh"

using namespace uscope;

namespace
{

/** One grid point: a full attack run at a given seed and arm. */
struct Arm
{
    bool divides;
    std::uint64_t seed;
    unsigned samples;
    std::uint64_t replays;
    bool headline;  ///< Full 10,000-sample reproduction arm.
};

std::vector<Arm>
buildGrid()
{
    std::vector<Arm> grid;
    grid.push_back({false, 42, 10000, 100, true});  // Figure 10a
    grid.push_back({true, 42, 10000, 100, true});   // Figure 10b
    for (std::uint64_t seed : {1ull, 7ull, 42ull, 99ull, 1234ull})
        for (bool divides : {false, true})
            grid.push_back({divides, seed, 4000, 60, false});
    return grid;
}

void
printHeadline(const Arm &arm, const attack::PortContentionResult &result)
{
    Histogram hist(60, 220, 16);
    for (Cycles sample : result.samples)
        hist.add(static_cast<double>(sample));

    std::printf("\n--- Victim executes two %s (Figure %s) ---\n",
                arm.divides ? "DIVISIONS" : "MULTIPLICATIONS",
                arm.divides ? "10b" : "10a");
    std::printf("monitor samples:        %zu\n", result.samples.size());
    std::printf("median latency:         %llu cycles\n",
                static_cast<unsigned long long>(result.medianLatency));
    std::printf("samples > 120 cycles:   %llu\n",
                static_cast<unsigned long long>(result.aboveThreshold));
    std::printf("replays of the window:  %llu\n",
                static_cast<unsigned long long>(result.replaysDone));
    std::printf("victim completed:       %s (single logical run)\n",
                result.victimCompleted ? "yes" : "no");
    std::printf("adversary verdict:      %s\n",
                result.inferredDivides ? "DIVIDES" : "no divides");
    std::printf("latency distribution (cycles):\n%s",
                hist.render(48).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const obs::BenchObsOptions obsOpts = obs::parseBenchObsOptions(
        argc, argv, "bench-results/fig10_port_contention.trace.json");

    std::printf("==============================================================\n");
    std::printf("Figure 10: port-contention attack, 10,000 monitor samples\n");
    std::printf("Paper reference: mul ~4 above threshold, div ~64 (16x)\n");
    std::printf("==============================================================\n");

    const std::vector<Arm> grid = buildGrid();
    // Each trial writes only its own pre-sized slot: no locking.
    std::vector<attack::PortContentionResult> details(grid.size());

    exp::CampaignSpec spec;
    spec.name = "fig10_port_contention";
    spec.trials = grid.size();
    spec.masterSeed = 42;
    spec.body = [&](const exp::TrialContext &ctx) {
        const Arm &arm = grid[ctx.index];
        attack::PortContentionConfig config;
        config.victimDivides = arm.divides;
        config.samples = arm.samples;
        config.replays = arm.replays;
        config.threshold = 120;
        // Reproduction arms pin the paper's explicit seeds rather
        // than deriving them from the trial index.
        config.seed = arm.seed;
        config.machine.fastForward = obsOpts.fastForward.value_or(true);
        if (ctx.index == 1) {
            // The div headline (Figure 10b) carries the event trace:
            // replays interleaved with contended Monitor bursts.
            config.machine.obs.traceEvents = obsOpts.trace;
            config.machine.obs.traceCapacity = obsOpts.traceCapacity;
        }
        const attack::PortContentionResult result =
            attack::runPortContentionAttack(config);

        exp::TrialOutput out;
        for (Cycles sample : result.samples)
            out.metric.add(static_cast<double>(sample));
        out.metrics = result.metrics;
        out.simCycles = result.totalCycles;
        out.scope.episodes = 1;
        out.scope.totalReplays = result.replaysDone;
        out.payload =
            exp::json::Value::object()
                .set("arm", arm.divides ? "div" : "mul")
                .set("seed", arm.seed)
                .set("samples", std::uint64_t{arm.samples})
                .set("above_threshold", result.aboveThreshold)
                .set("median_latency", result.medianLatency)
                .set("max_latency", result.maxLatency)
                .set("replays", result.replaysDone)
                .set("victim_completed", result.victimCompleted)
                .set("inferred_divides", result.inferredDivides)
                .set("headline", arm.headline);
        if (arm.headline) {
            exp::json::Value samples = exp::json::Value::array();
            for (Cycles sample : result.samples)
                samples.push(sample);
            out.payload.set("monitor_samples", std::move(samples));
        }
        details[ctx.index] = std::move(result);
        return out;
    };

    const exp::CampaignResult campaign = exp::runCampaign(spec);

    printHeadline(grid[0], details[0]);
    printHeadline(grid[1], details[1]);

    std::printf("\nSeed sweep (above-threshold counts, mul vs div):\n");
    for (std::size_t i = 2; i < grid.size(); i += 2) {
        const auto &mul_run = details[i];
        const auto &div_run = details[i + 1];
        std::printf("  seed %-6llu mul=%-4llu div=%-4llu verdicts: %s/%s\n",
                    static_cast<unsigned long long>(grid[i].seed),
                    static_cast<unsigned long long>(
                        mul_run.aboveThreshold),
                    static_cast<unsigned long long>(
                        div_run.aboveThreshold),
                    mul_run.inferredDivides ? "DIV(!)" : "mul",
                    div_run.inferredDivides ? "div" : "MUL(!)");
    }

    std::printf("\ncampaign: %zu trials (%zu ok) on %u workers in %.2fs "
                "(%.1f trials/s, %.1f Msim-cycles/s)\n",
                campaign.trialCount, campaign.aggregate.ok,
                campaign.workers, campaign.wallSeconds,
                campaign.trialsPerSecond(),
                campaign.simCyclesPerSecond() / 1e6);

    if (obsOpts.metrics) {
        std::printf("\nmetrics snapshot (merged across %zu trials):\n",
                    campaign.trialCount);
        obs::printMetrics(campaign.aggregate.metrics);
    }
    if (obsOpts.trace) {
        if (obs::writeChromeTrace(obsOpts.tracePath, details[1].events))
            std::printf("\nreplay timeline (Chrome trace-event JSON, "
                        "open in ui.perfetto.dev): %s\n",
                        obsOpts.tracePath.c_str());
    }

    exp::JsonFileSink sink("bench-results");
    sink.consume(campaign);
    std::printf("campaign JSON: %s\n", sink.lastPath().c_str());
    return campaign.aggregate.ok == campaign.trialCount ? 0 : 1;
}
