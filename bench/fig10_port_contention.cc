/**
 * @file
 * Reproduces Figure 10: latencies of 10,000 Monitor measurements
 * while MicroScope replays a victim executing (a) two multiplies or
 * (b) two divides — no loop, a single logical run.
 *
 * Expected shape (paper): with the contention threshold slightly
 * under 120 cycles, the mul victim leaves ~4 samples above it and the
 * div victim ~64 — a ~16x separation that makes the two cases
 * "clearly distinguishable".
 */

#include <cstdio>

#include "attack/port_contention.hh"
#include "common/stats.hh"

using namespace uscope;

namespace
{

void
runArm(bool divides, const attack::PortContentionConfig &base)
{
    attack::PortContentionConfig config = base;
    config.victimDivides = divides;
    const attack::PortContentionResult result =
        attack::runPortContentionAttack(config);

    Histogram hist(60, 220, 16);
    for (Cycles sample : result.samples)
        hist.add(static_cast<double>(sample));

    std::printf("\n--- Victim executes two %s (Figure %s) ---\n",
                divides ? "DIVISIONS" : "MULTIPLICATIONS",
                divides ? "10b" : "10a");
    std::printf("monitor samples:        %zu\n", result.samples.size());
    std::printf("median latency:         %llu cycles\n",
                static_cast<unsigned long long>(result.medianLatency));
    std::printf("samples > %llu cycles:   %llu\n",
                static_cast<unsigned long long>(config.threshold),
                static_cast<unsigned long long>(result.aboveThreshold));
    std::printf("replays of the window:  %llu\n",
                static_cast<unsigned long long>(result.replaysDone));
    std::printf("victim completed:       %s (single logical run)\n",
                result.victimCompleted ? "yes" : "no");
    std::printf("adversary verdict:      %s\n",
                result.inferredDivides ? "DIVIDES" : "no divides");
    std::printf("latency distribution (cycles):\n%s",
                hist.render(48).c_str());
}

} // namespace

int
main()
{
    std::printf("==============================================================\n");
    std::printf("Figure 10: port-contention attack, 10,000 monitor samples\n");
    std::printf("Paper reference: mul ~4 above threshold, div ~64 (16x)\n");
    std::printf("==============================================================\n");

    attack::PortContentionConfig config;
    config.samples = 10000;
    config.replays = 100;
    config.threshold = 120;
    config.seed = 42;

    runArm(false, config);
    runArm(true, config);

    std::printf("\nSeed sweep (above-threshold counts, mul vs div):\n");
    for (std::uint64_t seed : {1ull, 7ull, 42ull, 99ull, 1234ull}) {
        attack::PortContentionConfig sweep = config;
        sweep.samples = 4000;
        sweep.replays = 60;
        sweep.seed = seed;
        sweep.victimDivides = false;
        const auto mul_run = attack::runPortContentionAttack(sweep);
        sweep.victimDivides = true;
        const auto div_run = attack::runPortContentionAttack(sweep);
        std::printf("  seed %-6llu mul=%-4llu div=%-4llu verdicts: %s/%s\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(
                        mul_run.aboveThreshold),
                    static_cast<unsigned long long>(
                        div_run.aboveThreshold),
                    mul_run.inferredDivides ? "DIV(!)" : "mul",
                    div_run.inferredDivides ? "div" : "MUL(!)");
    }
    return 0;
}
