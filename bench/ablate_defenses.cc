/**
 * @file
 * Ablation of §8: every candidate countermeasure the paper discusses,
 * evaluated against the attacks it is supposed to stop.
 *
 *  - Fences on pipeline flushes: genuinely stops the replay window
 *    (at a measured, small cost to benign page-faulting code).
 *  - T-SGX: keeps the OS out of the fault path but hands the
 *    attacker N-1 replay windows — enough for the cache channel.
 *  - Déjà Vu: detects long replay campaigns — but only after the
 *    fact, and short campaigns hide inside benign fault budgets.
 *  - PF-obliviousness: closes the controlled channel while *adding*
 *    replay handles and leaving port contention exposed.
 */

#include <cstdio>

#include "defense/dejavu.hh"
#include "defense/fence_defense.hh"
#include "defense/pf_oblivious.hh"
#include "defense/tsgx.hh"

using namespace uscope;

int
main()
{
    std::printf("==============================================================\n");
    std::printf("Defense ablation (§8)\n");
    std::printf("==============================================================\n");

    {
        std::printf("\n[1] Fences on pipeline flushes\n");
        const auto result = defense::runFenceAblation(42, 4000);
        std::printf("    port attack, no defense:   %llu samples above "
                    "threshold -> verdict %s\n",
                    static_cast<unsigned long long>(
                        result.baselineDiv.aboveThreshold),
                    result.baselineDiv.inferredDivides ? "DIVIDES"
                                                       : "no divides");
        std::printf("    port attack, fence on:     %llu above "
                    "(mul noise floor: %llu) -> verdict %s\n",
                    static_cast<unsigned long long>(
                        result.fencedDiv.aboveThreshold),
                    static_cast<unsigned long long>(
                        result.fencedMul.aboveThreshold),
                    result.fencedDiv.inferredDivides ? "DIVIDES"
                                                     : "no divides");
        std::printf("    attack defeated:           %s\n",
                    result.attackDefeated ? "yes" : "NO");
        std::printf("    benign demand paging:      %llu -> %llu cycles "
                    "(%.2f%% overhead)\n",
                    static_cast<unsigned long long>(
                        result.benignBaselineCycles),
                    static_cast<unsigned long long>(
                        result.benignFencedCycles),
                    result.benignOverhead * 100);
    }

    {
        std::printf("\n[2] T-SGX (transaction-wrapped enclave, N = 10)\n");
        for (bool secret : {false, true}) {
            defense::TsgxConfig config;
            config.secret = secret;
            const auto result = defense::runTsgxAttack(config);
            std::printf("    secret=%-5s aborts=%llu terminated=%s  "
                        "cache votes mul/div = %llu/%llu -> %s (%s)\n",
                        secret ? "div" : "mul",
                        static_cast<unsigned long long>(result.txAborts),
                        result.victimTerminated ? "yes" : "no",
                        static_cast<unsigned long long>(result.mulHits),
                        static_cast<unsigned long long>(result.divHits),
                        result.inferredDividesCache ? "DIVIDES"
                                                    : "no divides",
                        result.inferredDividesCache == secret
                            ? "correct"
                            : "WRONG");
        }
        std::printf("    => N-1 replays sufficed despite the defense "
                    "(paper's critique).\n");
    }

    {
        std::printf("\n[3] Deja Vu (reference clock)\n");
        for (std::uint64_t replays : {2ull, 10ull}) {
            defense::DejavuConfig config;
            config.replays = replays;
            const auto result = defense::runDejavuExperiment(config);
            std::printf("    %2llu replays: elapsed=%llu cy "
                        "(benign fault ~%llu cy)  detected=%-3s  "
                        "secret extracted first=%s\n",
                        static_cast<unsigned long long>(replays),
                        static_cast<unsigned long long>(
                            result.measuredElapsed),
                        static_cast<unsigned long long>(
                            result.benignFaultCost),
                        result.detected ? "yes" : "no",
                        result.secretExtracted ? "yes" : "NO");
        }
        std::printf("    => detection is after-the-fact; short campaigns "
                    "mask as benign faults.\n");
    }

    {
        std::printf("\n[4] PF-obliviousness (Shinde et al.)\n");
        for (bool secret : {false, true}) {
            defense::PfObliviousConfig config;
            config.secret = secret;
            const auto result =
                defense::runPfObliviousExperiment(config);
            std::printf("    secret=%-5s page trace secret-independent=%s"
                        "  handles %u->%u  port verdict %s (%s)\n",
                        secret ? "div" : "mul",
                        result.pageTraceSecretIndependent ? "yes" : "NO",
                        result.originalHandleCandidates,
                        result.obliviousHandleCandidates,
                        result.inferredDivides ? "DIVIDES"
                                               : "no divides",
                        result.inferenceCorrect ? "correct" : "WRONG");
        }
        std::printf("    => the transform closes the page channel but "
                    "ADDS replay handles\n       and the port channel "
                    "still leaks (paper's observation).\n");
    }
    return 0;
}
