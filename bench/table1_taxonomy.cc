/**
 * @file
 * Reproduces Table 1: the taxonomy of SGX side channels by spatial
 * granularity, temporal resolution, and noise — with *measured*
 * numbers from this simulator instead of citations.
 *
 * Four representative channels run against the same control-flow
 * victim (plus the AES victim for the cache rows):
 *
 *  - Controlled channel [60]: page-fault sequences.  Coarse (4 KiB),
 *    noiseless, one run.
 *  - Prime+Probe, one shot: cache-line granularity but noisy against
 *    warm caches, and unsynchronized (low temporal resolution).
 *  - Port contention without replay (PortSmash [5]): fine grain, but
 *    one window gives almost no signal — the paper's motivation.
 *  - MicroScope: fine grain, instruction-level stepping, no noise,
 *    one logical run.
 */

#include <cstdio>
#include <set>
#include <vector>

#include "attack/aes_attack.hh"
#include "attack/port_contention.hh"
#include "attack/victims.hh"
#include "core/microscope.hh"
#include "crypto/aes.hh"
#include "fault/plan.hh"
#include "os/machine.hh"

using namespace uscope;

namespace
{

/** Controlled channel: recover the branch secret from fault VPNs. */
double
controlledChannelAccuracy(unsigned trials, const fault::FaultPlan &plan)
{
    unsigned correct = 0;
    for (unsigned trial = 0; trial < trials; ++trial) {
        const bool secret = trial % 2;
        os::MachineConfig mcfg;
        mcfg.seed = 100 + trial;
        mcfg.fault = plan;
        os::Machine machine(mcfg);
        auto &kernel = machine.kernel();
        const auto victim =
            attack::buildControlFlowVictim(kernel, secret);
        // Mark both possible transmit pages non-present and watch
        // which one faults (the kernel default handler services it).
        kernel.pageTable(victim.pid).setPresent(victim.transmitA,
                                                false);
        kernel.pageTable(victim.pid).setPresent(victim.transmitB,
                                                false);
        kernel.startOnContext(victim.pid, 0, victim.program);
        machine.runUntilHalted(0, 1'000'000);
        // After the run, exactly the touched page was made present by
        // demand paging: read the present bits back.
        const bool touched_div =
            kernel.pageTable(victim.pid).isPresent(victim.transmitB);
        correct += touched_div == secret;
    }
    return static_cast<double>(correct) / trials;
}

/** One-shot Prime+Probe on Td1 against warm caches: line error rate. */
double
primeProbeOneShotErrorRate(unsigned trials)
{
    unsigned errors = 0;
    unsigned total = 0;
    for (unsigned trial = 0; trial < trials; ++trial) {
        attack::AesAttackConfig config;
        config.seed = 500 + trial;
        for (unsigned i = 0; i < 16; ++i) {
            config.key[i] = static_cast<std::uint8_t>(trial + i);
            config.plaintext[i] = static_cast<std::uint8_t>(i * 3);
        }
        const auto fig11 = attack::runFig11(config);
        // "One shot" = the unprimed Replay-0 probe: classify against
        // ground truth and count line classification errors.
        const auto observed = fig11.replays.at(0).hitLines(100);
        for (unsigned line = 0; line < 16; ++line) {
            const bool measured = observed.count(line) > 0;
            const bool expected = fig11.expectedLines.count(line) > 0;
            errors += measured != expected;
            ++total;
        }
    }
    return static_cast<double>(errors) / total;
}

/** Port contention: verdict accuracy at a given replay budget. */
double
portContentionAccuracy(std::uint64_t replays, unsigned trials)
{
    unsigned correct = 0;
    for (unsigned trial = 0; trial < trials; ++trial) {
        attack::PortContentionConfig config;
        config.victimDivides = trial % 2;
        config.replays = replays;
        config.samples = static_cast<unsigned>(replays * 60 + 400);
        config.seed = 900 + trial;
        const auto result = attack::runPortContentionAttack(config);
        correct += result.inferredDivides == config.victimDivides;
    }
    return static_cast<double>(correct) / trials;
}

/** MicroScope/AES: line classification error after primed replays. */
double
microscopeAesErrorRate(unsigned trials, const fault::FaultPlan &plan)
{
    unsigned errors = 0;
    unsigned total = 0;
    for (unsigned trial = 0; trial < trials; ++trial) {
        attack::AesAttackConfig config;
        config.seed = 700 + trial;
        config.machine.fault = plan;
        for (unsigned i = 0; i < 16; ++i) {
            config.key[i] = static_cast<std::uint8_t>(trial * 7 + i);
            config.plaintext[i] = static_cast<std::uint8_t>(i * 5);
        }
        const auto fig11 = attack::runFig11(config);
        for (const auto &lines : fig11.measuredLines) {
            for (unsigned line = 0; line < 16; ++line) {
                const bool measured = lines.count(line) > 0;
                const bool expected =
                    fig11.expectedLines.count(line) > 0;
                errors += measured != expected;
                ++total;
            }
        }
    }
    return static_cast<double>(errors) / total;
}

/**
 * Sneaky Page Monitoring [58]: poll-and-clear the Accessed bits of
 * the two candidate transmit pages (flushing the TLB so every access
 * re-walks) and infer the branch direction without a single fault.
 */
double
spmAccuracy(unsigned trials, const fault::FaultPlan &plan)
{
    unsigned correct = 0;
    for (unsigned trial = 0; trial < trials; ++trial) {
        const bool secret = trial % 2;
        os::MachineConfig mcfg;
        mcfg.seed = 300 + trial;
        mcfg.fault = plan;
        os::Machine machine(mcfg);
        auto &kernel = machine.kernel();
        const auto victim =
            attack::buildControlFlowVictim(kernel, secret);
        kernel.pageTable(victim.pid)
            .testAndClearAccessed(victim.transmitA);
        kernel.pageTable(victim.pid)
            .testAndClearAccessed(victim.transmitB);
        machine.mmu().flushTlbAll();
        kernel.startOnContext(victim.pid, 0, victim.program);

        bool saw_mul = false;
        bool saw_div = false;
        while (!machine.core().halted(0) &&
               machine.cycle() < 1'000'000) {
            machine.run(200);
            saw_mul |= kernel.pageTable(victim.pid)
                           .testAndClearAccessed(victim.transmitA);
            saw_div |= kernel.pageTable(victim.pid)
                           .testAndClearAccessed(victim.transmitB);
            machine.mmu().flushTlbAll();
        }
        // Speculative wrong-path walks set A bits too; but with the
        // predictor flushed (predicting the fall-through div side),
        // seeing BOTH pages means the branch mispredicted, i.e. it
        // was taken — the mul side (the §4.2.3 insight applied here).
        bool verdict;
        if (saw_mul && saw_div)
            verdict = false;          // mispredicted => taken => mul
        else if (saw_div)
            verdict = true;
        else
            verdict = false;
        correct += (saw_mul || saw_div) && verdict == secret;
    }
    return static_cast<double>(correct) / trials;
}

} // namespace

int
main()
{
    std::printf("==============================================================\n");
    std::printf("Table 1: side channels on the simulated SGX machine\n");
    std::printf("(measured on this substrate; paper classification in [])\n");
    std::printf("==============================================================\n\n");

    // "Noiseless" is a measurement here, not a citation: every
    // page-granularity and replay-based row is re-run under
    // FaultPlan::chaos() (interrupt residue, TLB/PWC shootdowns,
    // port and timer jitter, dropped samples) and reports how much of
    // its accuracy survives.
    const fault::FaultPlan quiet;
    const fault::FaultPlan noisy = fault::FaultPlan::chaos();

    const double controlled = controlledChannelAccuracy(8, quiet);
    const double controlled_n = controlledChannelAccuracy(8, noisy);
    const double spm = spmAccuracy(8, quiet);
    const double spm_n = spmAccuracy(8, noisy);
    const double pp_error = primeProbeOneShotErrorRate(6);
    const double port_one = portContentionAccuracy(1, 10);
    const double port_many = portContentionAccuracy(60, 10);
    const double us_error = microscopeAesErrorRate(6, quiet);
    const double us_error_n = microscopeAesErrorRate(6, noisy);

    std::printf("%-34s %-10s %-12s %s\n", "channel", "spatial",
                "temporal", "measured noise / accuracy");
    std::printf("%-34s %-10s %-12s accuracy %.0f%% quiet, %.0f%% "
                "under faults\n",
                "controlled channel (page faults)", "4 KiB page",
                "per fault", controlled * 100, controlled_n * 100);
    std::printf("%-34s %-10s %-12s accuracy %.0f%% quiet, %.0f%% "
                "under faults\n",
                "sneaky page monitoring (A bits)", "4 KiB page",
                "per poll", spm * 100, spm_n * 100);
    std::printf("%-34s %-10s %-12s line error %.1f%%  [noisy]\n",
                "Prime+Probe, single shot", "64 B line", "end of run",
                pp_error * 100);
    std::printf("%-34s %-10s %-12s verdict accuracy %.0f%%  [high noise]\n",
                "port contention, no replay", "instr.", "one window",
                port_one * 100);
    std::printf("%-34s %-10s %-12s verdict accuracy %.0f%%\n",
                "port contention + MicroScope", "instr.",
                "per replay", port_many * 100);
    std::printf("%-34s %-10s %-12s line error %.1f%% quiet, %.1f%% "
                "under faults\n",
                "cache probe + MicroScope", "64 B line",
                "single-step", us_error * 100, us_error_n * 100);

    std::printf("\nPaper's claim: only MicroScope reaches fine grain + high\n");
    std::printf("temporal resolution + no noise, in a single victim run.\n");
    return 0;
}
