/**
 * @file
 * Throughput benchmarks for the campaign runner:
 *
 *  1. **Sharding** (Fig.-10-style port-contention sweep) — the
 *     identical CampaignSpec (16 trials, each a full attack on its own
 *     Machine) at 1 worker and at 4 workers.  The aggregate (and every
 *     per-trial payload) must be bit-identical across worker counts —
 *     a hard failure if violated.  Trials are independent CPU-bound
 *     simulations, so speedup tracks the physical core count: on >= 4
 *     cores we demand >= 2x and fail otherwise; on fewer cores we
 *     report the measured value and the hardware bound.
 *  2. **Fast-forward A/B** (Fig.-11-shaped AES replay trials) — the
 *     same campaign with MachineConfig::fastForward off (cycle-by-
 *     cycle baseline) and on (event-driven clock jumps, DESIGN.md
 *     §10), plus the on-mode at 4 workers.  The determinism
 *     fingerprint must be bit-identical across all three runs — the
 *     elision contract — while the wall-clock speedup is measured and
 *     reported.  `--fast-forward={on,off}` pins both sections to one
 *     mode (and skips the A/B comparison).
 */

#include <cstdio>
#include <thread>

#include "attack/aes_attack.hh"
#include "attack/port_contention.hh"
#include "common/random.hh"
#include "exp/campaign.hh"
#include "exp/result_sink.hh"
#include "obs/cli.hh"

using namespace uscope;

namespace
{

constexpr std::size_t trials = 16;
constexpr std::size_t fig11Trials = 8;

exp::CampaignSpec
fig10StyleSpec(unsigned workers, bool fast_forward)
{
    exp::CampaignSpec spec;
    spec.name = workers == 1 ? "perf_campaign_serial"
                             : "perf_campaign_parallel";
    spec.trials = trials;
    spec.masterSeed = 42;
    spec.workers = workers;
    spec.body = [fast_forward](const exp::TrialContext &ctx) {
        attack::PortContentionConfig config;
        config.victimDivides = ctx.index % 2 == 1;
        config.samples = 800;
        config.replays = 30;
        config.threshold = 120;
        config.seed = ctx.seed;
        config.machine.fastForward = fast_forward;
        const attack::PortContentionResult result =
            attack::runPortContentionAttack(config);

        exp::TrialOutput out;
        for (Cycles sample : result.samples)
            out.metric.add(static_cast<double>(sample));
        out.metrics = result.metrics;
        out.simCycles = result.totalCycles;
        out.scope.episodes = 1;
        out.scope.totalReplays = result.replaysDone;
        out.payload = exp::json::Value::object()
                          .set("arm", config.victimDivides ? "div"
                                                           : "mul")
                          .set("above_threshold", result.aboveThreshold)
                          .set("inferred_divides",
                               result.inferredDivides);
        return out;
    };
    return spec;
}

/**
 * Fig.-11-shaped: one AES replay timeline per trial (random key and
 * plaintext), dominated by tuned page walks and long stalls — the
 * workload event-driven fast-forward exists for.
 */
exp::CampaignSpec
fig11StyleSpec(const char *name, unsigned workers, bool fast_forward)
{
    exp::CampaignSpec spec;
    spec.name = name;
    spec.trials = fig11Trials;
    spec.masterSeed = 42;
    spec.workers = workers;
    spec.body = [fast_forward](const exp::TrialContext &ctx) {
        attack::AesAttackConfig config;
        Rng rng(ctx.seed);
        for (unsigned i = 0; i < 16; ++i) {
            config.key[i] = static_cast<std::uint8_t>(rng.below(256));
            config.plaintext[i] =
                static_cast<std::uint8_t>(rng.below(256));
        }
        config.seed = ctx.seed;
        config.machine.fastForward = fast_forward;
        const attack::Fig11Result fig11 = attack::runFig11(config);

        exp::TrialOutput out;
        out.metric.add(fig11.matchesGroundTruth ? 1.0 : 0.0);
        out.metrics = fig11.metrics;
        exp::json::Value probes = exp::json::Value::array();
        for (const attack::LineProbe &probe : fig11.replays) {
            exp::json::Value row = exp::json::Value::array();
            for (Cycles latency : probe.latency)
                row.push(latency);
            probes.push(std::move(row));
        }
        out.payload = exp::json::Value::object()
                          .set("consistent",
                               fig11.consistentAcrossPrimedReplays)
                          .set("matches_ground_truth",
                               fig11.matchesGroundTruth)
                          .set("probe_latencies", std::move(probes));
        return out;
    };
    return spec;
}

/** Per-trial payloads + aggregate, minus wall-clock noise. */
std::string
deterministicFingerprint(const exp::CampaignResult &result)
{
    std::string fp = result.aggregate.toJson().dump();
    for (const exp::TrialResult &trial : result.trials) {
        fp += '\n';
        fp += trial.output.payload.dump();
        fp += trial.output.metrics.toJson().dump();
        fp += exp::json::Value(trial.output.simCycles).dump();
        fp += exp::trialStatusName(trial.status);
    }
    return fp;
}

void
report(const char *label, const exp::CampaignResult &result)
{
    std::printf("%-8s %u worker(s): %6.2fs wall, %5.1f trials/s, "
                "%6.1f Msim-cycles/s, %zu/%zu ok\n",
                label, result.workers, result.wallSeconds,
                result.trialsPerSecond(),
                result.simCyclesPerSecond() / 1e6, result.aggregate.ok,
                result.trialCount);
}

} // namespace

int
main(int argc, char **argv)
{
    const obs::BenchObsOptions opts = obs::parseBenchObsOptions(
        argc, argv, "bench-results/perf_campaign.trace.json");
    const unsigned hw = std::thread::hardware_concurrency();
    // Sharding section: fast-forward on unless pinned off, so the
    // throughput numbers reflect the production configuration.
    const bool fig10Ff = opts.fastForward.value_or(true);

    std::printf("==============================================================\n");
    std::printf("Campaign-runner throughput: Fig.-10-style sweep, %zu "
                "trials\n", trials);
    std::printf("hardware_concurrency: %u, fast-forward: %s\n", hw,
                fig10Ff ? "on" : "off");
    std::printf("==============================================================\n\n");

    exp::CampaignResult serial =
        exp::runCampaign(fig10StyleSpec(1, fig10Ff));
    report("serial", serial);
    exp::CampaignResult parallel =
        exp::runCampaign(fig10StyleSpec(4, fig10Ff));
    report("parallel", parallel);

    const double speedup =
        parallel.wallSeconds > 0.0
            ? serial.wallSeconds / parallel.wallSeconds
            : 0.0;
    std::printf("\nspeedup at 4 workers:   %.2fx\n", speedup);

    const bool identical = deterministicFingerprint(serial) ==
                           deterministicFingerprint(parallel);
    std::printf("aggregates bit-identical across worker counts: %s\n",
                identical ? "yes" : "NO");

    exp::JsonFileSink sink("bench-results", /*include_trials=*/false);
    sink.consume(serial);
    sink.consume(parallel);
    std::printf("campaign JSON: %s (+ serial twin)\n",
                sink.lastPath().c_str());

    bool ok = identical && serial.aggregate.ok == trials &&
              parallel.aggregate.ok == trials;
    if (hw >= 4) {
        std::printf("expectation (>= 4 cores): >= 2x  ->  %s\n",
                    speedup >= 2.0 ? "PASS" : "FAIL");
        ok = ok && speedup >= 2.0;
    } else {
        std::printf("only %u core(s) visible: parallel speedup is "
                    "hardware-bound near %ux; determinism is the "
                    "enforced check here\n",
                    hw, hw ? hw : 1);
    }

    std::printf("\n==============================================================\n");
    std::printf("Fast-forward A/B: Fig.-11-shaped AES replay trials, "
                "%zu trials\n", fig11Trials);
    std::printf("==============================================================\n\n");

    if (opts.fastForward) {
        // Pinned mode: measure it alone, no A/B comparison possible.
        const bool ff = *opts.fastForward;
        exp::CampaignResult pinned = exp::runCampaign(fig11StyleSpec(
            ff ? "perf_campaign_fig11_ff_on"
               : "perf_campaign_fig11_ff_off",
            1, ff));
        report(ff ? "ff=on" : "ff=off", pinned);
        sink.consume(pinned);
        std::printf("campaign JSON: %s\n", sink.lastPath().c_str());
        ok = ok && pinned.aggregate.ok == fig11Trials;
        return ok ? 0 : 1;
    }

    exp::CampaignResult ffOff = exp::runCampaign(
        fig11StyleSpec("perf_campaign_fig11_ff_off", 1, false));
    report("ff=off", ffOff);
    exp::CampaignResult ffOn = exp::runCampaign(
        fig11StyleSpec("perf_campaign_fig11_ff_on", 1, true));
    report("ff=on", ffOn);
    exp::CampaignResult ffOn4 = exp::runCampaign(
        fig11StyleSpec("perf_campaign_fig11_ff_on4", 4, true));
    report("ff=on", ffOn4);

    const double ffSpeedup = ffOn.wallSeconds > 0.0
                                 ? ffOff.wallSeconds / ffOn.wallSeconds
                                 : 0.0;
    std::printf("\nfast-forward speedup (1 worker): %.2fx\n", ffSpeedup);

    // The elision contract: identical results across modes AND across
    // worker counts within the fast mode.  Hard failure if violated;
    // the speedup is measured, not asserted (timing noise is not a
    // correctness signal).
    const std::string ffBaseline = deterministicFingerprint(ffOff);
    const bool ffIdentical =
        ffBaseline == deterministicFingerprint(ffOn) &&
        ffBaseline == deterministicFingerprint(ffOn4);
    std::printf("fingerprints bit-identical across modes and worker "
                "counts: %s\n",
                ffIdentical ? "yes" : "NO");

    sink.consume(ffOff);
    sink.consume(ffOn);
    sink.consume(ffOn4);
    std::printf("campaign JSON: %s (+ off/on twins)\n",
                sink.lastPath().c_str());

    ok = ok && ffIdentical && ffOff.aggregate.ok == fig11Trials &&
         ffOn.aggregate.ok == fig11Trials &&
         ffOn4.aggregate.ok == fig11Trials;
    return ok ? 0 : 1;
}
