/**
 * @file
 * Throughput benchmarks for the campaign runner:
 *
 *  1. **Sharding** (Fig.-10-style port-contention sweep) — the
 *     identical CampaignSpec (16 trials, each a full attack on its own
 *     Machine) at 1 worker and at 4 workers.  The aggregate (and every
 *     per-trial payload) must be bit-identical across worker counts —
 *     a hard failure if violated.  Trials are independent CPU-bound
 *     simulations, so speedup tracks the physical core count: on >= 4
 *     cores we demand >= 2x and fail otherwise; on fewer cores we
 *     report the measured value and the hardware bound.
 *  2. **Fast-forward A/B** (Fig.-11-shaped AES replay trials) — the
 *     same campaign with MachineConfig::fastForward off (cycle-by-
 *     cycle baseline) and on (event-driven clock jumps, DESIGN.md
 *     §10), plus the on-mode at 4 workers.  The determinism
 *     fingerprint must be bit-identical across all three runs — the
 *     elision contract — while the wall-clock speedup is measured and
 *     reported.  `--fast-forward={on,off}` pins both sections to one
 *     mode (and skips the A/B comparison).
 *  3. **Prefix-snapshot A/B** (warmup-heavy Fig.-11-shaped arm,
 *     DESIGN.md §12) — each trial needs the same expensive prefix
 *     (enclave build, victim codegen, warm decryptions) before its
 *     private replay episode.  The baseline re-runs the prefix cold
 *     per trial; the fast arm runs it once per worker, snapshots, and
 *     forks the snapshot per trial with per-trial reseeding
 *     (CampaignSpec::warmup + prefixCache + machinePool).  The
 *     determinism fingerprints must be byte-identical across arms — a
 *     hard failure otherwise — and the measured speedup lands in
 *     bench-results/BENCH_prefix.json (CI fails the A/B if the fast
 *     arm is not at least as fast; the paper-repro target is >= 2x).
 *     `--prefix-cache={on,off}` / `--pool={on,off}` pin one arm.
 *  4. **Service A/B** (DESIGN.md §13) — the same fig11_aes_replay
 *     request executed in-process (exp::runCampaign) and through a
 *     live uscope-campaignd at 1, 2, and 4 worker *processes*.  Every
 *     service fingerprint must equal the in-process one — a hard
 *     failure otherwise — and the protocol/process-distribution
 *     overhead at 1 worker is gated (<= 1.5x in-process wall time).
 *     Results land in bench-results/BENCH_svc.json.  `--svc=off`
 *     skips the section (e.g. sandboxes without AF_UNIX sockets).
 *  5. **Observability A/B** (DESIGN.md §14) — the same
 *     fig11_aes_replay request at --obs=off/metrics/trace/full.
 *     Observation must never perturb results: all four deterministic
 *     fingerprints must be byte-identical (hard failure), and the
 *     wall-clock overhead of --obs=metrics over --obs=off is gated at
 *     <= 1.10x.  The trace arms spill per-trial event logs and the
 *     section merges them (obs::mergeChromeTraces) as a smoke test of
 *     the cross-process aggregation path.  Results land in
 *     bench-results/BENCH_obs.json; `--obs=LEVEL` pins one arm.
 *  6. **Differential-replay A/B** (DESIGN.md §15) — a denoise-shaped
 *     arm: each trial re-enters one confidence-2 episode several
 *     times (fresh noise seed per iteration, majority vote across
 *     them, §4.3 of the paper).  The baseline restores the pre-arm
 *     snapshot and re-simulates the whole prefix (per-trial warm
 *     decryption + arming run + the replay-1 calibration work) before
 *     every iteration; the fast arm COW-forks the machine at the
 *     replay handle once (Recipe::differentialReplay +
 *     Microscope::restoreEpisode) and restores that per iteration.
 *     The determinism fingerprints must be byte-identical across arms
 *     — a hard failure otherwise — and the measured speedup lands in
 *     bench-results/BENCH_diffreplay.json (CI fails if the fast arm
 *     is not at least break-even; the paper-repro target is >= 1.5x).
 *     `--diffreplay={on,off}` pins one arm.
 *  7. **Batched-replay A/B** (DESIGN.md §17) — the section-6 arm
 *     widened to N=12 re-entries per episode, run three ways: cold
 *     resimulation, per-sibling diffreplay restores, and one
 *     ms::runReplayBatch lockstep batch (single full restore + journal
 *     rewinds).  All three fingerprints must be byte-identical (hard
 *     failure), the batch must beat per-sibling break-even (CI gate;
 *     paper-repro target >= 1.5x), and a quiet/chaos x ff x workers
 *     1/2/4 identity matrix revalidates the contract in every
 *     configuration.  Results land in
 *     bench-results/BENCH_batchreplay.json; `--batch-replay={on,off}`
 *     pins one pinned arm (batched vs per-sibling) whose fingerprint
 *     files CI `cmp`s.
 *
 * `--section=N` runs exactly one numbered section (1 sharding, 2
 * fast-forward, 3 prefix, 4 service, 5 obs, 6 diffreplay, 7
 * batchreplay) — what the CI smoke jobs use to parallelize and to
 * scope failures.
 */

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "attack/aes_attack.hh"
#include "attack/port_contention.hh"
#include "common/random.hh"
#include "core/microscope.hh"
#include "core/replay_batch.hh"
#include "fault/plan.hh"
#include "crypto/aes.hh"
#include "crypto/aes_codegen.hh"
#include "exp/campaign.hh"
#include "exp/result_sink.hh"
#include "obs/chrome_trace.hh"
#include "obs/cli.hh"
#include "svc/client.hh"
#include "svc/daemon.hh"
#include "svc/registry.hh"
#include "svc/worker.hh"

using namespace uscope;

namespace
{

constexpr std::size_t trials = 16;
constexpr std::size_t fig11Trials = 8;

exp::CampaignSpec
fig10StyleSpec(unsigned workers, bool fast_forward)
{
    exp::CampaignSpec spec;
    spec.name = workers == 1 ? "perf_campaign_serial"
                             : "perf_campaign_parallel";
    spec.trials = trials;
    spec.masterSeed = 42;
    spec.workers = workers;
    spec.body = [fast_forward](const exp::TrialContext &ctx) {
        attack::PortContentionConfig config;
        config.victimDivides = ctx.index % 2 == 1;
        config.samples = 800;
        config.replays = 30;
        config.threshold = 120;
        config.seed = ctx.seed;
        config.machine.fastForward = fast_forward;
        const attack::PortContentionResult result =
            attack::runPortContentionAttack(config);

        exp::TrialOutput out;
        for (Cycles sample : result.samples)
            out.metric.add(static_cast<double>(sample));
        out.metrics = result.metrics;
        out.simCycles = result.totalCycles;
        out.scope.episodes = 1;
        out.scope.totalReplays = result.replaysDone;
        out.payload = exp::json::Value::object()
                          .set("arm", config.victimDivides ? "div"
                                                           : "mul")
                          .set("above_threshold", result.aboveThreshold)
                          .set("inferred_divides",
                               result.inferredDivides);
        return out;
    };
    return spec;
}

/**
 * Fig.-11-shaped: one AES replay timeline per trial (random key and
 * plaintext), dominated by tuned page walks and long stalls — the
 * workload event-driven fast-forward exists for.
 */
exp::CampaignSpec
fig11StyleSpec(const char *name, unsigned workers, bool fast_forward)
{
    exp::CampaignSpec spec;
    spec.name = name;
    spec.trials = fig11Trials;
    spec.masterSeed = 42;
    spec.workers = workers;
    spec.body = [fast_forward](const exp::TrialContext &ctx) {
        attack::AesAttackConfig config;
        Rng rng(ctx.seed);
        for (unsigned i = 0; i < 16; ++i) {
            config.key[i] = static_cast<std::uint8_t>(rng.below(256));
            config.plaintext[i] =
                static_cast<std::uint8_t>(rng.below(256));
        }
        config.seed = ctx.seed;
        config.machine.fastForward = fast_forward;
        const attack::Fig11Result fig11 = attack::runFig11(config);

        exp::TrialOutput out;
        out.metric.add(fig11.matchesGroundTruth ? 1.0 : 0.0);
        out.metrics = fig11.metrics;
        exp::json::Value probes = exp::json::Value::array();
        for (const attack::LineProbe &probe : fig11.replays) {
            exp::json::Value row = exp::json::Value::array();
            for (Cycles latency : probe.latency)
                row.push(latency);
            probes.push(std::move(row));
        }
        out.payload = exp::json::Value::object()
                          .set("consistent",
                               fig11.consistentAcrossPrimedReplays)
                          .set("matches_ground_truth",
                               fig11.matchesGroundTruth)
                          .set("probe_latencies", std::move(probes));
        return out;
    };
    return spec;
}

// Fingerprint + hash shapes live in the library now (shared with the
// campaign service daemon and tests/test_fastforward).
using exp::deterministicFingerprint;
using exp::fnv1aHex;

void
report(const char *label, const exp::CampaignResult &result)
{
    std::printf("%-8s %u worker(s): %6.2fs wall, %5.1f trials/s, "
                "%6.1f Msim-cycles/s, %zu/%zu ok\n",
                label, result.workers, result.wallSeconds,
                result.trialsPerSecond(),
                result.simCyclesPerSecond() / 1e6, result.aggregate.ok,
                result.trialCount);
}

// ---------------------------------------------------------------------
// Section 3: prefix-snapshot A/B (DESIGN.md §12).
// ---------------------------------------------------------------------

constexpr std::size_t prefixTrials = 12;
/** Warm decryptions inside the prefix — what makes it warmup-heavy. */
constexpr unsigned prefixWarmRuns = 4;
constexpr Cycles prefixHitThreshold = 100;

/** One fixed campaign-wide AES key (the warmup is shared by every
 *  trial, so it cannot depend on a trial seed). */
constexpr std::array<std::uint8_t, 16> prefixKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

/**
 * The warmup artifact: every handle the prefix mints, valid in each
 * fork exactly because forks share the warmed-up machine state.  The
 * enclave pages are deliberately left unsealed — each trial loads its
 * own ciphertext into the (COW-copied) input page.
 */
struct PrefixRig
{
    os::Pid pid = 0;
    crypto::AesKey decKey;
    crypto::AesKey encKey;
    crypto::AesVictimLayout layout;
    std::array<PAddr, 5> tablePa{};
    std::shared_ptr<const cpu::Program> program;

    PrefixRig()
        : decKey(prefixKey.data(), 128, true),
          encKey(prefixKey.data(), 128, false)
    {
    }
};

/** The shared §12 warmup: build the AES enclave rig and warm-decrypt
 *  (used by the prefix-snapshot and differential-replay sections). */
std::shared_ptr<const void>
aesRigWarmup(os::Machine &m)
{
    auto rig = std::make_shared<PrefixRig>();
    os::Kernel &kernel = m.kernel();
    rig->pid = kernel.createProcess("aes-enclave");
    rig->layout = crypto::setupAesVictim(kernel, rig->pid, rig->decKey);
    for (unsigned t = 0; t < 5; ++t)
        rig->tablePa[t] =
            *kernel.translate(rig->pid, rig->layout.tableVa(t));
    rig->program = std::make_shared<const cpu::Program>(
        crypto::buildAesDecryptProgram(rig->layout));

    // The expensive part: full warm decryptions of a fixed block,
    // leaving the TLB/PWC/predictor/caches trained the way a
    // long-running victim's machine would be.
    std::uint8_t ct[16];
    const std::uint8_t warm_plain[16] = {};
    crypto::encryptBlock(rig->encKey, warm_plain, ct);
    crypto::loadCiphertext(kernel, rig->pid, rig->layout, ct);
    for (unsigned run = 0; run < prefixWarmRuns; ++run) {
        kernel.startOnContext(rig->pid, 0, rig->program);
        m.runUntilHalted(0, 50'000'000);
    }
    return rig;
}

exp::CampaignSpec
prefixSpec(const char *name, bool prefix_cache, bool pool)
{
    exp::CampaignSpec spec;
    spec.name = name;
    spec.trials = prefixTrials;
    spec.masterSeed = 42;
    spec.workers = 1;
    spec.prefixCache = prefix_cache;
    spec.machinePool = pool;
    // The fingerprint rides on the aggregate (plus payloads); the
    // per-trial component-metric blocks are pure serialization weight.
    spec.perTrialMetrics = false;

    spec.warmup = aesRigWarmup;

    spec.body = [](const exp::TrialContext &ctx) {
        os::Machine &m = *ctx.fork;
        const auto *rig =
            static_cast<const PrefixRig *>(ctx.warmupData);

        // Per-trial secret input, drawn from the trial stream.
        Rng rng(ctx.seed);
        std::uint8_t plaintext[16], ct[16];
        for (unsigned i = 0; i < 16; ++i)
            plaintext[i] = static_cast<std::uint8_t>(rng.below(256));
        crypto::encryptBlock(rig->encKey, plaintext, ct);
        crypto::loadCiphertext(m.kernel(), rig->pid, rig->layout, ct);

        const auto probeTable = [&](unsigned table) {
            attack::LineProbe probe;
            for (unsigned line = 0; line < 16; ++line) {
                const os::ProbeResult r = m.kernel().timedProbePhys(
                    rig->tablePa[table] + line * lineSize);
                probe.latency[line] = r.latency;
                probe.level[line] = r.level;
            }
            return probe;
        };
        const auto primeTables = [&] {
            for (unsigned t = 0; t < 4; ++t)
                m.kernel().primeRange(rig->tablePa[t], 1024);
        };

        std::vector<attack::LineProbe> replays;
        ms::Microscope scope(m);
        ms::AttackRecipe recipe;
        recipe.victim = rig->pid;
        recipe.replayHandle = rig->layout.td0;
        recipe.pivot = rig->layout.rk;
        recipe.confidence = 3;
        recipe.maxEpisodes = 1;
        recipe.walkPlan = ms::PageWalkPlan::longest();
        recipe.onReplay = [&](const ms::ReplayEvent &) {
            replays.push_back(probeTable(1));
            return true;
        };
        recipe.beforeResume = [&](const ms::ReplayEvent &) {
            primeTables();
        };
        scope.setRecipe(std::move(recipe));

        primeTables();
        scope.arm();
        m.kernel().startOnContext(rig->pid, 0, rig->program);
        m.runUntilHalted(0, 50'000'000);
        scope.disarm();

        // Ground truth + majority vote over the primed replays, as in
        // the Figure-11 run.
        std::set<unsigned> expected;
        const crypto::DecAccessTrace trace =
            crypto::traceDecryption(rig->decKey, ct);
        for (std::uint8_t index : trace.indices[0][1])
            expected.insert(crypto::tableLineOf(index));
        std::array<unsigned, 16> votes{};
        std::size_t primed = replays.size() > 1 ? replays.size() - 1
                                                : 0;
        for (std::size_t i = 1; i < replays.size(); ++i)
            for (unsigned line :
                 replays[i].hitLines(prefixHitThreshold))
                ++votes[line];
        std::set<unsigned> majority;
        for (unsigned line = 0; line < 16; ++line)
            if (votes[line] * 2 > primed)
                majority.insert(line);
        const bool matches = primed > 0 && majority == expected;

        exp::TrialOutput out;
        out.metric.add(matches ? 1.0 : 0.0);
        out.simCycles = m.cycle() - ctx.forkCycle;
        out.scope.episodes = 1;
        out.scope.totalReplays = scope.stats().totalReplays;
        obs::MetricRegistry registry;
        m.exportMetrics(registry);
        scope.exportMetrics(registry);
        out.metrics = registry.snapshot();

        exp::json::Value probes = exp::json::Value::array();
        for (const attack::LineProbe &probe : replays) {
            exp::json::Value row = exp::json::Value::array();
            for (Cycles latency : probe.latency)
                row.push(latency);
            probes.push(std::move(row));
        }
        out.payload = exp::json::Value::object()
                          .set("matches_ground_truth", matches)
                          .set("probe_latencies", std::move(probes));
        return out;
    };
    return spec;
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

/** Run section 3; returns false on a hard failure. */
bool
prefixSection(std::optional<bool> prefix_cache, std::optional<bool> pool,
              exp::JsonFileSink &sink)
{
    std::printf("\n==============================================================\n");
    std::printf("Prefix-snapshot A/B: warmup-heavy Fig.-11-shaped arm, "
                "%zu trials, %u warm runs\n",
                prefixTrials, prefixWarmRuns);
    std::printf("==============================================================\n\n");

    if (prefix_cache || pool) {
        // Pinned mode: measure one configuration, no A/B.
        const bool cache = prefix_cache.value_or(true);
        const bool pooled = pool.value_or(true);
        exp::CampaignResult pinned =
            exp::runCampaign(prefixSpec("perf_campaign_prefix_pinned",
                                        cache, pooled));
        std::printf("prefix-cache=%s pool=%s:\n", cache ? "on" : "off",
                    pooled ? "on" : "off");
        report("pinned", pinned);
        sink.consume(pinned);
        writeTextFile(cache ? "bench-results/BENCH_prefix_fp_on.txt"
                            : "bench-results/BENCH_prefix_fp_off.txt",
                      deterministicFingerprint(pinned));
        return pinned.aggregate.ok == prefixTrials;
    }

    exp::CampaignResult off = exp::runCampaign(
        prefixSpec("perf_campaign_prefix_off", false, false));
    report("cold", off);
    exp::CampaignResult on = exp::runCampaign(
        prefixSpec("perf_campaign_prefix_on", true, true));
    report("forked", on);

    const double speedup =
        on.wallSeconds > 0.0 ? off.wallSeconds / on.wallSeconds : 0.0;
    std::printf("\nprefix-cache speedup (1 worker): %.2fx "
                "(paper-repro target: >= 2x)\n", speedup);

    // The fork contract: a forked trial is byte-identical to a cold
    // trial that reseeds at the same point.  Hard failure if violated.
    const std::string fpOff = deterministicFingerprint(off);
    const std::string fpOn = deterministicFingerprint(on);
    const bool identical = fpOff == fpOn;
    std::printf("fingerprints byte-identical across arms: %s\n",
                identical ? "yes" : "NO");

    sink.consume(off);
    sink.consume(on);
    writeTextFile("bench-results/BENCH_prefix_fp_off.txt", fpOff);
    writeTextFile("bench-results/BENCH_prefix_fp_on.txt", fpOn);

    const exp::json::Value bench =
        exp::json::Value::object()
            .set("bench", "perf_campaign_prefix")
            .set("config",
                 exp::json::Value::object()
                     .set("trials", std::uint64_t{prefixTrials})
                     .set("warm_runs", std::uint64_t{prefixWarmRuns})
                     .set("workers", std::uint64_t{1})
                     .set("master_seed", std::uint64_t{42}))
            .set("trials_per_sec", on.trialsPerSecond())
            .set("trials_per_sec_off", off.trialsPerSecond())
            .set("speedup_vs_off", speedup)
            .set("fingerprints_identical", identical)
            .set("fingerprint", fnv1aHex(fpOn));
    writeTextFile("bench-results/BENCH_prefix.json", bench.dump());
    std::printf("bench JSON: bench-results/BENCH_prefix.json "
                "(+ fingerprint files)\n");

    // CI gate: determinism is absolute; the speedup must never regress
    // below break-even (the >= 2x target is tracked via the JSON).
    return identical && speedup >= 1.0 &&
           off.aggregate.ok == prefixTrials &&
           on.aggregate.ok == prefixTrials;
}

// ---------------------------------------------------------------------
// Section 4: in-process vs service A/B (DESIGN.md §13).
// ---------------------------------------------------------------------

constexpr std::size_t svcTrials = 16;
/** Protocol + process-distribution overhead budget at 1 worker. */
constexpr double svcOverheadGate = 1.5;

struct SvcArm
{
    unsigned workers = 0;
    double wallSeconds = 0.0;
    std::string fingerprint;
    bool ok = false;
};

/** One daemon lifecycle: spawn, submit, measure, shut down. */
SvcArm
runServiceArm(const svc::CampaignRequest &request, unsigned workers)
{
    static int counter = 0;
    svc::DaemonConfig config;
    config.socketPath = "/tmp/uscope_perf_svc_" +
                        std::to_string(::getpid()) + "_" +
                        std::to_string(counter++);
    config.workers = workers;
    std::thread daemon_thread([config] {
        svc::Daemon daemon(config);
        daemon.run();
    });

    SvcArm arm;
    arm.workers = workers;
    svc::Client client(config.socketPath);
    if (client.connected() && client.ping()) {
        // The clock starts after the workers are up: the arm measures
        // steady-state dispatch overhead, not one-time spawn cost.
        const auto start = std::chrono::steady_clock::now();
        const svc::SubmitResult result = client.submit(request);
        arm.wallSeconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
        arm.ok = result.ok;
        arm.fingerprint = result.fingerprint;
    }
    client.shutdownDaemon();
    daemon_thread.join();
    return arm;
}

/** Run section 4; returns false on a hard failure. */
bool
svcSection(std::optional<bool> svc_flag)
{
    std::printf("\n==============================================================\n");
    std::printf("Service A/B: fig11_aes_replay through uscope-campaignd, "
                "%zu trials\n", svcTrials);
    std::printf("==============================================================\n\n");

    if (svc_flag && !*svc_flag) {
        std::printf("skipped (--svc=off)\n");
        return true;
    }

    svc::CampaignRequest request;
    request.recipe = "fig11_aes_replay";
    request.trials = svcTrials;
    request.masterSeed = 42;

    // The reference arm: the identical request through the identical
    // registry, executed by the in-process runner.
    exp::CampaignResult inproc =
        exp::runCampaign(svc::buildSpec(request));
    report("inproc", inproc);
    const std::string reference =
        fnv1aHex(deterministicFingerprint(inproc));

    bool ok = inproc.aggregate.ok == svcTrials;
    double overhead = 0.0;
    double bestTrialsPerSec = 0.0;
    exp::json::Value arms = exp::json::Value::array();
    for (unsigned workers : {1u, 2u, 4u}) {
        const SvcArm arm = runServiceArm(request, workers);
        const bool match = arm.ok && arm.fingerprint == reference;
        const double tps =
            arm.wallSeconds > 0.0 ? svcTrials / arm.wallSeconds : 0.0;
        std::printf("service  %u worker(s): %6.2fs wall, %5.1f "
                    "trials/s, fingerprint %s (%s)\n",
                    workers, arm.wallSeconds, tps,
                    arm.fingerprint.c_str(),
                    match ? "match" : "MISMATCH");
        if (workers == 1 && inproc.wallSeconds > 0.0)
            overhead = arm.wallSeconds / inproc.wallSeconds;
        bestTrialsPerSec = std::max(bestTrialsPerSec, tps);
        arms.push(exp::json::Value::object()
                      .set("workers", workers)
                      .set("wall_seconds", arm.wallSeconds)
                      .set("trials_per_sec", tps)
                      .set("fingerprint_match", match));
        ok = ok && match;
    }

    std::printf("\nservice overhead vs in-process (1 worker): %.2fx "
                "(gate: <= %.1fx)\n", overhead, svcOverheadGate);

    const exp::json::Value bench =
        exp::json::Value::object()
            .set("bench", "perf_campaign_svc")
            .set("config",
                 exp::json::Value::object()
                     .set("recipe", "fig11_aes_replay")
                     .set("trials", std::uint64_t{svcTrials})
                     .set("master_seed", std::uint64_t{42}))
            .set("trials_per_sec", bestTrialsPerSec)
            .set("overhead_vs_inprocess", overhead)
            .set("fingerprints_identical", ok)
            .set("fingerprint", reference)
            .set("arms", std::move(arms));
    writeTextFile("bench-results/BENCH_svc.json", bench.dump());
    std::printf("bench JSON: bench-results/BENCH_svc.json\n");

    // Determinism is absolute; the overhead gate keeps the wire +
    // checkpoint machinery honest (trials dominate by construction).
    return ok && overhead > 0.0 && overhead <= svcOverheadGate;
}

// ---------------------------------------------------------------------
// Section 5: observability A/B (DESIGN.md §14).
// ---------------------------------------------------------------------

constexpr std::size_t obsTrials = 8;
/** Phase profiling + metric export must stay effectively free. */
constexpr double obsOverheadGate = 1.10;

struct ObsArm
{
    const char *name = "";
    double wallSeconds = 0.0;
    double trialsPerSec = 0.0;
    std::string fingerprint;
    bool hasProf = false;
    bool ok = false;
};

/** The fig11_aes_replay recipe at one obs level, in-process. */
ObsArm
runObsArm(obs::ObsLevel level, const std::string &spill_dir)
{
    svc::CampaignRequest request;
    request.recipe = "fig11_aes_replay";
    request.name = std::string("perf_campaign_obs_") +
                   obs::obsLevelName(level);
    request.trials = obsTrials;
    request.masterSeed = 42;
    request.obs = level;
    exp::CampaignSpec spec = svc::buildSpec(request);
    spec.workers = 1;
    spec.traceSpillDir = spill_dir; // runner ignores it below Trace
    const exp::CampaignResult result = exp::runCampaign(spec);

    ObsArm arm;
    arm.name = obs::obsLevelName(level);
    arm.wallSeconds = result.wallSeconds;
    arm.trialsPerSec = result.trialsPerSecond();
    arm.fingerprint = deterministicFingerprint(result);
    arm.hasProf = !result.prof.empty();
    arm.ok = result.aggregate.ok == obsTrials;
    return arm;
}

/** Run section 5; returns false on a hard failure. */
bool
obsSection(std::optional<obs::ObsLevel> pinned)
{
    std::printf("\n==============================================================\n");
    std::printf("Observability A/B: fig11_aes_replay at "
                "--obs=off/metrics/trace/full, %zu trials\n",
                obsTrials);
    std::printf("==============================================================\n\n");

    const std::string spillBase =
        "bench-results/perf_campaign_obs_spills";

    if (pinned) {
        std::error_code ec;
        std::filesystem::remove_all(spillBase, ec);
        const ObsArm arm = runObsArm(
            *pinned, *pinned >= obs::ObsLevel::Trace ? spillBase
                                                     : std::string());
        std::printf("obs=%-8s %6.2fs wall, %5.1f trials/s, "
                    "fingerprint %s\n",
                    arm.name, arm.wallSeconds, arm.trialsPerSec,
                    fnv1aHex(arm.fingerprint).c_str());
        return arm.ok;
    }

    std::vector<ObsArm> arms;
    for (const obs::ObsLevel level :
         {obs::ObsLevel::Off, obs::ObsLevel::Metrics,
          obs::ObsLevel::Trace, obs::ObsLevel::Full}) {
        std::string dir;
        if (level >= obs::ObsLevel::Trace) {
            dir = spillBase + "_" +
                  std::string(obs::obsLevelName(level));
            std::error_code ec;
            std::filesystem::remove_all(dir, ec);
        }
        arms.push_back(runObsArm(level, dir));
        const ObsArm &arm = arms.back();
        std::printf("obs=%-8s %6.2fs wall, %5.1f trials/s, prof %s, "
                    "fingerprint %s\n",
                    arm.name, arm.wallSeconds, arm.trialsPerSec,
                    arm.hasProf ? "yes" : "no",
                    fnv1aHex(arm.fingerprint).c_str());
    }

    // The invariance contract: the dial NEVER changes results.
    bool identical = true, ok = true;
    for (const ObsArm &arm : arms) {
        identical = identical && arm.fingerprint == arms[0].fingerprint;
        ok = ok && arm.ok;
    }
    std::printf("\nfingerprints byte-identical across obs levels: "
                "%s\n", identical ? "yes" : "NO");

    // Prof must be present exactly when the dial says so.
    const bool profGated = !arms[0].hasProf && arms[1].hasProf &&
                           arms[2].hasProf && arms[3].hasProf;
    if (!profGated)
        std::printf("prof presence does not match the obs dial\n");

    const double overhead = arms[0].wallSeconds > 0.0
                                ? arms[1].wallSeconds /
                                      arms[0].wallSeconds
                                : 0.0;
    std::printf("metrics overhead vs off: %.3fx (gate: <= %.2fx)\n",
                overhead, obsOverheadGate);

    // Merge the trace arm's spills — the cross-process aggregation
    // path exercised in-process (worker 0 only, one pid lane).
    std::vector<obs::TraceSpill> spills =
        obs::loadTraceSpills(spillBase + "_trace");
    const std::size_t spillCount = spills.size();
    const std::string mergedPath =
        "bench-results/perf_campaign_obs.trace.json";
    if (!spills.empty())
        writeTextFile(mergedPath,
                      obs::mergeChromeTraces(std::move(spills)));
    std::printf("trace arm spilled %zu/%zu trials; merged trace: "
                "%s\n",
                spillCount, obsTrials,
                spillCount ? mergedPath.c_str() : "(none)");

    exp::json::Value armsJson = exp::json::Value::array();
    for (const ObsArm &arm : arms)
        armsJson.push(exp::json::Value::object()
                          .set("obs", arm.name)
                          .set("wall_seconds", arm.wallSeconds)
                          .set("trials_per_sec", arm.trialsPerSec)
                          .set("has_prof", arm.hasProf)
                          .set("fingerprint_match",
                               arm.fingerprint == arms[0].fingerprint));
    const exp::json::Value bench =
        exp::json::Value::object()
            .set("bench", "perf_campaign_obs")
            .set("config",
                 exp::json::Value::object()
                     .set("recipe", "fig11_aes_replay")
                     .set("trials", std::uint64_t{obsTrials})
                     .set("master_seed", std::uint64_t{42}))
            .set("overhead_metrics_vs_off", overhead)
            .set("overhead_gate", obsOverheadGate)
            .set("fingerprints_identical", identical)
            .set("fingerprint", fnv1aHex(arms[0].fingerprint))
            .set("trace_spills", std::uint64_t{spillCount})
            .set("arms", std::move(armsJson));
    writeTextFile("bench-results/BENCH_obs.json", bench.dump());
    std::printf("bench JSON: bench-results/BENCH_obs.json\n");

    return ok && identical && profGated && spillCount == obsTrials &&
           overhead > 0.0 && overhead <= obsOverheadGate;
}

// ---------------------------------------------------------------------
// Section 6: differential-replay A/B (DESIGN.md §15).
// ---------------------------------------------------------------------

constexpr std::size_t diffTrials = 8;
/** Episode re-entries per trial — the §4.3 denoise vote width. */
constexpr std::uint64_t diffIterations = 5;
constexpr Cycles diffRunBudget = 50'000'000;

/** One arm of the differential/batched-replay benches (sections 6/7). */
struct DiffArm
{
    const char *name = "perf_campaign_diffreplay";
    /** Episode-snapshot re-entry (§15) vs cold prefix re-simulation. */
    bool differential = true;
    /** CampaignSpec::batchReplays: non-zero drives the sibling
     *  windows through ms::runReplayBatch (§17). */
    std::uint64_t batch = 0;
    unsigned workers = 1;
    /** Explicit machine knobs; both unset = the default MachineConfig
     *  (no machineFactory), which is what section 6 always measured. */
    std::optional<bool> fastForward;
    std::optional<bool> chaos;
    std::size_t trials = diffTrials;
    std::uint64_t iterations = diffIterations;
};

/**
 * Denoise-shaped trial: one confidence-2 episode (replay 1 is the
 * calibration prefix, replay 2 the measured window), re-entered
 * arm.iterations times with a fresh noise seed each, line hits decided
 * by majority vote.  With arm.differential the re-entry restores the
 * engine's episode snapshot — per-sibling restoreEpisode calls, or one
 * ms::runReplayBatch when arm.batch is set; without it, the pre-arm
 * snapshot is restored and the prefix — per-trial warm decryption,
 * priming, the arming run up to the replay-1 re-arm — re-simulated
 * from scratch.  All three must produce bit-identical results.
 */
exp::CampaignSpec
diffReplaySpec(const DiffArm &arm)
{
    exp::CampaignSpec spec;
    spec.name = arm.name;
    spec.trials = arm.trials;
    spec.masterSeed = 42;
    spec.workers = arm.workers;
    spec.prefixCache = true;
    spec.machinePool = true;
    spec.perTrialMetrics = false;
    spec.batchReplays = arm.batch;
    spec.warmup = aesRigWarmup;
    if (arm.fastForward || arm.chaos) {
        const bool ff = arm.fastForward.value_or(true);
        const bool noisy = arm.chaos.value_or(false);
        spec.machineFactory = [ff, noisy](const exp::TrialContext &) {
            os::MachineConfig config;
            config.fastForward = ff;
            config.fault = noisy ? fault::FaultPlan::chaos()
                                 : fault::FaultPlan{};
            return config;
        };
    }

    const bool differential = arm.differential;
    const std::uint64_t iterations = arm.iterations;
    spec.body = [differential, iterations](const exp::TrialContext &ctx) {
        os::Machine &m = *ctx.fork;
        const auto *rig =
            static_cast<const PrefixRig *>(ctx.warmupData);

        // Per-trial secret input, drawn from the trial stream; loaded
        // once, before the pre-arm snapshot, so both arms see it.
        Rng rng(ctx.seed);
        std::uint8_t plaintext[16], ct[16];
        for (unsigned i = 0; i < 16; ++i)
            plaintext[i] = static_cast<std::uint8_t>(rng.below(256));
        crypto::encryptBlock(rig->encKey, plaintext, ct);
        crypto::loadCiphertext(m.kernel(), rig->pid, rig->layout, ct);

        const auto probeTable = [&](unsigned table) {
            attack::LineProbe probe;
            for (unsigned line = 0; line < 16; ++line) {
                const os::ProbeResult r = m.kernel().timedProbePhys(
                    rig->tablePa[table] + line * lineSize);
                probe.latency[line] = r.latency;
                probe.level[line] = r.level;
            }
            return probe;
        };
        const auto primeTables = [&] {
            for (unsigned t = 0; t < 4; ++t)
                m.kernel().primeRange(rig->tablePa[t], 1024);
        };

        std::vector<attack::LineProbe> windows;
        ms::Microscope scope(m);
        ms::AttackRecipe recipe;
        recipe.victim = rig->pid;
        recipe.replayHandle = rig->layout.td0;
        recipe.confidence = 2;
        recipe.maxEpisodes = 1;
        recipe.walkPlan = ms::PageWalkPlan::longest();
        recipe.differentialReplay = differential;
        recipe.onReplay = [&](const ms::ReplayEvent &event) {
            if (event.replayIndex == 1) {
                // Heavy calibration pass, prefix-only: survey every
                // table, then re-prime — the work the fast arm's
                // snapshot captures instead of re-executing.
                for (unsigned t = 0; t < 4; ++t)
                    probeTable(t);
            } else {
                windows.push_back(probeTable(1));
            }
            return true;
        };
        recipe.beforeResume = [&](const ms::ReplayEvent &) {
            primeTables();
        };
        scope.setRecipe(std::move(recipe));

        // Pre-arm snapshot: the resimulating arm rewinds here before
        // every iteration.  The differential arms never read it, and
        // a snapshot has no semantic effect (PhysMem share counters
        // are stripped from fingerprints), so they skip its cost.
        os::Snapshot pre;
        ms::EpisodeState preState;
        if (!differential) {
            pre = m.snapshot();
            preState = ms::EpisodeState{scope.armed(),
                                        scope.replaysThisEpisode(),
                                        scope.stats()};
        }
        const auto runPrefix = [&]() {
            // Per-trial warm decryption of this trial's ciphertext —
            // the calibration run a denoise campaign performs before
            // opening the episode, and the bulk of the prefix cost.
            m.kernel().startOnContext(rig->pid, 0, rig->program);
            if (!m.runUntilHalted(0, diffRunBudget))
                throw std::runtime_error("warm run never halted");
            primeTables();
            scope.arm();
            m.kernel().startOnContext(rig->pid, 0, rig->program);
            const bool reached = m.runUntil(
                [&]() {
                    return differential
                               ? scope.episodeSnapshotPending()
                               : scope.replaysThisEpisode() >= 1;
                },
                diffRunBudget);
            if (!reached)
                throw std::runtime_error(
                    "prefix never reached the re-arm");
        };
        runPrefix();
        if (differential)
            scope.takeEpisodeSnapshot();

        if (differential && ctx.batchReplays != 0) {
            // Batched lockstep path (§17): one full restore + journal
            // rewinds, same window stop predicate as the loop below so
            // every sibling ends at the same cycle.
            ms::ReplayBatchConfig batch;
            batch.trialSeed = ctx.seed;
            batch.iterations = iterations;
            batch.runBudget = diffRunBudget;
            batch.windowDone = [&]() { return !scope.armed(); };
            batch.prof = ctx.prof;
            ms::runReplayBatch(scope, scope.episodeSnapshot(),
                               scope.episodeState(), batch);
        } else {
            for (std::uint64_t i = 0; i < iterations; ++i) {
                const std::uint64_t seed =
                    exp::deriveReplaySeed(ctx.seed, i);
                if (differential) {
                    scope.restoreEpisode(seed);
                } else {
                    m.restoreFrom(pre);
                    scope.adoptEpisodeState(preState);
                    runPrefix();
                    m.reseed(seed);
                }
                // The window: replay 2 measures and closes the episode
                // (no pivot, maxEpisodes 1 => the engine disarms
                // inline).
                if (!m.runUntil([&]() { return !scope.armed(); },
                                diffRunBudget))
                    throw std::runtime_error("window never closed");
            }
        }

        // Majority vote over the measured windows vs ground truth.
        std::set<unsigned> expected;
        const crypto::DecAccessTrace trace =
            crypto::traceDecryption(rig->decKey, ct);
        for (std::uint8_t index : trace.indices[0][1])
            expected.insert(crypto::tableLineOf(index));
        std::array<unsigned, 16> votes{};
        for (const attack::LineProbe &probe : windows)
            for (unsigned line : probe.hitLines(prefixHitThreshold))
                ++votes[line];
        std::set<unsigned> majority;
        for (unsigned line = 0; line < 16; ++line)
            if (votes[line] * 2 > windows.size())
                majority.insert(line);
        const bool matches = !windows.empty() && majority == expected;

        exp::TrialOutput out;
        out.metric.add(matches ? 1.0 : 0.0);
        out.simCycles = m.cycle() - ctx.forkCycle;
        out.scope = scope.stats();
        obs::MetricRegistry registry;
        m.exportMetrics(registry);
        scope.exportMetrics(registry);
        out.metrics = registry.snapshot();

        exp::json::Value probes = exp::json::Value::array();
        for (const attack::LineProbe &probe : windows) {
            exp::json::Value row = exp::json::Value::array();
            for (Cycles latency : probe.latency)
                row.push(latency);
            probes.push(std::move(row));
        }
        out.payload = exp::json::Value::object()
                          .set("matches_ground_truth", matches)
                          .set("final_cycle", m.cycle())
                          .set("probe_latencies", std::move(probes));
        return out;
    };
    return spec;
}

/** Run section 6; returns false on a hard failure. */
bool
diffReplaySection(std::optional<bool> pinned, exp::JsonFileSink &sink)
{
    std::printf("\n==============================================================\n");
    std::printf("Differential-replay A/B: denoise-shaped episodes, %zu "
                "trials x %llu re-entries\n",
                diffTrials,
                static_cast<unsigned long long>(diffIterations));
    std::printf("==============================================================\n\n");

    if (pinned) {
        const bool on = *pinned;
        DiffArm arm;
        arm.name = "perf_campaign_diffreplay_pinned";
        arm.differential = on;
        exp::CampaignResult result =
            exp::runCampaign(diffReplaySpec(arm));
        std::printf("diffreplay=%s:\n", on ? "on" : "off");
        report("pinned", result);
        sink.consume(result);
        writeTextFile(on
                          ? "bench-results/BENCH_diffreplay_fp_on.txt"
                          : "bench-results/BENCH_diffreplay_fp_off.txt",
                      deterministicFingerprint(result));
        return result.aggregate.ok == diffTrials;
    }

    DiffArm offArm;
    offArm.name = "perf_campaign_diffreplay_off";
    offArm.differential = false;
    exp::CampaignResult off = exp::runCampaign(diffReplaySpec(offArm));
    report("resim", off);

    DiffArm onArm = offArm;
    onArm.name = "perf_campaign_diffreplay_on";
    onArm.differential = true;
    exp::CampaignResult on = exp::runCampaign(diffReplaySpec(onArm));
    report("cowfork", on);

    const double speedup =
        on.wallSeconds > 0.0 ? off.wallSeconds / on.wallSeconds : 0.0;
    std::printf("\ndifferential-replay speedup (1 worker): %.2fx "
                "(paper-repro target: >= 1.5x)\n", speedup);

    // The replay contract: restoring the episode snapshot is byte-
    // identical to re-simulating the prefix.  Hard failure if violated.
    const std::string fpOff = deterministicFingerprint(off);
    const std::string fpOn = deterministicFingerprint(on);
    const bool identical = fpOff == fpOn;
    std::printf("fingerprints byte-identical across arms: %s\n",
                identical ? "yes" : "NO");

    sink.consume(off);
    sink.consume(on);
    writeTextFile("bench-results/BENCH_diffreplay_fp_off.txt", fpOff);
    writeTextFile("bench-results/BENCH_diffreplay_fp_on.txt", fpOn);

    const exp::json::Value bench =
        exp::json::Value::object()
            .set("bench", "perf_campaign_diffreplay")
            .set("config",
                 exp::json::Value::object()
                     .set("trials", std::uint64_t{diffTrials})
                     .set("replays_per_trial",
                          std::uint64_t{diffIterations})
                     .set("workers", std::uint64_t{1})
                     .set("master_seed", std::uint64_t{42}))
            .set("trials_per_sec", on.trialsPerSecond())
            .set("trials_per_sec_off", off.trialsPerSecond())
            .set("speedup_vs_off", speedup)
            .set("fingerprints_identical", identical)
            .set("fingerprint", fnv1aHex(fpOn));
    writeTextFile("bench-results/BENCH_diffreplay.json", bench.dump());
    std::printf("bench JSON: bench-results/BENCH_diffreplay.json "
                "(+ fingerprint files)\n");

    // CI gate: determinism is absolute; the speedup must never regress
    // below break-even (>= 1.5x is tracked via the JSON).
    return identical && speedup >= 1.0 &&
           off.aggregate.ok == diffTrials &&
           on.aggregate.ok == diffTrials;
}

// ---------------------------------------------------------------------
// Section 7: batched lockstep replay A/B (DESIGN.md §17).
// ---------------------------------------------------------------------

/** Wide episodes: the batch pays one full restore for this many
 *  sibling windows.  Denoising campaigns in the paper's regime vote
 *  across tens of replays per handle, so the A/B measures N well past
 *  the ISSUE's N >= 4 floor. */
constexpr std::size_t batchTrials = 8;
constexpr std::uint64_t batchIterations = 24;
/** Identity-matrix arms stay small: the matrix checks fingerprints,
 *  not wall clock. */
constexpr std::size_t batchMatrixTrials = 2;
constexpr std::uint64_t batchMatrixIterations = 3;

/** Run section 7; returns false on a hard failure. */
bool
batchReplaySection(std::optional<bool> pinned, exp::JsonFileSink &sink)
{
    std::printf("\n==============================================================\n");
    std::printf("Batched-replay A/B: lockstep sibling windows, %zu "
                "trials x %llu re-entries\n",
                batchTrials,
                static_cast<unsigned long long>(batchIterations));
    std::printf("==============================================================\n\n");

    if (pinned) {
        // Pinned mode: one arm of the speedup shape, fingerprint to a
        // file so CI can `cmp` the two pinned invocations.
        const bool on = *pinned;
        DiffArm arm;
        arm.name = "perf_campaign_batchreplay_pinned";
        arm.differential = true;
        arm.batch = on ? batchIterations : 0;
        arm.trials = batchTrials;
        arm.iterations = batchIterations;
        exp::CampaignResult result =
            exp::runCampaign(diffReplaySpec(arm));
        std::printf("batch-replay=%s:\n", on ? "on" : "off");
        report("pinned", result);
        sink.consume(result);
        writeTextFile(
            on ? "bench-results/BENCH_batchreplay_fp_on.txt"
               : "bench-results/BENCH_batchreplay_fp_off.txt",
            deterministicFingerprint(result));
        return result.aggregate.ok == batchTrials;
    }

    // Speedup A/B: cold resim, per-sibling diffreplay, batch — all
    // three must fingerprint identically; batch must beat per-sibling.
    DiffArm coldArm;
    coldArm.name = "perf_campaign_batchreplay_cold";
    coldArm.differential = false;
    coldArm.trials = batchTrials;
    coldArm.iterations = batchIterations;
    exp::CampaignResult cold =
        exp::runCampaign(diffReplaySpec(coldArm));
    report("resim", cold);

    DiffArm onArm = coldArm;
    onArm.name = "perf_campaign_batchreplay_diffon";
    onArm.differential = true;
    exp::CampaignResult diffOn =
        exp::runCampaign(diffReplaySpec(onArm));
    report("cowfork", diffOn);

    DiffArm batchArm = onArm;
    batchArm.name = "perf_campaign_batchreplay_batch";
    batchArm.batch = batchIterations;
    exp::CampaignResult batch =
        exp::runCampaign(diffReplaySpec(batchArm));
    report("batch", batch);

    const double speedup = batch.wallSeconds > 0.0
                               ? diffOn.wallSeconds / batch.wallSeconds
                               : 0.0;
    std::printf("\nbatched-replay speedup vs diffreplay-on (1 worker, "
                "N=%llu): %.2fx (paper-repro target: >= 1.5x)\n",
                static_cast<unsigned long long>(batchIterations),
                speedup);

    const std::string fpCold = deterministicFingerprint(cold);
    const std::string fpOn = deterministicFingerprint(diffOn);
    const std::string fpBatch = deterministicFingerprint(batch);
    bool identical = fpBatch == fpOn && fpBatch == fpCold;
    std::printf("fingerprints byte-identical across arms: %s\n",
                identical ? "yes" : "NO");

    sink.consume(diffOn);
    sink.consume(batch);
    writeTextFile("bench-results/BENCH_batchreplay_fp_off.txt", fpOn);
    writeTextFile("bench-results/BENCH_batchreplay_fp_on.txt", fpBatch);

    // Identity matrix: the batch contract must hold in every
    // configuration the diffreplay contract holds in — ff on/off,
    // quiet/chaos plans, worker counts 1/2/4 — against a cold-resim
    // reference per (ff, plan) cell.  Small arms: this checks
    // fingerprints, not throughput.
    std::size_t matrixCells = 0, matrixMismatches = 0;
    for (const bool chaos : {false, true}) {
        for (const bool ff : {true, false}) {
            DiffArm refArm;
            refArm.name = "perf_campaign_batchreplay_matrix";
            refArm.differential = false;
            refArm.fastForward = ff;
            refArm.chaos = chaos;
            refArm.trials = batchMatrixTrials;
            refArm.iterations = batchMatrixIterations;
            const exp::CampaignResult ref =
                exp::runCampaign(diffReplaySpec(refArm));
            const std::string want = deterministicFingerprint(ref);
            const bool refOk =
                ref.aggregate.ok == batchMatrixTrials;
            for (const bool batched : {false, true}) {
                for (const unsigned workers : {1u, 2u, 4u}) {
                    DiffArm cell = refArm;
                    cell.differential = true;
                    cell.batch =
                        batched ? batchMatrixIterations : 0;
                    cell.workers = workers;
                    const exp::CampaignResult got =
                        exp::runCampaign(diffReplaySpec(cell));
                    ++matrixCells;
                    const bool match =
                        refOk &&
                        deterministicFingerprint(got) == want;
                    if (!match) {
                        ++matrixMismatches;
                        std::printf(
                            "matrix MISMATCH: chaos=%d ff=%d "
                            "batch=%d workers=%u\n",
                            chaos, ff, batched, workers);
                    }
                }
            }
        }
    }
    std::printf("identity matrix: %zu cells, %zu mismatches "
                "(batch x diff x workers x ff x plan)\n",
                matrixCells, matrixMismatches);
    identical = identical && matrixMismatches == 0;

    const exp::json::Value bench =
        exp::json::Value::object()
            .set("bench", "perf_campaign_batchreplay")
            .set("config",
                 exp::json::Value::object()
                     .set("trials", std::uint64_t{batchTrials})
                     .set("replays_per_trial",
                          std::uint64_t{batchIterations})
                     .set("workers", std::uint64_t{1})
                     .set("master_seed", std::uint64_t{42}))
            .set("trials_per_sec", batch.trialsPerSecond())
            .set("trials_per_sec_diffreplay",
                 diffOn.trialsPerSecond())
            .set("trials_per_sec_cold", cold.trialsPerSecond())
            .set("speedup_vs_diffreplay_on", speedup)
            .set("speedup_target", 1.5)
            .set("fingerprints_identical", identical)
            .set("matrix_cells", std::uint64_t{matrixCells})
            .set("matrix_mismatches", std::uint64_t{matrixMismatches})
            .set("fingerprint", fnv1aHex(fpBatch));
    writeTextFile("bench-results/BENCH_batchreplay.json",
                  bench.dump());
    std::printf("bench JSON: bench-results/BENCH_batchreplay.json "
                "(+ fingerprint files)\n");

    // CI gate: determinism is absolute (speedup A/B arms + the full
    // matrix); the speedup must never regress below break-even
    // (>= 1.5x is tracked via the JSON).
    return identical && speedup >= 1.0 &&
           cold.aggregate.ok == batchTrials &&
           diffOn.aggregate.ok == batchTrials &&
           batch.aggregate.ok == batchTrials;
}

// ---------------------------------------------------------------------
// Sections 1 and 2: sharding and fast-forward A/B.
// ---------------------------------------------------------------------

/** Run section 1 (Fig.-10 sharding); returns false on hard failure. */
bool
shardingSection(bool fast_forward, exp::JsonFileSink &sink)
{
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("==============================================================\n");
    std::printf("Campaign-runner throughput: Fig.-10-style sweep, %zu "
                "trials\n", trials);
    std::printf("hardware_concurrency: %u, fast-forward: %s\n", hw,
                fast_forward ? "on" : "off");
    std::printf("==============================================================\n\n");

    exp::CampaignResult serial =
        exp::runCampaign(fig10StyleSpec(1, fast_forward));
    report("serial", serial);
    exp::CampaignResult parallel =
        exp::runCampaign(fig10StyleSpec(4, fast_forward));
    report("parallel", parallel);

    const double speedup =
        parallel.wallSeconds > 0.0
            ? serial.wallSeconds / parallel.wallSeconds
            : 0.0;
    std::printf("\nspeedup at 4 workers:   %.2fx\n", speedup);

    const bool identical = deterministicFingerprint(serial) ==
                           deterministicFingerprint(parallel);
    std::printf("aggregates bit-identical across worker counts: %s\n",
                identical ? "yes" : "NO");

    sink.consume(serial);
    sink.consume(parallel);
    std::printf("campaign JSON: %s (+ serial twin)\n",
                sink.lastPath().c_str());

    bool ok = identical && serial.aggregate.ok == trials &&
              parallel.aggregate.ok == trials;
    if (hw >= 4) {
        std::printf("expectation (>= 4 cores): >= 2x  ->  %s\n",
                    speedup >= 2.0 ? "PASS" : "FAIL");
        ok = ok && speedup >= 2.0;
    } else {
        std::printf("only %u core(s) visible: parallel speedup is "
                    "hardware-bound near %ux; determinism is the "
                    "enforced check here\n",
                    hw, hw ? hw : 1);
    }
    return ok;
}

/** Run section 2 (fast-forward A/B); returns false on hard failure. */
bool
fastForwardSection(std::optional<bool> pinned, exp::JsonFileSink &sink)
{
    std::printf("\n==============================================================\n");
    std::printf("Fast-forward A/B: Fig.-11-shaped AES replay trials, "
                "%zu trials\n", fig11Trials);
    std::printf("==============================================================\n\n");

    if (pinned) {
        // Pinned mode: measure it alone, no A/B comparison possible.
        const bool ff = *pinned;
        exp::CampaignResult result = exp::runCampaign(fig11StyleSpec(
            ff ? "perf_campaign_fig11_ff_on"
               : "perf_campaign_fig11_ff_off",
            1, ff));
        report(ff ? "ff=on" : "ff=off", result);
        sink.consume(result);
        std::printf("campaign JSON: %s\n", sink.lastPath().c_str());
        return result.aggregate.ok == fig11Trials;
    }

    exp::CampaignResult ffOff = exp::runCampaign(
        fig11StyleSpec("perf_campaign_fig11_ff_off", 1, false));
    report("ff=off", ffOff);
    exp::CampaignResult ffOn = exp::runCampaign(
        fig11StyleSpec("perf_campaign_fig11_ff_on", 1, true));
    report("ff=on", ffOn);
    exp::CampaignResult ffOn4 = exp::runCampaign(
        fig11StyleSpec("perf_campaign_fig11_ff_on4", 4, true));
    report("ff=on", ffOn4);

    const double ffSpeedup = ffOn.wallSeconds > 0.0
                                 ? ffOff.wallSeconds / ffOn.wallSeconds
                                 : 0.0;
    std::printf("\nfast-forward speedup (1 worker): %.2fx\n", ffSpeedup);

    // The elision contract: identical results across modes AND across
    // worker counts within the fast mode.  Hard failure if violated;
    // the speedup is measured, not asserted (timing noise is not a
    // correctness signal).
    const std::string ffBaseline = deterministicFingerprint(ffOff);
    const bool ffIdentical =
        ffBaseline == deterministicFingerprint(ffOn) &&
        ffBaseline == deterministicFingerprint(ffOn4);
    std::printf("fingerprints bit-identical across modes and worker "
                "counts: %s\n",
                ffIdentical ? "yes" : "NO");

    sink.consume(ffOff);
    sink.consume(ffOn);
    sink.consume(ffOn4);
    std::printf("campaign JSON: %s (+ off/on twins)\n",
                sink.lastPath().c_str());

    return ffIdentical && ffOff.aggregate.ok == fig11Trials &&
           ffOn.aggregate.ok == fig11Trials &&
           ffOn4.aggregate.ok == fig11Trials;
}

} // namespace

int
main(int argc, char **argv)
{
    // Section 4's daemon re-execs this very binary as its worker
    // pool; the marker check must precede all flag parsing.
    int worker_exit = 0;
    if (svc::maybeRunWorkerMain(argc, argv, &worker_exit))
        return worker_exit;

    // Peel off this bench's own A/B flags before the shared obs
    // parser sees (and warns about) them.
    std::optional<bool> prefixCacheFlag;
    std::optional<bool> poolFlag;
    std::optional<bool> svcFlag;
    std::optional<bool> diffReplayFlag;
    std::optional<bool> batchReplayFlag;
    std::optional<unsigned> sectionFlag;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--prefix-cache=on")
            prefixCacheFlag = true;
        else if (arg == "--prefix-cache=off")
            prefixCacheFlag = false;
        else if (arg == "--pool=on")
            poolFlag = true;
        else if (arg == "--pool=off")
            poolFlag = false;
        else if (arg == "--svc=on")
            svcFlag = true;
        else if (arg == "--svc=off")
            svcFlag = false;
        else if (arg == "--diffreplay=on")
            diffReplayFlag = true;
        else if (arg == "--diffreplay=off")
            diffReplayFlag = false;
        else if (arg == "--batch-replay=on")
            batchReplayFlag = true;
        else if (arg == "--batch-replay=off")
            batchReplayFlag = false;
        else if (arg.rfind("--section=", 0) == 0)
            sectionFlag = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 10, nullptr, 10));
        else
            rest.push_back(argv[i]);
    }
    const obs::BenchObsOptions opts = obs::parseBenchObsOptions(
        static_cast<int>(rest.size()), rest.data(),
        "bench-results/perf_campaign.trace.json");
    // Sharding section: fast-forward on unless pinned off, so the
    // throughput numbers reflect the production configuration.
    const bool fig10Ff = opts.fastForward.value_or(true);

    exp::JsonFileSink sink("bench-results", /*include_trials=*/false);

    // --section=N runs exactly one numbered section; without it, all
    // of them run (the full bench).
    const auto want = [&](unsigned section) {
        return !sectionFlag || *sectionFlag == section;
    };

    bool ok = true;
    if (want(1))
        ok = shardingSection(fig10Ff, sink) && ok;
    if (want(2))
        ok = fastForwardSection(opts.fastForward, sink) && ok;
    if (want(3))
        ok = prefixSection(prefixCacheFlag, poolFlag, sink) && ok;
    if (want(4))
        ok = svcSection(svcFlag) && ok;
    if (want(5))
        ok = obsSection(opts.obsLevel) && ok;
    if (want(6))
        ok = diffReplaySection(diffReplayFlag, sink) && ok;
    if (want(7))
        ok = batchReplaySection(batchReplayFlag, sink) && ok;
    return ok ? 0 : 1;
}
