/**
 * @file
 * Serial-vs-parallel throughput of the campaign runner on a
 * Figure-10-style port-contention sweep.
 *
 * Runs the identical CampaignSpec (16 trials, each a full attack on
 * its own Machine) at 1 worker and at 4 workers, and checks two
 * things:
 *
 *  1. **Determinism** — the aggregate (and every per-trial payload)
 *     is bit-identical across worker counts.  This must hold on any
 *     machine and is a hard failure if violated.
 *  2. **Speedup** — wall-clock improvement at 4 workers.  Trials are
 *     independent CPU-bound simulations, so speedup tracks the
 *     physical core count: on >= 4 cores we demand >= 2x and fail
 *     otherwise; on fewer cores we report the measured value and the
 *     hardware bound (a 1-core container cannot beat ~1x no matter
 *     how the work is sharded).
 */

#include <cstdio>
#include <thread>

#include "attack/port_contention.hh"
#include "exp/campaign.hh"
#include "exp/result_sink.hh"

using namespace uscope;

namespace
{

constexpr std::size_t trials = 16;

exp::CampaignSpec
fig10StyleSpec(unsigned workers)
{
    exp::CampaignSpec spec;
    spec.name = workers == 1 ? "perf_campaign_serial"
                             : "perf_campaign_parallel";
    spec.trials = trials;
    spec.masterSeed = 42;
    spec.workers = workers;
    spec.body = [](const exp::TrialContext &ctx) {
        attack::PortContentionConfig config;
        config.victimDivides = ctx.index % 2 == 1;
        config.samples = 800;
        config.replays = 30;
        config.threshold = 120;
        config.seed = ctx.seed;
        const attack::PortContentionResult result =
            attack::runPortContentionAttack(config);

        exp::TrialOutput out;
        for (Cycles sample : result.samples)
            out.metric.add(static_cast<double>(sample));
        out.metrics = result.metrics;
        out.simCycles = result.totalCycles;
        out.scope.episodes = 1;
        out.scope.totalReplays = result.replaysDone;
        out.payload = exp::json::Value::object()
                          .set("arm", config.victimDivides ? "div"
                                                           : "mul")
                          .set("above_threshold", result.aboveThreshold)
                          .set("inferred_divides",
                               result.inferredDivides);
        return out;
    };
    return spec;
}

/** Per-trial payloads + aggregate, minus wall-clock noise. */
std::string
deterministicFingerprint(const exp::CampaignResult &result)
{
    std::string fp = result.aggregate.toJson().dump();
    for (const exp::TrialResult &trial : result.trials) {
        fp += '\n';
        fp += trial.output.payload.dump();
        fp += trial.output.metrics.toJson().dump();
        fp += exp::json::Value(trial.output.simCycles).dump();
        fp += exp::trialStatusName(trial.status);
    }
    return fp;
}

void
report(const char *label, const exp::CampaignResult &result)
{
    std::printf("%-8s %u worker(s): %6.2fs wall, %5.1f trials/s, "
                "%6.1f Msim-cycles/s, %zu/%zu ok\n",
                label, result.workers, result.wallSeconds,
                result.trialsPerSecond(),
                result.simCyclesPerSecond() / 1e6, result.aggregate.ok,
                result.trialCount);
}

} // namespace

int
main()
{
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("==============================================================\n");
    std::printf("Campaign-runner throughput: Fig.-10-style sweep, %zu "
                "trials\n", trials);
    std::printf("hardware_concurrency: %u\n", hw);
    std::printf("==============================================================\n\n");

    exp::CampaignResult serial = exp::runCampaign(fig10StyleSpec(1));
    report("serial", serial);
    exp::CampaignResult parallel = exp::runCampaign(fig10StyleSpec(4));
    report("parallel", parallel);

    const double speedup =
        parallel.wallSeconds > 0.0
            ? serial.wallSeconds / parallel.wallSeconds
            : 0.0;
    std::printf("\nspeedup at 4 workers:   %.2fx\n", speedup);

    const bool identical = deterministicFingerprint(serial) ==
                           deterministicFingerprint(parallel);
    std::printf("aggregates bit-identical across worker counts: %s\n",
                identical ? "yes" : "NO");

    exp::JsonFileSink sink("bench-results", /*include_trials=*/false);
    sink.consume(serial);
    sink.consume(parallel);
    std::printf("campaign JSON: %s (+ serial twin)\n",
                sink.lastPath().c_str());

    bool ok = identical && serial.aggregate.ok == trials &&
              parallel.aggregate.ok == trials;
    if (hw >= 4) {
        std::printf("expectation (>= 4 cores): >= 2x  ->  %s\n",
                    speedup >= 2.0 ? "PASS" : "FAIL");
        ok = ok && speedup >= 2.0;
    } else {
        std::printf("only %u core(s) visible: parallel speedup is "
                    "hardware-bound near %ux; determinism is the "
                    "enforced check here\n",
                    hw, hw ? hw : 1);
    }
    return ok ? 0 : 1;
}
