#include "fault/plan.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "obs/log.hh"

namespace uscope::fault
{

namespace
{
constexpr obs::Logger log_{"fault"};
} // namespace

const char *
siteName(Site site)
{
    switch (site) {
      case Site::Interrupt: return "interrupt";
      case Site::Preemption: return "preemption";
      case Site::PortJitter: return "port-jitter";
      case Site::ProbeJitter: return "probe-jitter";
      case Site::SampleDrop: return "sample-drop";
    }
    return "?";
}

bool
FaultPlan::enabled() const
{
    return interruptMeanGap != 0 || preemptMeanGap != 0 ||
           (portJitterRate > 0.0 && portJitterMax != 0) ||
           probeJitterMax != 0 || sampleDropRate > 0.0;
}

FaultPlan
FaultPlan::chaos()
{
    FaultPlan plan;
    // Mean gaps chosen so both fig10/fig11-scale runs (hundreds of
    // thousands to millions of cycles) and short unit-test runs see
    // interrupts, while a single replay window (a few thousand cycles)
    // usually — not always — escapes unscathed: that residual per-
    // window noise is exactly what replay averaging must defeat.
    plan.interruptMeanGap = 60000;
    plan.interruptEvictions = 8;
    plan.preemptMeanGap = 800000;
    plan.preemptPenalty = 3000;
    plan.portJitterRate = 0.02;
    plan.portJitterMax = 3;
    // Capped so a worst-case L1 probe (6 + 45 + 8 + 10 = 69 cycles)
    // still lands inside the paper's sub-70-cycle hit band: the timer
    // jitter smears measurements without erasing the L1/DRAM gap —
    // exactly the §4.3 noise regime replay averaging defeats.
    plan.probeJitterMax = 10;
    plan.sampleDropRate = 0.01;
    return plan;
}

FaultPlan
FaultPlan::environmentDefault()
{
    static const FaultPlan cached = [] {
        const char *value = std::getenv("USCOPE_FAULT_PLAN");
        if (!value || !*value || std::strcmp(value, "off") == 0)
            return FaultPlan{};
        if (std::strcmp(value, "chaos") == 0)
            return chaos();
        log_.warn("USCOPE_FAULT_PLAN='%s' not recognised (expected "
                  "\"chaos\" or \"off\"); running noiseless",
                  value);
        return FaultPlan{};
    }();
    return cached;
}

} // namespace uscope::fault
