/**
 * @file
 * Declarative description of the deterministic fault & noise model.
 *
 * The paper's central claim (§4.3) is that unbounded replay turns a
 * *noisy* side channel into a reliable one.  A FaultPlan describes the
 * noise the real machine would inject — OS-interrupt cache residue,
 * spurious TLB/PWC shootdowns, preemptions, execution-port jitter,
 * measurement-timer jitter, and dropped monitor samples — so the
 * simulator can demonstrate the replay-count-vs-accuracy tradeoff
 * instead of asserting it.
 *
 * Everything here is *deterministic*: every perturbation is drawn from
 * a per-site PRNG stream derived from (machine seed, site id), and the
 * time-scheduled faults expose their next firing cycle through
 * FaultInjector::nextEventCycle() so the event-driven fast-forward
 * path lands on each injection exactly.  The same (plan, seed) pair
 * therefore reproduces the same fault schedule bit for bit, with fast-
 * forward on or off and at any campaign worker count.
 *
 * A default-constructed plan is inert (all rates zero): the simulator
 * stays noiseless unless a plan is configured, except that setting the
 * environment variable USCOPE_FAULT_PLAN=chaos swaps the *default*
 * MachineConfig plan for FaultPlan::chaos() — the CI chaos job runs
 * the whole test suite that way.  Code that explicitly assigns a plan
 * (including an empty one) always wins over the environment.
 */

#ifndef USCOPE_FAULT_PLAN_HH
#define USCOPE_FAULT_PLAN_HH

#include <cstdint>

#include "common/types.hh"

namespace uscope::fault
{

/** The injection-site taxonomy (stable ids: PRNG streams and the
 *  `fault.*` metric/trace namespace key off them). */
enum class Site : std::uint8_t
{
    Interrupt,      ///< OS interrupt: cache residue + TLB/PWC shootdown.
    Preemption,     ///< Scheduler preemption: pipeline squash + stall.
    PortJitter,     ///< Extra latency on an issued execution op.
    ProbeJitter,    ///< Extra cycles on an attacker timed probe.
    SampleDrop,     ///< A monitor measurement lost by the attacker.
};

constexpr unsigned numSites = static_cast<unsigned>(Site::SampleDrop) + 1;

/** Printable name of a site ("interrupt", "preemption", ...). */
const char *siteName(Site site);

/** All knobs of the fault model; a default-constructed plan is inert. */
struct FaultPlan
{
    // ------------------------------------------------------------------
    // Time-scheduled faults (fired by the Machine's run loop at cycles
    // drawn up front; 0 disables a schedule).  Gaps are uniform in
    // [gap/2, 3*gap/2] so the mean inter-arrival time equals the knob.
    // ------------------------------------------------------------------

    /** Mean cycles between OS interrupts (0 = no interrupts). */
    Cycles interruptMeanGap = 0;
    /** Random L3 (set, way) eviction attempts per interrupt — the
     *  cache residue an interrupt handler leaves behind. */
    unsigned interruptEvictions = 8;
    /** An interrupt also shoots down both TLBs (IPI residue). */
    bool interruptFlushesTlb = true;
    /** ... and the page-walk cache. */
    bool interruptFlushesPwc = true;

    /** Mean cycles between preemptions of a random hardware context
     *  (0 = no preemptions). */
    Cycles preemptMeanGap = 0;
    /** Stall charged to a preempted context (scheduler quantum tax). */
    Cycles preemptPenalty = 3000;

    // ------------------------------------------------------------------
    // Event-coupled noise (drawn at the perturbed event itself, from
    // dedicated streams, so schedules never depend on tick counts).
    // ------------------------------------------------------------------

    /** Probability an issued mul/div/fp op picks up extra latency. */
    double portJitterRate = 0.0;
    /** Max extra cycles for a jittered issue (uniform in [1, max]). */
    Cycles portJitterMax = 0;

    /** Max extra cycles on a timed probe measurement (uniform in
     *  [0, max]) — attacker-side RDTSC/serialization jitter. */
    Cycles probeJitterMax = 0;

    /** Probability the attacker loses one monitor sample (SMT sibling
     *  descheduled, buffer overrun, ...). */
    double sampleDropRate = 0.0;

    /** Structural equality (snapshot/pool compatibility checks). */
    bool operator==(const FaultPlan &) const = default;

    /** True when any knob is active (the injector's fast-path gate). */
    bool enabled() const;

    /**
     * The noise level fig10/fig11-style attacks must fight through in
     * the denoise sweep and the CI chaos job: frequent-enough
     * interrupts to land inside replay windows, measurable timer
     * jitter, and a few percent of lost samples.
     */
    static FaultPlan chaos();

    /**
     * The process-wide default plan: FaultPlan::chaos() when the
     * environment variable USCOPE_FAULT_PLAN is "chaos", an inert plan
     * otherwise ("", "off", unset).  Read once and cached; explicit
     * assignment to MachineConfig::fault always overrides it.
     */
    static FaultPlan environmentDefault();
};

} // namespace uscope::fault

#endif // USCOPE_FAULT_PLAN_HH
