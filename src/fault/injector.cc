#include "fault/injector.hh"

#include <algorithm>

#include "common/logging.hh"
#include "cpu/core.hh"
#include "mem/hierarchy.hh"
#include "obs/metrics.hh"
#include "vm/mmu.hh"

namespace uscope::fault
{

namespace
{

/** Site-stream seed: decorrelate (machine seed, site id). */
std::uint64_t
siteSeed(std::uint64_t seed, Site site)
{
    return mix64(mix64(seed) ^
                 mix64(~std::uint64_t{static_cast<unsigned>(site)}));
}

} // namespace

FaultInjector::FaultInjector(const FaultPlan &plan, std::uint64_t seed)
    : plan_(plan),
      active_(plan.enabled()),
      rngInterrupt_(siteSeed(seed, Site::Interrupt)),
      rngPreempt_(siteSeed(seed, Site::Preemption)),
      rngPort_(siteSeed(seed, Site::PortJitter)),
      rngProbe_(siteSeed(seed, Site::ProbeJitter)),
      rngDrop_(siteSeed(seed, Site::SampleDrop))
{
    if (plan_.interruptMeanGap)
        nextInterrupt_ = gapDraw(rngInterrupt_, plan_.interruptMeanGap);
    if (plan_.preemptMeanGap)
        nextPreempt_ = gapDraw(rngPreempt_, plan_.preemptMeanGap);
}

void
FaultInjector::copyStateFrom(const FaultInjector &other)
{
    rngInterrupt_ = other.rngInterrupt_;
    rngPreempt_ = other.rngPreempt_;
    rngPort_ = other.rngPort_;
    rngProbe_ = other.rngProbe_;
    rngDrop_ = other.rngDrop_;
    nextInterrupt_ = other.nextInterrupt_;
    nextPreempt_ = other.nextPreempt_;
    stats_ = other.stats_;
}

void
FaultInjector::reseedAt(std::uint64_t seed, Cycles now)
{
    rngInterrupt_.seed(siteSeed(seed, Site::Interrupt));
    rngPreempt_.seed(siteSeed(seed, Site::Preemption));
    rngPort_.seed(siteSeed(seed, Site::PortJitter));
    rngProbe_.seed(siteSeed(seed, Site::ProbeJitter));
    rngDrop_.seed(siteSeed(seed, Site::SampleDrop));
    // Re-draw the schedules from the new streams, anchored at `now`
    // (the constructor is the now == 0 special case).
    nextInterrupt_ = plan_.interruptMeanGap
                         ? now + gapDraw(rngInterrupt_,
                                         plan_.interruptMeanGap)
                         : kNoEventCycle;
    nextPreempt_ = plan_.preemptMeanGap
                       ? now + gapDraw(rngPreempt_, plan_.preemptMeanGap)
                       : kNoEventCycle;
}

void
FaultInjector::reanchorAt(Cycles now)
{
    if (!active_)
        return;
    if (nextInterrupt_ != kNoEventCycle && nextInterrupt_ < now)
        nextInterrupt_ =
            now + gapDraw(rngInterrupt_, plan_.interruptMeanGap);
    if (nextPreempt_ != kNoEventCycle && nextPreempt_ < now)
        nextPreempt_ = now + gapDraw(rngPreempt_, plan_.preemptMeanGap);
}

void
FaultInjector::wire(mem::Hierarchy *hierarchy, vm::Mmu *mmu,
                    cpu::Core *core, obs::Observer *observer)
{
    hierarchy_ = hierarchy;
    mmu_ = mmu;
    core_ = core;
    obs_ = observer;
}

Cycles
FaultInjector::gapDraw(Rng &rng, Cycles mean_gap)
{
    const Cycles gap = rng.range(mean_gap / 2, mean_gap + mean_gap / 2);
    return gap ? gap : 1;
}

Cycles
FaultInjector::nextEventCycle() const
{
    return std::min(nextInterrupt_, nextPreempt_);
}

void
FaultInjector::poll(Cycles now)
{
    if (!active_)
        return;
    // Each schedule advances by a fresh gap after firing; the loops
    // catch up if the machine was driven past a firing cycle by a
    // caller that bypassed the run loop (raw tick() users).
    while (nextInterrupt_ <= now) {
        fireInterrupt(nextInterrupt_);
        nextInterrupt_ += gapDraw(rngInterrupt_, plan_.interruptMeanGap);
    }
    while (nextPreempt_ <= now) {
        firePreemption(nextPreempt_);
        nextPreempt_ += gapDraw(rngPreempt_, plan_.preemptMeanGap);
    }
}

void
FaultInjector::fireInterrupt(Cycles at)
{
    (void)at;  // The trace clock is bound to the core's cycle counter.
    ++stats_.interrupts;

    unsigned evicted = 0;
    PAddr last_line = 0;
    if (hierarchy_) {
        // The residue an interrupt handler leaves behind: a handful of
        // random L3 lines displaced (inclusive hierarchy, so L1/L2
        // copies go too).  The (set, way) draws happen whether or not
        // the way is resident, keeping the stream independent of cache
        // content.
        mem::Cache &l3 = hierarchy_->l3();
        for (unsigned n = 0; n < plan_.interruptEvictions; ++n) {
            const auto set =
                static_cast<unsigned>(rngInterrupt_.below(l3.numSets()));
            const auto way =
                static_cast<unsigned>(rngInterrupt_.below(l3.assoc()));
            const std::optional<PAddr> line = l3.residentLine(set, way);
            if (!line)
                continue;
            hierarchy_->flushLine(*line);
            if (core_)
                core_->notifyLineEvicted(*line);
            last_line = *line;
            ++evicted;
        }
        stats_.linesEvicted += evicted;
    }
    if (mmu_ && plan_.interruptFlushesTlb) {
        mmu_->flushTlbAll();
        ++stats_.tlbShootdowns;
    }
    if (mmu_ && plan_.interruptFlushesPwc) {
        mmu_->flushPwcAll();
        ++stats_.pwcShootdowns;
    }

    trace(Site::Interrupt, static_cast<std::uint16_t>(evicted),
          last_line);
}

void
FaultInjector::firePreemption(Cycles at)
{
    (void)at;
    // The victim context is drawn even when the core is absent or the
    // context turns out idle, so the schedule stream never depends on
    // machine occupancy.
    const unsigned num_ctx =
        core_ ? core_->config().numContexts : 1;
    const auto ctx = static_cast<unsigned>(rngPreempt_.below(num_ctx));
    ++stats_.preemptions;
    if (core_)
        core_->preemptContext(ctx, plan_.preemptPenalty);
    trace(Site::Preemption, static_cast<std::uint16_t>(ctx),
          plan_.preemptPenalty);
}

Cycles
FaultInjector::issueJitter(unsigned ctx)
{
    if (plan_.portJitterRate <= 0.0 || plan_.portJitterMax == 0)
        return 0;
    if (!rngPort_.chance(plan_.portJitterRate))
        return 0;
    const Cycles extra = rngPort_.range(1, plan_.portJitterMax);
    ++stats_.portJitterEvents;
    stats_.portJitterCycles += extra;
    trace(Site::PortJitter, static_cast<std::uint16_t>(extra), ctx);
    return extra;
}

Cycles
FaultInjector::probeJitter()
{
    if (plan_.probeJitterMax == 0)
        return 0;
    const Cycles extra = rngProbe_.range(0, plan_.probeJitterMax);
    if (extra == 0)
        return 0;
    ++stats_.probeJitterEvents;
    stats_.probeJitterCycles += extra;
    trace(Site::ProbeJitter, static_cast<std::uint16_t>(extra), 0);
    return extra;
}

bool
FaultInjector::dropMonitorSample()
{
    if (plan_.sampleDropRate <= 0.0)
        return false;
    if (!rngDrop_.chance(plan_.sampleDropRate))
        return false;
    ++stats_.samplesDropped;
    trace(Site::SampleDrop, 1, 0);
    return true;
}

void
FaultInjector::trace(Site site, std::uint16_t b, std::uint64_t addr)
{
    if (obs::tracing(obs_))
        obs_->trace.record(obs::EventKind::FaultInject,
                           static_cast<std::uint8_t>(site), b, addr);
}

void
FaultInjector::exportMetrics(obs::MetricRegistry &registry) const
{
    if (!active_)
        return;
    registry.counter("fault.interrupts").set(stats_.interrupts);
    registry.counter("fault.interrupt.lines_evicted")
        .set(stats_.linesEvicted);
    registry.counter("fault.interrupt.tlb_shootdowns")
        .set(stats_.tlbShootdowns);
    registry.counter("fault.interrupt.pwc_shootdowns")
        .set(stats_.pwcShootdowns);
    registry.counter("fault.preemptions").set(stats_.preemptions);
    registry.counter("fault.port_jitter.events")
        .set(stats_.portJitterEvents);
    registry.counter("fault.port_jitter.cycles")
        .set(stats_.portJitterCycles);
    registry.counter("fault.probe_jitter.events")
        .set(stats_.probeJitterEvents);
    registry.counter("fault.probe_jitter.cycles")
        .set(stats_.probeJitterCycles);
    registry.counter("fault.samples_dropped").set(stats_.samplesDropped);
}

} // namespace uscope::fault
