/**
 * @file
 * FaultInjector: delivers a FaultPlan's perturbations into a Machine.
 *
 * Two delivery mechanisms, chosen per fault class so that results are
 * bit-identical with event-driven fast-forward on or off:
 *
 *  - **Time-scheduled faults** (OS interrupts, preemptions) fire at
 *    cycles drawn up front from per-site PRNG streams.  The earliest
 *    pending firing is exposed through nextEventCycle(), which
 *    os::Machine folds into its fast-forward minimum — so a clock jump
 *    can never skip an injection; the machine lands on the firing
 *    cycle and poll() delivers it, exactly as a cycle-by-cycle run
 *    would.
 *
 *  - **Event-coupled noise** (port jitter, probe timer jitter, dropped
 *    monitor samples) is drawn at the perturbed event itself from
 *    dedicated streams.  The triggering events occur at identical
 *    cycles in both fast-forward modes (the §10 contract), so the draw
 *    sequences — and therefore the noise — are identical too.
 *
 * Every injected event is counted under the `fault.*` metric namespace
 * and, when tracing is enabled, recorded as an EventKind::FaultInject
 * trace event (a = Site, b = magnitude, addr = site-specific payload),
 * so a fault schedule is fully observable and comparable byte for byte
 * across runs.
 *
 * Ownership: a Machine owns one FaultInjector and wires it to its own
 * components; like the Observer it is confined to the thread
 * simulating that Machine.
 */

#ifndef USCOPE_FAULT_INJECTOR_HH
#define USCOPE_FAULT_INJECTOR_HH

#include <cstdint>

#include "common/random.hh"
#include "common/types.hh"
#include "fault/plan.hh"
#include "obs/observer.hh"

namespace uscope::mem
{
class Hierarchy;
} // namespace uscope::mem

namespace uscope::vm
{
class Mmu;
} // namespace uscope::vm

namespace uscope::cpu
{
class Core;
} // namespace uscope::cpu

namespace uscope::obs
{
class MetricRegistry;
} // namespace uscope::obs

namespace uscope::fault
{

/** Everything the injector did, for metrics export and tests. */
struct FaultStats
{
    std::uint64_t interrupts = 0;
    std::uint64_t linesEvicted = 0;
    std::uint64_t tlbShootdowns = 0;
    std::uint64_t pwcShootdowns = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t portJitterEvents = 0;
    std::uint64_t portJitterCycles = 0;
    std::uint64_t probeJitterEvents = 0;
    std::uint64_t probeJitterCycles = 0;
    std::uint64_t samplesDropped = 0;

    std::uint64_t
    injectionsTotal() const
    {
        return interrupts + preemptions + portJitterEvents +
               probeJitterEvents + samplesDropped;
    }
};

/** The injector. */
class FaultInjector
{
  public:
    /**
     * @param plan The fault model; an inert plan makes every call a
     *             cheap no-op.
     * @param seed Stream seed; sites derive decorrelated sub-streams.
     */
    FaultInjector(const FaultPlan &plan, std::uint64_t seed);

    /** Wire the delivery targets (Machine construction). */
    void wire(mem::Hierarchy *hierarchy, vm::Mmu *mmu, cpu::Core *core,
              obs::Observer *observer);

    const FaultPlan &plan() const { return plan_; }
    const FaultStats &stats() const { return stats_; }

    /** True when the plan schedules or couples any fault at all. */
    bool active() const { return active_; }

    /**
     * Earliest cycle at which a scheduled fault will fire
     * (kNoEventCycle when no schedule is armed).  Folded into
     * os::Machine::nextEventCycle() so fast-forward never jumps over
     * an injection.
     */
    Cycles nextEventCycle() const;

    /**
     * Fire every scheduled fault due at or before @p now and draw the
     * next firing cycles.  Called by the Machine's run loop once per
     * simulated step; idempotent within a cycle.
     */
    void poll(Cycles now);

    /**
     * Event-coupled: extra latency for an execution-port issue of a
     * jitterable op on context @p ctx (0 most of the time).  Wired
     * into cpu::Core as its issue-jitter hook.
     */
    Cycles issueJitter(unsigned ctx);

    /** Event-coupled: extra cycles on one attacker timed probe. */
    Cycles probeJitter();

    /** Event-coupled: true when the attacker loses this monitor
     *  sample. */
    bool dropMonitorSample();

    /**
     * Adopt @p other's RNG streams, pending firing cycles, and stats
     * (snapshot forking, DESIGN.md §12).  Plans must match; the wired
     * component pointers stay this injector's own.
     */
    void copyStateFrom(const FaultInjector &other);

    /**
     * Re-derive every site stream from @p seed and re-draw the next
     * scheduled firings *relative to @p now* — the reseed-at-fork
     * primitive.  A cold machine reseeded at cycle C and a fork
     * restored to cycle C then reseeded produce the same schedule.
     */
    void reseedAt(std::uint64_t seed, Cycles now);

    /**
     * Guard against pending firing cycles stranded in the past after
     * a state restore: any schedule whose next firing lies before
     * @p now is re-drawn relative to @p now (from the current stream,
     * like reseedAt's anchoring but without reseeding).  A consistent
     * restore — snapshot cycle and pending cycles copied together —
     * satisfies pending >= now already, so this is a deterministic
     * no-op there; without it, a stale pending cycle would make the
     * next poll() deliver the whole catch-up burst at once.
     */
    void reanchorAt(Cycles now);

    /** Return to the just-constructed state with a fresh @p seed. */
    void reset(std::uint64_t seed)
    {
        stats_ = FaultStats{};
        reseedAt(seed, 0);
    }

    /** Register fault.* counters. */
    void exportMetrics(obs::MetricRegistry &registry) const;

  private:
    void fireInterrupt(Cycles at);
    void firePreemption(Cycles at);
    void trace(Site site, std::uint16_t b, std::uint64_t addr);

    /** Next gap of a schedule: uniform in [gap/2, 3*gap/2], min 1. */
    static Cycles gapDraw(Rng &rng, Cycles mean_gap);

    FaultPlan plan_;
    bool active_ = false;

    Rng rngInterrupt_;
    Rng rngPreempt_;
    Rng rngPort_;
    Rng rngProbe_;
    Rng rngDrop_;

    /** Next scheduled firing cycles (kNoEventCycle = schedule off). */
    Cycles nextInterrupt_ = kNoEventCycle;
    Cycles nextPreempt_ = kNoEventCycle;

    mem::Hierarchy *hierarchy_ = nullptr;
    vm::Mmu *mmu_ = nullptr;
    cpu::Core *core_ = nullptr;
    obs::Observer *obs_ = nullptr;

    FaultStats stats_;
};

} // namespace uscope::fault

#endif // USCOPE_FAULT_INJECTOR_HH
