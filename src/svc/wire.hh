/**
 * @file
 * The campaign service's wire layer (DESIGN.md §13): length-prefixed
 * JSON frames over local (AF_UNIX) stream sockets.
 *
 * Every message — client submissions, shard dispatches, per-trial
 * results, heartbeats — is one *frame*: a 4-byte big-endian payload
 * length followed by that many bytes of compact JSON.  The explicit
 * prefix makes framing independent of JSON syntax (trial payloads may
 * embed anything), keeps the reader allocation-bounded (oversized
 * lengths are rejected before any buffering), and lets FrameSplitter
 * be a pure, unit-testable byte machine with no socket in sight.
 *
 * Sockets stay in blocking mode.  Reads always use MSG_DONTWAIT —
 * Conn::pump() drains whatever the kernel has and never blocks; the
 * daemon's poll() loop and the worker's poll()-with-timeout decide
 * when pumping is worthwhile.  Writes block (frames are small; the
 * kernel buffer absorbs them) and use MSG_NOSIGNAL so a vanished peer
 * surfaces as a clean `false`, never SIGPIPE.
 */

#ifndef USCOPE_SVC_WIRE_HH
#define USCOPE_SVC_WIRE_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "common/json.hh"

namespace uscope::svc
{

/** Frames above this are a protocol violation (or an attack on the
 *  daemon's memory); the connection is dropped. */
constexpr std::size_t kMaxFrameBytes = 256u << 20;

/** Prepend the 4-byte big-endian length to @p payload. */
std::string encodeFrame(const std::string &payload);

/**
 * Incremental frame decoder: feed() arbitrary byte chunks, next()
 * pops complete payloads in arrival order.  Pure logic — the unit
 * tests drive it with pathological fragmentations no real socket
 * would produce.
 */
class FrameSplitter
{
  public:
    void feed(const char *data, std::size_t len);

    /** Pop the next complete frame payload, if any. */
    std::optional<std::string> next();

    /** Set when a frame declared a length above kMaxFrameBytes; the
     *  stream is unrecoverable past this point. */
    bool corrupt() const { return corrupt_; }

  private:
    std::string buf_;
    std::deque<std::string> ready_;
    bool corrupt_ = false;
};

/**
 * One framed-JSON connection.  Owns the fd; move-only.  A Conn is
 * confined to one thread (daemon loop or worker loop) — there is no
 * internal locking.
 */
class Conn
{
  public:
    Conn() = default;
    explicit Conn(int fd) : fd_(fd) {}
    ~Conn();
    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;
    Conn(Conn &&other) noexcept;
    Conn &operator=(Conn &&other) noexcept;

    int fd() const { return fd_; }
    bool open() const { return fd_ >= 0 && !failed_; }
    void close();

    /** Frame + send @p msg (blocking).  False when the peer is gone;
     *  the connection is marked failed and further sends no-op. */
    bool send(const json::Value &msg);

    /**
     * Drain every byte the kernel currently has (MSG_DONTWAIT) into
     * the splitter.  Returns false when the peer hung up or the
     * stream is corrupt — received frames already split remain
     * poppable via next().
     */
    bool pump();

    /** Pop the next complete received message.  Frames that fail
     *  JSON parsing are dropped with a warning (one bad message must
     *  not wedge the stream) and counted — takeBadFrames() lets the
     *  daemon answer each with a structured error frame instead of
     *  swallowing the problem silently. */
    std::optional<json::Value> next();

    /** Number of non-JSON frames next() dropped since the last call
     *  (the counter resets on read). */
    std::size_t takeBadFrames();

    /** True when the peer declared an oversized frame; the stream is
     *  unrecoverable (pump() already marked the connection failed). */
    bool corruptStream() const { return splitter_.corrupt(); }

    /**
     * Best-effort send that ignores the failed flag: the last-gasp
     * structured error reply on an already-doomed connection (e.g.
     * telling an oversized-frame sender *why* it is being dropped).
     * The fd must still be open; errors are ignored.
     */
    void sendFinal(const json::Value &msg);

  private:
    bool writeFrame(const std::string &frame);

    int fd_ = -1;
    bool failed_ = false;
    std::size_t badFrames_ = 0;
    FrameSplitter splitter_;
};

/**
 * Bind + listen on @p path (unlinking any stale socket first).
 * Throws SimFatal on failure — a daemon that cannot listen has
 * nothing else to do.
 */
int listenUnix(const std::string &path);

/** Connect to @p path; -1 on failure (callers retry — the daemon may
 *  still be binding). */
int connectUnix(const std::string &path);

/** Accept one pending connection; -1 when none is pending. */
int acceptUnix(int listen_fd);

/** poll() @p fd for readability; true when readable (or hung up)
 *  within @p timeout_ms. */
bool waitReadable(int fd, int timeout_ms);

} // namespace uscope::svc

#endif // USCOPE_SVC_WIRE_HH
