/**
 * @file
 * The campaign service's wire layer (DESIGN.md §13): length-prefixed
 * JSON frames over local (AF_UNIX) stream sockets.
 *
 * Every message — client submissions, shard dispatches, per-trial
 * results, heartbeats — is one *frame*: a 4-byte big-endian payload
 * length followed by that many bytes of compact JSON.  The explicit
 * prefix makes framing independent of JSON syntax (trial payloads may
 * embed anything), keeps the reader allocation-bounded (oversized
 * lengths are rejected before any buffering), and lets FrameSplitter
 * be a pure, unit-testable byte machine with no socket in sight.
 *
 * Sockets stay in blocking mode.  Reads always use MSG_DONTWAIT —
 * Conn::pump() drains whatever the kernel has and never blocks; the
 * daemon's poll() loop and the worker's poll()-with-timeout decide
 * when pumping is worthwhile.  Writes come in two flavours: workers
 * and clients block (frames are small; the kernel buffer absorbs
 * them), while the daemon's sessions run in *buffered* mode —
 * setBuffered() turns send() into append-to-outbound-queue plus an
 * opportunistic MSG_DONTWAIT flush, and the poll() loop drains the
 * rest on POLLOUT.  A stalled `svc_client stream` therefore slows
 * only its own stream: the daemon never blocks in send() and a
 * partially-written frame can never interleave with the next one.
 * All writes use MSG_NOSIGNAL so a vanished peer surfaces as a clean
 * `false`, never SIGPIPE.
 */

#ifndef USCOPE_SVC_WIRE_HH
#define USCOPE_SVC_WIRE_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "common/json.hh"

namespace uscope::svc
{

/** Frames above this are a protocol violation (or an attack on the
 *  daemon's memory); the connection is dropped. */
constexpr std::size_t kMaxFrameBytes = 256u << 20;

/** A buffered connection whose unsent backlog exceeds this is a peer
 *  that stopped reading long ago; it is marked failed and dropped
 *  rather than allowed to grow the daemon without bound. */
constexpr std::size_t kMaxOutboundBytes = 256u << 20;

/** Prepend the 4-byte big-endian length to @p payload. */
std::string encodeFrame(const std::string &payload);

/**
 * Incremental frame decoder: feed() arbitrary byte chunks, next()
 * pops complete payloads in arrival order.  Pure logic — the unit
 * tests drive it with pathological fragmentations no real socket
 * would produce.
 */
class FrameSplitter
{
  public:
    void feed(const char *data, std::size_t len);

    /** Pop the next complete frame payload, if any. */
    std::optional<std::string> next();

    /** Set when a frame declared a length above kMaxFrameBytes; the
     *  stream is unrecoverable past this point. */
    bool corrupt() const { return corrupt_; }

  private:
    std::string buf_;
    std::deque<std::string> ready_;
    bool corrupt_ = false;
};

/**
 * One framed-JSON connection.  Owns the fd; move-only.  A Conn is
 * confined to one thread (daemon loop or worker loop) — there is no
 * internal locking.
 */
class Conn
{
  public:
    Conn() = default;
    explicit Conn(int fd) : fd_(fd) {}
    ~Conn();
    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;
    Conn(Conn &&other) noexcept;
    Conn &operator=(Conn &&other) noexcept;

    int fd() const { return fd_; }
    bool open() const { return fd_ >= 0 && !failed_; }
    void close();

    /** Frame + send @p msg.  Blocking by default; with setBuffered()
     *  the frame is queued and drained by flushOut() instead.  False
     *  when the peer is gone (or the outbound cap is blown); the
     *  connection is marked failed and further sends no-op. */
    bool send(const json::Value &msg);

    /**
     * Switch send() to non-blocking buffered mode: frames append to
     * an outbound queue, each send() opportunistically flushes with
     * MSG_DONTWAIT, and the owner drains the remainder via flushOut()
     * when poll() reports POLLOUT.  The daemon runs every session
     * this way so one stalled client cannot wedge the loop.
     */
    void setBuffered(bool on) { buffered_ = on; }

    /** True when buffered bytes await a POLLOUT-driven flush. */
    bool wantWrite() const { return outOff_ < out_.size(); }

    /** Unsent buffered bytes. */
    std::size_t pendingOut() const { return out_.size() - outOff_; }

    /**
     * Push buffered bytes until the kernel refuses (EAGAIN) or the
     * queue empties.  False when the peer is gone — the connection is
     * marked failed, same as a blocking-send failure.
     */
    bool flushOut();

    /**
     * Drain every byte the kernel currently has (MSG_DONTWAIT) into
     * the splitter.  Returns false when the peer hung up or the
     * stream is corrupt — received frames already split remain
     * poppable via next().
     */
    bool pump();

    /** Pop the next complete received message.  Frames that fail
     *  JSON parsing are dropped with a warning (one bad message must
     *  not wedge the stream) and counted — takeBadFrames() lets the
     *  daemon answer each with a structured error frame instead of
     *  swallowing the problem silently. */
    std::optional<json::Value> next();

    /** Number of non-JSON frames next() dropped since the last call
     *  (the counter resets on read). */
    std::size_t takeBadFrames();

    /** True when the peer declared an oversized frame; the stream is
     *  unrecoverable (pump() already marked the connection failed). */
    bool corruptStream() const { return splitter_.corrupt(); }

    /**
     * Best-effort send that ignores the failed flag: the last-gasp
     * structured error reply on an already-doomed connection (e.g.
     * telling an oversized-frame sender *why* it is being dropped).
     * The fd must still be open; errors are ignored.
     */
    void sendFinal(const json::Value &msg);

  private:
    bool writeFrame(const std::string &frame);

    int fd_ = -1;
    bool failed_ = false;
    bool buffered_ = false;
    std::size_t badFrames_ = 0;
    FrameSplitter splitter_;
    /** Buffered-mode outbound queue: bytes [outOff_, out_.size()) are
     *  still unsent.  Compacted as the flusher advances. */
    std::string out_;
    std::size_t outOff_ = 0;
};

/**
 * Bind + listen on @p path (unlinking any stale socket first).
 * Throws SimFatal on failure — a daemon that cannot listen has
 * nothing else to do.
 */
int listenUnix(const std::string &path);

/** Connect to @p path; -1 on failure (callers retry — the daemon may
 *  still be binding). */
int connectUnix(const std::string &path);

/** Accept one pending connection; -1 when none is pending. */
int acceptUnix(int listen_fd);

/** poll() @p fd for readability; true when readable (or hung up)
 *  within @p timeout_ms. */
bool waitReadable(int fd, int timeout_ms);

} // namespace uscope::svc

#endif // USCOPE_SVC_WIRE_HH
