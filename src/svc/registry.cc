#include "svc/registry.hh"

#include <array>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "attack/aes_attack.hh"
#include "attack/port_contention.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "core/microscope.hh"
#include "crypto/aes.hh"
#include "crypto/aes_codegen.hh"
#include "os/machine.hh"

namespace uscope::svc
{

json::Value
CampaignRequest::toJson() const
{
    json::Value v =
        json::Value::object()
            .set("recipe", recipe)
            .set("name", name)
            .set("ns", ns)
            .set("trials", static_cast<std::uint64_t>(trials))
            .set("master_seed", masterSeed)
            .set("cycle_budget", cycleBudget)
            .set("max_retries", static_cast<std::uint64_t>(maxRetries))
            .set("params", params);
    // Omitted at Off so pre-§14 request JSON round-trips unchanged.
    if (obs != obs::ObsLevel::Off)
        v.set("obs", obs::obsLevelName(obs));
    // Likewise omitted when unset, and excluded from identityKey().
    if (deadlineSeconds > 0.0)
        v.set("deadline_seconds", deadlineSeconds);
    if (batchReplays != 0)
        v.set("batch_replays", batchReplays);
    return v;
}

std::optional<CampaignRequest>
CampaignRequest::fromJson(const json::Value &v)
{
    if (!v.isObject())
        return std::nullopt;
    const json::Value *recipe = v.get("recipe");
    if (!recipe || !recipe->isString() || recipe->asString().empty())
        return std::nullopt;
    CampaignRequest out;
    out.recipe = recipe->asString();
    if (const json::Value *f = v.get("name"))
        out.name = f->asString();
    if (const json::Value *f = v.get("ns"))
        out.ns = f->asString();
    if (const json::Value *f = v.get("trials"))
        out.trials = static_cast<std::size_t>(f->asU64());
    if (const json::Value *f = v.get("master_seed"))
        out.masterSeed = f->asU64(42);
    if (const json::Value *f = v.get("cycle_budget"))
        out.cycleBudget = f->asU64();
    if (const json::Value *f = v.get("max_retries"))
        out.maxRetries = static_cast<unsigned>(f->asU64());
    if (const json::Value *f = v.get("params"))
        out.params = *f;
    if (const json::Value *f = v.get("obs")) {
        if (std::optional<obs::ObsLevel> level =
                obs::parseObsLevel(f->asString()))
            out.obs = *level;
        else
            return std::nullopt;
    }
    if (const json::Value *f = v.get("deadline_seconds"))
        out.deadlineSeconds = f->asDouble();
    if (const json::Value *f = v.get("batch_replays"))
        out.batchReplays = f->asU64();
    return out;
}

std::string
CampaignRequest::identityKey() const
{
    // Everything result-determining, nothing else (no stream cadence,
    // no client identity, no observability level or deadline —
    // neither changes results).  params.dump() is deterministic —
    // objects preserve insertion order — and requests round-trip
    // through toJson/fromJson on the wire, so both ends agree on the
    // key.  Reconnecting clients match a running campaign by this
    // same key, so a resubmit-with-deadline attaches to the original.
    CampaignRequest identity = *this;
    identity.obs = obs::ObsLevel::Off;
    identity.deadlineSeconds = 0.0;
    identity.batchReplays = 0;
    return identity.toJson().dump();
}

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t
namespaceSeedRoot(const std::string &ns, std::uint64_t master)
{
    if (ns.empty())
        return master; // identity: service == in-process by default
    return mix64(fnv1a64(ns) ^ mix64(master));
}

// ---------------------------------------------------------------------
// Built-in recipes.
// ---------------------------------------------------------------------

namespace
{

std::uint64_t
u64Param(const CampaignRequest &req, const char *key,
         std::uint64_t fallback)
{
    const json::Value *v = req.params.get(key);
    return v ? v->asU64(fallback) : fallback;
}

/**
 * Machine-less deterministic number crunching: the service's own
 * test workload.  Microseconds per trial, yet it exercises the full
 * trial plumbing — seeds, Summary merges, metric snapshots, payload
 * round-trips — so the kill/steal/resume and multi-tenant suites run
 * in test-suite time instead of simulation time.
 */
exp::CampaignSpec
selftestRecipe(const CampaignRequest &req)
{
    const std::uint64_t work = u64Param(req, "work", 2000);
    // Failure-mode hooks for the service's escalation suites: trial
    // `hang_index` sleeps `hang_ms` before computing — long enough
    // (with aggressive Tunables) to trip the daemon's warn -> kill ->
    // TimedOut ladder, yet producing byte-identical output whenever
    // it *is* allowed to finish (a sleep changes no results).
    const std::uint64_t hang_index =
        u64Param(req, "hang_index", ~std::uint64_t{0});
    const std::uint64_t hang_ms = u64Param(req, "hang_ms", 60000);
    exp::CampaignSpec spec;
    spec.trials = 32;
    spec.structureKey = "selftest";
    spec.body = [work, hang_index,
                 hang_ms](const exp::TrialContext &ctx) {
        if (ctx.index == hang_index)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(hang_ms));
        Rng rng(ctx.seed);
        std::uint64_t acc = ctx.seed;
        exp::TrialOutput out;
        for (std::uint64_t i = 0; i < work; ++i) {
            acc = mix64(acc ^ rng.next());
            if (i % 64 == 0)
                out.metric.add(
                    static_cast<double>(acc >> 40));
        }
        out.simCycles = work;
        obs::MetricRegistry registry;
        registry.counter("selftest.iterations").inc(work);
        registry.gauge("selftest.acc_norm")
            .set(static_cast<double>(acc >> 11) / (1ull << 53));
        out.metrics = registry.snapshot();
        out.payload = exp::json::Value::object()
                          .set("acc", acc)
                          .set("work", work);
        return out;
    };
    return spec;
}

/** Fig.-10-shaped SMT port-contention sweep (div vs mul arms). */
exp::CampaignSpec
fig10Recipe(const CampaignRequest &req)
{
    const auto samples =
        static_cast<unsigned>(u64Param(req, "samples", 120));
    const auto replays =
        static_cast<unsigned>(u64Param(req, "replays", 8));
    const auto threshold =
        static_cast<Cycles>(u64Param(req, "threshold", 120));
    exp::CampaignSpec spec;
    spec.trials = 8;
    spec.structureKey = "fig10_port_contention";
    spec.body = [samples, replays,
                 threshold](const exp::TrialContext &ctx) {
        attack::PortContentionConfig config;
        config.victimDivides = ctx.index % 2 == 1;
        config.samples = samples;
        config.replays = replays;
        config.threshold = threshold;
        config.seed = ctx.seed;
        // Self-built machine: the executor cannot drain it, so the
        // body adopts the obs dial and hands the drained log back.
        config.machine.obs = ctx.machine.obs;
        attack::PortContentionResult result =
            attack::runPortContentionAttack(config);

        exp::TrialOutput out;
        out.trace = std::move(result.events);
        for (Cycles sample : result.samples)
            out.metric.add(static_cast<double>(sample));
        out.metrics = result.metrics;
        out.simCycles = result.totalCycles;
        out.scope.episodes = 1;
        out.scope.totalReplays = result.replaysDone;
        out.payload =
            exp::json::Value::object()
                .set("arm", config.victimDivides ? "div" : "mul")
                .set("above_threshold", result.aboveThreshold)
                .set("inferred_divides", result.inferredDivides);
        return out;
    };
    return spec;
}

/** Fig.-11-shaped AES replay: one full timeline per trial, random
 *  key and plaintext from the trial stream. */
exp::CampaignSpec
fig11Recipe(const CampaignRequest &)
{
    exp::CampaignSpec spec;
    spec.trials = 4;
    spec.structureKey = "fig11_aes_replay";
    spec.body = [](const exp::TrialContext &ctx) {
        attack::AesAttackConfig config;
        Rng rng(ctx.seed);
        for (unsigned i = 0; i < 16; ++i) {
            config.key[i] = static_cast<std::uint8_t>(rng.below(256));
            config.plaintext[i] =
                static_cast<std::uint8_t>(rng.below(256));
        }
        config.seed = ctx.seed;
        config.machine.obs = ctx.machine.obs;
        attack::Fig11Result fig11 = attack::runFig11(config);

        exp::TrialOutput out;
        out.trace = std::move(fig11.events);
        out.metric.add(fig11.matchesGroundTruth ? 1.0 : 0.0);
        out.metrics = fig11.metrics;
        exp::json::Value probes = exp::json::Value::array();
        for (const attack::LineProbe &probe : fig11.replays) {
            exp::json::Value row = exp::json::Value::array();
            for (Cycles latency : probe.latency)
                row.push(latency);
            probes.push(std::move(row));
        }
        out.payload =
            exp::json::Value::object()
                .set("consistent", fig11.consistentAcrossPrimedReplays)
                .set("matches_ground_truth", fig11.matchesGroundTruth)
                .set("probe_latencies", std::move(probes));
        return out;
    };
    return spec;
}

constexpr unsigned prefixWarmRuns = 4;
constexpr Cycles prefixHitThreshold = 100;

/** One fixed campaign-wide AES key (the warmup is shared by every
 *  trial, so it cannot depend on a trial seed). */
constexpr std::array<std::uint8_t, 16> prefixKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

/** The warmup artifact: every handle the prefix mints, valid in each
 *  fork because forks share the warmed-up machine state. */
struct PrefixRig
{
    os::Pid pid = 0;
    crypto::AesKey decKey;
    crypto::AesKey encKey;
    crypto::AesVictimLayout layout;
    std::array<PAddr, 5> tablePa{};
    std::shared_ptr<const cpu::Program> program;

    PrefixRig()
        : decKey(prefixKey.data(), 128, true),
          encKey(prefixKey.data(), 128, false)
    {
    }
};

/**
 * The warmup-heavy arm (DESIGN.md §12 / bench/perf_campaign section
 * 3) as a service recipe: an expensive shared prefix — enclave build,
 * victim codegen, warm decryptions — snapshotted once per worker and
 * forked per trial.  The structureKey is what lets a persistent
 * service worker reuse its post-warmup snapshot across *campaigns*,
 * not just across one campaign's trials.
 */
exp::CampaignSpec
aesPrefixRecipe(const CampaignRequest &)
{
    exp::CampaignSpec spec;
    spec.trials = 12;
    spec.structureKey = "aes_prefix_replay";

    spec.warmup = [](os::Machine &m) -> std::shared_ptr<const void> {
        auto rig = std::make_shared<PrefixRig>();
        os::Kernel &kernel = m.kernel();
        rig->pid = kernel.createProcess("aes-enclave");
        rig->layout =
            crypto::setupAesVictim(kernel, rig->pid, rig->decKey);
        for (unsigned t = 0; t < 5; ++t)
            rig->tablePa[t] =
                *kernel.translate(rig->pid, rig->layout.tableVa(t));
        rig->program = std::make_shared<const cpu::Program>(
            crypto::buildAesDecryptProgram(rig->layout));

        std::uint8_t ct[16];
        const std::uint8_t warm_plain[16] = {};
        crypto::encryptBlock(rig->encKey, warm_plain, ct);
        crypto::loadCiphertext(kernel, rig->pid, rig->layout, ct);
        for (unsigned run = 0; run < prefixWarmRuns; ++run) {
            kernel.startOnContext(rig->pid, 0, rig->program);
            m.runUntilHalted(0, 50'000'000);
        }
        return rig;
    };

    spec.body = [](const exp::TrialContext &ctx) {
        os::Machine &m = *ctx.fork;
        const auto *rig =
            static_cast<const PrefixRig *>(ctx.warmupData);

        Rng rng(ctx.seed);
        std::uint8_t plaintext[16], ct[16];
        for (unsigned i = 0; i < 16; ++i)
            plaintext[i] = static_cast<std::uint8_t>(rng.below(256));
        crypto::encryptBlock(rig->encKey, plaintext, ct);
        crypto::loadCiphertext(m.kernel(), rig->pid, rig->layout, ct);

        const auto probeTable = [&](unsigned table) {
            attack::LineProbe probe;
            for (unsigned line = 0; line < 16; ++line) {
                const os::ProbeResult r = m.kernel().timedProbePhys(
                    rig->tablePa[table] + line * lineSize);
                probe.latency[line] = r.latency;
                probe.level[line] = r.level;
            }
            return probe;
        };
        const auto primeTables = [&] {
            for (unsigned t = 0; t < 4; ++t)
                m.kernel().primeRange(rig->tablePa[t], 1024);
        };

        std::vector<attack::LineProbe> replays;
        ms::Microscope scope(m);
        ms::AttackRecipe recipe;
        recipe.victim = rig->pid;
        recipe.replayHandle = rig->layout.td0;
        recipe.pivot = rig->layout.rk;
        recipe.confidence = 3;
        recipe.maxEpisodes = 1;
        recipe.walkPlan = ms::PageWalkPlan::longest();
        recipe.onReplay = [&](const ms::ReplayEvent &) {
            replays.push_back(probeTable(1));
            return true;
        };
        recipe.beforeResume = [&](const ms::ReplayEvent &) {
            primeTables();
        };
        scope.setRecipe(std::move(recipe));

        primeTables();
        scope.arm();
        m.kernel().startOnContext(rig->pid, 0, rig->program);
        m.runUntilHalted(0, 50'000'000);
        scope.disarm();

        std::set<unsigned> expected;
        const crypto::DecAccessTrace trace =
            crypto::traceDecryption(rig->decKey, ct);
        for (std::uint8_t index : trace.indices[0][1])
            expected.insert(crypto::tableLineOf(index));
        std::array<unsigned, 16> votes{};
        const std::size_t primed =
            replays.size() > 1 ? replays.size() - 1 : 0;
        for (std::size_t i = 1; i < replays.size(); ++i)
            for (unsigned line :
                 replays[i].hitLines(prefixHitThreshold))
                ++votes[line];
        std::set<unsigned> majority;
        for (unsigned line = 0; line < 16; ++line)
            if (votes[line] * 2 > primed)
                majority.insert(line);
        const bool matches = primed > 0 && majority == expected;

        exp::TrialOutput out;
        out.metric.add(matches ? 1.0 : 0.0);
        out.simCycles = m.cycle() - ctx.forkCycle;
        out.scope.episodes = 1;
        out.scope.totalReplays = scope.stats().totalReplays;
        obs::MetricRegistry registry;
        m.exportMetrics(registry);
        scope.exportMetrics(registry);
        out.metrics = registry.snapshot();

        exp::json::Value probes = exp::json::Value::array();
        for (const attack::LineProbe &probe : replays) {
            exp::json::Value row = exp::json::Value::array();
            for (Cycles latency : probe.latency)
                row.push(latency);
            probes.push(std::move(row));
        }
        out.payload = exp::json::Value::object()
                          .set("matches_ground_truth", matches)
                          .set("probe_latencies", std::move(probes));
        return out;
    };
    return spec;
}

void
registerBuiltins(CampaignRegistry &registry)
{
    registry.add("selftest",
                 "machine-less deterministic workload (test/bench "
                 "plumbing)", selftestRecipe);
    registry.add("fig10_port_contention",
                 "SMT port-contention sweep (Fig. 10 shape)",
                 fig10Recipe);
    registry.add("fig11_aes_replay",
                 "AES replay timelines, random keys (Fig. 11 shape)",
                 fig11Recipe);
    registry.add("aes_prefix_replay",
                 "warmup-heavy AES replay arm (prefix snapshots, "
                 "DESIGN.md §12)", aesPrefixRecipe);
}

} // namespace

CampaignRegistry &
CampaignRegistry::global()
{
    static CampaignRegistry *registry = [] {
        auto *r = new CampaignRegistry;
        registerBuiltins(*r);
        return r;
    }();
    return *registry;
}

void
CampaignRegistry::add(std::string name, std::string description,
                      RecipeFn fn)
{
    for (auto &[existing, entry] : recipes_) {
        if (existing == name) {
            entry = Entry{std::move(description), std::move(fn)};
            return;
        }
    }
    recipes_.emplace_back(
        std::move(name), Entry{std::move(description), std::move(fn)});
}

bool
CampaignRegistry::has(const std::string &name) const
{
    for (const auto &[existing, entry] : recipes_)
        if (existing == name)
            return true;
    return false;
}

std::vector<std::pair<std::string, std::string>>
CampaignRegistry::list() const
{
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto &[name, entry] : recipes_)
        out.emplace_back(name, entry.description);
    return out;
}

exp::CampaignSpec
CampaignRegistry::build(const CampaignRequest &request) const
{
    const Entry *entry = nullptr;
    for (const auto &[name, e] : recipes_)
        if (name == request.recipe)
            entry = &e;
    if (!entry)
        fatal("svc: unknown campaign recipe '%s'",
              request.recipe.c_str());

    exp::CampaignSpec spec = entry->fn(request);
    spec.name = request.name.empty() ? request.recipe : request.name;
    if (request.trials)
        spec.trials = request.trials;
    spec.masterSeed = namespaceSeedRoot(request.ns, request.masterSeed);
    spec.cycleBudget = request.cycleBudget;
    spec.maxRetries = request.maxRetries;
    // The daemon attaches checkpoint directories to durable
    // campaigns, and checkpoints require per-trial metrics.
    spec.perTrialMetrics = true;
    spec.obsLevel = request.obs;
    spec.batchReplays = request.batchReplays;
    if (!spec.body)
        panic("svc: recipe '%s' produced a spec without a body",
              request.recipe.c_str());
    return spec;
}

exp::CampaignSpec
buildSpec(const CampaignRequest &request)
{
    return CampaignRegistry::global().build(request);
}

} // namespace uscope::svc
