#include "svc/chaos.hh"

#include <cstdlib>
#include <mutex>

#include "common/random.hh"
#include "obs/log.hh"

namespace uscope::svc
{

namespace
{

constexpr obs::Logger log_{"svc.chaos"};

/** One independent deterministic stream per injection site, reseeded
 *  whenever the plan or the process role changes. */
enum Site : std::size_t {
    SiteTear = 0,
    SiteHeartbeat,
    SiteSigstop,
    SiteStall,
    SiteAbort,
    SiteCount,
};

struct ChaosState
{
    std::mutex mu;
    ChaosPlan plan = ChaosPlan::environmentDefault();
    std::uint64_t role = 0;
    Rng streams[SiteCount];
    bool planOverridden = false;

    ChaosState() { reseed(); }

    void
    reseed()
    {
        for (std::size_t s = 0; s < SiteCount; ++s)
            streams[s].seed(
                mix64(plan.seed ^ mix64(role) ^ (s * 0x9e3779b9ull)));
    }
};

ChaosState &
state()
{
    static ChaosState *st = new ChaosState;
    return *st;
}

} // namespace

bool
ChaosPlan::enabled() const
{
    return tornFrameRate > 0.0 || heartbeatDropRate > 0.0 ||
           heartbeatDelayRate > 0.0 || sigstopRate > 0.0 ||
           clientStallRate > 0.0 || abortMergeRate > 0.0;
}

ChaosPlan
ChaosPlan::chaos()
{
    ChaosPlan plan;
    // Rates tuned so a full ctest run under USCOPE_SVC_CHAOS=chaos
    // sees every transport path misbehave repeatedly, yet no test's
    // wall-clock budget is threatened: tears and stalls cost single-
    // digit milliseconds, dropped heartbeats stay far from the 30 s
    // production timeout, and nothing kills a process.
    plan.tornFrameRate = 0.25;
    plan.tornDelayUs = 1000;
    plan.heartbeatDropRate = 0.15;
    plan.heartbeatDelayRate = 0.25;
    plan.heartbeatDelayMs = 30;
    plan.clientStallRate = 0.15;
    plan.clientStallMs = 10;
    return plan;
}

ChaosPlan
ChaosPlan::parse(const std::string &value)
{
    if (value.empty() || value == "off")
        return ChaosPlan{};
    if (value == "chaos")
        return chaos();

    ChaosPlan plan;
    std::size_t pos = 0;
    while (pos < value.size()) {
        std::size_t comma = value.find(',', pos);
        if (comma == std::string::npos)
            comma = value.size();
        const std::string item = value.substr(pos, comma - pos);
        pos = comma + 1;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            log_.warn("USCOPE_SVC_CHAOS item '%s' is not k=v; ignored",
                      item.c_str());
            continue;
        }
        const std::string key = item.substr(0, eq);
        const double v = std::strtod(item.c_str() + eq + 1, nullptr);
        if (key == "torn")
            plan.tornFrameRate = v;
        else if (key == "torn_delay_us")
            plan.tornDelayUs = static_cast<int>(v);
        else if (key == "drop")
            plan.heartbeatDropRate = v;
        else if (key == "delay")
            plan.heartbeatDelayRate = v;
        else if (key == "delay_ms")
            plan.heartbeatDelayMs = static_cast<int>(v);
        else if (key == "sigstop")
            plan.sigstopRate = v;
        else if (key == "stall")
            plan.clientStallRate = v;
        else if (key == "stall_ms")
            plan.clientStallMs = static_cast<int>(v);
        else if (key == "abort")
            plan.abortMergeRate = v;
        else if (key == "seed")
            plan.seed = static_cast<std::uint64_t>(v);
        else
            log_.warn("USCOPE_SVC_CHAOS key '%s' not recognised; "
                      "ignored", key.c_str());
    }
    return plan;
}

ChaosPlan
ChaosPlan::environmentDefault()
{
    static const ChaosPlan cached = [] {
        const char *value = std::getenv("USCOPE_SVC_CHAOS");
        return parse(value ? value : "");
    }();
    return cached;
}

void
setChaosPlan(const ChaosPlan &plan)
{
    ChaosState &st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    st.plan = plan;
    st.planOverridden = true;
    st.reseed();
}

const ChaosPlan &
chaosPlan()
{
    return state().plan;
}

void
seedChaosRole(std::uint64_t role)
{
    ChaosState &st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    st.role = role;
    st.reseed();
}

std::optional<std::size_t>
chaosTearPoint(std::size_t frame_bytes)
{
    ChaosState &st = state();
    if (frame_bytes < 2)
        return std::nullopt;
    std::lock_guard<std::mutex> lock(st.mu);
    if (!st.plan.enabled() ||
        !st.streams[SiteTear].chance(st.plan.tornFrameRate))
        return std::nullopt;
    return 1 + static_cast<std::size_t>(
                   st.streams[SiteTear].below(frame_bytes - 1));
}

int
chaosTearDelayUs()
{
    return state().plan.tornDelayUs;
}

bool
chaosDropHeartbeat()
{
    ChaosState &st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    return st.plan.enabled() &&
           st.streams[SiteHeartbeat].chance(st.plan.heartbeatDropRate);
}

int
chaosHeartbeatDelayMs()
{
    ChaosState &st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    if (!st.plan.enabled() ||
        !st.streams[SiteHeartbeat].chance(st.plan.heartbeatDelayRate))
        return 0;
    return st.plan.heartbeatDelayMs;
}

bool
chaosSigstop()
{
    ChaosState &st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    return st.plan.enabled() &&
           st.streams[SiteSigstop].chance(st.plan.sigstopRate);
}

int
chaosClientStallMs()
{
    ChaosState &st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    if (!st.plan.enabled() ||
        !st.streams[SiteStall].chance(st.plan.clientStallRate))
        return 0;
    return st.plan.clientStallMs;
}

bool
chaosAbortMerge()
{
    ChaosState &st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    return st.plan.enabled() &&
           st.streams[SiteAbort].chance(st.plan.abortMergeRate);
}

} // namespace uscope::svc
