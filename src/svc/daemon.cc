#include "svc/daemon.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <optional>
#include <vector>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"
#include "exp/campaign.hh"
#include "exp/checkpoint.hh"
#include "obs/metrics.hh"
#include "svc/registry.hh"
#include "svc/shard.hh"
#include "svc/wire.hh"
#include "svc/worker.hh"

namespace uscope::svc
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t
field(const json::Value &msg, const char *key,
      std::uint64_t fallback = 0)
{
    const json::Value *v = msg.get(key);
    return v ? v->asU64(fallback) : fallback;
}

std::string
stringField(const json::Value &msg, const char *key)
{
    const json::Value *v = msg.get(key);
    return v ? v->asString() : std::string();
}

std::string
selfExePath()
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0)
        fatal("svc: readlink(/proc/self/exe): %s",
              std::strerror(errno));
    return std::string(buf, static_cast<std::size_t>(n));
}

/** Campaign names become directory components. */
std::string
sanitizeName(const std::string &name)
{
    std::string out;
    for (char c : name)
        out += (std::isalnum(static_cast<unsigned char>(c)) ||
                c == '-' || c == '_')
                   ? c
                   : '_';
    return out.empty() ? std::string("campaign") : out;
}

/**
 * A worker's lifetime counters as a MetricSnapshot.  The counters
 * object's keys arrive alphabetically sorted (the worker builds it
 * that way), which a snapshot requires; sort defensively anyway.
 */
obs::MetricSnapshot
countersSnapshot(const json::Value &counters)
{
    obs::MetricSnapshot snap;
    for (const auto &[name, value] : counters.entries()) {
        obs::MetricValue v;
        v.name = name;
        v.kind = obs::MetricKind::Counter;
        v.counter = value.asU64();
        snap.values.push_back(std::move(v));
    }
    std::sort(snap.values.begin(), snap.values.end(),
              [](const obs::MetricValue &a, const obs::MetricValue &b) {
                  return a.name < b.name;
              });
    return snap;
}

} // namespace

struct Daemon::Impl
{
    /** One accepted connection; role is decided by its first message
     *  (hello => worker, anything else => client). */
    struct Session
    {
        std::uint64_t key = 0;
        Conn conn;
        int workerId = -1;
    };

    struct WorkerSlot
    {
        int id = 0;
        pid_t pid = -1;
        /** Session key of the live connection, 0 when none. */
        std::uint64_t sessionKey = 0;
        bool busy = false;
        std::uint64_t campaign = 0;
        std::size_t shard = 0;
        unsigned spawns = 0;
        bool dieAfterSpent = false;
        Clock::time_point lastBeat = Clock::now();
        json::Value counters = json::Value::object();
    };

    struct Campaign
    {
        std::uint64_t id = 0;
        CampaignRequest request;
        exp::CampaignSpec spec;
        std::string checkpointDir;
        std::unique_ptr<ShardScheduler> sched;
        std::vector<exp::TrialResult> results;
        std::size_t resumed = 0;
        std::uint64_t clientKey = 0;
        std::size_t streamEvery = 0;
        std::size_t sinceUpdate = 0;
        unsigned workerDeaths = 0;
        Clock::time_point start = Clock::now();
    };

    DaemonConfig config;
    int listenFd = -1;
    std::uint64_t nextSessionKey = 1;
    std::uint64_t nextCampaignId = 1;
    std::vector<std::unique_ptr<Session>> sessions;
    std::vector<WorkerSlot> slots;
    std::deque<Campaign> campaigns;
    bool shuttingDown = false;

    explicit Impl(DaemonConfig cfg) : config(std::move(cfg))
    {
        if (config.socketPath.empty())
            fatal("svc: daemon needs a socket path");
        if (config.workers == 0)
            config.workers = 1;
        if (config.workerExe.empty())
            config.workerExe = selfExePath();
    }

    Session *
    sessionByKey(std::uint64_t key)
    {
        for (auto &s : sessions)
            if (s->key == key)
                return s.get();
        return nullptr;
    }

    Campaign *
    campaignById(std::uint64_t id)
    {
        for (Campaign &c : campaigns)
            if (c.id == id)
                return &c;
        return nullptr;
    }

    // -----------------------------------------------------------------
    // Worker process management.
    // -----------------------------------------------------------------

    void
    spawnWorker(WorkerSlot &slot)
    {
        std::vector<std::string> args;
        args.push_back(config.workerExe);
        args.push_back(kWorkerArg);
        args.push_back("--socket=" + config.socketPath);
        args.push_back("--id=" + std::to_string(slot.id));
        if (slot.id == 0 && config.worker0DieAfter &&
            !slot.dieAfterSpent) {
            args.push_back("--die-after-trials=" +
                           std::to_string(config.worker0DieAfter));
            slot.dieAfterSpent = true;
        }
        std::vector<char *> argv;
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);

        const pid_t pid = ::fork();
        if (pid < 0) {
            warn("svc: fork failed for worker %d: %s", slot.id,
                 std::strerror(errno));
            return;
        }
        if (pid == 0) {
            ::execv(config.workerExe.c_str(), argv.data());
            // exec failed; nothing sane to do in the child.
            ::_exit(127);
        }
        slot.pid = pid;
        ++slot.spawns;
        slot.busy = false;
        slot.lastBeat = Clock::now();
        inform("svc: spawned worker %d (pid %d, attempt %u)", slot.id,
               static_cast<int>(pid), slot.spawns);
    }

    void
    handleWorkerDeath(WorkerSlot &slot, const char *why)
    {
        warn("svc: worker %d (pid %d) died: %s", slot.id,
             static_cast<int>(slot.pid), why);
        if (Session *s = sessionByKey(slot.sessionKey))
            s->conn.close();
        slot.sessionKey = 0;
        slot.pid = -1;
        slot.busy = false;

        for (Campaign &c : campaigns) {
            if (c.sched->onWorkerDead(slot.id) > 0)
                ++c.workerDeaths;
        }
        if (!shuttingDown) {
            if (slot.spawns < config.maxRespawns)
                spawnWorker(slot);
            else
                warn("svc: worker %d exhausted its %u respawns",
                     slot.id, config.maxRespawns);
        }
    }

    void
    reapChildren()
    {
        for (;;) {
            int status = 0;
            const pid_t pid = ::waitpid(-1, &status, WNOHANG);
            if (pid <= 0)
                return;
            for (WorkerSlot &slot : slots) {
                if (slot.pid == pid)
                    handleWorkerDeath(slot, "process exited");
            }
        }
    }

    void
    checkHeartbeats()
    {
        for (WorkerSlot &slot : slots) {
            if (!slot.busy || slot.pid < 0)
                continue;
            if (secondsSince(slot.lastBeat) <=
                config.heartbeatTimeoutSec)
                continue;
            // Busy and silent past the deadline: presumed wedged.
            ::kill(slot.pid, SIGKILL);
            handleWorkerDeath(slot, "heartbeat timeout");
        }
    }

    // -----------------------------------------------------------------
    // Campaign lifecycle.
    // -----------------------------------------------------------------

    void
    sendError(Session &to, std::uint64_t campaign_id,
              const std::string &message)
    {
        to.conn.send(json::Value::object()
                         .set("type", "error")
                         .set("campaign", campaign_id)
                         .set("message", message));
    }

    void
    handleSubmit(Session &client, const json::Value &msg)
    {
        const json::Value *request_json = msg.get("request");
        std::optional<CampaignRequest> request =
            request_json ? CampaignRequest::fromJson(*request_json)
                         : std::nullopt;
        if (!request) {
            sendError(client, 0, "malformed campaign request");
            return;
        }
        Campaign c;
        c.id = nextCampaignId++;
        c.request = *request;
        try {
            c.spec = buildSpec(c.request);
        } catch (const std::exception &e) {
            sendError(client, c.id, e.what());
            return;
        }
        if (c.spec.trials == 0) {
            sendError(client, c.id, "campaign has zero trials");
            return;
        }
        c.clientKey = client.key;
        c.streamEvery = msg.get("stream_every")
                            ? field(msg, "stream_every")
                            : config.streamEvery;
        c.results.resize(c.spec.trials);
        c.sched = std::make_unique<ShardScheduler>(c.spec.trials,
                                                   config.workers);

        if (!config.stateDir.empty()) {
            // The durable identity covers everything that determines
            // results; same request => same directory => a daemon
            // restart resumes instead of restarting.
            c.checkpointDir =
                config.stateDir + "/" + sanitizeName(c.spec.name) +
                "-" +
                exp::fnv1aHex(c.request.identityKey()).substr(2);
            c.spec.checkpointDir = c.checkpointDir;
            const exp::CampaignCheckpoint checkpoint(c.spec);
            if (checkpoint.resuming()) {
                for (std::size_t i = 0; i < c.spec.trials; ++i) {
                    std::optional<exp::TrialResult> trial =
                        checkpoint.loadTrial(i);
                    if (!trial)
                        continue;
                    c.results[i] = std::move(*trial);
                    c.sched->seedDone(i);
                    ++c.resumed;
                }
            }
        }

        client.conn.send(
            json::Value::object()
                .set("type", "accepted")
                .set("campaign", c.id)
                .set("total",
                     static_cast<std::uint64_t>(c.spec.trials))
                .set("resumed",
                     static_cast<std::uint64_t>(c.resumed)));
        inform("svc: campaign %llu '%s' accepted (%zu trials, %zu "
               "resumed, ns='%s')",
               static_cast<unsigned long long>(c.id),
               c.spec.name.c_str(), c.spec.trials, c.resumed,
               c.request.ns.c_str());
        campaigns.push_back(std::move(c));
        assignIdleWorkers();
        finishCompleted(); // a fully-resumed campaign is already done
    }

    /** Partial aggregate over completed trials, in index order —
     *  the same fold the final result uses. */
    exp::CampaignAggregate
    partialAggregate(const Campaign &c) const
    {
        std::vector<exp::TrialResult> done;
        for (std::size_t i = 0; i < c.results.size(); ++i)
            if (c.sched->isDone(i))
                done.push_back(c.results[i]);
        return exp::aggregateTrials(done);
    }

    /** Per-worker metric streams, tagged "svc.worker<id>.". */
    obs::MetricSnapshot
    workerMetrics() const
    {
        obs::MetricSnapshot merged;
        for (const WorkerSlot &slot : slots) {
            obs::MetricSnapshot snap =
                countersSnapshot(slot.counters);
            if (snap.empty())
                continue;
            merged.merge(snap.prefixed(
                "svc.worker" + std::to_string(slot.id) + "."));
        }
        return merged;
    }

    void
    maybeStreamUpdate(Campaign &c, bool force = false)
    {
        if (c.streamEvery == 0 ||
            (!force && c.sinceUpdate < c.streamEvery))
            return;
        c.sinceUpdate = 0;
        Session *client = sessionByKey(c.clientKey);
        if (!client || !client->conn.open())
            return;
        client->conn.send(
            json::Value::object()
                .set("type", "update")
                .set("campaign", c.id)
                .set("completed",
                     static_cast<std::uint64_t>(
                         c.sched->completed()))
                .set("total", static_cast<std::uint64_t>(
                                  c.sched->trials()))
                .set("aggregate", partialAggregate(c).toJson())
                .set("worker_metrics", workerMetrics().toJson()));
    }

    void
    finishCompleted()
    {
        for (auto it = campaigns.begin(); it != campaigns.end();) {
            Campaign &c = *it;
            if (!c.sched->allDone()) {
                ++it;
                continue;
            }
            exp::CampaignResult result;
            result.name = c.spec.name;
            result.trialCount = c.spec.trials;
            result.masterSeed = c.spec.masterSeed;
            result.workers = config.workers;
            result.wallSeconds = secondsSince(c.start);
            result.resumedTrials = c.resumed;
            result.workerDeaths = c.workerDeaths;
            result.aggregate = exp::aggregateTrials(c.results);
            result.trials = c.results;
            const std::string fingerprint = exp::fnv1aHex(
                exp::deterministicFingerprint(result));

            inform("svc: campaign %llu '%s' complete: %zu trials, "
                   "%zu resumed, %u worker deaths, %zu steals, "
                   "fingerprint %s",
                   static_cast<unsigned long long>(c.id),
                   result.name.c_str(), result.trialCount,
                   result.resumedTrials, result.workerDeaths,
                   c.sched->steals(), fingerprint.c_str());

            if (Session *client = sessionByKey(c.clientKey)) {
                client->conn.send(
                    json::Value::object()
                        .set("type", "result")
                        .set("campaign", c.id)
                        .set("fingerprint", fingerprint)
                        .set("worker_deaths", c.workerDeaths)
                        .set("steals",
                             static_cast<std::uint64_t>(
                                 c.sched->steals()))
                        .set("result",
                             result.toJson(
                                 /*include_trials=*/false)));
            }
            it = campaigns.erase(it);
        }
    }

    void
    assignIdleWorkers()
    {
        for (WorkerSlot &slot : slots) {
            if (slot.busy || slot.sessionKey == 0)
                continue;
            Session *session = sessionByKey(slot.sessionKey);
            if (!session || !session->conn.open())
                continue;
            for (Campaign &c : campaigns) {
                std::optional<ShardScheduler::Assignment> a =
                    c.sched->assign(slot.id);
                if (!a)
                    continue;
                if (a->stolenFrom) {
                    const ShardScheduler::Shard &victim =
                        c.sched->shard(*a->stolenFrom);
                    for (WorkerSlot &other : slots) {
                        if (other.id != victim.owner ||
                            other.sessionKey == 0)
                            continue;
                        if (Session *os =
                                sessionByKey(other.sessionKey))
                            os->conn.send(
                                json::Value::object()
                                    .set("type", "shrink")
                                    .set("shard",
                                         static_cast<std::uint64_t>(
                                             victim.id))
                                    .set("hi",
                                         static_cast<std::uint64_t>(
                                             victim.hi)));
                    }
                }
                session->conn.send(
                    json::Value::object()
                        .set("type", "shard")
                        .set("campaign", c.id)
                        .set("shard",
                             static_cast<std::uint64_t>(a->shard))
                        .set("lo",
                             static_cast<std::uint64_t>(a->lo))
                        .set("hi",
                             static_cast<std::uint64_t>(a->hi))
                        .set("checkpoint_dir", c.checkpointDir)
                        .set("request", c.request.toJson()));
                slot.busy = true;
                slot.campaign = c.id;
                slot.shard = a->shard;
                slot.lastBeat = Clock::now();
                break;
            }
        }
    }

    /** No worker can ever run again: fail outstanding campaigns
     *  instead of hanging their clients forever. */
    void
    failCampaignsIfStranded()
    {
        if (campaigns.empty())
            return;
        for (const WorkerSlot &slot : slots) {
            if (slot.pid >= 0 || slot.spawns < config.maxRespawns)
                return;
        }
        warn("svc: all workers permanently dead; failing %zu "
             "campaign(s)", campaigns.size());
        for (Campaign &c : campaigns) {
            if (Session *client = sessionByKey(c.clientKey))
                sendError(*client, c.id,
                          "all workers permanently dead");
        }
        campaigns.clear();
    }

    // -----------------------------------------------------------------
    // Message dispatch.
    // -----------------------------------------------------------------

    void
    handleWorkerMessage(Session &session, const json::Value &msg,
                        const std::string &type)
    {
        WorkerSlot &slot = slots[static_cast<std::size_t>(
            session.workerId)];
        slot.lastBeat = Clock::now();
        if (const json::Value *counters = msg.get("counters"))
            slot.counters = *counters;

        if (type == "heartbeat")
            return;
        if (type == "trial") {
            Campaign *c = campaignById(field(msg, "campaign"));
            if (!c)
                return; // campaign already finished (overlap race)
            const std::size_t index = field(msg, "index");
            const std::size_t shard = field(msg, "shard");
            std::optional<exp::TrialResult> trial =
                exp::CampaignCheckpoint::parseTrial(
                    stringField(msg, "data"));
            if (!trial || trial->index != index) {
                warn("svc: worker %d sent an unparseable trial %zu "
                     "for campaign %llu",
                     slot.id, index,
                     static_cast<unsigned long long>(c->id));
                return;
            }
            if (c->sched->onTrial(shard, index)) {
                c->results[index] = std::move(*trial);
                ++c->sinceUpdate;
                maybeStreamUpdate(*c);
            }
            return;
        }
        if (type == "shard_done") {
            slot.busy = false;
            Campaign *c = campaignById(field(msg, "campaign"));
            if (c)
                c->sched->onShardDone(field(msg, "shard"));
            return;
        }
        if (type == "error") {
            const std::uint64_t campaign_id = field(msg, "campaign");
            warn("svc: worker %d error: %s", slot.id,
                 stringField(msg, "message").c_str());
            slot.busy = false;
            if (Campaign *c = campaignById(campaign_id)) {
                if (Session *client = sessionByKey(c->clientKey))
                    sendError(*client, campaign_id,
                              stringField(msg, "message"));
                for (auto it = campaigns.begin();
                     it != campaigns.end(); ++it) {
                    if (it->id == campaign_id) {
                        campaigns.erase(it);
                        break;
                    }
                }
            }
            return;
        }
        warn("svc: worker %d sent unexpected '%s'", slot.id,
             type.c_str());
    }

    void
    handleMessage(Session &session, const json::Value &msg)
    {
        const std::string type = stringField(msg, "type");

        if (type == "hello") {
            const int id = static_cast<int>(field(msg, "id"));
            if (id < 0 ||
                id >= static_cast<int>(slots.size())) {
                warn("svc: hello from unknown worker id %d", id);
                session.conn.close();
                return;
            }
            session.workerId = id;
            WorkerSlot &slot = slots[static_cast<std::size_t>(id)];
            slot.sessionKey = session.key;
            slot.lastBeat = Clock::now();
            return;
        }
        if (session.workerId >= 0) {
            handleWorkerMessage(session, msg, type);
            return;
        }

        // Client messages.
        if (type == "submit") {
            handleSubmit(session, msg);
        } else if (type == "ping") {
            session.conn.send(
                json::Value::object().set("type", "pong"));
        } else if (type == "list") {
            json::Value recipes = json::Value::array();
            for (const auto &[name, description] :
                 CampaignRegistry::global().list())
                recipes.push(json::Value::object()
                                 .set("recipe", name)
                                 .set("description", description));
            session.conn.send(json::Value::object()
                                  .set("type", "recipes")
                                  .set("recipes",
                                       std::move(recipes)));
        } else if (type == "shutdown") {
            inform("svc: shutdown requested");
            shuttingDown = true;
            session.conn.send(
                json::Value::object().set("type", "ok"));
        } else {
            sendError(session, 0,
                      "unknown message type '" + type + "'");
        }
    }

    void
    dropSession(std::size_t index)
    {
        Session &session = *sessions[index];
        if (session.workerId >= 0) {
            WorkerSlot &slot = slots[static_cast<std::size_t>(
                session.workerId)];
            if (slot.sessionKey == session.key) {
                slot.sessionKey = 0;
                if (slot.pid >= 0)
                    ::kill(slot.pid, SIGKILL);
                handleWorkerDeath(slot, "connection lost");
            }
        } else {
            // A vanished client orphans its campaigns; they run to
            // completion (durable state survives) with nowhere to
            // stream.
            for (Campaign &c : campaigns)
                if (c.clientKey == session.key)
                    c.clientKey = 0;
        }
        sessions.erase(sessions.begin() +
                       static_cast<std::ptrdiff_t>(index));
    }

    // -----------------------------------------------------------------
    // The loop.
    // -----------------------------------------------------------------

    int
    run()
    {
        if (!config.stateDir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(config.stateDir, ec);
            if (ec)
                fatal("svc: cannot create state dir '%s': %s",
                      config.stateDir.c_str(),
                      ec.message().c_str());
        }
        listenFd = listenUnix(config.socketPath);
        inform("svc: listening on %s (%u workers)",
               config.socketPath.c_str(), config.workers);

        slots.resize(config.workers);
        for (unsigned i = 0; i < config.workers; ++i) {
            slots[i].id = static_cast<int>(i);
            spawnWorker(slots[i]);
        }

        while (!shuttingDown) {
            std::vector<pollfd> fds;
            fds.push_back(pollfd{listenFd, POLLIN, 0});
            for (auto &s : sessions)
                fds.push_back(pollfd{s->conn.fd(), POLLIN, 0});
            ::poll(fds.data(),
                   static_cast<nfds_t>(fds.size()), 100);

            if (fds[0].revents & POLLIN) {
                for (;;) {
                    if (!waitReadable(listenFd, 0))
                        break;
                    const int fd = acceptUnix(listenFd);
                    if (fd < 0)
                        break;
                    auto session = std::make_unique<Session>();
                    session->key = nextSessionKey++;
                    session->conn = Conn(fd);
                    sessions.push_back(std::move(session));
                }
            }

            // Pump every session; collect messages, then dispatch.
            // (Dispatch can add sessions — submits spawn nothing, but
            // worker deaths respawn — so iterate by index.)
            for (std::size_t i = 0; i < sessions.size();) {
                Session &session = *sessions[i];
                const bool alive = session.conn.pump();
                while (std::optional<json::Value> msg =
                           session.conn.next()) {
                    handleMessage(session, *msg);
                    if (shuttingDown)
                        break;
                }
                if (!alive || !session.conn.open()) {
                    dropSession(i);
                    continue;
                }
                ++i;
            }

            reapChildren();
            checkHeartbeats();
            failCampaignsIfStranded();
            assignIdleWorkers();
            finishCompleted();
        }

        shutdownWorkers();
        ::close(listenFd);
        ::unlink(config.socketPath.c_str());
        inform("svc: daemon exiting");
        return 0;
    }

    void
    shutdownWorkers()
    {
        for (WorkerSlot &slot : slots) {
            if (Session *s = sessionByKey(slot.sessionKey))
                s->conn.send(json::Value::object()
                                 .set("type", "shutdown"));
        }
        // Grace period, then the axe.
        const Clock::time_point deadline =
            Clock::now() + std::chrono::seconds(2);
        for (;;) {
            bool any = false;
            for (WorkerSlot &slot : slots) {
                if (slot.pid < 0)
                    continue;
                int status = 0;
                const pid_t r =
                    ::waitpid(slot.pid, &status, WNOHANG);
                if (r == slot.pid)
                    slot.pid = -1;
                else
                    any = true;
            }
            if (!any || Clock::now() > deadline)
                break;
            ::usleep(20 * 1000);
        }
        for (WorkerSlot &slot : slots) {
            if (slot.pid < 0)
                continue;
            ::kill(slot.pid, SIGKILL);
            ::waitpid(slot.pid, nullptr, 0);
            slot.pid = -1;
        }
    }
};

Daemon::Daemon(DaemonConfig config)
    : impl_(std::make_unique<Impl>(std::move(config)))
{
}

Daemon::~Daemon() = default;

int
Daemon::run()
{
    return impl_->run();
}

} // namespace uscope::svc
