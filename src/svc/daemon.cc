#include "svc/daemon.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <vector>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "exp/campaign.hh"
#include "exp/checkpoint.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/prof.hh"
#include "svc/chaos.hh"
#include "svc/registry.hh"
#include "svc/shard.hh"
#include "svc/wire.hh"
#include "svc/worker.hh"

namespace uscope::svc
{

namespace
{

using Clock = std::chrono::steady_clock;

constexpr obs::Logger log_{"svc.daemon"};

/** SIGTERM => drain: finish or checkpoint in-flight shards, persist
 *  resumable manifests, exit cleanly.  The handler only flips a flag;
 *  the poll loop does the work.  Reset at every Daemon::run() so
 *  thread-hosted test daemons are unaffected by a previous run. */
volatile std::sig_atomic_t g_drainRequested = 0;

void
onSigterm(int)
{
    g_drainRequested = 1;
}

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t
field(const json::Value &msg, const char *key,
      std::uint64_t fallback = 0)
{
    const json::Value *v = msg.get(key);
    return v ? v->asU64(fallback) : fallback;
}

std::string
stringField(const json::Value &msg, const char *key)
{
    const json::Value *v = msg.get(key);
    return v ? v->asString() : std::string();
}

std::string
selfExePath()
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0)
        fatal("svc: readlink(/proc/self/exe): %s",
              std::strerror(errno));
    return std::string(buf, static_cast<std::size_t>(n));
}

/** Campaign names become directory components. */
std::string
sanitizeName(const std::string &name)
{
    std::string out;
    for (char c : name)
        out += (std::isalnum(static_cast<unsigned char>(c)) ||
                c == '-' || c == '_')
                   ? c
                   : '_';
    return out.empty() ? std::string("campaign") : out;
}

/**
 * A worker's lifetime counters as a MetricSnapshot.  The counters
 * object's keys arrive alphabetically sorted (the worker builds it
 * that way), which a snapshot requires; sort defensively anyway.
 */
obs::MetricSnapshot
countersSnapshot(const json::Value &counters)
{
    obs::MetricSnapshot snap;
    for (const auto &[name, value] : counters.entries()) {
        obs::MetricValue v;
        v.name = name;
        v.kind = obs::MetricKind::Counter;
        v.counter = value.asU64();
        snap.values.push_back(std::move(v));
    }
    std::sort(snap.values.begin(), snap.values.end(),
              [](const obs::MetricValue &a, const obs::MetricValue &b) {
                  return a.name < b.name;
              });
    return snap;
}

} // namespace

struct Daemon::Impl
{
    /** One accepted connection; role is decided by its first message
     *  (hello => worker, anything else => client). */
    struct Session
    {
        std::uint64_t key = 0;
        Conn conn;
        int workerId = -1;
    };

    struct WorkerSlot
    {
        int id = 0;
        pid_t pid = -1;
        /** Session key of the live connection, 0 when none. */
        std::uint64_t sessionKey = 0;
        bool busy = false;
        std::uint64_t campaign = 0;
        std::size_t shard = 0;
        unsigned spawns = 0;
        /** Times the daemon itself SIGKILLed this slot (heartbeat
         *  timeouts, lost connections) — distinct from spawns. */
        unsigned kills = 0;
        /** Deaths since the slot last looked healthy; drives the
         *  exponential respawn backoff. */
        unsigned consecutiveFailures = 0;
        /** Earliest time maintainWorkers() may respawn this slot. */
        Clock::time_point respawnAt = Clock::now();
        Clock::time_point spawnedAt = Clock::now();
        /** The slow-trial warning fired for the current silence
         *  (reset on every heartbeat). */
        bool warned = false;
        bool dieAfterSpent = false;
        Clock::time_point lastBeat = Clock::now();
        json::Value counters = json::Value::object();
        /** Latest prof.trial.* profile this worker streamed (its
         *  lifetime totals; the stats reply merges across slots). */
        json::Value prof = json::Value::object();
    };

    /** Per-worker trial credit, campaign-scoped.  Incremented at the
     *  scheduler's dedup point, so across any steal/kill history the
     *  credits sum to exactly the completed count — the invariant the
     *  per-worker counter tests assert. */
    struct Credit
    {
        std::uint64_t run = 0;
        std::uint64_t restored = 0;
    };

    struct Campaign
    {
        std::uint64_t id = 0;
        CampaignRequest request;
        exp::CampaignSpec spec;
        std::string checkpointDir;
        std::unique_ptr<ShardScheduler> sched;
        std::vector<exp::TrialResult> results;
        std::size_t resumed = 0;
        std::uint64_t clientKey = 0;
        std::size_t streamEvery = 0;
        std::size_t sinceUpdate = 0;
        unsigned workerDeaths = 0;
        std::map<int, Credit> credits;
        Clock::time_point start = Clock::now();
        /** Wall-clock deadline from the request; 0 = none.  Expiry
         *  is an automatic cancel (checkpoint kept). */
        double deadlineSeconds = 0.0;
        /** Heartbeat-timeout SIGKILLs charged per suspect trial
         *  index; at Tunables::trialKillLimit the trial is recorded
         *  TimedOut instead of retried forever. */
        std::map<std::size_t, unsigned> stuckKills;
        /** Trials this campaign gave up on (synthesized TimedOut). */
        std::uint64_t trialTimeouts = 0;
        /** The resumable manifest under <stateDir>/pending/, removed
         *  at completion or cancellation; empty without a stateDir. */
        std::string pendingFile;
    };

    /** Daemon-lifetime tallies behind the svc.daemon.* metrics. */
    struct Tally
    {
        std::uint64_t campaignsAccepted = 0;
        std::uint64_t campaignsCompleted = 0;
        std::uint64_t campaignsFailed = 0;
        std::uint64_t trialsCompleted = 0;
        std::uint64_t trialsRestored = 0;
        std::uint64_t stealsTotal = 0;
        std::uint64_t workerDeaths = 0;
        std::uint64_t badFrames = 0;
        std::uint64_t statsRequests = 0;
        std::uint64_t campaignsCancelled = 0;
        std::uint64_t deadlineExpired = 0;
        std::uint64_t reattached = 0;
        std::uint64_t shed = 0;
        /** Milliseconds of respawn backoff scheduled, total. */
        std::uint64_t backoffMsTotal = 0;
        std::uint64_t trialWarns = 0;
        std::uint64_t trialTimeouts = 0;
    };

    DaemonConfig config;
    int listenFd = -1;
    std::uint64_t nextSessionKey = 1;
    std::uint64_t nextCampaignId = 1;
    std::vector<std::unique_ptr<Session>> sessions;
    std::vector<WorkerSlot> slots;
    std::deque<Campaign> campaigns;
    bool shuttingDown = false;
    /** Drain mode: no new work, in-flight shards shrunk to their next
     *  trial boundary, exit once idle (or past the grace window). */
    bool draining = false;
    Clock::time_point drainDeadline{};
    Clock::time_point started = Clock::now();
    Tally tally;
    /** Deterministic jitter stream for respawn backoff. */
    Rng jitterRng{0x6a77e12dull};
    /** prof.svc.* phases (dispatch/merge/checkpoint).  Always on —
     *  a handful of scopes per campaign event, nowhere near the
     *  per-trial hot path the ObsLevel dial guards. */
    obs::ProfData prof;

    explicit Impl(DaemonConfig cfg) : config(std::move(cfg))
    {
        if (config.socketPath.empty())
            fatal("svc: daemon needs a socket path");
        if (config.workers == 0)
            config.workers = 1;
        if (config.workerExe.empty())
            config.workerExe = selfExePath();
    }

    Session *
    sessionByKey(std::uint64_t key)
    {
        for (auto &s : sessions)
            if (s->key == key)
                return s.get();
        return nullptr;
    }

    Campaign *
    campaignById(std::uint64_t id)
    {
        for (Campaign &c : campaigns)
            if (c.id == id)
                return &c;
        return nullptr;
    }

    // -----------------------------------------------------------------
    // Worker process management.
    // -----------------------------------------------------------------

    void
    spawnWorker(WorkerSlot &slot)
    {
        std::vector<std::string> args;
        args.push_back(config.workerExe);
        args.push_back(kWorkerArg);
        args.push_back("--socket=" + config.socketPath);
        args.push_back("--id=" + std::to_string(slot.id));
        args.push_back("--heartbeat-ms=" +
                       std::to_string(config.tun.heartbeatMs));
        // Forward the daemon's sink config so one --log-level flag
        // (or USCOPE_LOG) configures the whole worker tree uniformly.
        const obs::LogConfig log_config = obs::logConfig();
        args.push_back(std::string("--log-level=") +
                       obs::logLevelName(log_config.level));
        if (log_config.json)
            args.push_back("--log-json");
        if (slot.id == 0 && config.worker0DieAfter &&
            !slot.dieAfterSpent) {
            args.push_back("--die-after-trials=" +
                           std::to_string(config.worker0DieAfter));
            slot.dieAfterSpent = true;
        }
        std::vector<char *> argv;
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);

        const pid_t pid = ::fork();
        if (pid < 0) {
            log_.warn("fork failed for worker %d: %s", slot.id,
                      std::strerror(errno));
            return;
        }
        if (pid == 0) {
            ::execv(config.workerExe.c_str(), argv.data());
            // exec failed; nothing sane to do in the child.
            ::_exit(127);
        }
        slot.pid = pid;
        ++slot.spawns;
        slot.busy = false;
        slot.warned = false;
        slot.lastBeat = Clock::now();
        slot.spawnedAt = slot.lastBeat;
        log_.info("spawned worker %d (pid %d, attempt %u)", slot.id,
                  static_cast<int>(pid), slot.spawns);
    }

    void
    handleWorkerDeath(WorkerSlot &slot, const char *why)
    {
        log_.warn("worker %d (pid %d) died: %s", slot.id,
                  static_cast<int>(slot.pid), why);
        ++tally.workerDeaths;
        if (Session *s = sessionByKey(slot.sessionKey))
            s->conn.close();
        // A worker that stayed up well past the backoff cap was
        // healthy; its death starts a fresh streak instead of
        // compounding an old one.
        if (secondsSince(slot.spawnedAt) >
            2.0 * config.tun.backoffMaxSec)
            slot.consecutiveFailures = 0;
        ++slot.consecutiveFailures;
        slot.sessionKey = 0;
        slot.pid = -1;
        slot.busy = false;

        for (Campaign &c : campaigns) {
            if (c.sched->onWorkerDead(slot.id) > 0)
                ++c.workerDeaths;
        }
        if (shuttingDown || draining)
            return;
        if (config.tun.maxRespawns &&
            slot.spawns >= config.tun.maxRespawns) {
            log_.warn("worker %d exhausted its %u respawns", slot.id,
                      config.tun.maxRespawns);
            return;
        }
        // Exponential backoff with deterministic jitter: delay =
        // min(cap, initial * 2^(failures-1)) * U[1-j, 1+j].  The
        // first death in a streak respawns after initialSec; a
        // crash-looping slot settles at the cap instead of forking
        // at poll-loop frequency.
        double delay = config.tun.backoffInitialSec;
        for (unsigned i = 1; i < slot.consecutiveFailures &&
                             delay < config.tun.backoffMaxSec;
             ++i)
            delay *= 2.0;
        if (delay > config.tun.backoffMaxSec)
            delay = config.tun.backoffMaxSec;
        delay *= 1.0 + config.tun.backoffJitter *
                           (2.0 * jitterRng.uniform() - 1.0);
        slot.respawnAt =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(delay));
        tally.backoffMsTotal +=
            static_cast<std::uint64_t>(delay * 1000.0);
        log_.info("worker %d respawns in %.0f ms (failure streak %u)",
                  slot.id, delay * 1000.0, slot.consecutiveFailures);
    }

    /** Respawn every dead slot whose backoff delay has elapsed. */
    void
    maintainWorkers()
    {
        if (shuttingDown || draining)
            return;
        const Clock::time_point now = Clock::now();
        for (WorkerSlot &slot : slots) {
            if (slot.pid >= 0 || now < slot.respawnAt)
                continue;
            if (config.tun.maxRespawns &&
                slot.spawns >= config.tun.maxRespawns)
                continue;
            spawnWorker(slot);
        }
    }

    void
    reapChildren()
    {
        for (;;) {
            int status = 0;
            const pid_t pid = ::waitpid(-1, &status, WNOHANG);
            if (pid <= 0)
                return;
            for (WorkerSlot &slot : slots) {
                if (slot.pid == pid)
                    handleWorkerDeath(slot, "process exited");
            }
        }
    }

    /** The trial a silent busy worker is presumably stuck on: its
     *  shard's low-water mark (everything below already streamed). */
    std::optional<std::size_t>
    suspectTrial(const WorkerSlot &slot)
    {
        Campaign *c = campaignById(slot.campaign);
        if (!c || slot.shard >= c->sched->shardCount())
            return std::nullopt;
        const ShardScheduler::Shard &sh = c->sched->shard(slot.shard);
        if (sh.done || sh.next >= sh.hi)
            return std::nullopt;
        return sh.next;
    }

    /**
     * Give up on a trial that keeps killing workers: record it
     * TimedOut — a measurement ("this input wedges its worker"),
     * mirroring the cycle-budget semantics — so the campaign can
     * complete instead of crash-looping forever.  Deliberately not
     * checkpointed: a later resume retries it with a fresh budget.
     */
    void
    synthesizeTimedOut(Campaign &c, std::size_t index)
    {
        if (c.sched->isDone(index))
            return;
        exp::TrialResult result;
        result.index = index;
        result.seed = exp::deriveTrialSeed(c.spec.masterSeed, index);
        result.status = exp::TrialStatus::TimedOut;
        result.error = "gave up after " +
                       std::to_string(config.tun.trialKillLimit) +
                       " worker kills while stuck on this trial";
        c.results[index] = std::move(result);
        c.sched->seedDone(index);
        ++c.trialTimeouts;
        ++tally.trialTimeouts;
        ++c.sinceUpdate;
        log_.warn("campaign %llu trial %zu marked TimedOut after %u "
                  "worker kills",
                  static_cast<unsigned long long>(c.id), index,
                  config.tun.trialKillLimit);
    }

    /**
     * The slow-trial escalation ladder (DESIGN.md §16): a busy
     * worker silent past trialWarnSec earns one warning; past
     * heartbeatTimeoutSec it is SIGKILLed (its shard is reassigned —
     * the retry rung); a trial whose retries keep killing workers is
     * recorded TimedOut at the trialKillLimit.
     */
    void
    checkHeartbeats()
    {
        for (WorkerSlot &slot : slots) {
            if (!slot.busy || slot.pid < 0)
                continue;
            const double silent = secondsSince(slot.lastBeat);
            if (config.tun.trialWarnSec > 0.0 &&
                silent > config.tun.trialWarnSec && !slot.warned) {
                slot.warned = true;
                ++tally.trialWarns;
                const std::optional<std::size_t> suspect =
                    suspectTrial(slot);
                log_.warn("worker %d busy and silent for %.1fs "
                          "(campaign %llu, shard %zu, trial %lld); "
                          "SIGKILL at %.1fs",
                          slot.id, silent,
                          static_cast<unsigned long long>(
                              slot.campaign),
                          slot.shard,
                          suspect ? static_cast<long long>(*suspect)
                                  : -1ll,
                          config.tun.heartbeatTimeoutSec);
            }
            if (silent <= config.tun.heartbeatTimeoutSec)
                continue;
            // Busy and silent past the deadline: presumed wedged.
            // Charge the kill to the trial the worker was stuck on;
            // at the limit, stop retrying and record it TimedOut.
            if (const std::optional<std::size_t> suspect =
                    suspectTrial(slot)) {
                Campaign *c = campaignById(slot.campaign);
                if (c && ++c->stuckKills[*suspect] >=
                             config.tun.trialKillLimit)
                    synthesizeTimedOut(*c, *suspect);
            }
            ::kill(slot.pid, SIGKILL);
            ++slot.kills;
            handleWorkerDeath(slot, "heartbeat timeout");
        }
    }

    // -----------------------------------------------------------------
    // Campaign lifecycle.
    // -----------------------------------------------------------------

    void
    sendError(Session &to, std::uint64_t campaign_id,
              const std::string &message)
    {
        to.conn.send(json::Value::object()
                         .set("type", "error")
                         .set("campaign", campaign_id)
                         .set("message", message));
    }

    /** <stateDir>/<sanitized name>-<identity hash>: the stable,
     *  request-derived key both the checkpoint dir and the pending
     *  manifest use. */
    std::string
    durableKey(const CampaignRequest &request,
               const exp::CampaignSpec &spec) const
    {
        return sanitizeName(spec.name) + "-" +
               exp::fnv1aHex(request.identityKey()).substr(2);
    }

    std::string
    pendingDir() const
    {
        return config.stateDir + "/pending";
    }

    /**
     * Persist the resumable manifest: enough to resubmit this
     * campaign verbatim after a daemon restart (clean drain or
     * kill -9 alike).  Removed when the campaign completes or is
     * cancelled; scanned by resumePendingCampaigns() at startup.
     */
    void
    writePendingManifest(Campaign &c)
    {
        if (config.stateDir.empty())
            return;
        std::error_code ec;
        std::filesystem::create_directories(pendingDir(), ec);
        if (ec)
            return;
        c.pendingFile =
            pendingDir() + "/" + durableKey(c.request, c.spec) +
            ".json";
        const json::Value manifest =
            json::Value::object()
                .set("request", c.request.toJson())
                .set("stream_every",
                     static_cast<std::uint64_t>(c.streamEvery));
        exp::writeFileAtomic(c.pendingFile, manifest.dump());
    }

    void
    removePendingManifest(Campaign &c)
    {
        if (c.pendingFile.empty())
            return;
        ::unlink(c.pendingFile.c_str());
        c.pendingFile.clear();
    }

    /**
     * Common accept path for client submits and startup resumes:
     * build the spec, attach durable state (checkpoint preload +
     * pending manifest), shard, announce.  Returns the error text
     * instead of sending it so each caller can frame it properly.
     */
    std::optional<std::string>
    acceptCampaign(const CampaignRequest &request,
                   std::size_t stream_every, Session *client)
    {
        Campaign c;
        c.id = nextCampaignId++;
        c.request = request;
        try {
            c.spec = buildSpec(c.request);
        } catch (const std::exception &e) {
            return std::string(e.what());
        }
        if (c.spec.trials == 0)
            return std::string("campaign has zero trials");
        c.clientKey = client ? client->key : 0;
        c.streamEvery = stream_every;
        c.deadlineSeconds = request.deadlineSeconds;
        c.results.resize(c.spec.trials);
        c.sched = std::make_unique<ShardScheduler>(c.spec.trials,
                                                   config.workers);

        if (!config.stateDir.empty()) {
            obs::ProfScope timer(&prof, "prof.svc.checkpoint");
            // The durable identity covers everything that determines
            // results; same request => same directory => a daemon
            // restart resumes instead of restarting.  (identityKey
            // excludes the obs level, so resubmitting at --obs=trace
            // resumes the same durable state.)
            c.checkpointDir = config.stateDir + "/" +
                              durableKey(c.request, c.spec);
            c.spec.checkpointDir = c.checkpointDir;
            const exp::CampaignCheckpoint checkpoint(c.spec);
            if (checkpoint.resuming()) {
                for (std::size_t i = 0; i < c.spec.trials; ++i) {
                    std::optional<exp::TrialResult> trial =
                        checkpoint.loadTrial(i);
                    if (!trial)
                        continue;
                    c.results[i] = std::move(*trial);
                    c.sched->seedDone(i);
                    ++c.resumed;
                }
            }
            writePendingManifest(c);
        }

        if (client)
            client->conn.send(
                json::Value::object()
                    .set("type", "accepted")
                    .set("campaign", c.id)
                    .set("total",
                         static_cast<std::uint64_t>(c.spec.trials))
                    .set("resumed",
                         static_cast<std::uint64_t>(c.resumed)));
        ++tally.campaignsAccepted;
        log_.info("campaign %llu '%s' accepted (%zu trials, %zu "
                  "resumed, ns='%s', obs=%s, deadline=%.1fs%s)",
                  static_cast<unsigned long long>(c.id),
                  c.spec.name.c_str(), c.spec.trials, c.resumed,
                  c.request.ns.c_str(),
                  obs::obsLevelName(c.request.obs),
                  c.deadlineSeconds,
                  client ? "" : ", orphan resume");
        campaigns.push_back(std::move(c));
        assignIdleWorkers();
        finishCompleted(); // a fully-resumed campaign is already done
        return std::nullopt;
    }

    void
    handleSubmit(Session &client, const json::Value &msg)
    {
        const json::Value *request_json = msg.get("request");
        std::optional<CampaignRequest> request =
            request_json ? CampaignRequest::fromJson(*request_json)
                         : std::nullopt;
        if (!request) {
            sendError(client, 0, "malformed campaign request");
            return;
        }
        // Load shedding (graceful degradation, DESIGN.md §16): a
        // draining daemon accepts nothing, and past the queue limit
        // new work is refused with a structured busy frame instead
        // of an ever-growing queue of campaigns nobody is serving.
        if (draining || campaigns.size() >= config.tun.queueLimit) {
            ++tally.shed;
            client.conn.send(
                json::Value::object()
                    .set("type", "busy")
                    .set("queue_depth", static_cast<std::uint64_t>(
                                            campaigns.size()))
                    .set("limit", static_cast<std::uint64_t>(
                                      config.tun.queueLimit))
                    .set("message",
                         draining
                             ? "daemon is draining; resubmit after "
                               "restart (durable state resumes)"
                             : "campaign queue is full; retry with "
                               "backoff"));
            return;
        }
        const std::size_t stream_every =
            msg.get("stream_every") ? field(msg, "stream_every")
                                    : config.streamEvery;
        if (std::optional<std::string> error =
                acceptCampaign(*request, stream_every, &client))
            sendError(client, 0, *error);
    }

    /**
     * {"type":"attach"}: re-bind a running campaign — matched by
     * CampaignRequest::identityKey(), its stable id — to this
     * session and replay the current partial immediately, so a
     * reconnecting client resumes streaming from the last acked
     * state.  The final fingerprint is byte-identical to a never-
     * disconnected run by construction: attach changes who is
     * listening, never what executes.
     */
    void
    handleAttach(Session &client, const json::Value &msg)
    {
        const json::Value *request_json = msg.get("request");
        std::optional<CampaignRequest> request =
            request_json ? CampaignRequest::fromJson(*request_json)
                         : std::nullopt;
        if (!request) {
            sendError(client, 0, "malformed campaign request");
            return;
        }
        const std::string key = request->identityKey();
        for (Campaign &c : campaigns) {
            if (c.request.identityKey() != key)
                continue;
            c.clientKey = client.key;
            if (msg.get("stream_every"))
                c.streamEvery = field(msg, "stream_every");
            ++tally.reattached;
            log_.info("campaign %llu re-attached by session %llu",
                      static_cast<unsigned long long>(c.id),
                      static_cast<unsigned long long>(client.key));
            client.conn.send(
                json::Value::object()
                    .set("type", "attached")
                    .set("campaign", c.id)
                    .set("total", static_cast<std::uint64_t>(
                                      c.sched->trials()))
                    .set("resumed",
                         static_cast<std::uint64_t>(c.resumed)));
            // Catch the new listener up to the last acked partial
            // right away rather than waiting out streamEvery.
            maybeStreamUpdate(c, /*force=*/true);
            return;
        }
        client.conn.send(
            json::Value::object()
                .set("type", "error")
                .set("campaign", std::uint64_t(0))
                .set("code", "not_found")
                .set("message",
                     "no running campaign matches this request; "
                     "submit instead (durable state resumes)"));
    }

    /** The terminal frame both cancel paths send: partial aggregate,
     *  credits, and where the durable state lives. */
    json::Value
    cancelledFrame(Campaign &c, const std::string &reason)
    {
        return json::Value::object()
            .set("type", "cancelled")
            .set("campaign", c.id)
            .set("reason", reason)
            .set("completed",
                 static_cast<std::uint64_t>(c.sched->completed()))
            .set("total",
                 static_cast<std::uint64_t>(c.sched->trials()))
            .set("aggregate", partialAggregate(c).toJson())
            .set("credits", creditsJson(c))
            .set("checkpoint_dir", c.checkpointDir);
    }

    /**
     * Stop a campaign: dispatch ceases now (the campaign leaves the
     * queue), in-flight shards are reaped at the next trial boundary
     * (a shrink-to-zero rides the same channel steals use; the
     * worker's current_hi hook honours it at its next heartbeat),
     * the checkpoint dir survives for a later resume, and both the
     * owner and the canceller get the partial aggregate.  The
     * pending manifest goes away — an explicit cancel (or an expired
     * deadline) must not resurrect at the next daemon restart.
     */
    void
    cancelCampaign(std::uint64_t id, const std::string &reason,
                   bool deadline, Session *canceller)
    {
        for (auto it = campaigns.begin(); it != campaigns.end();
             ++it) {
            if (it->id != id)
                continue;
            Campaign &c = *it;
            for (WorkerSlot &slot : slots) {
                if (!slot.busy || slot.campaign != c.id)
                    continue;
                if (Session *ws = sessionByKey(slot.sessionKey))
                    ws->conn.send(
                        json::Value::object()
                            .set("type", "shrink")
                            .set("shard",
                                 static_cast<std::uint64_t>(
                                     slot.shard))
                            .set("hi", std::uint64_t(0)));
            }
            const json::Value frame = cancelledFrame(c, reason);
            Session *owner = sessionByKey(c.clientKey);
            if (owner)
                owner->conn.send(frame);
            if (canceller && canceller != owner)
                canceller->conn.send(frame);
            removePendingManifest(c);
            if (deadline)
                ++tally.deadlineExpired;
            else
                ++tally.campaignsCancelled;
            log_.info("campaign %llu '%s' cancelled (%s): %zu/%zu "
                      "trials done, checkpoint %s",
                      static_cast<unsigned long long>(c.id),
                      c.spec.name.c_str(), reason.c_str(),
                      c.sched->completed(), c.sched->trials(),
                      c.checkpointDir.empty()
                          ? "none"
                          : c.checkpointDir.c_str());
            campaigns.erase(it);
            return;
        }
        if (canceller)
            canceller->conn.send(
                json::Value::object()
                    .set("type", "error")
                    .set("campaign", id)
                    .set("code", "not_found")
                    .set("message", "no such campaign"));
    }

    /** {"type":"cancel"}: by numeric id, or by request identity
     *  (the same match attach uses). */
    void
    handleCancel(Session &client, const json::Value &msg)
    {
        if (msg.get("campaign")) {
            cancelCampaign(field(msg, "campaign"),
                           "cancelled by client",
                           /*deadline=*/false, &client);
            return;
        }
        if (const json::Value *request_json = msg.get("request")) {
            if (std::optional<CampaignRequest> request =
                    CampaignRequest::fromJson(*request_json)) {
                const std::string key = request->identityKey();
                for (Campaign &c : campaigns) {
                    if (c.request.identityKey() == key) {
                        cancelCampaign(c.id, "cancelled by client",
                                       /*deadline=*/false, &client);
                        return;
                    }
                }
                client.conn.send(
                    json::Value::object()
                        .set("type", "error")
                        .set("campaign", std::uint64_t(0))
                        .set("code", "not_found")
                        .set("message", "no such campaign"));
                return;
            }
        }
        sendError(client, 0,
                  "cancel needs a \"campaign\" id or a \"request\"");
    }

    /** Expire campaigns past their wall-clock deadline — an
     *  automatic cancel, checkpoint preserved. */
    void
    checkDeadlines()
    {
        std::vector<std::uint64_t> expired;
        for (Campaign &c : campaigns)
            if (c.deadlineSeconds > 0.0 &&
                secondsSince(c.start) > c.deadlineSeconds)
                expired.push_back(c.id);
        for (std::uint64_t id : expired)
            cancelCampaign(id, "deadline exceeded",
                           /*deadline=*/true, nullptr);
    }

    /**
     * Startup scan of <stateDir>/pending/: every manifest is a
     * campaign a previous daemon accepted but never finished (drain,
     * crash, kill -9).  Resume each as an orphan — clientKey 0, which
     * no session ever has (keys start at 1) — so the work completes
     * whether or not its client ever returns; a returning client
     * finds it by identity via {"type":"attach"}.
     */
    void
    resumePendingCampaigns()
    {
        if (config.stateDir.empty())
            return;
        std::error_code ec;
        std::filesystem::directory_iterator it(pendingDir(), ec);
        if (ec)
            return;
        // Deterministic resume order (directory order is not).
        std::vector<std::filesystem::path> manifests;
        for (const auto &entry : it)
            if (entry.path().extension() == ".json")
                manifests.push_back(entry.path());
        std::sort(manifests.begin(), manifests.end());
        for (const std::filesystem::path &path : manifests) {
            std::ifstream in(path, std::ios::binary);
            std::string text(
                (std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
            const std::optional<json::Value> manifest =
                json::Value::parse(text);
            const json::Value *request_json =
                manifest ? manifest->get("request") : nullptr;
            std::optional<CampaignRequest> request =
                request_json
                    ? CampaignRequest::fromJson(*request_json)
                    : std::nullopt;
            if (!request) {
                log_.warn("dropping unreadable pending manifest %s",
                          path.c_str());
                ::unlink(path.c_str());
                continue;
            }
            log_.info("resuming pending campaign from %s",
                      path.c_str());
            if (std::optional<std::string> error = acceptCampaign(
                    *request,
                    manifest->get("stream_every")
                        ? field(*manifest, "stream_every")
                        : config.streamEvery,
                    nullptr)) {
                log_.warn("pending campaign %s no longer builds "
                          "(%s); dropping its manifest",
                          path.c_str(), error->c_str());
                ::unlink(path.c_str());
            }
        }
    }

    /**
     * Drain (SIGTERM or {"type":"drain"}): stop accepting work, stop
     * every in-flight shard at its next trial boundary (shrink-to-
     * zero; completed trials are already checkpointed by the workers
     * as they go), keep every pending manifest so the next daemon
     * resumes the cut campaigns, and exit once all workers are idle
     * or the grace window runs out.
     */
    void
    beginDrain()
    {
        if (draining || shuttingDown)
            return;
        draining = true;
        drainDeadline =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(
                    config.tun.drainGraceSec));
        log_.info("draining: %zu campaign(s) in flight, grace %.1fs",
                  campaigns.size(), config.tun.drainGraceSec);
        for (WorkerSlot &slot : slots) {
            if (!slot.busy)
                continue;
            if (Session *ws = sessionByKey(slot.sessionKey))
                ws->conn.send(json::Value::object()
                                  .set("type", "shrink")
                                  .set("shard",
                                       static_cast<std::uint64_t>(
                                           slot.shard))
                                  .set("hi", std::uint64_t(0)));
        }
        // Informational only — the durable state is the contract; a
        // client that misses this learns from the dropped connection.
        for (Campaign &c : campaigns)
            if (Session *owner = sessionByKey(c.clientKey))
                owner->conn.send(json::Value::object()
                                     .set("type", "draining")
                                     .set("campaign", c.id));
    }

    void
    drainProgress()
    {
        if (g_drainRequested) {
            g_drainRequested = 0;
            log_.info("SIGTERM received; draining");
            beginDrain();
        }
        if (!draining || shuttingDown)
            return;
        for (const WorkerSlot &slot : slots) {
            if (!slot.busy || slot.pid < 0)
                continue;
            if (Clock::now() <= drainDeadline)
                return; // still waiting on a trial boundary
            log_.warn("drain grace expired with busy workers; "
                      "exiting anyway (checkpoints cover the cut)");
            break;
        }
        log_.info("drain complete; %zu campaign(s) left resumable",
                  campaigns.size());
        shuttingDown = true;
    }

    /** Partial aggregate over completed trials, in index order —
     *  the same fold the final result uses. */
    exp::CampaignAggregate
    partialAggregate(const Campaign &c)
    {
        obs::ProfScope timer(&prof, "prof.svc.merge");
        std::vector<exp::TrialResult> done;
        for (std::size_t i = 0; i < c.results.size(); ++i)
            if (c.sched->isDone(i))
                done.push_back(c.results[i]);
        return exp::aggregateTrials(done);
    }

    /** Campaign-scoped per-worker credits as `{"<id>": {run,
     *  restored}}` — the telemetry behind the counter-sum tests. */
    static json::Value
    creditsJson(const Campaign &c)
    {
        json::Value out = json::Value::object();
        for (const auto &[worker, credit] : c.credits)
            out.set(std::to_string(worker),
                    json::Value::object()
                        .set("run", credit.run)
                        .set("restored", credit.restored));
        return out;
    }

    /** Per-worker metric streams, tagged "svc.worker<id>.". */
    obs::MetricSnapshot
    workerMetrics() const
    {
        obs::MetricSnapshot merged;
        for (const WorkerSlot &slot : slots) {
            obs::MetricSnapshot snap =
                countersSnapshot(slot.counters);
            if (snap.empty())
                continue;
            merged.merge(snap.prefixed(
                "svc.worker" + std::to_string(slot.id) + "."));
        }
        return merged;
    }

    /** Daemon-lifetime counters, tagged "svc.daemon.". */
    obs::MetricSnapshot
    daemonMetrics() const
    {
        const json::Value counters =
            json::Value::object()
                .set("backoff_ms", tally.backoffMsTotal)
                .set("bad_frames", tally.badFrames)
                .set("campaigns_accepted", tally.campaignsAccepted)
                .set("campaigns_cancelled",
                     tally.campaignsCancelled)
                .set("campaigns_completed",
                     tally.campaignsCompleted)
                .set("campaigns_failed", tally.campaignsFailed)
                .set("deadline_expired", tally.deadlineExpired)
                .set("reattached", tally.reattached)
                .set("shed", tally.shed)
                .set("stats_requests", tally.statsRequests)
                .set("steals_total", tally.stealsTotal)
                .set("trial_timeouts", tally.trialTimeouts)
                .set("trial_warns", tally.trialWarns)
                .set("trials_completed", tally.trialsCompleted)
                .set("trials_restored", tally.trialsRestored)
                .set("worker_deaths", tally.workerDeaths);
        return countersSnapshot(counters).prefixed("svc.daemon.");
    }

    /**
     * The live ops snapshot (DESIGN.md §14): every campaign's shard
     * table and per-worker credits, every worker slot's process
     * state, the merged svc.daemon.* + svc.worker<id>.* metrics, and
     * the daemon's prof.svc.* phases folded with each worker's
     * streamed prof.trial.* lifetime totals.
     */
    void
    handleStats(Session &client)
    {
        ++tally.statsRequests;

        json::Value campaign_list = json::Value::array();
        for (Campaign &c : campaigns) {
            json::Value shard_list = json::Value::array();
            std::uint64_t pending = 0;
            for (std::size_t s = 0; s < c.sched->shardCount();
                 ++s) {
                const ShardScheduler::Shard &sh = c.sched->shard(s);
                if (!sh.done)
                    ++pending;
                shard_list.push(
                    json::Value::object()
                        .set("id",
                             static_cast<std::uint64_t>(sh.id))
                        .set("lo",
                             static_cast<std::uint64_t>(sh.lo))
                        .set("hi",
                             static_cast<std::uint64_t>(sh.hi))
                        .set("next",
                             static_cast<std::uint64_t>(sh.next))
                        .set("owner", sh.owner)
                        .set("done", sh.done));
            }
            campaign_list.push(
                json::Value::object()
                    .set("id", c.id)
                    .set("name", c.spec.name)
                    .set("recipe", c.request.recipe)
                    .set("ns", c.request.ns)
                    .set("obs", obs::obsLevelName(c.request.obs))
                    .set("total", static_cast<std::uint64_t>(
                                      c.sched->trials()))
                    .set("completed",
                         static_cast<std::uint64_t>(
                             c.sched->completed()))
                    .set("resumed",
                         static_cast<std::uint64_t>(c.resumed))
                    .set("steals", static_cast<std::uint64_t>(
                                       c.sched->steals()))
                    .set("worker_deaths", c.workerDeaths)
                    .set("trial_timeouts", c.trialTimeouts)
                    .set("deadline_seconds", c.deadlineSeconds)
                    .set("age_seconds", secondsSince(c.start))
                    .set("stream_every",
                         static_cast<std::uint64_t>(c.streamEvery))
                    .set("pending_shards", pending)
                    .set("credits", creditsJson(c))
                    .set("shards", std::move(shard_list)));
        }

        json::Value worker_list = json::Value::array();
        obs::ProfData prof_merged = prof;
        for (const WorkerSlot &slot : slots) {
            worker_list.push(
                json::Value::object()
                    .set("id", slot.id)
                    .set("pid", static_cast<int>(slot.pid))
                    .set("busy", slot.busy)
                    .set("spawns", slot.spawns)
                    .set("kills", slot.kills)
                    .set("heartbeat_age_seconds",
                         secondsSince(slot.lastBeat))
                    .set("campaign",
                         slot.busy ? slot.campaign
                                   : std::uint64_t(0))
                    .set("shard",
                         static_cast<std::uint64_t>(
                             slot.busy ? slot.shard : 0))
                    .set("counters", slot.counters));
            prof_merged.merge(obs::ProfData::fromJson(slot.prof));
        }

        obs::MetricSnapshot metrics = daemonMetrics();
        metrics.merge(workerMetrics());

        client.conn.send(
            json::Value::object()
                .set("type", "stats")
                .set("uptime_seconds", secondsSince(started))
                .set("shutting_down", shuttingDown)
                .set("draining", draining)
                .set("queue_limit",
                     static_cast<std::uint64_t>(
                         config.tun.queueLimit))
                .set("workers",
                     static_cast<std::uint64_t>(slots.size()))
                .set("campaigns", std::move(campaign_list))
                .set("worker_table", std::move(worker_list))
                .set("metrics", metrics.toJson())
                .set("prof", prof_merged.toJson()));
    }

    void
    maybeStreamUpdate(Campaign &c, bool force = false)
    {
        // force (attach catch-up) streams even when the campaign
        // asked for no periodic updates.
        if (!force && (c.streamEvery == 0 ||
                       c.sinceUpdate < c.streamEvery))
            return;
        c.sinceUpdate = 0;
        Session *client = sessionByKey(c.clientKey);
        if (!client || !client->conn.open())
            return;
        client->conn.send(
            json::Value::object()
                .set("type", "update")
                .set("campaign", c.id)
                .set("completed",
                     static_cast<std::uint64_t>(
                         c.sched->completed()))
                .set("total", static_cast<std::uint64_t>(
                                  c.sched->trials()))
                .set("aggregate", partialAggregate(c).toJson())
                .set("credits", creditsJson(c))
                .set("worker_metrics", workerMetrics().toJson()));
    }

    void
    finishCompleted()
    {
        for (auto it = campaigns.begin(); it != campaigns.end();) {
            Campaign &c = *it;
            if (!c.sched->allDone()) {
                ++it;
                continue;
            }
            exp::CampaignResult result;
            result.name = c.spec.name;
            result.trialCount = c.spec.trials;
            result.masterSeed = c.spec.masterSeed;
            result.workers = config.workers;
            result.wallSeconds = secondsSince(c.start);
            result.resumedTrials = c.resumed;
            result.workerDeaths = c.workerDeaths;
            {
                obs::ProfScope timer(&prof, "prof.svc.merge");
                result.aggregate = exp::aggregateTrials(c.results);
            }
            result.trials = c.results;
            const std::string fingerprint = exp::fnv1aHex(
                exp::deterministicFingerprint(result));

            // Chaos site: die between the merge and the result send —
            // the worst possible moment.  Trials are checkpointed and
            // the pending manifest still exists, so a restarted
            // daemon must resume, re-merge, and produce the same
            // fingerprint.
            if (chaosAbortMerge()) {
                log_.warn("chaos: aborting mid-merge of campaign "
                          "%llu",
                          static_cast<unsigned long long>(c.id));
                ::_exit(42);
            }

            removePendingManifest(c);
            ++tally.campaignsCompleted;
            log_.info("campaign %llu '%s' complete: %zu trials, "
                      "%zu resumed, %u worker deaths, %zu steals, "
                      "fingerprint %s",
                      static_cast<unsigned long long>(c.id),
                      result.name.c_str(), result.trialCount,
                      result.resumedTrials, result.workerDeaths,
                      c.sched->steals(), fingerprint.c_str());

            if (Session *client = sessionByKey(c.clientKey)) {
                client->conn.send(
                    json::Value::object()
                        .set("type", "result")
                        .set("campaign", c.id)
                        .set("fingerprint", fingerprint)
                        .set("worker_deaths", c.workerDeaths)
                        .set("steals",
                             static_cast<std::uint64_t>(
                                 c.sched->steals()))
                        .set("credits", creditsJson(c))
                        .set("result",
                             result.toJson(
                                 /*include_trials=*/false)));
            }
            it = campaigns.erase(it);
        }
    }

    void
    assignIdleWorkers()
    {
        if (campaigns.empty() || draining)
            return; // keep the idle poll loop out of the profile
        obs::ProfScope timer(&prof, "prof.svc.dispatch");
        for (WorkerSlot &slot : slots) {
            if (slot.busy || slot.sessionKey == 0)
                continue;
            Session *session = sessionByKey(slot.sessionKey);
            if (!session || !session->conn.open())
                continue;
            for (Campaign &c : campaigns) {
                std::optional<ShardScheduler::Assignment> a =
                    c.sched->assign(slot.id);
                if (!a)
                    continue;
                if (a->stolenFrom) {
                    ++tally.stealsTotal;
                    const ShardScheduler::Shard &victim =
                        c.sched->shard(*a->stolenFrom);
                    for (WorkerSlot &other : slots) {
                        if (other.id != victim.owner ||
                            other.sessionKey == 0)
                            continue;
                        if (Session *os =
                                sessionByKey(other.sessionKey))
                            os->conn.send(
                                json::Value::object()
                                    .set("type", "shrink")
                                    .set("shard",
                                         static_cast<std::uint64_t>(
                                             victim.id))
                                    .set("hi",
                                         static_cast<std::uint64_t>(
                                             victim.hi)));
                    }
                }
                session->conn.send(
                    json::Value::object()
                        .set("type", "shard")
                        .set("campaign", c.id)
                        .set("shard",
                             static_cast<std::uint64_t>(a->shard))
                        .set("lo",
                             static_cast<std::uint64_t>(a->lo))
                        .set("hi",
                             static_cast<std::uint64_t>(a->hi))
                        .set("checkpoint_dir", c.checkpointDir)
                        .set("request", c.request.toJson()));
                slot.busy = true;
                slot.campaign = c.id;
                slot.shard = a->shard;
                slot.lastBeat = Clock::now();
                break;
            }
        }
    }

    /** With a finite respawn budget (tun.maxRespawns > 0) and every
     *  worker past it, no worker can ever run again: fail the
     *  outstanding campaigns instead of hanging their clients
     *  forever.  The default budget (0 = retry forever with backoff)
     *  never strands — losing ALL workers just queues work until a
     *  respawn sticks. */
    void
    failCampaignsIfStranded()
    {
        if (campaigns.empty() || config.tun.maxRespawns == 0)
            return;
        for (const WorkerSlot &slot : slots) {
            if (slot.pid >= 0 ||
                slot.spawns < config.tun.maxRespawns)
                return;
        }
        log_.warn("all workers permanently dead; failing %zu "
                  "campaign(s)", campaigns.size());
        for (Campaign &c : campaigns) {
            if (Session *client = sessionByKey(c.clientKey))
                sendError(*client, c.id,
                          "all workers permanently dead");
            removePendingManifest(c);
            ++tally.campaignsFailed;
        }
        campaigns.clear();
    }

    // -----------------------------------------------------------------
    // Message dispatch.
    // -----------------------------------------------------------------

    void
    handleWorkerMessage(Session &session, const json::Value &msg,
                        const std::string &type)
    {
        WorkerSlot &slot = slots[static_cast<std::size_t>(
            session.workerId)];
        slot.lastBeat = Clock::now();
        slot.warned = false; // it spoke; the silence is over
        if (const json::Value *counters = msg.get("counters"))
            slot.counters = *counters;
        if (const json::Value *worker_prof = msg.get("prof"))
            slot.prof = *worker_prof;

        if (type == "heartbeat")
            return;
        if (type == "trial") {
            Campaign *c = campaignById(field(msg, "campaign"));
            if (!c)
                return; // campaign already finished (overlap race)
            const std::size_t index = field(msg, "index");
            const std::size_t shard = field(msg, "shard");
            std::optional<exp::TrialResult> trial =
                exp::CampaignCheckpoint::parseTrial(
                    stringField(msg, "data"));
            if (!trial || trial->index != index) {
                log_.warn("worker %d sent an unparseable trial %zu "
                          "for campaign %llu",
                          slot.id, index,
                          static_cast<unsigned long long>(c->id));
                return;
            }
            if (c->sched->onTrial(shard, index)) {
                // Credit exactly at the dedup point: whatever steal
                // or kill races replayed this trial, precisely one
                // worker gets it — so per-worker credits always sum
                // to the completed count.
                const json::Value *restored_v = msg.get("restored");
                Credit &credit = c->credits[slot.id];
                if (restored_v && restored_v->asBool()) {
                    ++credit.restored;
                    ++tally.trialsRestored;
                } else {
                    ++credit.run;
                }
                ++tally.trialsCompleted;
                c->results[index] = std::move(*trial);
                ++c->sinceUpdate;
                maybeStreamUpdate(*c);
            }
            return;
        }
        if (type == "shard_done") {
            slot.busy = false;
            Campaign *c = campaignById(field(msg, "campaign"));
            if (c)
                c->sched->onShardDone(field(msg, "shard"));
            return;
        }
        if (type == "error") {
            const std::uint64_t campaign_id = field(msg, "campaign");
            log_.warn("worker %d error: %s", slot.id,
                      stringField(msg, "message").c_str());
            slot.busy = false;
            if (Campaign *c = campaignById(campaign_id)) {
                if (Session *client = sessionByKey(c->clientKey))
                    sendError(*client, campaign_id,
                              stringField(msg, "message"));
                // A deterministic build/recipe failure must not
                // resurrect at every daemon restart.
                removePendingManifest(*c);
                ++tally.campaignsFailed;
                for (auto it = campaigns.begin();
                     it != campaigns.end(); ++it) {
                    if (it->id == campaign_id) {
                        campaigns.erase(it);
                        break;
                    }
                }
            }
            return;
        }
        log_.warn("worker %d sent unexpected '%s'", slot.id,
                  type.c_str());
    }

    void
    handleMessage(Session &session, const json::Value &msg)
    {
        const std::string type = stringField(msg, "type");

        if (type == "hello") {
            const int id = static_cast<int>(field(msg, "id"));
            if (id < 0 ||
                id >= static_cast<int>(slots.size())) {
                log_.warn("hello from unknown worker id %d", id);
                session.conn.close();
                return;
            }
            session.workerId = id;
            WorkerSlot &slot = slots[static_cast<std::size_t>(id)];
            slot.sessionKey = session.key;
            slot.lastBeat = Clock::now();
            return;
        }
        if (session.workerId >= 0) {
            handleWorkerMessage(session, msg, type);
            return;
        }

        // Client messages.
        if (type == "submit") {
            handleSubmit(session, msg);
        } else if (type == "attach") {
            handleAttach(session, msg);
        } else if (type == "cancel") {
            handleCancel(session, msg);
        } else if (type == "drain") {
            log_.info("drain requested by session %llu",
                      static_cast<unsigned long long>(session.key));
            beginDrain();
            session.conn.send(
                json::Value::object().set("type", "draining"));
        } else if (type == "ping") {
            session.conn.send(
                json::Value::object().set("type", "pong"));
        } else if (type == "list") {
            json::Value recipes = json::Value::array();
            for (const auto &[name, description] :
                 CampaignRegistry::global().list())
                recipes.push(json::Value::object()
                                 .set("recipe", name)
                                 .set("description", description));
            session.conn.send(json::Value::object()
                                  .set("type", "recipes")
                                  .set("recipes",
                                       std::move(recipes)));
        } else if (type == "stats") {
            handleStats(session);
        } else if (type == "shutdown") {
            log_.info("shutdown requested");
            shuttingDown = true;
            session.conn.send(
                json::Value::object().set("type", "ok"));
        } else {
            sendError(session, 0,
                      "unknown message type '" + type + "'");
        }
    }

    void
    dropSession(std::size_t index)
    {
        Session &session = *sessions[index];
        if (session.workerId >= 0) {
            WorkerSlot &slot = slots[static_cast<std::size_t>(
                session.workerId)];
            if (slot.sessionKey == session.key) {
                slot.sessionKey = 0;
                if (slot.pid >= 0) {
                    ::kill(slot.pid, SIGKILL);
                    ++slot.kills;
                }
                handleWorkerDeath(slot, "connection lost");
            }
        } else {
            // A vanished client orphans its campaigns; they run to
            // completion (durable state survives) with nowhere to
            // stream.
            for (Campaign &c : campaigns)
                if (c.clientKey == session.key)
                    c.clientKey = 0;
        }
        sessions.erase(sessions.begin() +
                       static_cast<std::ptrdiff_t>(index));
    }

    // -----------------------------------------------------------------
    // The loop.
    // -----------------------------------------------------------------

    int
    run()
    {
        if (!config.stateDir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(config.stateDir, ec);
            if (ec)
                fatal("svc: cannot create state dir '%s': %s",
                      config.stateDir.c_str(),
                      ec.message().c_str());
        }
        listenFd = listenUnix(config.socketPath);
        log_.info("listening on %s (%u workers)",
                  config.socketPath.c_str(), config.workers);

        // SIGTERM = drain.  Restore on exit so thread-hosted test
        // daemons do not leave the handler behind.
        g_drainRequested = 0;
        struct sigaction drain_action = {};
        drain_action.sa_handler = onSigterm;
        struct sigaction prev_action = {};
        ::sigaction(SIGTERM, &drain_action, &prev_action);

        seedChaosRole(1); // decorrelate from workers' streams

        slots.resize(config.workers);
        for (unsigned i = 0; i < config.workers; ++i) {
            slots[i].id = static_cast<int>(i);
            spawnWorker(slots[i]);
        }

        // Campaigns a previous daemon left behind resume before the
        // first client connects.
        resumePendingCampaigns();

        while (!shuttingDown) {
            std::vector<pollfd> fds;
            fds.push_back(pollfd{listenFd, POLLIN, 0});
            for (auto &s : sessions) {
                short events = POLLIN;
                // A session with buffered outbound bytes (a slow
                // client) needs a POLLOUT wakeup to drain.
                if (s->conn.wantWrite())
                    events |= POLLOUT;
                fds.push_back(pollfd{s->conn.fd(), events, 0});
            }
            ::poll(fds.data(),
                   static_cast<nfds_t>(fds.size()), 100);

            if (fds[0].revents & POLLIN) {
                for (;;) {
                    if (!waitReadable(listenFd, 0))
                        break;
                    const int fd = acceptUnix(listenFd);
                    if (fd < 0)
                        break;
                    auto session = std::make_unique<Session>();
                    session->key = nextSessionKey++;
                    session->conn = Conn(fd);
                    // Never let one stalled peer block the loop: all
                    // daemon-side sends buffer and drain on POLLOUT.
                    session->conn.setBuffered(true);
                    sessions.push_back(std::move(session));
                }
            }

            // Pump every session; collect messages, then dispatch.
            // (Dispatch can add sessions — submits spawn nothing, but
            // worker deaths respawn — so iterate by index.)
            for (std::size_t i = 0; i < sessions.size();) {
                Session &session = *sessions[i];
                session.conn.flushOut();
                const bool alive = session.conn.pump();
                while (std::optional<json::Value> msg =
                           session.conn.next()) {
                    handleMessage(session, *msg);
                    if (shuttingDown)
                        break;
                }
                // A malformed frame is the sender's bug, not ours:
                // answer each one with a structured error instead of
                // swallowing it silently (DESIGN.md §14).
                if (const std::size_t bad =
                        session.conn.takeBadFrames()) {
                    tally.badFrames += bad;
                    log_.warn("session %llu sent %zu malformed "
                              "frame(s)",
                              static_cast<unsigned long long>(
                                  session.key),
                              bad);
                    for (std::size_t b = 0; b < bad; ++b)
                        session.conn.send(
                            json::Value::object()
                                .set("type", "error")
                                .set("campaign", std::uint64_t(0))
                                .set("message",
                                     "malformed frame (not valid "
                                     "JSON)"));
                }
                if (!alive || !session.conn.open()) {
                    if (session.conn.corruptStream()) {
                        ++tally.badFrames;
                        log_.warn("session %llu sent an oversized "
                                  "frame; dropping connection",
                                  static_cast<unsigned long long>(
                                      session.key));
                        session.conn.sendFinal(
                            json::Value::object()
                                .set("type", "error")
                                .set("campaign", std::uint64_t(0))
                                .set("message",
                                     "oversized frame exceeds the "
                                     "256 MiB limit"));
                    }
                    dropSession(i);
                    continue;
                }
                ++i;
            }

            reapChildren();
            checkHeartbeats();
            maintainWorkers();
            checkDeadlines();
            failCampaignsIfStranded();
            assignIdleWorkers();
            finishCompleted();
            drainProgress();
        }

        // Give buffered terminal frames (draining/cancelled) one
        // last blocking push before the sockets close.
        for (auto &s : sessions)
            s->conn.flushOut();
        shutdownWorkers();
        ::close(listenFd);
        ::unlink(config.socketPath.c_str());
        log_.info("daemon exiting");
        ::sigaction(SIGTERM, &prev_action, nullptr);
        return 0;
    }

    void
    shutdownWorkers()
    {
        for (WorkerSlot &slot : slots) {
            if (Session *s = sessionByKey(slot.sessionKey))
                s->conn.send(json::Value::object()
                                 .set("type", "shutdown"));
        }
        // Grace period, then the axe.
        const Clock::time_point deadline =
            Clock::now() + std::chrono::seconds(2);
        for (;;) {
            bool any = false;
            for (WorkerSlot &slot : slots) {
                if (slot.pid < 0)
                    continue;
                int status = 0;
                const pid_t r =
                    ::waitpid(slot.pid, &status, WNOHANG);
                if (r == slot.pid)
                    slot.pid = -1;
                else
                    any = true;
            }
            if (!any || Clock::now() > deadline)
                break;
            ::usleep(20 * 1000);
        }
        for (WorkerSlot &slot : slots) {
            if (slot.pid < 0)
                continue;
            ::kill(slot.pid, SIGKILL);
            ::waitpid(slot.pid, nullptr, 0);
            slot.pid = -1;
        }
    }
};

Daemon::Daemon(DaemonConfig config)
    : impl_(std::make_unique<Impl>(std::move(config)))
{
}

Daemon::~Daemon() = default;

int
Daemon::run()
{
    return impl_->run();
}

} // namespace uscope::svc
