#include "svc/client.hh"

#include <chrono>
#include <thread>

#include "common/logging.hh"
#include "obs/log.hh"
#include "svc/chaos.hh"

namespace uscope::svc
{

namespace
{

constexpr obs::Logger log_{"svc.client"};

std::string
stringField(const json::Value &msg, const char *key)
{
    const json::Value *v = msg.get(key);
    return v ? v->asString() : std::string();
}

std::uint64_t
field(const json::Value &msg, const char *key)
{
    const json::Value *v = msg.get(key);
    return v ? v->asU64() : 0;
}

} // namespace

Client::Client(const std::string &socket_path, int connect_timeout_ms)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(connect_timeout_ms);
    for (;;) {
        const int fd = connectUnix(socket_path);
        if (fd >= 0) {
            conn_ = Conn(fd);
            return;
        }
        if (std::chrono::steady_clock::now() >= deadline)
            return; // connected() == false; callers decide
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

std::optional<json::Value>
Client::nextMessage(int timeout_ms)
{
    // Chaos site: a client that reads late is back-pressure against
    // the daemon's per-session outbound buffer — the condition the
    // POLLOUT drain path exists for.
    if (const int stall_ms = chaosClientStallMs())
        std::this_thread::sleep_for(
            std::chrono::milliseconds(stall_ms));
    for (;;) {
        if (std::optional<json::Value> msg = conn_.next())
            return msg;
        if (!conn_.open())
            return std::nullopt;
        if (!waitReadable(conn_.fd(), timeout_ms))
            return std::nullopt;
        if (!conn_.pump() && !conn_.open()) {
            // Drain whatever arrived with the hangup.
            if (std::optional<json::Value> msg = conn_.next())
                return msg;
            return std::nullopt;
        }
    }
}

bool
Client::ping(int timeout_ms)
{
    if (!conn_.send(json::Value::object().set("type", "ping")))
        return false;
    const std::optional<json::Value> reply = nextMessage(timeout_ms);
    return reply && stringField(*reply, "type") == "pong";
}

/** The shared submit/attach wait loop: stream updates until a
 *  terminal frame (result, cancelled, busy, not-found, error). */
SubmitResult
Client::waitOutcome(
    const std::function<void(const json::Value &)> &on_update)
{
    SubmitResult out;
    // No overall timeout: a campaign takes as long as it takes.  The
    // per-wait timeout only bounds how often we notice a dead daemon.
    for (;;) {
        const std::optional<json::Value> frame = nextMessage(1000);
        if (!frame) {
            if (!conn_.open()) {
                out.error = "daemon connection lost";
                return out;
            }
            continue;
        }
        const std::string type = stringField(*frame, "type");
        if (type == "accepted" || type == "attached") {
            out.campaignId = field(*frame, "campaign");
            out.totalTrials = field(*frame, "total");
            out.resumedTrials = field(*frame, "resumed");
        } else if (type == "update") {
            ++out.updates;
            if (on_update)
                on_update(*frame);
        } else if (type == "result") {
            out.ok = true;
            out.campaignId = field(*frame, "campaign");
            out.fingerprint = stringField(*frame, "fingerprint");
            out.workerDeaths =
                static_cast<unsigned>(field(*frame, "worker_deaths"));
            out.steals = field(*frame, "steals");
            if (const json::Value *credits = frame->get("credits"))
                out.credits = *credits;
            if (const json::Value *result = frame->get("result"))
                out.resultJson = result->dump();
            return out;
        } else if (type == "cancelled") {
            out.cancelled = true;
            out.campaignId = field(*frame, "campaign");
            out.error = stringField(*frame, "reason");
            out.totalTrials = field(*frame, "total");
            if (const json::Value *agg = frame->get("aggregate"))
                out.partialJson = agg->dump();
            if (const json::Value *credits = frame->get("credits"))
                out.credits = *credits;
            return out;
        } else if (type == "busy") {
            out.busy = true;
            out.error = stringField(*frame, "message");
            return out;
        } else if (type == "error") {
            out.error = stringField(*frame, "message");
            out.notFound =
                stringField(*frame, "code") == "not_found";
            return out;
        } else {
            log_.warn("unexpected frame type '%s'", type.c_str());
        }
    }
}

SubmitResult
Client::submit(const CampaignRequest &request,
               std::size_t stream_every,
               const std::function<void(const json::Value &)> &on_update)
{
    json::Value msg = json::Value::object()
                          .set("type", "submit")
                          .set("request", request.toJson());
    if (stream_every)
        msg.set("stream_every",
                static_cast<std::uint64_t>(stream_every));
    if (!conn_.send(msg)) {
        SubmitResult out;
        out.error = "daemon connection lost on submit";
        return out;
    }
    return waitOutcome(on_update);
}

SubmitResult
Client::attach(const CampaignRequest &request,
               std::size_t stream_every,
               const std::function<void(const json::Value &)> &on_update)
{
    json::Value msg = json::Value::object()
                          .set("type", "attach")
                          .set("request", request.toJson());
    if (stream_every)
        msg.set("stream_every",
                static_cast<std::uint64_t>(stream_every));
    if (!conn_.send(msg)) {
        SubmitResult out;
        out.error = "daemon connection lost on attach";
        return out;
    }
    return waitOutcome(on_update);
}

SubmitResult
Client::roundTripCancel(const json::Value &msg, int timeout_ms)
{
    SubmitResult out;
    if (!conn_.send(msg)) {
        out.error = "daemon connection lost on cancel";
        return out;
    }
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    // Skip any in-flight update frames from a concurrent submit on
    // this connection; the reply is the next cancelled/error frame.
    for (;;) {
        const std::optional<json::Value> frame = nextMessage(timeout_ms);
        if (!frame) {
            if (!conn_.open() ||
                std::chrono::steady_clock::now() >= deadline) {
                out.error = "no cancel reply from daemon";
                return out;
            }
            continue;
        }
        const std::string type = stringField(*frame, "type");
        if (type == "cancelled") {
            out.cancelled = true;
            out.ok = true;
            out.campaignId = field(*frame, "campaign");
            out.error = stringField(*frame, "reason");
            out.totalTrials = field(*frame, "total");
            if (const json::Value *agg = frame->get("aggregate"))
                out.partialJson = agg->dump();
            if (const json::Value *credits = frame->get("credits"))
                out.credits = *credits;
            return out;
        }
        if (type == "error") {
            out.error = stringField(*frame, "message");
            out.notFound =
                stringField(*frame, "code") == "not_found";
            return out;
        }
    }
}

SubmitResult
Client::cancel(std::uint64_t campaign_id, int timeout_ms)
{
    return roundTripCancel(json::Value::object()
                               .set("type", "cancel")
                               .set("campaign", campaign_id),
                           timeout_ms);
}

SubmitResult
Client::cancel(const CampaignRequest &request, int timeout_ms)
{
    return roundTripCancel(json::Value::object()
                               .set("type", "cancel")
                               .set("request", request.toJson()),
                           timeout_ms);
}

bool
Client::drainDaemon(int timeout_ms)
{
    if (!conn_.send(json::Value::object().set("type", "drain")))
        return false;
    const std::optional<json::Value> reply = nextMessage(timeout_ms);
    return reply && stringField(*reply, "type") == "draining";
}

std::optional<json::Value>
Client::stats(int timeout_ms)
{
    if (!conn_.send(json::Value::object().set("type", "stats")))
        return std::nullopt;
    // Skip any in-flight update frames from a concurrent submit on
    // this connection; the stats reply is the next "stats" frame.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    for (;;) {
        const std::optional<json::Value> reply =
            nextMessage(timeout_ms);
        if (reply && stringField(*reply, "type") == "stats")
            return reply;
        if (!reply || std::chrono::steady_clock::now() >= deadline)
            return std::nullopt;
    }
}

bool
Client::shutdownDaemon(int timeout_ms)
{
    if (!conn_.send(json::Value::object().set("type", "shutdown")))
        return false;
    const std::optional<json::Value> reply = nextMessage(timeout_ms);
    return reply && stringField(*reply, "type") == "ok";
}

} // namespace uscope::svc
