#include "svc/tunables.hh"

#include <cstdlib>
#include <string>

#include "obs/log.hh"

namespace uscope::svc
{

namespace
{

constexpr obs::Logger log_{"svc.tunables"};

void
readDouble(const char *name, double *out)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return;
    char *end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0' || parsed < 0.0) {
        log_.warn("%s='%s' is not a non-negative number; keeping %g",
                  name, value, *out);
        return;
    }
    *out = parsed;
}

void
readUnsigned(const char *name, unsigned *out)
{
    double v = static_cast<double>(*out);
    readDouble(name, &v);
    *out = static_cast<unsigned>(v);
}

void
readSize(const char *name, std::size_t *out)
{
    double v = static_cast<double>(*out);
    readDouble(name, &v);
    *out = static_cast<std::size_t>(v);
}

void
readMs(const char *name, int *out)
{
    double v = static_cast<double>(*out);
    readDouble(name, &v);
    *out = static_cast<int>(v);
}

} // namespace

Tunables
Tunables::fromEnv()
{
    Tunables t;
    readMs("USCOPE_SVC_HEARTBEAT_MS", &t.heartbeatMs);
    readDouble("USCOPE_SVC_HEARTBEAT_TIMEOUT_SEC",
               &t.heartbeatTimeoutSec);
    readDouble("USCOPE_SVC_TRIAL_WARN_SEC", &t.trialWarnSec);
    readUnsigned("USCOPE_SVC_TRIAL_KILL_LIMIT", &t.trialKillLimit);
    readDouble("USCOPE_SVC_BACKOFF_INITIAL_SEC", &t.backoffInitialSec);
    readDouble("USCOPE_SVC_BACKOFF_MAX_SEC", &t.backoffMaxSec);
    readDouble("USCOPE_SVC_BACKOFF_JITTER", &t.backoffJitter);
    readUnsigned("USCOPE_SVC_MAX_RESPAWNS", &t.maxRespawns);
    readSize("USCOPE_SVC_QUEUE_LIMIT", &t.queueLimit);
    readDouble("USCOPE_SVC_DRAIN_GRACE_SEC", &t.drainGraceSec);
    if (t.heartbeatMs <= 0)
        t.heartbeatMs = 1;
    if (t.backoffMaxSec < t.backoffInitialSec)
        t.backoffMaxSec = t.backoffInitialSec;
    if (t.backoffJitter > 1.0)
        t.backoffJitter = 1.0;
    return t;
}

Tunables
Tunables::environmentDefault()
{
    static const Tunables cached = fromEnv();
    return cached;
}

} // namespace uscope::svc
