/**
 * @file
 * Service-tier chaos injection (DESIGN.md §16) — the daemon-level
 * sibling of PR 4's fault::FaultPlan.  Where FaultPlan perturbs the
 * *simulated* microarchitecture (the noise MicroScope's replay
 * averaging defeats), ChaosPlan perturbs the *service* around it:
 * frames torn mid-write, heartbeats dropped or delayed, client
 * sockets that stall, workers that SIGSTOP mid-shard, daemons that
 * abort mid-merge.  The contract under all of it is unchanged —
 * campaign fingerprints stay byte-identical to a calm run, because
 * every chaos site sits strictly on the transport/lifecycle layer,
 * never in a trial body.
 *
 * Injection is seed-deterministic per (site, role): each hook draws
 * from its own xoshiro stream seeded from plan.seed, the site tag and
 * the process role, so a given plan replays the same misbehavior
 * schedule run over run.
 *
 * Activation mirrors fault::FaultPlan: the environment variable
 * USCOPE_SVC_CHAOS ("chaos" preset, "off", or a comma-separated
 * k=v list — see parse()) is read once per process; worker re-execs
 * inherit it, so one exported variable shakes the whole tree.
 * Tests inject plans directly with setChaosPlan().
 */

#ifndef USCOPE_SVC_CHAOS_HH
#define USCOPE_SVC_CHAOS_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace uscope::svc
{

struct ChaosPlan
{
    /** Probability a frame write is torn into two kernel writes with
     *  a pause between them (exercises FrameSplitter reassembly). */
    double tornFrameRate = 0.0;
    /** Pause between the two halves of a torn write, microseconds. */
    int tornDelayUs = 1000;

    /** Probability a worker heartbeat tick is silently skipped. */
    double heartbeatDropRate = 0.0;
    /** Probability a heartbeat is sent late, and by how much. */
    double heartbeatDelayRate = 0.0;
    int heartbeatDelayMs = 30;

    /** Probability a worker raises SIGSTOP after emitting a trial —
     *  a hang the daemon's heartbeat-timeout ladder must clear.  Not
     *  part of the "chaos" preset (it needs an aggressive timeout to
     *  resolve quickly); dedicated suites opt in. */
    double sigstopRate = 0.0;

    /** Probability svc::Client stalls before reading, and for how
     *  long — back-pressure against the daemon's outbound buffers. */
    double clientStallRate = 0.0;
    int clientStallMs = 10;

    /** Probability the daemon _exits right before sending a final
     *  result (mid-merge crash).  Recovery = restart + resume from
     *  durable state.  Not in the preset: it kills the process. */
    double abortMergeRate = 0.0;

    std::uint64_t seed = 0x5eedc0de;

    bool enabled() const;

    /** The standing preset behind USCOPE_SVC_CHAOS=chaos: torn
     *  frames, dropped/late heartbeats and client stalls at rates the
     *  full test suite absorbs without timing out — sigstop and
     *  abort-merge stay opt-in. */
    static ChaosPlan chaos();

    /** Parse an USCOPE_SVC_CHAOS value: "off"/"" (inert), "chaos"
     *  (the preset), or "k=v,k=v" over keys torn, torn_delay_us,
     *  drop, delay, delay_ms, sigstop, stall, stall_ms, abort, seed.
     *  Unknown keys warn and are ignored. */
    static ChaosPlan parse(const std::string &value);

    /** parse(getenv("USCOPE_SVC_CHAOS")), cached on first use. */
    static ChaosPlan environmentDefault();
};

/** Process-wide plan override (tests).  Resets every site stream. */
void setChaosPlan(const ChaosPlan &plan);

/** The active plan: the last setChaosPlan(), else environmentDefault. */
const ChaosPlan &chaosPlan();

/** Decorrelate this process's chaos streams from its siblings'
 *  (workers pass their id; the daemon uses its own tag).  Resets
 *  site streams; call before the first draw. */
void seedChaosRole(std::uint64_t role);

// ---------------------------------------------------------------------
// Site hooks.  Each returns the inert value in one branch-predictable
// check when the active plan is disabled.
// ---------------------------------------------------------------------

/** Where to tear a @p frame_bytes-long write, or nullopt to send it
 *  whole.  Tear points land strictly inside the frame. */
std::optional<std::size_t> chaosTearPoint(std::size_t frame_bytes);

/** Microseconds to sleep between the two halves of a torn write. */
int chaosTearDelayUs();

/** True when this heartbeat tick should be skipped. */
bool chaosDropHeartbeat();

/** Milliseconds to delay this heartbeat; 0 = send on time. */
int chaosHeartbeatDelayMs();

/** True when the worker should SIGSTOP itself after this trial. */
bool chaosSigstop();

/** Milliseconds the client should stall before reading; 0 = none. */
int chaosClientStallMs();

/** True when the daemon should abort instead of sending a result. */
bool chaosAbortMerge();

} // namespace uscope::svc

#endif // USCOPE_SVC_CHAOS_HH
