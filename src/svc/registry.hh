/**
 * @file
 * Campaign recipes and multi-tenant seed namespaces (DESIGN.md §13).
 *
 * A CampaignSpec cannot cross a process boundary — its body is a
 * closure.  What crosses the wire instead is a CampaignRequest: the
 * *name* of a registered recipe plus the sweep parameters (trial
 * count, master seed, cycle budget, retry policy, recipe-specific
 * params).  Both ends — the daemon's workers and any in-process
 * baseline — rebuild the spec through the same buildSpec() call, so a
 * service-dispatched campaign and a local CampaignRunner run of the
 * same request execute literally the same closures and produce
 * byte-identical fingerprints.  That shared construction path is the
 * root of every determinism guarantee the service makes.
 *
 * Seed namespaces: two tenants submitting the same request under
 * different namespaces must get decorrelated — yet individually
 * reproducible — trial streams.  namespaceSeedRoot() derives the
 * effective master seed as mix64(fnv1a(ns) ^ mix64(master)); the
 * empty namespace is the identity (effective == master), so an
 * un-namespaced service run is bit-identical to the in-process runs
 * every existing bench and test performs.
 */

#ifndef USCOPE_SVC_REGISTRY_HH
#define USCOPE_SVC_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "exp/campaign.hh"

namespace uscope::svc
{

/** The wire form of "run this campaign". */
struct CampaignRequest
{
    /** Registered recipe name (required). */
    std::string recipe;
    /** Campaign name; empty = the recipe name. */
    std::string name;
    /** Tenant seed namespace; empty = the shared default stream. */
    std::string ns;
    /** Trial count; 0 = the recipe's default. */
    std::size_t trials = 0;
    std::uint64_t masterSeed = 42;
    Cycles cycleBudget = 0;
    unsigned maxRetries = 0;
    /** Recipe-specific knobs (JSON object; recipes read what they
     *  know and ignore the rest). */
    json::Value params;
    /**
     * Observability dial for the dispatched campaign (DESIGN.md §14).
     * Deliberately EXCLUDED from identityKey(): observation never
     * changes results (the fingerprint-invariance contract), so
     * resubmitting a campaign at a different obs level must resume
     * the same durable state, not fork a parallel checkpoint dir.
     */
    obs::ObsLevel obs = obs::ObsLevel::Off;
    /**
     * Wall-clock deadline in seconds; 0 = none.  Past it the daemon
     * cancels the campaign (checkpoint preserved, partial aggregate
     * returned) — see DESIGN.md §16.  EXCLUDED from identityKey()
     * like obs: a deadline bounds *this submission's* patience, not
     * the results, so resubmitting with a longer deadline resumes
     * the same durable state.
     */
    double deadlineSeconds = 0.0;
    /**
     * CampaignSpec::batchReplays for the dispatched campaign: run
     * differential-replay siblings as one lockstep batch (DESIGN.md
     * §17).  0 = per-sibling restores.  EXCLUDED from identityKey()
     * like obs: batching is a wall-clock knob with byte-identical
     * fingerprints, so resubmitting a campaign batched must resume
     * the same durable state its per-sibling run produced.
     */
    std::uint64_t batchReplays = 0;

    json::Value toJson() const;
    static std::optional<CampaignRequest> fromJson(const json::Value &v);

    /** Stable identity of everything that determines results — the
     *  durable-state key and the reproducibility contract's scope. */
    std::string identityKey() const;
};

/** 64-bit FNV-1a (the string-hash sibling of exp::fnv1aHex). */
std::uint64_t fnv1a64(const std::string &s);

/** Effective master seed for tenant @p ns (see file comment). */
std::uint64_t namespaceSeedRoot(const std::string &ns,
                                std::uint64_t master);

/** Builds a runnable spec from a request (params already applied). */
using RecipeFn =
    std::function<exp::CampaignSpec(const CampaignRequest &)>;

/**
 * The process-wide recipe table.  Built-in recipes self-register on
 * first access; embedders may add() their own before serving.
 */
class CampaignRegistry
{
  public:
    static CampaignRegistry &global();

    void add(std::string name, std::string description, RecipeFn fn);

    bool has(const std::string &name) const;
    std::vector<std::pair<std::string, std::string>> list() const;

    /**
     * Recipe spec + request overrides + namespace seed derivation.
     * Throws SimFatal for an unknown recipe or a request the recipe
     * rejects.  The returned spec carries the recipe's structureKey
     * (so persistent workers keep warmup snapshots hot across
     * same-recipe campaigns) and perTrialMetrics = true (the daemon
     * attaches checkpoint directories, which require it).
     */
    exp::CampaignSpec build(const CampaignRequest &request) const;

  private:
    struct Entry
    {
        std::string description;
        RecipeFn fn;
    };
    std::vector<std::pair<std::string, Entry>> recipes_;
};

/** CampaignRegistry::global().build(request). */
exp::CampaignSpec buildSpec(const CampaignRequest &request);

} // namespace uscope::svc

#endif // USCOPE_SVC_REGISTRY_HH
