/**
 * @file
 * uscope-campaignd: the sharded campaign service daemon
 * (DESIGN.md §13).
 *
 * One single-threaded poll() loop owns everything: the listening
 * AF_UNIX socket, every worker and client connection, the shard
 * schedulers, and the in-index-order result tables.  Workers are
 * *processes* (fork + exec of the daemon's own binary with the
 * --uscope-worker marker), so a crashing trial — or a kill -9 — costs
 * one worker, never the daemon; trials execute only in children.
 *
 * Lifecycle of a submission:
 *
 *   client  --submit{request}-->  daemon
 *   daemon: buildSpec, (stateDir? attach checkpoint dir, preload
 *           completed trials), cut trials into shards
 *   daemon  --shard{lo,hi,request,checkpoint_dir}-->  idle workers
 *   worker  --trial{index,data}-->  daemon   (deduped, in results[])
 *   daemon  --update{partial aggregate}-->  client  (every N trials)
 *   idle worker?  steal: split the fattest live shard; victim gets
 *           --shrink{hi}-->, thief gets the upper half as a new shard
 *   worker death (hangup, SIGCHLD, or heartbeat timeout while busy):
 *           its shards return to the pending pool and a respawned
 *           worker resumes them — bit-identically, via the checkpoint
 *           when one is attached, by deterministic re-execution
 *           otherwise
 *   all trials done: aggregateTrials in index order, fingerprint via
 *           exp::deterministicFingerprint,
 *           --result{fingerprint,result}-->  client
 *
 * Durability: with a stateDir, each campaign's checkpoint directory
 * is keyed by the *request identity* (recipe, params, namespace,
 * seeds — CampaignRequest::identityKey), so resubmitting the same
 * request after a daemon restart resumes from persisted trials
 * instead of starting over.  Accepted campaigns additionally persist
 * a pending manifest under <stateDir>/pending/; a restarted daemon
 * scans it and resumes every interrupted campaign on its own, so a
 * SIGKILLed daemon loses no work and a reconnecting client can
 * {"type":"attach"} to the auto-resumed campaign by request identity.
 *
 * Failure handling (DESIGN.md §16): campaigns can be cancelled
 * ({"type":"cancel"}, partial aggregate returned, checkpoint kept)
 * or bounded by per-request wall-clock deadlines; worker respawns
 * back off exponentially with jitter instead of burning a fixed
 * budget; a busy worker silent past Tunables::trialWarnSec warns,
 * past heartbeatTimeoutSec is SIGKILLed, and a trial that keeps
 * killing workers is recorded TimedOut; submissions past
 * Tunables::queueLimit are shed with {"type":"busy"}; SIGTERM (or a
 * {"type":"drain"} message) drains in-flight shards to a trial
 * boundary, persists manifests and exits cleanly.
 */

#ifndef USCOPE_SVC_DAEMON_HH
#define USCOPE_SVC_DAEMON_HH

#include <cstdint>
#include <memory>
#include <string>

#include "svc/tunables.hh"

namespace uscope::svc
{

struct DaemonConfig
{
    /** AF_UNIX listening path (required; beware sun_path's ~107-byte
     *  limit). */
    std::string socketPath;
    /** Worker process count. */
    unsigned workers = 2;
    /** Worker executable; empty = /proc/self/exe (the usual case:
     *  workers are re-execs of this very binary). */
    std::string workerExe;
    /** Durable campaign state root; empty = no checkpointing. */
    std::string stateDir;
    /** Every timing/capacity knob of the failure-handling machinery
     *  (heartbeats, deadlines, backoff, shedding) in one place —
     *  defaults come from USCOPE_SVC_* env overrides; tests assign
     *  fields directly. */
    Tunables tun = Tunables::environmentDefault();
    /** Default update cadence (trials between stream frames) when a
     *  submit does not specify one; 0 = no periodic updates. */
    std::size_t streamEvery = 0;
    /** Test hook: worker 0's *first* incarnation self-SIGKILLs after
     *  emitting this many trials (0 = off).  Respawns are normal. */
    std::size_t worker0DieAfter = 0;
};

class Daemon
{
  public:
    explicit Daemon(DaemonConfig config);
    ~Daemon();
    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /** Serve until a client sends shutdown.  Returns the exit code. */
    int run();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace uscope::svc

#endif // USCOPE_SVC_DAEMON_HH
