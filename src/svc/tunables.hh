/**
 * @file
 * Every timing/capacity knob the campaign service's failure handling
 * runs on, in one documented struct (DESIGN.md §16).
 *
 * The daemon and its workers used to scatter these as literals
 * (200 ms heartbeats in worker.cc, a 30 s timeout and a fixed respawn
 * budget in daemon.cc), which meant any test of the deadline/backoff
 * machinery had to wait out real-time constants it could not reach.
 * Tunables makes them data: tests assign fields directly on their
 * DaemonConfig, operators override via USCOPE_SVC_* environment
 * variables, and the defaults stay production-shaped.
 *
 * Environment overrides (read once by environmentDefault(), applied
 * on top of the defaults; fromEnv() re-reads for tests):
 *
 *   USCOPE_SVC_HEARTBEAT_MS           worker heartbeat cadence
 *   USCOPE_SVC_HEARTBEAT_TIMEOUT_SEC  busy-and-silent => SIGKILL
 *   USCOPE_SVC_TRIAL_WARN_SEC         busy-and-silent => warn once
 *   USCOPE_SVC_TRIAL_KILL_LIMIT       kills at one trial => TimedOut
 *   USCOPE_SVC_BACKOFF_INITIAL_SEC    first respawn delay
 *   USCOPE_SVC_BACKOFF_MAX_SEC        respawn delay cap
 *   USCOPE_SVC_BACKOFF_JITTER         +/- fraction of the delay
 *   USCOPE_SVC_MAX_RESPAWNS           0 = retry forever (backoff)
 *   USCOPE_SVC_QUEUE_LIMIT            campaigns before busy-shedding
 *   USCOPE_SVC_DRAIN_GRACE_SEC        SIGTERM drain patience
 */

#ifndef USCOPE_SVC_TUNABLES_HH
#define USCOPE_SVC_TUNABLES_HH

#include <cstddef>

namespace uscope::svc
{

struct Tunables
{
    /** Worker heartbeat cadence in milliseconds (the daemon forwards
     *  this to every worker it spawns via --heartbeat-ms=). */
    int heartbeatMs = 200;

    /** A *busy* worker silent for this long is declared wedged and
     *  SIGKILLed.  Idle workers are never timed out — silence while
     *  parked is normal. */
    double heartbeatTimeoutSec = 30.0;

    /** A busy worker silent this long earns one structured warning —
     *  the first rung of the warn -> kill/retry -> TimedOut ladder.
     *  Also forwarded into CampaignSpec::trialWallWarnSec so the
     *  executor logs slow trials from the inside. */
    double trialWarnSec = 10.0;

    /**
     * When the daemon has SIGKILLed workers this many times while
     * they were stuck on the *same* trial, it stops retrying and
     * records that trial as TimedOut — a measurement ("this input
     * hangs"), not an error, mirroring the cycle-budget semantics of
     * exp::TrialStatus::TimedOut.
     */
    unsigned trialKillLimit = 3;

    /** First respawn delay after a worker death.  Doubles per
     *  consecutive failure (a worker that survived long enough to
     *  look healthy resets the streak) up to backoffMaxSec. */
    double backoffInitialSec = 0.05;
    double backoffMaxSec = 5.0;
    /** Deterministic jitter: each delay is scaled by a pseudo-random
     *  factor in [1 - jitter, 1 + jitter] so a mass worker death does
     *  not respawn in lockstep. */
    double backoffJitter = 0.25;

    /**
     * Hard cap on spawns per worker slot; 0 (the default) means
     * retry forever under backoff — the graceful-degradation posture:
     * a daemon with zero live workers queues work and keeps trying.
     * Non-zero restores the old fixed-budget behavior (after the
     * budget, campaigns with no possible worker are failed).
     */
    unsigned maxRespawns = 0;

    /** Campaigns in flight (running + queued) before new submissions
     *  are shed with a structured {"type":"busy"} reply. */
    std::size_t queueLimit = 32;

    /** How long a SIGTERM drain waits for in-flight shards to reach
     *  a trial boundary before giving up and exiting anyway. */
    double drainGraceSec = 10.0;

    /** Defaults + USCOPE_SVC_* overrides, re-read on every call (for
     *  tests that toggle the environment). */
    static Tunables fromEnv();

    /** fromEnv(), cached on first use — the daemon-default path. */
    static Tunables environmentDefault();
};

} // namespace uscope::svc

#endif // USCOPE_SVC_TUNABLES_HH
