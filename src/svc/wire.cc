#include "svc/wire.hh"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"
#include "obs/log.hh"
#include "svc/chaos.hh"

namespace uscope::svc
{

namespace
{
constexpr obs::Logger log_{"svc.wire"};
} // namespace

std::string
encodeFrame(const std::string &payload)
{
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    std::string out;
    out.reserve(4 + payload.size());
    out.push_back(static_cast<char>((n >> 24) & 0xff));
    out.push_back(static_cast<char>((n >> 16) & 0xff));
    out.push_back(static_cast<char>((n >> 8) & 0xff));
    out.push_back(static_cast<char>(n & 0xff));
    out += payload;
    return out;
}

void
FrameSplitter::feed(const char *data, std::size_t len)
{
    if (corrupt_)
        return;
    buf_.append(data, len);
    for (;;) {
        if (buf_.size() < 4)
            return;
        const auto b = [&](std::size_t i) {
            return static_cast<std::uint32_t>(
                static_cast<unsigned char>(buf_[i]));
        };
        const std::uint32_t n =
            (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
        if (n > kMaxFrameBytes) {
            corrupt_ = true;
            return;
        }
        if (buf_.size() < 4 + static_cast<std::size_t>(n))
            return;
        ready_.push_back(buf_.substr(4, n));
        buf_.erase(0, 4 + static_cast<std::size_t>(n));
    }
}

std::optional<std::string>
FrameSplitter::next()
{
    if (ready_.empty())
        return std::nullopt;
    std::string frame = std::move(ready_.front());
    ready_.pop_front();
    return frame;
}

Conn::~Conn()
{
    close();
}

Conn::Conn(Conn &&other) noexcept
    : fd_(other.fd_), failed_(other.failed_),
      buffered_(other.buffered_), badFrames_(other.badFrames_),
      splitter_(std::move(other.splitter_)),
      out_(std::move(other.out_)), outOff_(other.outOff_)
{
    other.fd_ = -1;
}

Conn &
Conn::operator=(Conn &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        failed_ = other.failed_;
        buffered_ = other.buffered_;
        badFrames_ = other.badFrames_;
        splitter_ = std::move(other.splitter_);
        out_ = std::move(other.out_);
        outOff_ = other.outOff_;
        other.fd_ = -1;
    }
    return *this;
}

void
Conn::close()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

bool
Conn::writeFrame(const std::string &frame)
{
    std::size_t sent = 0;
    // Chaos site: tear the frame into two kernel writes with a pause
    // between them, exercising the receiver's FrameSplitter exactly
    // the way a congested socket would.
    std::size_t tear = frame.size();
    if (std::optional<std::size_t> cut = chaosTearPoint(frame.size()))
        tear = *cut;
    while (sent < frame.size()) {
        const std::size_t limit = sent < tear ? tear : frame.size();
        const ssize_t n = ::send(fd_, frame.data() + sent,
                                 limit - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            failed_ = true;
            return false;
        }
        sent += static_cast<std::size_t>(n);
        if (sent == tear && tear < frame.size())
            ::usleep(static_cast<useconds_t>(chaosTearDelayUs()));
    }
    return true;
}

bool
Conn::flushOut()
{
    if (fd_ < 0)
        return false;
    while (outOff_ < out_.size()) {
        const ssize_t n =
            ::send(fd_, out_.data() + outOff_, out_.size() - outOff_,
                   MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break; // the kernel is full; POLLOUT will call again
            failed_ = true;
            return false;
        }
        outOff_ += static_cast<std::size_t>(n);
    }
    if (outOff_ == out_.size()) {
        out_.clear();
        outOff_ = 0;
    } else if (outOff_ > (1u << 20)) {
        out_.erase(0, outOff_);
        outOff_ = 0;
    }
    return true;
}

bool
Conn::send(const json::Value &msg)
{
    if (!open())
        return false;
    if (!buffered_)
        return writeFrame(encodeFrame(msg.dump()));
    if (pendingOut() > kMaxOutboundBytes) {
        log_.warn("outbound buffer for fd %d exceeds %zu bytes; peer "
                  "stopped reading — dropping connection", fd_,
                  kMaxOutboundBytes);
        failed_ = true;
        return false;
    }
    out_ += encodeFrame(msg.dump());
    return flushOut();
}

void
Conn::sendFinal(const json::Value &msg)
{
    if (fd_ < 0)
        return;
    flushOut(); // whatever buffered bytes still fit, first
    writeFrame(encodeFrame(msg.dump()));
}

bool
Conn::pump()
{
    if (!open())
        return false;
    char chunk[64 * 1024];
    for (;;) {
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, MSG_DONTWAIT);
        if (n > 0) {
            splitter_.feed(chunk, static_cast<std::size_t>(n));
            if (splitter_.corrupt()) {
                log_.warn("oversized frame on fd %d; dropping "
                          "connection", fd_);
                failed_ = true;
                return false;
            }
            continue;
        }
        if (n == 0) { // orderly hangup
            failed_ = true;
            return false;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        if (errno == EINTR)
            continue;
        failed_ = true;
        return false;
    }
}

std::optional<json::Value>
Conn::next()
{
    for (;;) {
        std::optional<std::string> frame = splitter_.next();
        if (!frame)
            return std::nullopt;
        std::optional<json::Value> msg = json::Value::parse(*frame);
        if (msg)
            return msg;
        ++badFrames_;
        log_.warn("dropping non-JSON frame (%zu bytes) on fd %d",
                  frame->size(), fd_);
    }
}

std::size_t
Conn::takeBadFrames()
{
    const std::size_t n = badFrames_;
    badFrames_ = 0;
    return n;
}

namespace
{

sockaddr_un
unixAddress(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path)
        fatal("svc: socket path '%s' exceeds the %zu-byte AF_UNIX "
              "limit", path.c_str(), sizeof addr.sun_path - 1);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

int
listenUnix(const std::string &path)
{
    const sockaddr_un addr = unixAddress(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        fatal("svc: socket(AF_UNIX): %s", std::strerror(errno));
    ::unlink(path.c_str()); // a stale socket from a dead daemon
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0) {
        const int err = errno;
        ::close(fd);
        fatal("svc: bind('%s'): %s", path.c_str(), std::strerror(err));
    }
    if (::listen(fd, 64) != 0) {
        const int err = errno;
        ::close(fd);
        fatal("svc: listen('%s'): %s", path.c_str(),
              std::strerror(err));
    }
    return fd;
}

int
connectUnix(const std::string &path)
{
    const sockaddr_un addr = unixAddress(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

int
acceptUnix(int listen_fd)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR)
            continue;
        return -1;
    }
}

bool
waitReadable(int fd, int timeout_ms)
{
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    for (;;) {
        const int n = ::poll(&p, 1, timeout_ms);
        if (n > 0)
            return true;
        if (n == 0)
            return false;
        if (errno != EINTR)
            return false;
    }
}

} // namespace uscope::svc
