/**
 * @file
 * The campaign service's worker process (DESIGN.md §13).
 *
 * A worker is the same binary as its daemon, re-executed with the
 * `--uscope-worker` argv marker: the daemon forks and execs
 * /proc/self/exe, so *any* binary that links the service — the
 * daemon, the test runner, a bench — can serve as its own worker pool
 * with no separate executable to ship or version-match.  Embedders
 * call maybeRunWorkerMain() first thing in main(); it is a no-op
 * unless the marker is present.
 *
 * The loop: connect to the daemon's socket, say hello, then serve
 * shard messages until told to shut down.  One TrialExecutor lives
 * for the whole process — that is the point of process-per-worker
 * with persistent executors: pooled Machines and post-warmup
 * snapshots stay hot across campaigns (keyed by the specs'
 * structureKey), which is where the service's cross-campaign
 * throughput comes from.  Shards execute through exp::runShardRange
 * with the control socket polled between trials (the currentHi hook),
 * so steal-shrinks and shutdowns take effect at the next trial
 * boundary; heartbeats flow on the same cadence plus on idle-poll
 * timeouts, so the daemon can tell "busy on a long trial" from
 * "dead".
 *
 * `--die-after-trials=N` is the deterministic crash hook the
 * kill/steal/resume suites are built on: the worker raises SIGKILL
 * against itself immediately after emitting its Nth trial — no
 * destructors, no flushes, exactly like a real kill -9.
 */

#ifndef USCOPE_SVC_WORKER_HH
#define USCOPE_SVC_WORKER_HH

#include <cstddef>
#include <string>

namespace uscope::svc
{

/** The argv[1] marker a worker re-exec is recognized by. */
inline constexpr const char *kWorkerArg = "--uscope-worker";

struct WorkerOptions
{
    std::string socketPath;
    int id = 0;
    /** Self-SIGKILL after emitting this many trials; 0 = never. */
    std::size_t dieAfterTrials = 0;
    /** Heartbeat cadence in milliseconds. */
    int heartbeatMs = 200;
};

/** The worker event loop; returns the process exit code. */
int runWorkerMain(const WorkerOptions &options);

/**
 * When @p argv carries kWorkerArg, parse worker flags, run the worker
 * loop, store its exit code in @p exit_code, and return true.
 * Otherwise return false and touch nothing — the embedding main()
 * proceeds as usual.
 */
bool maybeRunWorkerMain(int argc, char **argv, int *exit_code);

} // namespace uscope::svc

#endif // USCOPE_SVC_WORKER_HH
