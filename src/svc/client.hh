/**
 * @file
 * Blocking client for uscope-campaignd (DESIGN.md §13): connect,
 * submit a CampaignRequest, stream update frames through a callback,
 * return the final result.  One Client is one connection, confined to
 * one thread; tenants wanting concurrent submissions open one Client
 * each (exactly what tests/test_svc's two-tenant suite does).
 */

#ifndef USCOPE_SVC_CLIENT_HH
#define USCOPE_SVC_CLIENT_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/json.hh"
#include "svc/registry.hh"
#include "svc/wire.hh"

namespace uscope::svc
{

/** The daemon's final answer for one submission. */
struct SubmitResult
{
    bool ok = false;
    /** Error text when !ok. */
    std::string error;
    /** The daemon-assigned campaign id (from the accepted/attached
     *  frame) — what cancel-by-id takes. */
    std::uint64_t campaignId = 0;
    /** The campaign was cancelled (explicitly or by its deadline);
     *  `error` carries the reason and `partialJson` the partial
     *  aggregate the daemon computed at cancellation. */
    bool cancelled = false;
    /** The daemon shed this submission with {"type":"busy"} (queue
     *  full or draining); retry later with backoff. */
    bool busy = false;
    /** attach() only: no running campaign matched the request —
     *  submit() instead (durable state makes that a resume). */
    bool notFound = false;
    /** Partial aggregate JSON from a cancelled frame (compact). */
    std::string partialJson;
    /** exp::fnv1aHex of the campaign's deterministic fingerprint —
     *  the value every service-vs-in-process comparison checks. */
    std::string fingerprint;
    unsigned workerDeaths = 0;
    std::size_t steals = 0;
    std::size_t totalTrials = 0;
    /** Trials restored from durable state instead of executed. */
    std::size_t resumedTrials = 0;
    /** Update frames received while the campaign ran. */
    std::size_t updates = 0;
    /** Per-worker campaign-scoped trial credits from the result
     *  frame: `{"<worker id>": {"run": N, "restored": N}}` — credited
     *  at the daemon's dedup point, so each worker-executed trial is
     *  counted exactly once no matter what steal/kill races replayed
     *  it.  Daemon-side checkpoint preloads bypass the workers and
     *  land in resumedTrials instead; run + restored + resumedTrials
     *  always equals totalTrials. */
    json::Value credits;
    /** The full result frame's "result" member (compact JSON). */
    std::string resultJson;
};

class Client
{
  public:
    /** Connect to @p socket_path, retrying for up to
     *  @p connect_timeout_ms (daemons take a moment to bind). */
    explicit Client(const std::string &socket_path,
                    int connect_timeout_ms = 5000);

    bool connected() const { return conn_.open(); }

    /** Round-trip a ping; the wait-ready probe. */
    bool ping(int timeout_ms = 2000);

    /**
     * Submit and block until the result (or error) frame.
     * @p stream_every asks for an update every N completed trials
     * (0 = daemon default); each update frame is handed to
     * @p on_update (compact JSON object) as it arrives.
     */
    SubmitResult submit(
        const CampaignRequest &request, std::size_t stream_every = 0,
        const std::function<void(const json::Value &)> &on_update = {});

    /**
     * Attach to a campaign already running in the daemon — matched by
     * the request's identityKey(), the same stable id the checkpoint
     * dir is keyed by — and stream it to completion exactly like
     * submit() would.  The daemon re-binds the campaign's update
     * stream to this connection and replays the current partial
     * immediately, so a client that crashed mid-submit reconnects,
     * attaches, and ends with a fingerprint byte-identical to an
     * uninterrupted run.  When nothing matches, `notFound` is set —
     * callers typically fall back to submit(), which resumes from
     * durable state when there is any.
     */
    SubmitResult attach(
        const CampaignRequest &request, std::size_t stream_every = 0,
        const std::function<void(const json::Value &)> &on_update = {});

    /**
     * Cancel a running campaign by id (or, with @p request, by
     * identity).  On success the returned SubmitResult has
     * cancelled = true and carries the partial aggregate; the
     * campaign's checkpoint dir is preserved, so resubmitting later
     * resumes where the cancel cut.
     */
    SubmitResult cancel(std::uint64_t campaign_id,
                        int timeout_ms = 10000);
    SubmitResult cancel(const CampaignRequest &request,
                        int timeout_ms = 10000);

    /** Ask the daemon to drain: stop accepting work, stop in-flight
     *  shards at the next trial boundary (checkpointing as they go),
     *  persist resumable manifests, and exit.  True when the daemon
     *  acknowledged. */
    bool drainDaemon(int timeout_ms = 5000);

    /**
     * One live ops snapshot (DESIGN.md §14): campaigns in flight
     * with shard tables and per-worker credits, the worker table,
     * merged svc.* metrics, and prof.* phase latencies.  nullopt on
     * timeout or a lost daemon.
     */
    std::optional<json::Value> stats(int timeout_ms = 5000);

    /** Ask the daemon to exit; true when it acknowledged. */
    bool shutdownDaemon(int timeout_ms = 5000);

  private:
    std::optional<json::Value> nextMessage(int timeout_ms);
    SubmitResult waitOutcome(
        const std::function<void(const json::Value &)> &on_update);
    SubmitResult roundTripCancel(const json::Value &msg,
                                 int timeout_ms);

    Conn conn_;
};

} // namespace uscope::svc

#endif // USCOPE_SVC_CLIENT_HH
