#include "svc/worker.hh"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <deque>
#include <optional>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/logging.hh"
#include "exp/campaign.hh"
#include "exp/checkpoint.hh"
#include "obs/log.hh"
#include "obs/prof.hh"
#include "svc/chaos.hh"
#include "svc/registry.hh"
#include "svc/tunables.hh"
#include "svc/wire.hh"

namespace uscope::svc
{

namespace
{

using Clock = std::chrono::steady_clock;

constexpr obs::Logger log_{"svc.worker"};

std::uint64_t
field(const json::Value &msg, const char *key,
      std::uint64_t fallback = 0)
{
    const json::Value *v = msg.get(key);
    return v ? v->asU64(fallback) : fallback;
}

std::string
stringField(const json::Value &msg, const char *key)
{
    const json::Value *v = msg.get(key);
    return v ? v->asString() : std::string();
}

/** Everything one worker process accumulates and reports. */
struct WorkerLoop
{
    const WorkerOptions &opts;
    Conn conn;
    std::deque<json::Value> inbox;
    bool shutdown = false;

    // Lifetime counters, streamed with every heartbeat; the daemon
    // tags them into per-worker metric streams (obs::MetricSnapshot::
    // prefixed) so a campaign's update frames show who did what.
    std::uint64_t trialsRun = 0;
    std::uint64_t trialsRestored = 0;
    std::uint64_t shardsDone = 0;
    std::uint64_t simCycles = 0;
    /** Trials emitted ever, for --die-after-trials. */
    std::size_t emitted = 0;

    /** One executor per process: beginCampaign flushes anonymous
     *  warmup snapshots but keeps structureKey-matched ones — the
     *  cross-campaign Machine-pool warmth this architecture buys. */
    exp::TrialExecutor executor;

    Clock::time_point lastBeat = Clock::now();

    explicit WorkerLoop(const WorkerOptions &o, int fd)
        : opts(o), conn(fd)
    {
    }

    json::Value
    counters() const
    {
        return json::Value::object()
            .set("shards_done", shardsDone)
            .set("sim_cycles", simCycles)
            .set("trials_restored", trialsRestored)
            .set("trials_run", trialsRun);
    }

    void
    heartbeat(bool force = false)
    {
        const auto now = Clock::now();
        if (!force &&
            now - lastBeat <
                std::chrono::milliseconds(opts.heartbeatMs))
            return;
        lastBeat = now;
        // Chaos sites: a skipped or late beat is indistinguishable
        // (to the daemon) from a congested or wedged worker — the
        // heartbeat-timeout machinery must absorb both.
        if (chaosDropHeartbeat())
            return;
        if (const int delay_ms = chaosHeartbeatDelayMs())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay_ms));
        json::Value beat = json::Value::object()
                               .set("type", "heartbeat")
                               .set("id", opts.id)
                               .set("counters", counters());
        if (!executor.prof().empty())
            beat.set("prof", executor.prof().toJson());
        conn.send(std::move(beat));
    }

    /** Drain the socket into the inbox; false once the daemon is
     *  gone and nothing is left to process. */
    bool
    drain()
    {
        const bool alive = conn.pump();
        while (std::optional<json::Value> msg = conn.next())
            inbox.push_back(std::move(*msg));
        return alive;
    }

    void runShard(const json::Value &msg);
    int run();
};

void
WorkerLoop::runShard(const json::Value &msg)
{
    const json::Value *request_json = msg.get("request");
    std::optional<CampaignRequest> request =
        request_json ? CampaignRequest::fromJson(*request_json)
                     : std::nullopt;
    if (!request) {
        conn.send(json::Value::object()
                      .set("type", "error")
                      .set("id", opts.id)
                      .set("message", "malformed shard request"));
        return;
    }

    const std::uint64_t campaign = field(msg, "campaign");
    const std::uint64_t shard_id = field(msg, "shard");
    const std::size_t lo = field(msg, "lo");
    std::size_t hi = field(msg, "hi");

    exp::CampaignSpec spec;
    try {
        spec = buildSpec(*request);
    } catch (const std::exception &e) {
        conn.send(json::Value::object()
                      .set("type", "error")
                      .set("id", opts.id)
                      .set("campaign", campaign)
                      .set("message", e.what()));
        return;
    }
    spec.checkpointDir = stringField(msg, "checkpoint_dir");
    // Slow-trial logging from the inside — the executor rung of the
    // daemon's warn -> kill -> TimedOut ladder (DESIGN.md §16).
    spec.trialWallWarnSec = Tunables::environmentDefault().trialWarnSec;
    // Trace spills land under the campaign's durable state dir so
    // `svc_client trace` (and the daemon) can find every worker's
    // files in one place; without durable state there is nowhere
    // cross-process to spill, so tracing stays in-process only.
    if (spec.obsLevel >= obs::ObsLevel::Trace &&
        !spec.checkpointDir.empty())
        spec.traceSpillDir = spec.checkpointDir + "/traces";

    executor.beginCampaign(spec);

    std::optional<exp::CampaignCheckpoint> checkpoint;
    if (!spec.checkpointDir.empty())
        checkpoint.emplace(spec);

    bool lost = false; // daemon connection died mid-shard
    const auto current_hi = [&]() -> std::size_t {
        if (!conn.pump() && !conn.open()) {
            lost = true;
            return 0;
        }
        while (std::optional<json::Value> m = conn.next()) {
            const std::string type = stringField(*m, "type");
            if (type == "shrink" && field(*m, "shard") == shard_id) {
                const std::size_t new_hi = field(*m, "hi");
                if (new_hi < hi)
                    hi = new_hi;
            } else if (type == "shutdown") {
                shutdown = true;
            } else {
                inbox.push_back(std::move(*m));
            }
        }
        if (shutdown)
            return 0;
        heartbeat();
        return hi;
    };

    const auto emit = [&](exp::TrialResult &&result, bool restored) {
        restored ? ++trialsRestored : ++trialsRun;
        simCycles += result.output.simCycles;
        conn.send(
            json::Value::object()
                .set("type", "trial")
                .set("id", opts.id)
                .set("campaign", campaign)
                .set("shard", shard_id)
                .set("index",
                     static_cast<std::uint64_t>(result.index))
                .set("restored", restored)
                .set("data",
                     exp::CampaignCheckpoint::serializeTrial(result)));
        ++emitted;
        if (opts.dieAfterTrials && emitted >= opts.dieAfterTrials) {
            // The deterministic crash hook: die exactly like kill -9
            // would — mid-shard, no destructors, no goodbyes.
            ::raise(SIGKILL);
        }
        // Chaos site: freeze mid-shard.  The daemon's heartbeat
        // timeout must notice the silence, SIGKILL this process and
        // reassign the shard — exactly the wedged-worker story.
        if (chaosSigstop())
            ::raise(SIGSTOP);
    };

    exp::runShardRange(spec, lo, hi, executor,
                       checkpoint ? &*checkpoint : nullptr, emit,
                       current_hi,
                       static_cast<unsigned>(opts.id));
    ++shardsDone;
    if (!lost && !shutdown) {
        json::Value done = json::Value::object()
                               .set("type", "shard_done")
                               .set("id", opts.id)
                               .set("campaign", campaign)
                               .set("shard", shard_id)
                               .set("counters", counters());
        if (!executor.prof().empty())
            done.set("prof", executor.prof().toJson());
        conn.send(std::move(done));
    }
}

int
WorkerLoop::run()
{
    conn.send(json::Value::object()
                  .set("type", "hello")
                  .set("id", opts.id)
                  .set("pid", static_cast<std::uint64_t>(::getpid())));

    while (!shutdown) {
        if (inbox.empty())
            waitReadable(conn.fd(), opts.heartbeatMs);
        const bool alive = drain();
        while (!inbox.empty() && !shutdown) {
            const json::Value msg = std::move(inbox.front());
            inbox.pop_front();
            const std::string type = stringField(msg, "type");
            if (type == "shard")
                runShard(msg);
            else if (type == "shutdown")
                shutdown = true;
            else if (type != "shrink") // stale shrinks are expected
                log_.warn("worker %d: unexpected message type '%s'",
                          opts.id, type.c_str());
        }
        if (!alive && inbox.empty())
            break; // daemon is gone; nothing left to do
        heartbeat();
    }
    return 0;
}

} // namespace

int
runWorkerMain(const WorkerOptions &options)
{
    // The daemon may still be mid-listen when a worker launches.
    int fd = -1;
    for (int attempt = 0; attempt < 100 && fd < 0; ++attempt) {
        fd = connectUnix(options.socketPath);
        if (fd < 0)
            ::usleep(50 * 1000);
    }
    if (fd < 0) {
        log_.warn("worker %d: cannot connect to '%s'", options.id,
                  options.socketPath.c_str());
        return 1;
    }
    WorkerLoop loop(options, fd);
    return loop.run();
}

bool
maybeRunWorkerMain(int argc, char **argv, int *exit_code)
{
    if (argc < 2 || std::string(argv[1]) != kWorkerArg)
        return false;
    obs::configureLogFromEnv();
    WorkerOptions options;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto valueOf = [&](const char *prefix)
            -> std::optional<std::string> {
            const std::size_t n = std::string(prefix).size();
            if (arg.rfind(prefix, 0) == 0)
                return arg.substr(n);
            return std::nullopt;
        };
        if (auto v = valueOf("--socket="))
            options.socketPath = *v;
        else if (auto v = valueOf("--id="))
            options.id = std::atoi(v->c_str());
        else if (auto v = valueOf("--die-after-trials="))
            options.dieAfterTrials =
                static_cast<std::size_t>(std::atoll(v->c_str()));
        else if (auto v = valueOf("--heartbeat-ms="))
            options.heartbeatMs = std::atoi(v->c_str());
        else if (auto v = valueOf("--log-level=")) {
            obs::LogConfig lc = obs::logConfig();
            if (auto level = obs::parseLogLevel(*v))
                lc.level = *level;
            obs::configureLog(lc);
        } else if (arg == "--log-json") {
            obs::LogConfig lc = obs::logConfig();
            lc.json = true;
            obs::configureLog(lc);
        } else
            log_.warn("ignoring unknown flag '%s'", arg.c_str());
    }
    obs::installSimLogBridge();
    // Decorrelate this worker's chaos streams from its siblings'
    // (they all inherit the same USCOPE_SVC_CHAOS).
    seedChaosRole(0x40000000ull + static_cast<std::uint64_t>(options.id));
    if (options.socketPath.empty()) {
        log_.warn("no --socket= given");
        *exit_code = 1;
        return true;
    }
    *exit_code = runWorkerMain(options);
    return true;
}

} // namespace uscope::svc
