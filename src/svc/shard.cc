#include "svc/shard.hh"

#include <algorithm>

#include "common/logging.hh"

namespace uscope::svc
{

ShardScheduler::ShardScheduler(std::size_t trials, std::size_t shards)
    : done_(trials, 0)
{
    if (trials == 0)
        panic("ShardScheduler: zero trials");
    shards = std::clamp<std::size_t>(shards, 1, trials);
    const std::size_t base = trials / shards;
    const std::size_t extra = trials % shards;
    std::size_t lo = 0;
    for (std::size_t i = 0; i < shards; ++i) {
        const std::size_t len = base + (i < extra ? 1 : 0);
        Shard s;
        s.id = i;
        s.lo = lo;
        s.hi = lo + len;
        s.next = lo;
        shards_.push_back(s);
        lo += len;
    }
}

void
ShardScheduler::advance(Shard &s)
{
    while (s.next < s.hi && done_[s.next])
        ++s.next;
    if (s.next >= s.hi)
        s.done = true;
}

std::optional<ShardScheduler::Assignment>
ShardScheduler::assign(int worker)
{
    // Pending shards first (initial distribution, dead workers'
    // returns) — they carry resumable low-water marks.
    for (Shard &s : shards_) {
        if (s.done || s.owner != -1)
            continue;
        advance(s);
        if (s.done)
            continue;
        s.owner = worker;
        return Assignment{s.id, s.next, s.hi, std::nullopt};
    }

    // Steal: split the live shard with the most unclaimed work.  A
    // remainder of one is not worth a split — the owner will finish
    // it before the shrink message could even arrive.
    Shard *victim = nullptr;
    for (Shard &s : shards_) {
        if (s.done || s.owner == -1 || s.owner == worker)
            continue;
        const std::size_t remaining = s.hi - s.next;
        if (remaining >= 2 &&
            (!victim || remaining > victim->hi - victim->next))
            victim = &s;
    }
    if (!victim)
        return std::nullopt;

    const std::size_t mid =
        victim->next + (victim->hi - victim->next) / 2;
    Shard stolen;
    stolen.id = shards_.size();
    stolen.lo = mid;
    stolen.hi = victim->hi;
    stolen.next = mid;
    stolen.owner = worker;
    victim->hi = mid;
    ++steals_;
    const std::size_t victim_id = victim->id;
    shards_.push_back(stolen); // may invalidate `victim`
    return Assignment{stolen.id, mid, stolen.hi, victim_id};
}

bool
ShardScheduler::onTrial(std::size_t shard, std::size_t index)
{
    if (index >= done_.size())
        return false;
    const bool fresh = !done_[index];
    if (fresh) {
        done_[index] = 1;
        ++completed_;
    }
    if (shard < shards_.size()) {
        Shard &s = shards_[shard];
        // A victim may report trials past its shrunk hi (the shrink
        // raced the trial) — those land in the thief's shard, where
        // advance() on the thief's reports will account for them.
        if (index >= s.lo && index < s.hi)
            advance(s);
    }
    return fresh;
}

void
ShardScheduler::onShardDone(std::size_t shard)
{
    if (shard >= shards_.size())
        return;
    Shard &s = shards_[shard];
    s.done = true;
    s.owner = -1;
}

std::size_t
ShardScheduler::onWorkerDead(int worker)
{
    std::size_t returned = 0;
    for (Shard &s : shards_) {
        if (s.owner != worker)
            continue;
        s.owner = -1;
        if (!s.done) {
            advance(s);
            if (!s.done)
                ++returned;
        }
    }
    return returned;
}

void
ShardScheduler::seedDone(std::size_t index)
{
    if (index >= done_.size() || done_[index])
        return;
    done_[index] = 1;
    ++completed_;
}

} // namespace uscope::svc
