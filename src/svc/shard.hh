/**
 * @file
 * The daemon's shard scheduler (DESIGN.md §13): pure bookkeeping, no
 * sockets, no time — which is what makes the steal/death state
 * machine unit-testable in isolation.
 *
 * A campaign's [0, trials) grid is cut into contiguous shards, one
 * per worker initially.  A worker that runs dry *steals*: the
 * scheduler splits the live shard with the most remaining work at its
 * midpoint, hands the upper half to the thief as a new shard, and
 * reports whom it robbed so the daemon can send the victim a shrink
 * message.  The victim learns of the split asynchronously — it may
 * complete a few trials past the new boundary first.  That overlap is
 * *harmless by design*: trials are bit-deterministic in their seed,
 * so duplicate executions produce byte-identical results and the
 * done-bitmap dedup here makes whichever report arrives second a
 * no-op (the same argument makes checkpoint-file write races benign —
 * both writers rename identical bytes into place).
 *
 * Worker death returns its live shards to the pending pool.  `next`
 * (the low-water mark of reported trials) survives, so the
 * reassignment resumes where the daemon's knowledge ends; trials the
 * dead worker completed-but-checkpointed beyond that are restored,
 * not re-run, by exp::runShardRange on the inheriting worker.
 */

#ifndef USCOPE_SVC_SHARD_HH
#define USCOPE_SVC_SHARD_HH

#include <cstddef>
#include <optional>
#include <vector>

namespace uscope::svc
{

class ShardScheduler
{
  public:
    struct Shard
    {
        std::size_t id = 0;
        std::size_t lo = 0;
        /** One past the last trial this shard covers (shrinks on
         *  steal, never grows). */
        std::size_t hi = 0;
        /** Low-water mark: every trial below it is done.  Advances on
         *  reports and when leading trials are already done (e.g.
         *  restored from a checkpoint). */
        std::size_t next = 0;
        /** Owning worker id, or -1 while pending. */
        int owner = -1;
        bool done = false;
    };

    struct Assignment
    {
        std::size_t shard = 0;
        std::size_t lo = 0;
        std::size_t hi = 0;
        /** Set when this assignment was stolen: the victim shard the
         *  daemon must send a shrink(hi = this->lo) to. */
        std::optional<std::size_t> stolenFrom;
    };

    /** Cut [0, trials) into @p shards contiguous pieces (clamped to
     *  at most one shard per trial, at least one shard). */
    ShardScheduler(std::size_t trials, std::size_t shards);

    /**
     * Claim work for @p worker: a pending shard if any, else a steal
     * (split of the live shard with the most unclaimed trials).
     * nullopt when nothing remains worth assigning.
     */
    std::optional<Assignment> assign(int worker);

    /** A trial report (possibly a duplicate; deduped here).  Returns
     *  true when @p index was new. */
    bool onTrial(std::size_t shard, std::size_t index);

    /** Worker finished its shard. */
    void onShardDone(std::size_t shard);

    /** Return @p worker's live shards to the pending pool; the
     *  returned count is how many shards went back. */
    std::size_t onWorkerDead(int worker);

    bool allDone() const { return completed_ == done_.size(); }
    std::size_t completed() const { return completed_; }
    std::size_t trials() const { return done_.size(); }
    bool isDone(std::size_t index) const { return done_[index] != 0; }
    std::size_t steals() const { return steals_; }

    const Shard &shard(std::size_t id) const { return shards_[id]; }
    std::size_t shardCount() const { return shards_.size(); }

    /** Mark @p index complete outside any shard (daemon-side
     *  checkpoint preload before dispatch). */
    void seedDone(std::size_t index);

  private:
    void advance(Shard &s);

    std::vector<Shard> shards_;
    std::vector<char> done_;
    std::size_t completed_ = 0;
    std::size_t steals_ = 0;
};

} // namespace uscope::svc

#endif // USCOPE_SVC_SHARD_HH
