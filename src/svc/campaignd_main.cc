/**
 * @file
 * uscope-campaignd entry point.  The same binary serves as daemon and
 * as worker: the daemon forks and re-execs /proc/self/exe with the
 * --uscope-worker marker, which maybeRunWorkerMain() intercepts here
 * before any daemon flag parsing happens.
 */

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/logging.hh"
#include "obs/log.hh"
#include "svc/daemon.hh"
#include "svc/worker.hh"

using namespace uscope;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --socket=PATH [options]\n"
        "\n"
        "  --socket=PATH            AF_UNIX listening socket (required)\n"
        "  --workers=N              worker processes (default 2)\n"
        "  --state-dir=DIR          durable campaign state (default off)\n"
        "  --heartbeat-timeout=SEC  busy-worker liveness deadline "
        "(default 30)\n"
        "  --queue-limit=N          campaigns in flight before "
        "submits are\n"
        "                           shed with {\"type\":\"busy\"} "
        "(default 32)\n"
        "\n"
        "  Every failure-handling knob (heartbeats, backoff, trial\n"
        "  escalation, drain grace) also reads USCOPE_SVC_* env\n"
        "  overrides; see src/svc/tunables.hh.  SIGTERM drains:\n"
        "  in-flight shards stop at a trial boundary, resumable\n"
        "  manifests persist, the next start resumes them.\n"
        "  --stream-every=N         default update cadence in trials "
        "(default 0 = off)\n"
        "  --worker-exe=PATH        worker binary (default: this one)\n"
        "  --die-after-trials=N     test hook: worker 0's first "
        "incarnation\n"
        "                           self-SIGKILLs after N trials\n"
        "  --log-level=LEVEL        error|warn|info|debug (default "
        "info;\n"
        "                           USCOPE_LOG also understood)\n"
        "  --log-json               NDJSON log lines on stderr\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    int worker_exit = 0;
    if (svc::maybeRunWorkerMain(argc, argv, &worker_exit))
        return worker_exit;

    obs::configureLogFromEnv();
    svc::DaemonConfig config;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto valueOf = [&](const char *prefix)
            -> std::optional<std::string> {
            const std::size_t n = std::string(prefix).size();
            if (arg.rfind(prefix, 0) == 0)
                return arg.substr(n);
            return std::nullopt;
        };
        if (auto v = valueOf("--socket="))
            config.socketPath = *v;
        else if (auto v = valueOf("--workers="))
            config.workers =
                static_cast<unsigned>(std::atoi(v->c_str()));
        else if (auto v = valueOf("--state-dir="))
            config.stateDir = *v;
        else if (auto v = valueOf("--heartbeat-timeout="))
            config.tun.heartbeatTimeoutSec = std::atof(v->c_str());
        else if (auto v = valueOf("--queue-limit="))
            config.tun.queueLimit =
                static_cast<std::size_t>(std::atoll(v->c_str()));
        else if (auto v = valueOf("--stream-every="))
            config.streamEvery =
                static_cast<std::size_t>(std::atoll(v->c_str()));
        else if (auto v = valueOf("--worker-exe="))
            config.workerExe = *v;
        else if (auto v = valueOf("--die-after-trials="))
            config.worker0DieAfter =
                static_cast<std::size_t>(std::atoll(v->c_str()));
        else if (auto v = valueOf("--log-level=")) {
            obs::LogConfig lc = obs::logConfig();
            if (auto level = obs::parseLogLevel(*v)) {
                lc.level = *level;
                obs::configureLog(lc);
            } else {
                std::fprintf(stderr, "unknown log level '%s'\n",
                             v->c_str());
                return 2;
            }
        } else if (arg == "--log-json") {
            obs::LogConfig lc = obs::logConfig();
            lc.json = true;
            obs::configureLog(lc);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (config.socketPath.empty()) {
        usage(argv[0]);
        return 2;
    }
    obs::installSimLogBridge();

    try {
        svc::Daemon daemon(std::move(config));
        return daemon.run();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "uscope-campaignd: %s\n", e.what());
        return 1;
    }
}
