#include "exp/result_sink.hh"

#include <filesystem>
#include <system_error>

#include "common/logging.hh"
#include "exp/checkpoint.hh"
#include "obs/log.hh"

namespace uscope::exp
{

namespace
{
constexpr obs::Logger sinkLog{"exp.sink"};
} // namespace

JsonStreamSink::JsonStreamSink(std::ostream &os, bool include_trials,
                               int indent)
    : os_(os), includeTrials_(include_trials), indent_(indent)
{
}

namespace
{

/**
 * NaN/Inf have no JSON token and dump as null; annotate the document
 * (samples_dropped-style) and warn so the nulls are attributable when
 * the results are read back by plotting tooling.
 */
json::Value
annotateNonFinite(json::Value doc, const std::string &name)
{
    const std::size_t dropped = doc.nonFiniteCount();
    if (dropped) {
        sinkLog.warn("campaign '%s': %zu non-finite metric value(s) "
                     "serialized as null",
                     name.c_str(), dropped);
        doc.set("non_finite_nulled", std::uint64_t{dropped});
    }
    return doc;
}

} // namespace

void
JsonStreamSink::consume(const CampaignResult &result)
{
    os_ << annotateNonFinite(result.toJson(includeTrials_), result.name)
               .dump(indent_)
        << '\n';
    os_.flush();
}

namespace
{

/** `name` becomes a file name; keep it shell- and diff-friendly. */
std::string
sanitize(const std::string &name)
{
    std::string out = name.empty() ? std::string("campaign") : name;
    for (char &c : out) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                        || (c >= '0' && c <= '9') || c == '-'
                        || c == '_' || c == '.';
        if (!ok)
            c = '_';
    }
    return out;
}

} // namespace

JsonFileSink::JsonFileSink(std::string dir, bool include_trials,
                           int indent)
    : dir_(std::move(dir)), includeTrials_(include_trials),
      indent_(indent)
{
    if (dir_.empty())
        dir_ = ".";
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        fatal("JsonFileSink: cannot create directory '%s': %s",
              dir_.c_str(), ec.message().c_str());
}

void
JsonFileSink::consume(const CampaignResult &result)
{
    const std::string path =
        dir_ + "/" + sanitize(result.name) + ".json";
    // tmp + rename: a reader racing the write — or a campaign killed
    // mid-report — sees the previous document or the new one, never a
    // truncated prefix.
    writeFileAtomic(
        path,
        annotateNonFinite(result.toJson(includeTrials_), result.name)
                .dump(indent_) +
            '\n');
    lastPath_ = path;
}

} // namespace uscope::exp
