#include "exp/result_sink.hh"

#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/logging.hh"

namespace uscope::exp
{

JsonStreamSink::JsonStreamSink(std::ostream &os, bool include_trials,
                               int indent)
    : os_(os), includeTrials_(include_trials), indent_(indent)
{
}

void
JsonStreamSink::consume(const CampaignResult &result)
{
    os_ << result.toJson(includeTrials_).dump(indent_) << '\n';
    os_.flush();
}

namespace
{

/** `name` becomes a file name; keep it shell- and diff-friendly. */
std::string
sanitize(const std::string &name)
{
    std::string out = name.empty() ? std::string("campaign") : name;
    for (char &c : out) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                        || (c >= '0' && c <= '9') || c == '-'
                        || c == '_' || c == '.';
        if (!ok)
            c = '_';
    }
    return out;
}

} // namespace

JsonFileSink::JsonFileSink(std::string dir, bool include_trials,
                           int indent)
    : dir_(std::move(dir)), includeTrials_(include_trials),
      indent_(indent)
{
    if (dir_.empty())
        dir_ = ".";
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        fatal("JsonFileSink: cannot create directory '%s': %s",
              dir_.c_str(), ec.message().c_str());
}

void
JsonFileSink::consume(const CampaignResult &result)
{
    const std::string path =
        dir_ + "/" + sanitize(result.name) + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("JsonFileSink: cannot open '%s' for writing",
              path.c_str());
    out << result.toJson(includeTrials_).dump(indent_) << '\n';
    if (!out)
        fatal("JsonFileSink: short write to '%s'", path.c_str());
    lastPath_ = path;
}

} // namespace uscope::exp
