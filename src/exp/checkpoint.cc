#include "exp/checkpoint.hh"

#include <bit>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <unistd.h>

#include "common/logging.hh"
#include "obs/log.hh"

namespace uscope::exp
{

namespace
{

constexpr obs::Logger log_{"exp.checkpoint"};

constexpr const char *trialMagic = "uscope-trial-v1";
constexpr const char *manifestMagic = "uscope-campaign-v1";

/** Doubles persist as the hex of their bit pattern — the only text
 *  encoding that round-trips NaN payloads and signed zeros exactly. */
std::string
hexBits(double value)
{
    return format("%016llx",
                  static_cast<unsigned long long>(
                      std::bit_cast<std::uint64_t>(value)));
}

std::string
summaryFields(const Summary &summary)
{
    return format("%llu ",
                  static_cast<unsigned long long>(summary.count())) +
           hexBits(summary.mean()) + ' ' + hexBits(summary.m2()) + ' ' +
           hexBits(summary.rawMin()) + ' ' + hexBits(summary.rawMax());
}

/** Append `key <len>\n<bytes>\n` — the length prefix makes arbitrary
 *  bytes (exception texts, JSON dumps) safe to embed. */
void
appendBlob(std::string &out, const char *key, const std::string &bytes)
{
    out += format("%s %zu\n", key, bytes.size());
    out += bytes;
    out += '\n';
}

/**
 * Cursor over the serialized text.  Every accessor clears `ok` on
 * malformed input instead of throwing, so parseTrial reduces to a
 * straight-line read followed by one validity check.
 */
struct Reader
{
    const std::string &s;
    std::size_t pos = 0;
    bool ok = true;

    std::string
    word()
    {
        while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\n'))
            ++pos;
        const std::size_t start = pos;
        while (pos < s.size() && s[pos] != ' ' && s[pos] != '\n')
            ++pos;
        if (start == pos)
            ok = false;
        return s.substr(start, pos - start);
    }

    void
    expect(const char *token)
    {
        if (word() != token)
            ok = false;
    }

    std::uint64_t
    u64()
    {
        const std::string w = word();
        if (!ok || w.empty())
            return 0;
        char *end = nullptr;
        const std::uint64_t v = std::strtoull(w.c_str(), &end, 10);
        if (end != w.c_str() + w.size())
            ok = false;
        return v;
    }

    double
    bits()
    {
        const std::string w = word();
        if (!ok || w.size() != 16)
            return ok = false, 0.0;
        char *end = nullptr;
        const std::uint64_t v = std::strtoull(w.c_str(), &end, 16);
        if (end != w.c_str() + w.size())
            ok = false;
        return std::bit_cast<double>(v);
    }

    Summary
    summary()
    {
        const std::uint64_t count = u64();
        const double mean = bits();
        const double m2 = bits();
        const double min = bits();
        const double max = bits();
        return Summary::fromParts(count, mean, m2, min, max);
    }

    /** The bytes of a length-prefixed blob: exactly one '\n' after the
     *  length token, then @p len raw bytes. */
    std::string
    blob(std::size_t len)
    {
        if (pos >= s.size() || s[pos] != '\n' || pos + 1 + len > s.size()) {
            ok = false;
            return {};
        }
        ++pos;
        std::string bytes = s.substr(pos, len);
        pos += len;
        return bytes;
    }
};

std::optional<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in)
        return std::nullopt;
    return buffer.str();
}

std::optional<TrialStatus>
statusFromName(const std::string &name)
{
    for (TrialStatus status :
         {TrialStatus::Ok, TrialStatus::Failed, TrialStatus::TimedOut,
          TrialStatus::Retried}) {
        if (name == trialStatusName(status))
            return status;
    }
    return std::nullopt;
}

} // namespace

std::string
CampaignCheckpoint::serializeTrial(const TrialResult &result)
{
    std::string out;
    out += trialMagic;
    out += '\n';
    out += format("index %llu\n",
                  static_cast<unsigned long long>(result.index));
    out += format("seed %llu\n",
                  static_cast<unsigned long long>(result.seed));
    out += format("status %s\n", trialStatusName(result.status));
    out += format("attempts %u\n", result.attempts);
    out += "wall " + hexBits(result.wallSeconds) + '\n';
    out += format("sim_cycles %llu\n",
                  static_cast<unsigned long long>(result.output.simCycles));
    appendBlob(out, "error", result.error);
    appendBlob(out, "payload",
               result.output.payload.isNull()
                   ? std::string()
                   : result.output.payload.dump());
    out += "metric " + summaryFields(result.output.metric) + '\n';
    const ms::MicroscopeStats &scope = result.output.scope;
    out += format("scope %llu %llu %llu %llu %llu\n",
                  static_cast<unsigned long long>(scope.handleFaults),
                  static_cast<unsigned long long>(scope.pivotFaults),
                  static_cast<unsigned long long>(scope.foreignFaults),
                  static_cast<unsigned long long>(scope.episodes),
                  static_cast<unsigned long long>(scope.totalReplays));
    out += format("metrics %zu\n", result.output.metrics.values.size());
    for (const obs::MetricValue &value : result.output.metrics.values) {
        switch (value.kind) {
          case obs::MetricKind::Counter:
            appendBlob(out, "counter", value.name);
            out += format("%llu\n",
                          static_cast<unsigned long long>(value.counter));
            break;
          case obs::MetricKind::Gauge:
            appendBlob(out, "gauge", value.name);
            out += hexBits(value.gauge) + '\n';
            break;
          case obs::MetricKind::Latency:
            appendBlob(out, "latency", value.name);
            out += summaryFields(value.latency) + '\n';
            break;
        }
    }
    out += "end\n";
    return out;
}

std::optional<TrialResult>
CampaignCheckpoint::parseTrial(const std::string &text)
{
    Reader r{text};
    if (r.word() != trialMagic)
        return std::nullopt;

    TrialResult out;
    r.expect("index");
    out.index = r.u64();
    r.expect("seed");
    out.seed = r.u64();
    r.expect("status");
    const std::optional<TrialStatus> status = statusFromName(r.word());
    if (!status)
        return std::nullopt;
    out.status = *status;
    r.expect("attempts");
    out.attempts = static_cast<unsigned>(r.u64());
    r.expect("wall");
    out.wallSeconds = r.bits();
    r.expect("sim_cycles");
    out.output.simCycles = r.u64();
    r.expect("error");
    out.error = r.blob(r.u64());
    r.expect("payload");
    const std::string payload = r.blob(r.u64());
    if (!payload.empty())
        out.output.payload = json::Value::raw(payload);
    r.expect("metric");
    out.output.metric = r.summary();
    r.expect("scope");
    out.output.scope.handleFaults = r.u64();
    out.output.scope.pivotFaults = r.u64();
    out.output.scope.foreignFaults = r.u64();
    out.output.scope.episodes = r.u64();
    out.output.scope.totalReplays = r.u64();
    r.expect("metrics");
    const std::uint64_t entries = r.u64();
    for (std::uint64_t i = 0; r.ok && i < entries; ++i) {
        obs::MetricValue value;
        const std::string kind = r.word();
        value.name = r.blob(r.u64());
        if (kind == "counter") {
            value.kind = obs::MetricKind::Counter;
            value.counter = r.u64();
        } else if (kind == "gauge") {
            value.kind = obs::MetricKind::Gauge;
            value.gauge = r.bits();
        } else if (kind == "latency") {
            value.kind = obs::MetricKind::Latency;
            value.latency = r.summary();
        } else {
            return std::nullopt;
        }
        out.output.metrics.values.push_back(std::move(value));
    }
    r.expect("end");
    if (!r.ok || out.attempts == 0)
        return std::nullopt;
    return out;
}

std::string
CampaignCheckpoint::manifestPath() const
{
    return dir_ + "/manifest.txt";
}

std::string
CampaignCheckpoint::trialPath(std::size_t index) const
{
    return dir_ + "/trial_" + std::to_string(index) + ".ckpt";
}

std::string
CampaignCheckpoint::manifestText() const
{
    std::string out;
    out += manifestMagic;
    out += '\n';
    appendBlob(out, "name", name_);
    out += format("trials %llu\n",
                  static_cast<unsigned long long>(trials_));
    out += format("master_seed %llu\n",
                  static_cast<unsigned long long>(masterSeed_));
    out += format("cycle_budget %llu\n",
                  static_cast<unsigned long long>(cycleBudget_));
    out += format("max_retries %u\n", maxRetries_);
    return out;
}

CampaignCheckpoint::CampaignCheckpoint(const CampaignSpec &spec)
    : dir_(spec.checkpointDir), name_(spec.name), trials_(spec.trials),
      masterSeed_(spec.masterSeed), cycleBudget_(spec.cycleBudget),
      maxRetries_(spec.maxRetries)
{
    if (dir_.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        fatal("CampaignCheckpoint: cannot create directory '%s': %s",
              dir_.c_str(), ec.message().c_str());

    const std::optional<std::string> existing = readFile(manifestPath());
    if (existing && *existing == manifestText()) {
        resuming_ = true;
        return;
    }
    if (existing)
        log_.warn("campaign '%s': checkpoint directory '%s' holds a "
                  "different campaign's state; discarding it",
                  name_.c_str(), dir_.c_str());

    // Fresh start: stale trial files (possibly from a campaign with a
    // different trial count) must not be picked up by load().
    for (const auto &entry :
         std::filesystem::directory_iterator(dir_, ec)) {
        const std::string file = entry.path().filename().string();
        if (file.rfind("trial_", 0) == 0)
            std::filesystem::remove(entry.path(), ec);
    }
    writeFileAtomic(manifestPath(), manifestText());
}

std::optional<TrialResult>
CampaignCheckpoint::loadTrial(std::size_t index) const
{
    if (!resuming_ || index >= trials_)
        return std::nullopt;
    const std::optional<std::string> text = readFile(trialPath(index));
    if (!text)
        return std::nullopt; // never completed — just run it
    std::optional<TrialResult> trial = parseTrial(*text);
    if (!trial) {
        // Truncated or non-parseable (e.g. the write raced a power
        // cut on a filesystem that defeated the fsync dance): the
        // file carries no usable result, so the trial re-runs — a
        // per-trial cost, never a campaign abort.
        log_.warn("campaign '%s': checkpoint '%s' is truncated or "
                  "non-parseable; re-running trial %zu",
                  name_.c_str(), trialPath(index).c_str(), index);
        return std::nullopt;
    }
    // The seed re-derivation is the integrity check: a file that
    // parsed but does not carry the seed this campaign would hand
    // this trial is stale or tampered with, and re-running is always
    // safe.  A persisted Failed status is equally impossible —
    // store() never writes those — so it gets the same treatment.
    const bool valid =
        trial->index == index &&
        trial->status != TrialStatus::Failed &&
        trial->seed ==
            deriveRetrySeed(masterSeed_, index, trial->attempts - 1);
    if (!valid) {
        log_.warn("campaign '%s': checkpoint '%s' is stale or "
                  "inconsistent with this campaign; re-running trial "
                  "%zu",
                  name_.c_str(), trialPath(index).c_str(), index);
        return std::nullopt;
    }
    return trial;
}

std::size_t
CampaignCheckpoint::load(std::vector<TrialResult> &results,
                         std::vector<char> &done) const
{
    if (!resuming_)
        return 0;
    std::size_t restored = 0;
    for (std::size_t index = 0; index < trials_; ++index) {
        std::optional<TrialResult> trial = loadTrial(index);
        if (!trial)
            continue;
        results[index] = std::move(*trial);
        done[index] = 1;
        ++restored;
    }
    if (restored)
        log_.info("campaign '%s': resumed %zu of %zu trials from "
                  "'%s'",
                  name_.c_str(), restored, trials_, dir_.c_str());
    return restored;
}

void
CampaignCheckpoint::store(const TrialResult &result) const
{
    if (dir_.empty() || result.status == TrialStatus::Failed)
        return;
    try {
        writeFileAtomic(trialPath(result.index),
                        serializeTrial(result));
    } catch (const std::exception &e) {
        // Best-effort: a full disk must degrade the *checkpoint*, not
        // the campaign; the trial simply re-runs on a future resume.
        log_.warn("campaign '%s': could not checkpoint trial %zu: %s",
                  name_.c_str(), result.index, e.what());
    }
}

} // namespace uscope::exp
