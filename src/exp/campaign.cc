#include "exp/campaign.hh"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace uscope::exp
{

namespace
{

/** SplitMix64 finalizer (Vigna); full-avalanche 64-bit mix. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

std::uint64_t
deriveTrialSeed(std::uint64_t master, std::uint64_t index)
{
    // Two mix rounds decorrelate (master, index) and (master, index+1)
    // as thoroughly as two unrelated seeds; a plain master+index would
    // hand adjacent trials overlapping SplitMix64 expansions.
    return mix64(mix64(master) ^ mix64(~index));
}

void
TrialContext::checkBudget(Cycles used_cycles) const
{
    if (cycleBudget && used_cycles > cycleBudget) {
        throw TrialTimeout(format(
            "trial %zu exceeded its cycle budget (%llu > %llu)", index,
            static_cast<unsigned long long>(used_cycles),
            static_cast<unsigned long long>(cycleBudget)));
    }
}

const char *
trialStatusName(TrialStatus status)
{
    switch (status) {
      case TrialStatus::Ok: return "ok";
      case TrialStatus::Failed: return "failed";
      case TrialStatus::TimedOut: return "timed_out";
    }
    return "?";
}

json::Value
toJson(const Summary &summary)
{
    return json::Value::object()
        .set("count", summary.count())
        .set("mean", summary.mean())
        .set("stddev", summary.stddev())
        .set("min", summary.min())
        .set("max", summary.max());
}

json::Value
toJson(const Histogram &histogram, std::size_t max_raw_samples)
{
    json::Value v = json::Value::object()
                        .set("summary", toJson(histogram.summary()))
                        .set("underflow", histogram.underflow())
                        .set("overflow", histogram.overflow());
    json::Value buckets = json::Value::array();
    for (std::uint64_t count : histogram.buckets())
        buckets.push(count);
    v.set("buckets", std::move(buckets));

    if (!histogram.keepRaw())
        return v;

    const std::vector<double> &raw = histogram.samples();
    json::Value samples = json::Value::array();
    std::uint64_t dropped = 0;
    if (max_raw_samples == 0 || raw.size() <= max_raw_samples) {
        for (double sample : raw)
            samples.push(sample);
    } else {
        // Deterministic stride sampling: every k-th sample, where k
        // depends only on the sizes — not on threads or time.
        const std::size_t stride =
            (raw.size() + max_raw_samples - 1) / max_raw_samples;
        for (std::size_t i = 0; i < raw.size(); i += stride)
            samples.push(raw[i]);
        dropped = raw.size() - (raw.size() + stride - 1) / stride;
        warn("histogram JSON export: %llu of %zu raw samples dropped "
             "(cap %zu, stride %zu)",
             static_cast<unsigned long long>(dropped), raw.size(),
             max_raw_samples, stride);
    }
    v.set("samples", std::move(samples));
    v.set("samples_total", std::uint64_t{raw.size()});
    v.set("samples_dropped", dropped);
    return v;
}

json::Value
TrialResult::toJson() const
{
    json::Value v = json::Value::object()
                        .set("index", std::uint64_t{index})
                        .set("seed", seed)
                        .set("status", trialStatusName(status))
                        .set("wall_seconds", wallSeconds)
                        .set("sim_cycles", output.simCycles);
    if (!error.empty())
        v.set("error", error);
    if (output.metric.count())
        v.set("metric", exp::toJson(output.metric));
    if (!output.metrics.empty())
        v.set("metrics", output.metrics.toJson());
    if (!output.payload.isNull())
        v.set("payload", output.payload);
    return v;
}

json::Value
CampaignAggregate::toJson() const
{
    json::Value v = json::Value::object()
        .set("ok", std::uint64_t{ok})
        .set("failed", std::uint64_t{failed})
        .set("timed_out", std::uint64_t{timedOut})
        .set("sim_cycles", simCycles)
        .set("metric", exp::toJson(metric))
        .set("scope", json::Value::object()
                          .set("handle_faults", scope.handleFaults)
                          .set("pivot_faults", scope.pivotFaults)
                          .set("foreign_faults", scope.foreignFaults)
                          .set("episodes", scope.episodes)
                          .set("total_replays", scope.totalReplays));
    if (!metrics.empty())
        v.set("metrics", metrics.toJson());
    return v;
}

double
CampaignResult::trialsPerSecond() const
{
    return wallSeconds > 0.0
               ? static_cast<double>(trialCount) / wallSeconds
               : 0.0;
}

double
CampaignResult::simCyclesPerSecond() const
{
    return wallSeconds > 0.0
               ? static_cast<double>(aggregate.simCycles) / wallSeconds
               : 0.0;
}

json::Value
CampaignResult::toJson(bool include_trials) const
{
    json::Value v =
        json::Value::object()
            .set("campaign", name)
            .set("trials", std::uint64_t{trialCount})
            .set("master_seed", masterSeed)
            .set("workers", std::uint64_t{workers})
            .set("wall_seconds", wallSeconds)
            .set("trials_per_second", trialsPerSecond())
            .set("sim_cycles_per_second", simCyclesPerSecond())
            .set("aggregate", aggregate.toJson());
    if (include_trials && !trials.empty()) {
        json::Value detail = json::Value::array();
        for (const TrialResult &trial : trials)
            detail.push(trial.toJson());
        v.set("trial_results", std::move(detail));
    }
    return v;
}

CampaignRunner::CampaignRunner(CampaignSpec spec) : spec_(std::move(spec))
{
    if (!spec_.body)
        fatal("CampaignRunner: spec '%s' has no trial body",
              spec_.name.c_str());
}

TrialResult
CampaignRunner::runTrial(std::size_t index, unsigned worker) const
{
    TrialContext ctx;
    ctx.index = index;
    ctx.seed = deriveTrialSeed(spec_.masterSeed, index);
    ctx.worker = worker;
    ctx.cycleBudget = spec_.cycleBudget;
    ctx.machine.seed = ctx.seed;
    if (spec_.machineFactory) {
        ctx.machine = spec_.machineFactory(ctx);
        // A factory that never thought about seeding still gets a
        // deterministic per-trial stream.  os::Seed records whether
        // the factory assigned one, so a factory that deliberately
        // picks the default value (42) is honoured rather than
        // silently re-seeded.
        if (!ctx.machine.seed.explicitlySet)
            ctx.machine.seed = ctx.seed;
    }

    TrialResult result;
    result.index = index;
    result.seed = ctx.seed;

    const auto start = std::chrono::steady_clock::now();
    try {
        result.output = spec_.body(ctx);
        result.status = TrialStatus::Ok;
        if (spec_.cycleBudget &&
            result.output.simCycles > spec_.cycleBudget) {
            result.status = TrialStatus::TimedOut;
            result.error = format(
                "cycle budget exceeded (%llu > %llu)",
                static_cast<unsigned long long>(result.output.simCycles),
                static_cast<unsigned long long>(spec_.cycleBudget));
        }
    } catch (const TrialTimeout &e) {
        result.status = TrialStatus::TimedOut;
        result.error = e.what();
    } catch (const std::exception &e) {
        result.status = TrialStatus::Failed;
        result.error = e.what();
    } catch (...) {
        result.status = TrialStatus::Failed;
        result.error = "unknown exception";
    }
    result.wallSeconds = elapsedSeconds(start);
    return result;
}

CampaignResult
CampaignRunner::run()
{
    const std::size_t total = spec_.trials;
    unsigned workers = spec_.workers;
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    if (total > 0 && workers > total)
        workers = static_cast<unsigned>(total);
    if (workers == 0)
        workers = 1;

    std::vector<TrialResult> results(total);
    std::atomic<std::size_t> next{0};
    std::size_t completed = 0;
    std::mutex lock;

    const auto start = std::chrono::steady_clock::now();
    const auto drain = [&](unsigned worker) {
        for (;;) {
            const std::size_t index =
                next.fetch_add(1, std::memory_order_relaxed);
            if (index >= total)
                return;
            TrialResult result = runTrial(index, worker);
            std::lock_guard<std::mutex> guard(lock);
            results[index] = std::move(result);
            ++completed;
            if (spec_.progress)
                spec_.progress(completed, total);
        }
    };

    if (workers == 1) {
        // Run on the calling thread: identical code path (results are
        // still aggregated below, in index order), simpler stacks in
        // a debugger, and no thread overhead for serial baselines.
        drain(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned worker = 0; worker < workers; ++worker)
            pool.emplace_back(drain, worker);
        for (std::thread &thread : pool)
            thread.join();
    }

    CampaignResult campaign;
    campaign.name = spec_.name;
    campaign.trialCount = total;
    campaign.masterSeed = spec_.masterSeed;
    campaign.workers = workers;

    // Aggregation happens here, single-threaded and in index order —
    // *never* in completion order — so N-worker and 1-worker runs of
    // the same spec produce bit-identical aggregates.
    for (const TrialResult &trial : results) {
        switch (trial.status) {
          case TrialStatus::Ok: ++campaign.aggregate.ok; break;
          case TrialStatus::Failed: ++campaign.aggregate.failed; break;
          case TrialStatus::TimedOut:
            ++campaign.aggregate.timedOut;
            break;
        }
        campaign.aggregate.metric.merge(trial.output.metric);
        campaign.aggregate.scope.merge(trial.output.scope);
        campaign.aggregate.metrics.merge(trial.output.metrics);
        campaign.aggregate.simCycles += trial.output.simCycles;
        if (spec_.reduce)
            spec_.reduce(trial);
    }
    if (spec_.keepTrialResults)
        campaign.trials = std::move(results);
    campaign.wallSeconds = elapsedSeconds(start);
    return campaign;
}

CampaignResult
runCampaign(CampaignSpec spec)
{
    return CampaignRunner(std::move(spec)).run();
}

} // namespace uscope::exp
