#include "exp/campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "common/random.hh"
#include "core/replay_batch.hh"
#include "exp/checkpoint.hh"
#include "obs/chrome_trace.hh"
#include "obs/log.hh"

namespace uscope::exp
{

namespace
{

constexpr obs::Logger log_{"exp.campaign"};

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/**
 * Strip host-mechanics meta-counters from a snapshot copy.  Three
 * prefixes describe *how a result was produced*, not the result:
 * `obs.trace.*` only appears when tracing is on (folding it in would
 * make `--obs=off` and `--obs=trace` disagree about identical
 * results); `mem.physmem.*` counts COW fast-reshares, which differ
 * between pooled/forked/cold machines reaching the same state; and
 * `os.replay.batch.*` records lockstep-batching telemetry, which the
 * batched and per-sibling replay paths by contract must not let leak
 * into results (DESIGN.md §17).
 */
obs::MetricSnapshot
withoutObsMeta(const obs::MetricSnapshot &snapshot)
{
    obs::MetricSnapshot out = snapshot;
    out.values.erase(
        std::remove_if(out.values.begin(), out.values.end(),
                       [](const obs::MetricValue &v) {
                           return v.name.rfind("obs.trace.", 0) == 0 ||
                                  v.name.rfind("mem.physmem.", 0) == 0 ||
                                  v.name.rfind("os.replay.batch.",
                                               0) == 0;
                       }),
        out.values.end());
    return out;
}

} // namespace

std::uint64_t
deriveTrialSeed(std::uint64_t master, std::uint64_t index)
{
    // Two mix rounds decorrelate (master, index) and (master, index+1)
    // as thoroughly as two unrelated seeds; a plain master+index would
    // hand adjacent trials overlapping SplitMix64 expansions.
    return mix64(mix64(master) ^ mix64(~index));
}

std::uint64_t
deriveRetrySeed(std::uint64_t master, std::uint64_t index,
                unsigned attempt)
{
    const std::uint64_t base = deriveTrialSeed(master, index);
    if (attempt == 0)
        return base;
    return mix64(mix64(base) ^ mix64(~std::uint64_t{attempt}));
}

std::uint64_t
deriveWarmupSeed(std::uint64_t master)
{
    // A fixed odd constant (the SplitMix64 increment) stands in for
    // the index that trial/retry seeds mix in, keeping the warmup
    // stream decorrelated from every per-trial stream.
    return mix64(mix64(master) ^ 0x9E3779B97F4A7C15ull);
}

std::uint64_t
deriveReplaySeed(std::uint64_t trial_seed, std::uint64_t iteration)
{
    // The definition moved to ms::deriveReplaySeed (DESIGN.md §17):
    // the batched-replay driver below src/exp must derive the exact
    // same sibling seeds, so the library owns the formula and the
    // campaign layer forwards.  Values are unchanged — campaign
    // fingerprints are preserved.
    return ms::deriveReplaySeed(trial_seed, iteration);
}

void
TrialContext::checkBudget(Cycles used_cycles) const
{
    if (cycleBudget && used_cycles > cycleBudget) {
        throw TrialTimeout(format(
            "trial %zu exceeded its cycle budget (%llu > %llu)", index,
            static_cast<unsigned long long>(used_cycles),
            static_cast<unsigned long long>(cycleBudget)));
    }
}

const char *
trialStatusName(TrialStatus status)
{
    switch (status) {
      case TrialStatus::Ok: return "ok";
      case TrialStatus::Failed: return "failed";
      case TrialStatus::TimedOut: return "timed_out";
      case TrialStatus::Retried: return "retried";
    }
    return "?";
}

json::Value
toJson(const Summary &summary)
{
    return json::Value::object()
        .set("count", summary.count())
        .set("mean", summary.mean())
        .set("stddev", summary.stddev())
        .set("min", summary.min())
        .set("max", summary.max());
}

json::Value
toJson(const Histogram &histogram, std::size_t max_raw_samples)
{
    json::Value v = json::Value::object()
                        .set("summary", toJson(histogram.summary()))
                        .set("underflow", histogram.underflow())
                        .set("overflow", histogram.overflow());
    json::Value buckets = json::Value::array();
    for (std::uint64_t count : histogram.buckets())
        buckets.push(count);
    v.set("buckets", std::move(buckets));

    if (!histogram.keepRaw())
        return v;

    const std::vector<double> &raw = histogram.samples();
    json::Value samples = json::Value::array();
    std::uint64_t dropped = 0;
    if (max_raw_samples == 0 || raw.size() <= max_raw_samples) {
        for (double sample : raw)
            samples.push(sample);
    } else {
        // Deterministic stride sampling: every k-th sample, where k
        // depends only on the sizes — not on threads or time.
        const std::size_t stride =
            (raw.size() + max_raw_samples - 1) / max_raw_samples;
        for (std::size_t i = 0; i < raw.size(); i += stride)
            samples.push(raw[i]);
        dropped = raw.size() - (raw.size() + stride - 1) / stride;
        log_.warn("histogram JSON export: %llu of %zu raw samples "
                  "dropped (cap %zu, stride %zu)",
                  static_cast<unsigned long long>(dropped), raw.size(),
                  max_raw_samples, stride);
    }
    v.set("samples", std::move(samples));
    v.set("samples_total", std::uint64_t{raw.size()});
    v.set("samples_dropped", dropped);
    return v;
}

json::Value
TrialResult::toJson() const
{
    json::Value v = json::Value::object()
                        .set("index", std::uint64_t{index})
                        .set("seed", seed)
                        .set("status", trialStatusName(status))
                        .set("wall_seconds", wallSeconds)
                        .set("sim_cycles", output.simCycles);
    if (attempts != 1)
        v.set("attempts", attempts);
    if (!error.empty())
        v.set("error", error);
    if (output.metric.count())
        v.set("metric", exp::toJson(output.metric));
    if (!output.metrics.empty())
        v.set("metrics", output.metrics.toJson());
    if (!output.payload.isNull())
        v.set("payload", output.payload);
    return v;
}

json::Value
CampaignAggregate::toJson() const
{
    json::Value v = json::Value::object()
        .set("ok", std::uint64_t{ok})
        .set("failed", std::uint64_t{failed})
        .set("timed_out", std::uint64_t{timedOut})
        .set("retried", std::uint64_t{retried})
        .set("sim_cycles", simCycles)
        .set("metric", exp::toJson(metric))
        .set("scope", json::Value::object()
                          .set("handle_faults", scope.handleFaults)
                          .set("pivot_faults", scope.pivotFaults)
                          .set("foreign_faults", scope.foreignFaults)
                          .set("episodes", scope.episodes)
                          .set("total_replays", scope.totalReplays));
    if (!metrics.empty())
        v.set("metrics", metrics.toJson());
    return v;
}

double
CampaignResult::trialsPerSecond() const
{
    return wallSeconds > 0.0
               ? static_cast<double>(trialCount) / wallSeconds
               : 0.0;
}

double
CampaignResult::simCyclesPerSecond() const
{
    return wallSeconds > 0.0
               ? static_cast<double>(aggregate.simCycles) / wallSeconds
               : 0.0;
}

json::Value
CampaignResult::toJson(bool include_trials) const
{
    json::Value v =
        json::Value::object()
            .set("campaign", name)
            .set("trials", std::uint64_t{trialCount})
            .set("master_seed", masterSeed)
            .set("workers", std::uint64_t{workers})
            .set("resumed_trials", std::uint64_t{resumedTrials})
            .set("worker_deaths", std::uint64_t{workerDeaths})
            .set("wall_seconds", wallSeconds)
            .set("trials_per_second", trialsPerSecond())
            .set("sim_cycles_per_second", simCyclesPerSecond())
            .set("aggregate", aggregate.toJson());
    if (!prof.empty())
        v.set("prof", prof.toJson());
    if (include_trials && !trials.empty()) {
        json::Value detail = json::Value::array();
        for (const TrialResult &trial : trials)
            detail.push(trial.toJson());
        v.set("trial_results", std::move(detail));
    }
    return v;
}

CampaignRunner::CampaignRunner(CampaignSpec spec) : spec_(std::move(spec))
{
    // Spec errors throw std::invalid_argument (not SimFatal): they are
    // caller bugs at the API boundary, catchable without dragging in
    // the simulator's error hierarchy.
    if (!spec_.body)
        throw std::invalid_argument(format(
            "CampaignSpec '%s' has no trial body", spec_.name.c_str()));
    if (spec_.trials == 0)
        throw std::invalid_argument(format(
            "CampaignSpec '%s' has zero trials", spec_.name.c_str()));
    if (!spec_.perTrialMetrics && !spec_.checkpointDir.empty())
        throw std::invalid_argument(format(
            "CampaignSpec '%s': perTrialMetrics = false is incompatible "
            "with a checkpointDir (checkpoints serialize full per-trial "
            "results, reintroducing the skipped work)",
            spec_.name.c_str()));
}

/**
 * Per-executor machine pool and post-warmup snapshot cache.  Owned by
 * exactly one worker thread (or the serial grace pass): the snapshot
 * and its forks COW-share pages through non-atomic refcounts.
 */
struct TrialExecutor::State
{
    /** The pooled Machine (reset per trial); null until first use or
     *  after a structural change replaced it. */
    std::unique_ptr<os::Machine> pooled;

    struct WarmupEntry
    {
        /** Structural key: the warmup-seeded config this entry was
         *  built from (seeds are ignored by the match). */
        os::MachineConfig config;
        /** Cross-campaign identity (CampaignSpec::structureKey);
         *  empty = anonymous, flushed at beginCampaign. */
        std::string key;
        /** deriveWarmupSeed(masterSeed) the warmup ran with — part of
         *  the identity: same structure + key but a different master
         *  seed is a different post-warmup state. */
        std::uint64_t warmupSeed = 0;
        os::Snapshot snap;
        std::shared_ptr<const void> data;
    };
    /** One entry per distinct machine structure this worker has seen;
     *  campaigns sweep a handful of structures at most, so a linear
     *  scan beats hashing a whole MachineConfig. */
    std::vector<WarmupEntry> warmups;

    /** Accumulated prof.trial.* phase profile (ObsLevel >= Metrics). */
    obs::ProfData prof;
};

TrialExecutor::TrialExecutor() : state_(std::make_unique<State>()) {}

TrialExecutor::~TrialExecutor() = default;

const obs::ProfData &
TrialExecutor::prof() const
{
    return state_->prof;
}

void
TrialExecutor::clearProf()
{
    state_->prof = obs::ProfData{};
}

void
TrialExecutor::beginCampaign(const CampaignSpec &spec)
{
    // Anonymous warmups never outlive their campaign; keyed warmups
    // survive as long as the new spec could legitimately reuse them.
    std::vector<State::WarmupEntry> kept;
    for (State::WarmupEntry &entry : state_->warmups) {
        if (!entry.key.empty() && entry.key == spec.structureKey)
            kept.push_back(std::move(entry));
    }
    state_->warmups = std::move(kept);
}

os::Machine &
TrialExecutor::acquireMachine(const CampaignSpec &spec,
                              std::unique_ptr<os::Machine> &scratch,
                              const os::MachineConfig &config,
                              bool reset_state)
{
    if (spec.machinePool) {
        State &ws = *state_;
        if (ws.pooled && os::sameStructure(ws.pooled->config(), config)) {
            if (reset_state)
                ws.pooled->reset(config);
        } else {
            // First trial, or a structural sweep moved on: (re)build.
            ws.pooled = std::make_unique<os::Machine>(config);
        }
        return *ws.pooled;
    }
    scratch = std::make_unique<os::Machine>(config);
    return *scratch;
}

TrialResult
TrialExecutor::runAttempt(const CampaignSpec &spec, std::size_t index,
                          unsigned worker, unsigned attempt)
{
    TrialContext ctx;
    ctx.index = index;
    ctx.seed = deriveRetrySeed(spec.masterSeed, index, attempt);
    ctx.worker = worker;
    ctx.cycleBudget = spec.cycleBudget;
    ctx.machine.seed = ctx.seed;
    if (spec.machineFactory) {
        ctx.machine = spec.machineFactory(ctx);
        // A factory that never thought about seeding still gets a
        // deterministic per-trial stream.  os::Seed records whether
        // the factory assigned one, so a factory that deliberately
        // picks the default value (42) is honoured rather than
        // silently re-seeded.
        if (!ctx.machine.seed.explicitlySet)
            ctx.machine.seed = ctx.seed;
    }
    // The observability dial: tracing rides the trial's MachineConfig,
    // so it reaches self-built machines (bodies construct from
    // ctx.machine), warm forks (warm_config copies ctx.machine), and
    // pooled machines (sameStructure includes ObsConfig, so traced and
    // untraced trials never share a pool slot) alike.
    const bool tracing = spec.obsLevel >= obs::ObsLevel::Trace;
    if (tracing)
        ctx.machine.obs.traceEvents = true;
    obs::ProfData *prof = spec.obsLevel >= obs::ObsLevel::Metrics
                              ? &state_->prof
                              : nullptr;
    ctx.batchReplays = spec.batchReplays;
    ctx.prof = prof;

    TrialResult result;
    result.index = index;
    result.seed = ctx.seed;

    // Machine provisioning state must outlive the body call: `scratch`
    // owns the trial's machine when pooling is off, `hold` keeps a
    // cold-path warmup artifact alive while the body uses it.
    std::unique_ptr<os::Machine> scratch;
    std::shared_ptr<const void> hold;

    const auto start = std::chrono::steady_clock::now();
    try {
        // Provision the trial's machine (inside the shield: a warmup
        // that throws is a Failed trial, not a dead worker).
        if (spec.warmup) {
            State &ws = *state_;
            os::MachineConfig warm_config = ctx.machine;
            warm_config.seed = deriveWarmupSeed(spec.masterSeed);
            const std::uint64_t warm_seed = warm_config.seed;
            if (spec.prefixCache) {
                // Fork path: warm once per structure per worker, then
                // restore + reseed per trial.
                State::WarmupEntry *entry = nullptr;
                for (State::WarmupEntry &e : ws.warmups)
                    if (e.key == spec.structureKey &&
                        e.warmupSeed == warm_seed &&
                        os::sameStructure(e.config, warm_config))
                        entry = &e;
                if (!entry) {
                    obs::ProfScope timer(prof, "prof.trial.warmup");
                    os::Machine warm(warm_config);
                    State::WarmupEntry fresh;
                    fresh.config = warm_config;
                    fresh.key = spec.structureKey;
                    fresh.warmupSeed = warm_seed;
                    fresh.data = spec.warmup(warm);
                    fresh.snap = warm.snapshot();
                    ws.warmups.push_back(std::move(fresh));
                    entry = &ws.warmups.back();
                }
                obs::ProfScope timer(prof, "prof.trial.fork");
                os::Machine &machine = acquireMachine(
                    spec, scratch, warm_config, /*reset_state=*/false);
                machine.restoreFrom(entry->snap);
                machine.reseed(ctx.seed);
                ctx.fork = &machine;
                ctx.warmupData = entry->data.get();
            } else {
                // Cold path (the A/B baseline): re-run the warmup on a
                // seed-fresh machine, then reseed at the same point.
                obs::ProfScope timer(prof, "prof.trial.warmup");
                os::Machine &machine = acquireMachine(
                    spec, scratch, warm_config, /*reset_state=*/true);
                hold = spec.warmup(machine);
                machine.reseed(ctx.seed);
                ctx.fork = &machine;
                ctx.warmupData = hold.get();
            }
            ctx.forkCycle = ctx.fork->cycle();
        } else if (spec.provideMachine) {
            ctx.fork = &acquireMachine(spec, scratch, ctx.machine,
                                       /*reset_state=*/true);
            ctx.forkCycle = ctx.fork->cycle();
        }

        {
            obs::ProfScope timer(prof, "prof.trial.run");
            result.output = spec.body(ctx);
        }
        // Runner-provided machines are drained by the executor, so
        // recipe bodies need no tracing awareness; a body that drained
        // its own machine (or built one) keeps its log untouched.
        if (tracing && ctx.fork && result.output.trace.events.empty() &&
            result.output.trace.total == 0)
            result.output.trace = ctx.fork->observer().trace.drain();
        result.status = TrialStatus::Ok;
        if (spec.cycleBudget &&
            result.output.simCycles > spec.cycleBudget) {
            result.status = TrialStatus::TimedOut;
            result.error = format(
                "cycle budget exceeded (%llu > %llu)",
                static_cast<unsigned long long>(result.output.simCycles),
                static_cast<unsigned long long>(spec.cycleBudget));
        }
    } catch (const TrialTimeout &e) {
        result.status = TrialStatus::TimedOut;
        result.error = e.what();
    } catch (const std::exception &e) {
        result.status = TrialStatus::Failed;
        result.error = e.what();
    } catch (...) {
        result.status = TrialStatus::Failed;
        result.error = "unknown exception";
    }

    // Spill the drained trace while the fork cycle is still in scope.
    // Failed attempts don't spill (a retry will overwrite the slot
    // anyway); a spill failure is a warning, never a trial failure.
    if (tracing && !spec.traceSpillDir.empty() &&
        result.status != TrialStatus::Failed &&
        !result.output.trace.events.empty()) {
        obs::ProfScope timer(prof, "prof.trial.export");
        obs::TraceSpill spill;
        spill.worker = worker;
        spill.trial = index;
        spill.forkCycle = ctx.forkCycle;
        spill.log = result.output.trace;
        obs::writeTraceSpill(spec.traceSpillDir, spill);
    }

    result.wallSeconds = elapsedSeconds(start);
    return result;
}

TrialResult
TrialExecutor::runTrial(const CampaignSpec &spec, std::size_t index,
                        unsigned worker)
{
    TrialResult result = runAttempt(spec, index, worker, 0);
    // Retry failures only: a TimedOut trial really consumed its budget
    // — that is a measurement — and retrying Ok makes no sense.  The
    // retry count is a pure function of the seeds, so fingerprints
    // stay identical across worker counts.
    unsigned attempts = 1;
    while (result.status == TrialStatus::Failed &&
           attempts <= spec.maxRetries) {
        TrialResult retry = runAttempt(spec, index, worker, attempts);
        retry.wallSeconds += result.wallSeconds;
        if (retry.status == TrialStatus::Ok) {
            retry.status = TrialStatus::Retried;
            retry.error = std::move(result.error);
        }
        result = std::move(retry);
        ++attempts;
    }
    result.attempts = attempts;
    if (spec.trialWallWarnSec > 0.0 &&
        result.wallSeconds > spec.trialWallWarnSec)
        log_.warn("trial %zu took %.2fs of wall clock (warn "
                  "threshold %.2fs, %u attempt(s), status %s)",
                  index, result.wallSeconds, spec.trialWallWarnSec,
                  result.attempts, trialStatusName(result.status));
    return result;
}

CampaignAggregate
aggregateTrials(const std::vector<TrialResult> &results)
{
    CampaignAggregate aggregate;
    for (const TrialResult &trial : results) {
        switch (trial.status) {
          case TrialStatus::Ok: ++aggregate.ok; break;
          case TrialStatus::Failed: ++aggregate.failed; break;
          case TrialStatus::TimedOut: ++aggregate.timedOut; break;
          case TrialStatus::Retried: ++aggregate.retried; break;
        }
        aggregate.metric.merge(trial.output.metric);
        aggregate.scope.merge(trial.output.scope);
        aggregate.metrics.merge(trial.output.metrics);
        aggregate.simCycles += trial.output.simCycles;
    }
    return aggregate;
}

std::string
deterministicFingerprint(const CampaignResult &result)
{
    // obs.trace.* counters describe the *observation* (how many events
    // the ring recorded), not the result, and only exist when tracing
    // is on — they are filtered so fingerprints are byte-identical
    // across every ObsLevel (the §14 invariance contract).
    CampaignAggregate aggregate = result.aggregate;
    aggregate.metrics = withoutObsMeta(aggregate.metrics);
    std::string fp = aggregate.toJson().dump();
    for (const TrialResult &trial : result.trials) {
        fp += '\n';
        fp += trial.output.payload.dump();
        fp += withoutObsMeta(trial.output.metrics).toJson().dump();
        fp += json::Value(trial.output.simCycles).dump();
        fp += trialStatusName(trial.status);
    }
    return fp;
}

std::string
fnv1aHex(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return format("0x%016llx", static_cast<unsigned long long>(h));
}

std::size_t
runShardRange(const CampaignSpec &spec, std::size_t lo, std::size_t hi,
              TrialExecutor &exec, CampaignCheckpoint *checkpoint,
              const std::function<void(TrialResult &&, bool)> &emit,
              const std::function<std::size_t()> &currentHi,
              unsigned worker)
{
    std::size_t emitted = 0;
    for (std::size_t index = lo; index < hi; ++index) {
        if (currentHi) {
            // The shrink hook only ever tightens: a steal moved this
            // shard's end down, never up (new work arrives as a new
            // shard, not by growing this one).
            const std::size_t limit = currentHi();
            if (limit < hi)
                hi = limit;
            if (index >= hi)
                break;
        }
        if (checkpoint) {
            if (std::optional<TrialResult> restored =
                    checkpoint->loadTrial(index)) {
                emit(std::move(*restored), /*restored=*/true);
                ++emitted;
                continue;
            }
        }
        TrialResult result = exec.runTrial(spec, index, worker);
        if (checkpoint)
            checkpoint->store(result);
        emit(std::move(result), /*restored=*/false);
        ++emitted;
    }
    return emitted;
}

CampaignResult
CampaignRunner::run()
{
    const std::size_t total = spec_.trials;
    unsigned workers = spec_.workers;
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    if (workers > total)
        workers = static_cast<unsigned>(total);
    if (workers == 0)
        workers = 1;

    std::vector<TrialResult> results(total);
    // done[i] flips exactly once, by the one worker that claimed i (or
    // by checkpoint restore before the pool starts); the grace pass
    // reads it after join().  It is what distinguishes "claimed but
    // never finished" (dead worker) from "completed".
    std::vector<char> done(total, 0);

    CampaignCheckpoint checkpoint(spec_);
    const std::size_t resumed =
        checkpoint.enabled() ? checkpoint.load(results, done) : 0;

    std::atomic<std::size_t> next{0};
    std::size_t completed = resumed;
    unsigned deadWorkers = 0;
    obs::ProfData profTotal;
    std::mutex lock;

    const auto start = std::chrono::steady_clock::now();
    const auto claimNext = [&]() {
        // Restored trials are done before any worker starts; skipping
        // them here means a resumed campaign only executes the rest.
        for (;;) {
            const std::size_t index =
                next.fetch_add(1, std::memory_order_relaxed);
            if (index >= total || !done[index])
                return index;
        }
    };
    const auto drain = [&](unsigned worker) {
        // Thread-confined: the pooled machine and every cached
        // snapshot (plus its COW forks) live and die on this worker.
        TrialExecutor executor;
        executor.beginCampaign(spec_);
        // Merge this worker's phase profile on every exit path — a
        // dying worker's measured trials still count.
        struct ProfReport
        {
            TrialExecutor &executor;
            obs::ProfData &total;
            std::mutex &lock;
            ~ProfReport()
            {
                if (executor.prof().empty())
                    return;
                std::lock_guard<std::mutex> guard(lock);
                total.merge(executor.prof());
            }
        } prof_report{executor, profTotal, lock};
        try {
            for (;;) {
                const std::size_t index = claimNext();
                if (index >= total)
                    return;
                TrialResult result =
                    executor.runTrial(spec_, index, worker);
                checkpoint.store(result);
                std::lock_guard<std::mutex> guard(lock);
                results[index] = std::move(result);
                done[index] = 1;
                ++completed;
                if (spec_.progress)
                    spec_.progress(completed, total);
            }
        } catch (const std::exception &e) {
            // Anything escaping the per-trial shield (a throwing
            // progress callback, bad_alloc moving results) kills only
            // this worker; the grace pass below finishes its trials.
            std::lock_guard<std::mutex> guard(lock);
            ++deadWorkers;
            log_.warn("campaign '%s': worker %u died (%s); finishing "
                      "its trials serially",
                      spec_.name.c_str(), worker, e.what());
        } catch (...) {
            std::lock_guard<std::mutex> guard(lock);
            ++deadWorkers;
            log_.warn("campaign '%s': worker %u died (unknown "
                      "exception); finishing its trials serially",
                      spec_.name.c_str(), worker);
        }
    };

    if (workers == 1) {
        // Run on the calling thread: identical code path (results are
        // still aggregated below, in index order), simpler stacks in
        // a debugger, and no thread overhead for serial baselines.
        drain(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned worker = 0; worker < workers; ++worker)
            pool.emplace_back(drain, worker);
        for (std::thread &thread : pool)
            thread.join();
    }

    // Grace pass: every trial a dead worker claimed but never stored
    // re-runs here, serially.  Results are unchanged (a trial depends
    // only on its seed); the progress callback is deliberately not
    // re-invoked — it may be exactly what killed the worker.
    // Worker pools/snapshot caches died with their threads; the grace
    // pass warms its own (results are unchanged — a trial depends only
    // on its seed, and forked trials are bit-identical to cold ones).
    TrialExecutor grace;
    grace.beginCampaign(spec_);
    for (std::size_t index = 0; index < total; ++index) {
        if (done[index])
            continue;
        TrialResult result = grace.runTrial(spec_, index, /*worker=*/0);
        checkpoint.store(result);
        results[index] = std::move(result);
        done[index] = 1;
    }
    profTotal.merge(grace.prof());

    CampaignResult campaign;
    campaign.name = spec_.name;
    campaign.trialCount = total;
    campaign.masterSeed = spec_.masterSeed;
    campaign.workers = workers;
    campaign.resumedTrials = resumed;
    campaign.workerDeaths = deadWorkers;
    campaign.prof = std::move(profTotal);

    // Aggregation happens here, single-threaded and in index order —
    // *never* in completion order — so N-worker and 1-worker runs of
    // the same spec produce bit-identical aggregates.  The fold itself
    // is aggregateTrials(), shared with the campaign service daemon.
    campaign.aggregate = aggregateTrials(results);
    for (TrialResult &trial : results) {
        if (spec_.reduce)
            spec_.reduce(trial);
        // Aggregate-only campaigns drop each snapshot right after the
        // aggregate fold (and after the reducer saw it): the retained
        // trials stay light and toJson() skips the per-trial metric
        // blocks entirely, instead of serializing and then ignoring
        // them.
        if (!spec_.perTrialMetrics)
            trial.output.metrics = obs::MetricSnapshot{};
    }
    if (spec_.keepTrialResults)
        campaign.trials = std::move(results);
    campaign.wallSeconds = elapsedSeconds(start);
    return campaign;
}

CampaignResult
runCampaign(CampaignSpec spec)
{
    return CampaignRunner(std::move(spec)).run();
}

} // namespace uscope::exp
