/**
 * @file
 * Campaign checkpoint/resume.
 *
 * A CampaignSpec with a non-empty checkpointDir persists every
 * finished trial to its own file the moment it completes, each write
 * going through writeFileAtomic (tmp + rename) so a kill at any
 * instant leaves either the previous file or the new one — never a
 * torn one.  A manifest records the spec identity (name, trial count,
 * master seed, cycle budget, retry policy); a rerun whose spec matches
 * the manifest restores completed trials and only executes the rest,
 * and because trials are bit-deterministic in their seed, the resumed
 * campaign's aggregate is bit-identical to an uninterrupted run.
 *
 * The serialization is a self-describing text format, not JSON — the
 * JSON layer is write-only by design (common/json.hh) and, more
 * importantly, doubles must round-trip *bit-exactly* for the resumed
 * aggregate to match, so every double is stored as the hex of its bit
 * pattern.  Trial payloads (arbitrary json::Value trees) are stored as
 * their compact dump and restored as json::Value::raw, which re-emits
 * the original bytes verbatim.
 *
 * Failed trials are deliberately *not* persisted: a failure may have
 * been caused by whatever interrupted the campaign, so a resume
 * re-attempts it.  Ok, TimedOut, and Retried trials are deterministic
 * measurements and are skipped on resume.
 *
 * Shard manifests (DESIGN.md §13): the checkpoint directory doubles
 * as the campaign service's durable shard-handoff token.  Several
 * worker *processes* may attach to one directory concurrently — the
 * manifest is written once by the daemon before any shard is
 * dispatched, every worker verifies its own spec against it, and
 * per-trial files are keyed by absolute trial index, so two workers
 * racing on a stolen range write byte-identical files (trials are
 * bit-deterministic in their seed) and the atomic rename makes the
 * race harmless.  A reassigned shard resumes by consulting
 * loadTrial() per index and re-running only what is missing.
 */

#ifndef USCOPE_EXP_CHECKPOINT_HH
#define USCOPE_EXP_CHECKPOINT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/fsio.hh"
#include "exp/campaign.hh"

namespace uscope::exp
{

/** The atomic+durable write primitive now lives in common/fsio.hh
 *  (obs trace spills need it too); the alias keeps existing
 *  exp::writeFileAtomic callers working. */
using uscope::writeFileAtomic;

/** The campaign runner's view of one checkpoint directory. */
class CampaignCheckpoint
{
  public:
    /**
     * Bind to @p spec's checkpointDir (inert when empty).  Creates the
     * directory on demand.  An existing manifest that matches the spec
     * switches the checkpoint into resume mode; a mismatched one (the
     * directory holds some other campaign's state) is discarded with a
     * warning — stale trial files are removed and a fresh manifest
     * written.
     */
    explicit CampaignCheckpoint(const CampaignSpec &spec);

    bool enabled() const { return !dir_.empty(); }

    /** True when a matching manifest was found, i.e. this run resumes
     *  a previous one. */
    bool resuming() const { return resuming_; }

    /**
     * Restore every persisted trial into @p results / @p done (both
     * sized to the trial count).  A file that is missing, corrupt, or
     * whose seed does not match the derivation for its index is
     * skipped with a warning — the trial simply re-runs.  Returns the
     * number of trials restored.
     */
    std::size_t load(std::vector<TrialResult> &results,
                     std::vector<char> &done) const;

    /**
     * Restore one trial, or nullopt when it must (re-)run.  This is
     * the shard-resume primitive (exp::runShardRange, the campaign
     * service): a missing file is a trial that never completed; a
     * truncated, non-parseable, or otherwise invalid file — index
     * mismatch, a seed that does not match the derivation for this
     * index, a persisted Failed status (store() never writes those) —
     * is logged as a warning and treated exactly like a missing one,
     * so a torn checkpoint costs re-running *that trial*, never an
     * aborted campaign.  Inert (always nullopt) when resuming() is
     * false.
     */
    std::optional<TrialResult> loadTrial(std::size_t index) const;

    /**
     * Persist one finished trial (atomic write; Failed trials are
     * skipped — see the file comment).  Best-effort: an I/O failure
     * warns and keeps the campaign running; the un-persisted trial
     * just re-runs on a future resume.
     */
    void store(const TrialResult &result) const;

    /** Lossless text serialization of one trial (see file comment). */
    static std::string serializeTrial(const TrialResult &result);

    /** Inverse of serializeTrial; nullopt on any malformed input. */
    static std::optional<TrialResult> parseTrial(const std::string &text);

  private:
    std::string manifestPath() const;
    std::string trialPath(std::size_t index) const;
    std::string manifestText() const;

    std::string dir_;
    std::string name_;
    std::size_t trials_ = 0;
    std::uint64_t masterSeed_ = 0;
    std::uint64_t cycleBudget_ = 0;
    unsigned maxRetries_ = 0;
    bool resuming_ = false;
};

} // namespace uscope::exp

#endif // USCOPE_EXP_CHECKPOINT_HH
