/**
 * @file
 * The replay-campaign runner.
 *
 * Every figure in the paper is a *campaign*: hundreds of independent
 * replay episodes swept over seeds, key bytes, page-walk plans, and
 * defenses.  Each trial builds its own simulated Machine, runs one
 * attack, and reports a handful of numbers — embarrassingly parallel
 * work that the benches used to grind through serially.
 *
 * CampaignRunner shards a flat trial grid across a fixed-size
 * std::thread pool:
 *
 *  - **Isolation.** Each trial constructs its own os::Machine from its
 *    own MachineConfig; workers share no mutable simulator state.
 *  - **Determinism.** Trial i draws every random value from a stream
 *    seeded with deriveTrialSeed(masterSeed, i), and per-trial results
 *    are aggregated *in trial-index order* after the pool joins, so a
 *    campaign's aggregate is bit-identical regardless of the worker
 *    count or the order trials happened to finish in.
 *  - **Robustness.** A trial that throws is recorded as Failed (with
 *    the exception text) and a trial that exceeds its cycle budget is
 *    recorded as TimedOut — both are *results*, not crashes; the
 *    campaign keeps going.
 *
 * Results export to JSON through exp::ResultSink (result_sink.hh).
 */

#ifndef USCOPE_EXP_CAMPAIGN_HH
#define USCOPE_EXP_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/microscope.hh"
#include "exp/json.hh"
#include "obs/event.hh"
#include "obs/metrics.hh"
#include "obs/prof.hh"
#include "os/machine.hh"

namespace uscope::exp
{

/**
 * Deterministic per-trial seed: a SplitMix64-style mix of the master
 * seed and the flat trial index.  Distinct trials get decorrelated
 * streams; the same (master, index) pair always gets the same stream,
 * independent of thread count and scheduling.
 */
std::uint64_t deriveTrialSeed(std::uint64_t master, std::uint64_t index);

/**
 * Deterministic seed for retry attempt @p attempt of trial @p index.
 * Attempt 0 is the first run and equals deriveTrialSeed(master, index);
 * later attempts mix the attempt number in, so a retry draws a fresh,
 * decorrelated stream instead of deterministically replaying the
 * failure — while remaining reproducible across reruns and resumes.
 */
std::uint64_t deriveRetrySeed(std::uint64_t master, std::uint64_t index,
                              unsigned attempt);

/**
 * Deterministic seed for a campaign's warmup prefix (DESIGN.md §12).
 * Depends only on the master seed — the warmup is shared by every
 * trial, so it must not favour any trial's stream — and is mixed away
 * from deriveTrialSeed/deriveRetrySeed values.
 */
std::uint64_t deriveWarmupSeed(std::uint64_t master);

/**
 * Deterministic seed for differential-replay iteration @p iteration
 * of a trial seeded @p trial_seed (DESIGN.md §15).  Each COW re-entry
 * of an episode reseeds the fork with one of these, so every replay
 * iteration draws an independent noise realization while the whole
 * set stays a pure function of (masterSeed, trial index, iteration).
 */
std::uint64_t deriveReplaySeed(std::uint64_t trial_seed,
                               std::uint64_t iteration);

/**
 * Thrown by a trial body (or by TrialContext::checkBudget) when the
 * per-trial cycle budget is exhausted.  The runner records the trial
 * as TimedOut and moves on.
 */
class TrialTimeout : public std::runtime_error
{
  public:
    explicit TrialTimeout(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Everything a trial body gets handed about its grid point. */
struct TrialContext
{
    /** Flat index into the campaign's trial grid. */
    std::size_t index = 0;
    /** deriveTrialSeed(masterSeed, index). */
    std::uint64_t seed = 0;
    /** Worker slot executing this trial (informational only). */
    unsigned worker = 0;
    /** Per-trial simulated-cycle budget; 0 = unbounded. */
    Cycles cycleBudget = 0;
    /**
     * Machine configuration for this trial, produced by the spec's
     * machineFactory (or default-constructed), with `seed` stamped to
     * the trial seed.  The body constructs `os::Machine machine
     * (ctx.machine)` — one private machine per trial.
     */
    os::MachineConfig machine;

    /**
     * Runner-provided machine, non-null when the spec declared a
     * warmup or set provideMachine (DESIGN.md §12).  Already reseeded
     * with `seed`; when it came from a warmup it is a fork of the
     * per-worker post-warmup snapshot (or a freshly re-warmed machine
     * when prefixCache is off — bit-identical either way).  Bodies
     * must use it instead of constructing their own machine, and must
     * not destroy it; it may be a pooled instance owned by the runner.
     */
    os::Machine *fork = nullptr;

    /**
     * Artifact returned by the spec's warmup (nullptr without one):
     * the handles a warmup mints — pids, victim layouts, program
     * images — valid in `fork` exactly because forks share the
     * warmed-up state.  Bodies cast it back to the concrete type the
     * warmup returned.
     */
    const void *warmupData = nullptr;

    /**
     * fork->cycle() at hand-off (0 without a runner-provided machine).
     * Bodies report TrialOutput::simCycles relative to this, so the
     * shared warmup's cycles are not charged to any trial's budget.
     */
    Cycles forkCycle = 0;

    /**
     * CampaignSpec::batchReplays, verbatim.  Bodies that run a
     * differential-replay loop honour it by driving their sibling
     * windows through ms::runReplayBatch (journal-rewind restores,
     * DESIGN.md §17) instead of the per-sibling restoreEpisode loop.
     * 0 = per-sibling (the §15 baseline).  Results are byte-identical
     * either way; this is a pure wall-clock knob like prefixCache.
     */
    std::uint64_t batchReplays = 0;

    /**
     * The executor's phase profile, non-null at ObsLevel >= Metrics —
     * the slot for body-side phase timings (obs::ProfScope on
     * prof.trial.batch.* around batched-replay phases).  Pure
     * observation: never enters results or fingerprints.
     */
    obs::ProfData *prof = nullptr;

    /**
     * Throw TrialTimeout when @p used_cycles exceeds the budget.
     *
     * Boundary semantics: the budget is *inclusive* — a trial that
     * consumes exactly cycleBudget cycles is admitted; the first
     * cycle past it times out.  The runner's post-hoc check on
     * TrialOutput::simCycles uses the same `>` comparison, and the
     * machine's fast-forward path clamps clock jumps to run() /
     * runUntil() limits, so a skip can never carry simCycles past
     * the budget unobserved.
     */
    void checkBudget(Cycles used_cycles) const;
};

/** What one trial hands back to the runner. */
struct TrialOutput
{
    /** Trial-specific metrics, exported verbatim under "payload". */
    json::Value payload;
    /** Samples of the campaign's primary metric (merged via
     *  Summary::merge into the aggregate). */
    Summary metric;
    /** Simulated cycles this trial consumed (drives throughput
     *  reporting and budget enforcement). */
    Cycles simCycles = 0;
    /** MicroScope module counters (merged into the aggregate). */
    ms::MicroscopeStats scope;
    /** Component metrics (Machine::metricsSnapshot() + extras);
     *  merged into the aggregate in trial-index order. */
    obs::MetricSnapshot metrics;
    /**
     * This trial's drained event trace, populated when the spec's
     * obsLevel >= Trace: by the executor (runner-provided machines
     * are drained automatically after the body) or by the body itself
     * for self-built machines.  Never fingerprinted — traces describe
     * the run, they are not results — and never checkpointed; the
     * durable form is the per-trial spill file (obs::TraceSpill).
     */
    obs::EventLog trace;
};

/**
 * Retried means the trial *succeeded*, but only after one or more
 * failed attempts — kept distinct from Ok so noisy-campaign reports
 * can't silently launder flaky trials into clean ones.
 */
enum class TrialStatus { Ok, Failed, TimedOut, Retried };

const char *trialStatusName(TrialStatus status);

/** One completed (or failed) trial. */
struct TrialResult
{
    std::size_t index = 0;
    /** Seed of the attempt that produced `output`: the trial seed for
     *  attempts == 1, deriveRetrySeed(master, index, attempts - 1)
     *  after retries. */
    std::uint64_t seed = 0;
    TrialStatus status = TrialStatus::Ok;
    /** Exception text when status != Ok; for Retried, the text of the
     *  most recent failed attempt (kept for the record). */
    std::string error;
    /** Body invocations this result took (1 = no retries). */
    unsigned attempts = 1;
    /** Host wall-clock seconds spent in the body (informational;
     *  excluded from determinism comparisons). */
    double wallSeconds = 0.0;
    /** Body output; default-constructed when the body threw. */
    TrialOutput output;

    json::Value toJson() const;
};

/** Declarative description of a campaign. */
struct CampaignSpec
{
    std::string name = "campaign";
    /** Number of grid points. */
    std::size_t trials = 0;
    /** Seed every per-trial stream is derived from. */
    std::uint64_t masterSeed = 42;
    /** Worker threads; 0 = hardware_concurrency (clamped to trials). */
    unsigned workers = 0;
    /** Per-trial simulated-cycle budget; 0 = unbounded.  A trial whose
     *  reported simCycles exceeds this is recorded as TimedOut. */
    Cycles cycleBudget = 0;
    /** Keep per-trial results in CampaignResult::trials (and JSON). */
    bool keepTrialResults = true;
    /**
     * Extra attempts granted to a trial whose body *throws*.  Attempt
     * k runs with deriveRetrySeed(masterSeed, index, k); a trial that
     * eventually succeeds is recorded as Retried (with the attempt
     * count), one that exhausts its attempts stays Failed.  TimedOut
     * is a measurement — the budget was genuinely consumed — and is
     * never retried.
     */
    unsigned maxRetries = 0;
    /**
     * When non-empty: checkpoint every finished trial into this
     * directory (atomic per-trial files + a manifest; see
     * exp/checkpoint.hh), and on a rerun of the *same* spec restore
     * completed trials instead of re-executing them.  Because trials
     * are bit-deterministic in their seed, a killed-then-resumed
     * campaign aggregates bit-identically to an uninterrupted one.
     * A manifest from a different spec is discarded with a warning.
     */
    std::string checkpointDir;

    /** The trial body (required).  Must not touch shared state. */
    std::function<TrialOutput(const TrialContext &)> body;

    /**
     * Optional warmup prefix (DESIGN.md §12): shared setup every trial
     * of a machine structure needs — process creation, victim code
     * generation, cache priming.  Runs on a machine seeded with
     * deriveWarmupSeed(masterSeed) (never a trial seed: the prefix is
     * shared, so it must not favour any trial's stream).  The returned
     * artifact is handed to every body via TrialContext::warmupData
     * and kept alive by the runner for the body's duration.
     *
     * With prefixCache (default), each worker runs the warmup once per
     * unique machine structure, snapshots the result, and forks the
     * snapshot per trial; with it off the warmup re-runs cold before
     * every trial.  The reseed-at-fork contract makes the two paths
     * bit-identical — prefixCache is a pure wall-clock knob (the A/B
     * switch bench/perf_campaign and tests/test_snapshot.cc exercise).
     */
    std::function<std::shared_ptr<const void>(os::Machine &)> warmup;

    /**
     * Fork trials from the per-worker post-warmup snapshot instead of
     * re-running the warmup per trial.  Meaningless without `warmup`.
     */
    bool prefixCache = true;

    /**
     * Reuse one pooled Machine per worker (Machine::reset /
     * restoreFrom) instead of constructing and destroying one per
     * trial, keeping page slabs and component buffers hot.  The pooled
     * instance is replaced when a trial's structure differs
     * (os::sameStructure).  Pure wall-clock knob: reset() is
     * bit-identical to fresh construction.
     */
    bool machinePool = true;

    /**
     * Batched lockstep sibling replay (DESIGN.md §17): when non-zero,
     * differential-replay bodies run their sibling windows through
     * ms::runReplayBatch — one full restore plus journal rewinds —
     * instead of one full restore per sibling.  The value is passed to
     * bodies via TrialContext::batchReplays; bodies that do not replay
     * ignore it.  Like prefixCache and machinePool this is a pure
     * wall-clock knob: batched and per-sibling campaigns produce
     * byte-identical fingerprints (bench/perf_campaign §7 enforces
     * this), so the field is excluded from service identity keys.
     */
    std::uint64_t batchReplays = 0;

    /**
     * Identity of this spec's warmup *behavior*, for cross-campaign
     * snapshot reuse (the campaign service's long-lived workers).  A
     * post-warmup snapshot is a function of (warmup closure, machine
     * structure, warmup seed); machine structure and seed are compared
     * directly, but closures cannot be, so a persistent TrialExecutor
     * only reuses a cached warmup across campaigns when both specs
     * carry the same non-empty structureKey.  Empty (the default)
     * means "anonymous": the cache is flushed at every
     * TrialExecutor::beginCampaign, restoring the one-campaign scoping
     * CampaignRunner always had.  Registry recipes set this to the
     * recipe name (plus any param that changes warmup behavior beyond
     * structure), which is what keeps a service worker's Machine pool
     * hot across same-shaped campaigns.
     */
    std::string structureKey;

    /**
     * Hand every trial a runner-managed machine via TrialContext::fork
     * even without a warmup, so warmup-less campaigns benefit from
     * machinePool too.  Off by default: legacy bodies construct their
     * own machines and would ignore (and double-build) the provided
     * one.  Implied by `warmup`.
     */
    bool provideMachine = false;

    /**
     * Keep per-trial MetricSnapshots in trial results.  When a sink
     * only wants the campaign aggregate, turning this off drops each
     * trial's snapshot right after its index-order merge — the
     * aggregate is unchanged, but toJson() no longer re-serializes
     * hundreds of identical component-metric blocks and the retained
     * trials stay small.  Incompatible with checkpointDir: per-trial
     * checkpoints serialize full results *before* the post-merge drop,
     * which would silently reintroduce exactly the work this flag
     * promises to skip — the constructor rejects the combination.
     */
    bool perTrialMetrics = true;

    /**
     * Optional factory producing the MachineConfig for a trial (sweep
     * ROB sizes, defenses, cache geometry...).  The runner stamps the
     * trial seed into the returned config unless the factory assigned
     * a seed itself — os::Seed tracks assignment explicitly, so even
     * deliberately choosing the default value (42) counts as "set"
     * and is honoured.
     */
    std::function<os::MachineConfig(const TrialContext &)> machineFactory;

    /**
     * Optional reducer: invoked once per trial *in index order* on the
     * calling thread after the pool joins — the deterministic place to
     * fold per-trial payloads into campaign-level state.
     */
    std::function<void(const TrialResult &)> reduce;

    /**
     * Optional progress callback, invoked as (completed, total) each
     * time a trial finishes.  Called from worker threads under the
     * runner's lock, in completion (not index) order; keep it cheap.
     */
    std::function<void(std::size_t, std::size_t)> progress;

    /**
     * The campaign's observability dial (DESIGN.md §14):
     *
     *   Off      no profiling, no tracing (the default — hot path
     *            untouched);
     *   Metrics  phase-latency profiling (prof.trial.*) on;
     *   Trace    Metrics + per-trial event tracing: the executor
     *            forces ctx.machine.obs.traceEvents on, drains
     *            runner-provided machines into TrialOutput::trace
     *            after the body, and spills traces to traceSpillDir;
     *   Full     everything (today identical to Trace).
     *
     * Pure observation: campaign fingerprints are byte-identical at
     * every level (enforced by tests and bench/perf_campaign §5).
     */
    obs::ObsLevel obsLevel = obs::ObsLevel::Off;

    /**
     * Wall-clock seconds after which a finished trial earns a
     * structured warning (0 = never).  Purely observational — the
     * trial's result is untouched — this is the executor-side rung of
     * the service's slow-trial escalation ladder (DESIGN.md §16): the
     * daemon watches heartbeat gaps from outside, this logs the same
     * condition from inside the worker, and svc::Tunables::
     * trialWarnSec feeds both.
     */
    double trialWallWarnSec = 0.0;

    /**
     * When non-empty and obsLevel >= Trace: persist each executed
     * trial's drained trace as an atomic spill file
     * `trace-w<worker>-t<index>.json` under this directory, tagged
     * (worker, trial, fork cycle) for cross-process merging via
     * obs::mergeChromeTraces.  The service daemon points this at
     * `<checkpointDir>/traces` so a campaign's spills live with its
     * durable state.
     */
    std::string traceSpillDir;
};

/** Campaign-level aggregate, merged in trial-index order. */
struct CampaignAggregate
{
    Summary metric;
    ms::MicroscopeStats scope;
    obs::MetricSnapshot metrics;
    Cycles simCycles = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t timedOut = 0;
    /** Succeeded-after-retry trials (disjoint from `ok`). */
    std::size_t retried = 0;

    json::Value toJson() const;
};

/** Everything a campaign produced. */
struct CampaignResult
{
    std::string name;
    std::size_t trialCount = 0;
    std::uint64_t masterSeed = 0;
    unsigned workers = 0;
    double wallSeconds = 0.0;
    /** Trials restored from a checkpoint instead of executed. */
    std::size_t resumedTrials = 0;
    /** Worker threads that died mid-campaign (their claimed trials
     *  were finished serially by the grace pass). */
    unsigned workerDeaths = 0;
    CampaignAggregate aggregate;
    /** Per-trial results, in index order (empty when the spec set
     *  keepTrialResults = false). */
    std::vector<TrialResult> trials;
    /**
     * Phase wall-time profile (prof.trial.*), merged across workers;
     * empty below ObsLevel::Metrics.  A pure side channel: wall times
     * are nondeterministic, so this never enters the fingerprint —
     * it rides campaign JSON under "prof" only.
     */
    obs::ProfData prof;

    double trialsPerSecond() const;
    double simCyclesPerSecond() const;

    /** Full report (schema documented in DESIGN.md §src/exp). */
    json::Value toJson(bool include_trials = true) const;
};

/**
 * The per-worker trial execution engine (DESIGN.md §12/§13): owns the
 * pooled Machine and the post-warmup snapshot cache, and runs one
 * trial at a time of whatever spec it is handed.  CampaignRunner
 * creates one per worker thread; the campaign service's worker
 * processes keep ONE alive across campaigns, which is what keeps
 * pre-warmed Machine pools hot between same-structured submissions.
 *
 * Thread confinement: snapshots COW-share pages with their forks
 * through non-atomic refcounts, so a TrialExecutor must never cross
 * threads.
 */
class TrialExecutor
{
  public:
    TrialExecutor();
    ~TrialExecutor();
    TrialExecutor(const TrialExecutor &) = delete;
    TrialExecutor &operator=(const TrialExecutor &) = delete;

    /**
     * Mark the start of a (possibly new) campaign.  Cached warmup
     * snapshots survive only when their spec carried a non-empty
     * structureKey matching @p spec's (and the warmup seed agrees);
     * anonymous entries are flushed here.  The pooled Machine always
     * survives — structure is re-checked per trial anyway.
     */
    void beginCampaign(const CampaignSpec &spec);

    /** Run trial @p index of @p spec, including the spec's retry
     *  policy.  `worker` is informational (lands in ctx.worker and
     *  tags this trial's trace spill file). */
    TrialResult runTrial(const CampaignSpec &spec, std::size_t index,
                         unsigned worker);

    /** Accumulated phase profile (prof.trial.*) of every trial this
     *  executor ran at ObsLevel >= Metrics; empty otherwise.  The
     *  owner merges it into CampaignResult::prof (or streams it to
     *  the daemon) — and may clear() it between reports. */
    const obs::ProfData &prof() const;

    /** Reset the accumulated profile (after the owner reported it). */
    void clearProf();

  private:
    struct State;

    TrialResult runAttempt(const CampaignSpec &spec, std::size_t index,
                           unsigned worker, unsigned attempt);
    /** Pooled (or scratch) machine with @p config's structure, reset
     *  to seed-fresh state when @p reset_state. */
    os::Machine &acquireMachine(const CampaignSpec &spec,
                                std::unique_ptr<os::Machine> &scratch,
                                const os::MachineConfig &config,
                                bool reset_state);

    std::unique_ptr<State> state_;
};

class CampaignCheckpoint;

/**
 * Fold @p results (which must be in trial-index order) into a
 * CampaignAggregate — status counts, Summary/scope/metric merges, sim
 * cycle totals.  Shared by CampaignRunner and the campaign service
 * daemon so a service-dispatched campaign aggregates bit-identically
 * to an in-process run of the same spec.
 */
CampaignAggregate aggregateTrials(const std::vector<TrialResult> &results);

/**
 * The campaign's determinism fingerprint: the aggregate JSON plus
 * every trial's payload, metrics, sim cycles, and status — everything
 * except wall-clock noise (wall seconds, worker counts, retry
 * attempt counts).  Two runs of the same spec must produce identical
 * fingerprints regardless of worker count, fast-forward mode, prefix
 * caching, checkpoint resume, or in-process vs service dispatch.
 * Requires the result to retain its trials (keepTrialResults).
 */
std::string deterministicFingerprint(const CampaignResult &result);

/** FNV-1a of @p s as "0x%016llx" — the compact form fingerprints are
 *  exchanged in (bench JSON, service result frames). */
std::string fnv1aHex(const std::string &s);

/**
 * Run trials [lo, hi) of @p spec serially on the calling thread — the
 * campaign service's shard execution entry point.  For each index:
 * when @p checkpoint is non-null and holds a valid persisted trial,
 * that result is restored instead of executed (emit's `restored` is
 * true); otherwise the trial runs on @p exec and, when @p checkpoint
 * is non-null, is persisted before emit sees it — so a consumer that
 * dies after emit can always recover the trial from the checkpoint.
 *
 * When @p currentHi is provided it is re-read before every trial and
 * tightens (never extends) the range — the work-stealing shrink hook:
 * a worker whose shard is being split polls its control socket there.
 * Returns the number of trials emitted.
 *
 * @p worker is informational: it lands in TrialContext::worker and
 * tags trace spill files (results are worker-invariant either way —
 * the established fingerprint contract).
 */
std::size_t runShardRange(
    const CampaignSpec &spec, std::size_t lo, std::size_t hi,
    TrialExecutor &exec, CampaignCheckpoint *checkpoint,
    const std::function<void(TrialResult &&, bool restored)> &emit,
    const std::function<std::size_t()> &currentHi = {},
    unsigned worker = 0);

/**
 * Runs a CampaignSpec over a thread pool.
 *
 * Robustness contract (in addition to per-trial Failed/TimedOut
 * results): a worker thread that dies mid-campaign — a throwing
 * progress callback, bad_alloc, a checkpoint I/O panic — degrades
 * throughput, never results.  The survivors keep draining, and after
 * the pool joins a serial grace pass finishes any trial the dead
 * worker claimed but never completed; determinism is unaffected
 * because a trial's result depends only on its seed.
 *
 * The constructor validates the spec and throws std::invalid_argument
 * for a missing trial body or a zero trial count.
 */
class CampaignRunner
{
  public:
    explicit CampaignRunner(CampaignSpec spec);

    /** Execute every trial and aggregate.  Callable repeatedly; each
     *  call re-runs the whole campaign. */
    CampaignResult run();

  private:
    CampaignSpec spec_;
};

/** One-shot convenience wrapper. */
CampaignResult runCampaign(CampaignSpec spec);

/** Serialize a Summary (count/mean/stddev/min/max) to JSON. */
json::Value toJson(const Summary &summary);

/**
 * Serialize a Histogram: summary, buckets, and (when retained) the raw
 * samples.  Raw-sample arrays longer than @p max_raw_samples are
 * deterministically stride-sampled down to at most that many entries;
 * the drop is recorded in the JSON ("samples_dropped") and warned
 * about, never silent.
 */
json::Value toJson(const Histogram &histogram,
                   std::size_t max_raw_samples = 4096);

} // namespace uscope::exp

#endif // USCOPE_EXP_CAMPAIGN_HH
