/**
 * @file
 * Campaign result export.
 *
 * A ResultSink consumes a finished CampaignResult and persists it —
 * the bench trajectory writes JSON reports that downstream tooling
 * (plot scripts, EXPERIMENTS.md regeneration) reads back.  Sinks are
 * deliberately dumb: all schema lives in CampaignResult::toJson.
 */

#ifndef USCOPE_EXP_RESULT_SINK_HH
#define USCOPE_EXP_RESULT_SINK_HH

#include <ostream>
#include <string>

#include "exp/campaign.hh"

namespace uscope::exp
{

/** Consumer of finished campaigns. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    virtual void consume(const CampaignResult &result) = 0;
};

/**
 * Writes each campaign as one pretty-printed JSON document to a
 * caller-owned stream (e.g. std::cout), separated by newlines.
 */
class JsonStreamSink : public ResultSink
{
  public:
    /** @param include_trials Also emit the per-trial result array. */
    explicit JsonStreamSink(std::ostream &os, bool include_trials = true,
                            int indent = 2);

    void consume(const CampaignResult &result) override;

  private:
    std::ostream &os_;
    bool includeTrials_;
    int indent_;
};

/**
 * Writes each campaign to `<dir>/<campaign name>.json`, replacing any
 * previous report of the same name.  The write is atomic (tmp +
 * rename via exp::writeFileAtomic), so a concurrent reader or a kill
 * mid-write never observes a torn report.  Throws SimFatal when the
 * file cannot be written.
 */
class JsonFileSink : public ResultSink
{
  public:
    explicit JsonFileSink(std::string dir, bool include_trials = true,
                          int indent = 2);

    void consume(const CampaignResult &result) override;

    /** Path the most recent consume() wrote to ("" before the first). */
    const std::string &lastPath() const { return lastPath_; }

  private:
    std::string dir_;
    bool includeTrials_;
    int indent_;
    std::string lastPath_;
};

} // namespace uscope::exp

#endif // USCOPE_EXP_RESULT_SINK_HH
