/**
 * @file
 * Compatibility forwarder: the JSON writer moved to src/common
 * (common/json.hh) so src/obs can use it without depending on the
 * campaign runner.  `exp::json::Value` remains a valid spelling for
 * every existing call site.
 */

#ifndef USCOPE_EXP_JSON_HH
#define USCOPE_EXP_JSON_HH

#include "common/json.hh"

namespace uscope::exp
{
namespace json = uscope::json;
} // namespace uscope::exp

#endif // USCOPE_EXP_JSON_HH
