#include "vm/page_table.hh"

#include "common/logging.hh"

namespace uscope::vm
{

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Pgd: return "PGD";
      case Level::Pud: return "PUD";
      case Level::Pmd: return "PMD";
      case Level::Pte: return "PTE";
    }
    return "?";
}

PageTable::PageTable(mem::PhysMem &mem, FrameAllocator &frames)
    : mem_(mem), frames_(frames)
{
    rootPa_ = allocTable();
}

PAddr
PageTable::allocTable()
{
    ++stats_.tablePages;
    const Ppn ppn = frames_.alloc();
    // Fresh frames materialize zero-filled; reused frames carry stale
    // entries that must be cleared.
    mem_.zeroPage(ppn);
    return ppn << pageShift;
}

void
PageTable::map(Vpn vpn, Ppn ppn, std::uint64_t flags)
{
    ++stats_.maps;
    const VAddr va = vpn << pageShift;
    PAddr table = rootPa_;
    for (unsigned lvl = 0; lvl + 1 < numLevels; ++lvl) {
        const PAddr entry_pa =
            table + 8ull * levelIndex(va, static_cast<Level>(lvl));
        std::uint64_t entry = mem_.read64(entry_pa);
        if (!(entry & pte::present)) {
            const PAddr next = allocTable();
            entry = makeEntry(pageNumber(next),
                              pte::present | pte::writable | pte::user);
            mem_.write64(entry_pa, entry);
        }
        table = entryPpn(entry) << pageShift;
    }
    const PAddr leaf_pa = table + 8ull * levelIndex(va, Level::Pte);
    mem_.write64(leaf_pa, makeEntry(ppn, flags));
}

void
PageTable::unmap(Vpn vpn)
{
    ++stats_.unmaps;
    if (auto leaf = leafEntryAddr(vpn << pageShift))
        mem_.write64(*leaf, 0);
}

SoftWalkResult
PageTable::softwareWalk(VAddr va) const
{
    ++stats_.softwareWalks;
    SoftWalkResult result;
    PAddr table = rootPa_;
    for (unsigned lvl = 0; lvl < numLevels; ++lvl) {
        const PAddr entry_pa =
            table + 8ull * levelIndex(va, static_cast<Level>(lvl));
        result.entryAddrs[lvl] = entry_pa;
        result.levelsValid = lvl + 1;
        const std::uint64_t entry = mem_.read64(entry_pa);
        if (lvl == numLevels - 1) {
            // The leaf may be non-present (e.g., under attack) yet
            // still mapped; "mapped" means a frame number is recorded.
            result.mapped = entry != 0;
            result.leafEntry = entry;
            return result;
        }
        if (!(entry & pte::present))
            return result;  // Intermediate table absent: unmapped.
        table = entryPpn(entry) << pageShift;
    }
    return result;
}

std::optional<PAddr>
PageTable::leafEntryAddr(VAddr va) const
{
    const SoftWalkResult walk = softwareWalk(va);
    if (walk.levelsValid < numLevels)
        return std::nullopt;
    return walk.entryAddrs[numLevels - 1];
}

void
PageTable::setPresent(VAddr va, bool present)
{
    const auto leaf = leafEntryAddr(va);
    if (!leaf)
        panic("setPresent: va %#llx has no leaf entry",
              static_cast<unsigned long long>(va));
    std::uint64_t entry = mem_.read64(*leaf);
    entry = present ? (entry | pte::present) : (entry & ~pte::present);
    mem_.write64(*leaf, entry);
    ++stats_.presentToggles;
}

bool
PageTable::isPresent(VAddr va) const
{
    const SoftWalkResult walk = softwareWalk(va);
    return walk.mapped && (walk.leafEntry & pte::present);
}

void
PageTable::setAccessed(VAddr va, bool accessed)
{
    const auto leaf = leafEntryAddr(va);
    if (!leaf)
        panic("setAccessed: va %#llx has no leaf entry",
              static_cast<unsigned long long>(va));
    std::uint64_t entry = mem_.read64(*leaf);
    entry = accessed ? (entry | pte::accessed)
                     : (entry & ~pte::accessed);
    mem_.write64(*leaf, entry);
}

bool
PageTable::testAndClearAccessed(VAddr va)
{
    const auto leaf = leafEntryAddr(va);
    if (!leaf)
        return false;
    const std::uint64_t entry = mem_.read64(*leaf);
    if (entry & pte::accessed) {
        mem_.write64(*leaf, entry & ~pte::accessed);
        return true;
    }
    return false;
}

std::optional<Ppn>
PageTable::lookupPpn(VAddr va) const
{
    const SoftWalkResult walk = softwareWalk(va);
    if (!walk.mapped)
        return std::nullopt;
    return entryPpn(walk.leafEntry);
}

} // namespace uscope::vm
