#include "vm/pwc.hh"

#include <algorithm>

namespace uscope::vm
{

Pwc::Pwc(unsigned capacity) : capacity_(capacity)
{
}

std::uint64_t
Pwc::prefixOf(VAddr va, Level level)
{
    // The prefix covering levels 0..level: VA bits 47 down to the low
    // bit of this level's index field.
    const unsigned lo = 39 - 9 * static_cast<unsigned>(level);
    return va >> lo;
}

std::optional<PwcHit>
Pwc::lookup(VAddr va, Pcid pcid)
{
    // Prefer the deepest level (PMD > PUD > PGD): it skips the most.
    std::optional<PwcHit> best;
    std::list<Entry>::iterator best_it = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->pcid != pcid)
            continue;
        if (prefixOf(va, it->level) != it->prefix)
            continue;
        if (!best || it->level > best->level) {
            best = PwcHit{it->level, it->tablePa};
            best_it = it;
        }
    }
    if (best) {
        entries_.splice(entries_.begin(), entries_, best_it);
        ++hits_;
    } else {
        ++misses_;
    }
    return best;
}

void
Pwc::insert(VAddr va, Pcid pcid, Level level, PAddr table_pa)
{
    const std::uint64_t prefix = prefixOf(va, level);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->pcid == pcid && it->level == level &&
            it->prefix == prefix) {
            it->tablePa = table_pa;
            entries_.splice(entries_.begin(), entries_, it);
            return;
        }
    }
    entries_.push_front(Entry{pcid, level, prefix, table_pa});
    if (entries_.size() > capacity_)
        entries_.pop_back();
}

void
Pwc::invalidate(VAddr va, Pcid pcid)
{
    entries_.remove_if([va, pcid](const Entry &e) {
        return e.pcid == pcid && prefixOf(va, e.level) == e.prefix;
    });
}

void
Pwc::invalidateAll()
{
    entries_.clear();
}

} // namespace uscope::vm
