/**
 * @file
 * x86-64-style 4-level paging constants and page-table-entry helpers.
 *
 * The four levels follow the Linux naming the paper uses (Figure 2):
 * PGD (bits 47:39), PUD (38:30), PMD (29:21), PTE (20:12).  Entries are
 * 8 bytes; each table occupies one 4 KiB physical page with 512 slots.
 */

#ifndef USCOPE_VM_PAGING_HH
#define USCOPE_VM_PAGING_HH

#include <array>
#include <cstdint>

#include "common/bitfield.hh"
#include "common/types.hh"

namespace uscope::vm
{

/** Page-table levels, outermost first (as walked). */
enum class Level : unsigned
{
    Pgd = 0,
    Pud = 1,
    Pmd = 2,
    Pte = 3,
};

constexpr unsigned numLevels = 4;

/** Printable name matching the paper's Figure 2. */
const char *levelName(Level level);

/** Entry flag bits (subset of x86-64). */
namespace pte
{
constexpr std::uint64_t present = 1ull << 0;
constexpr std::uint64_t writable = 1ull << 1;
constexpr std::uint64_t user = 1ull << 2;
constexpr std::uint64_t accessed = 1ull << 5;
constexpr std::uint64_t dirty = 1ull << 6;
/** Mask of the physical-frame bits (51:12). */
constexpr std::uint64_t frameMask = mask(40) << 12;
} // namespace pte

/** Index into the table at @p level for virtual address @p va. */
constexpr unsigned
levelIndex(VAddr va, Level level)
{
    const unsigned hi = 47 - 9 * static_cast<unsigned>(level);
    return static_cast<unsigned>(bits(va, hi, hi - 8));
}

/** Physical frame number stored in an entry. */
constexpr Ppn
entryPpn(std::uint64_t entry)
{
    return (entry & pte::frameMask) >> pageShift;
}

/** Build an entry pointing at frame @p ppn with @p flags. */
constexpr std::uint64_t
makeEntry(Ppn ppn, std::uint64_t flags)
{
    return ((ppn << pageShift) & pte::frameMask) | flags;
}

/** Per-level physical addresses of the entries a walk for a VA touches. */
using EntryAddrs = std::array<PAddr, numLevels>;

} // namespace uscope::vm

#endif // USCOPE_VM_PAGING_HH
