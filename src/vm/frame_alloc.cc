#include "vm/frame_alloc.hh"

#include "common/logging.hh"

namespace uscope::vm
{

FrameAllocator::FrameAllocator(Ppn base_ppn, std::uint64_t count)
    : base_(base_ppn), count_(count)
{
}

Ppn
FrameAllocator::alloc()
{
    ++inUse_;
    if (!freeList_.empty()) {
        const Ppn ppn = freeList_.back();
        freeList_.pop_back();
        return ppn;
    }
    if (next_ >= count_)
        fatal("FrameAllocator: out of physical frames (%llu in pool)",
              static_cast<unsigned long long>(count_));
    return base_ + next_++;
}

void
FrameAllocator::free(Ppn ppn)
{
    if (inUse_ == 0)
        panic("FrameAllocator: free with no frames outstanding");
    --inUse_;
    freeList_.push_back(ppn);
}

} // namespace uscope::vm
