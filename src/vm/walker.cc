#include "vm/walker.hh"

#include "obs/metrics.hh"

namespace uscope::vm
{

Walker::Walker(mem::PhysMem &mem, mem::Hierarchy &hierarchy, Pwc &pwc,
               Cycles step_cost)
    : mem_(mem), hierarchy_(hierarchy), pwc_(pwc), stepCost_(step_cost)
{
}

WalkResult
Walker::walk(VAddr va, Pcid pcid, PAddr root)
{
    WalkResult result;
    ++stats_.walks;

    unsigned level = 0;
    PAddr table = root;
    if (auto hit = pwc_.lookup(va, pcid)) {
        level = static_cast<unsigned>(hit->level) + 1;
        table = hit->tablePa;
    }
    result.startLevel = static_cast<Level>(level);

    // The walk is atomic in simulated time: the core clock holds still
    // while the walk charges its total latency.  Trace events are
    // stamped at start + accumulated-latency so the walk renders as a
    // span whose width is the latency the Replayer tuned.
    const bool traced = obs::tracing(obs_);
    const std::uint64_t start = traced ? obs_->trace.now() : 0;
    if (traced)
        obs_->trace.record(obs::EventKind::WalkStart,
                           static_cast<std::uint8_t>(level), 0, va);

    for (; level < numLevels; ++level) {
        const PAddr entry_pa =
            table + 8ull * levelIndex(va, static_cast<Level>(level));

        const mem::AccessResult mem_access = hierarchy_.access(entry_pa);
        result.latency += mem_access.latency + stepCost_;
        ++result.ptFetches;
        ++stats_.ptFetches;
        if (traced)
            obs_->trace.recordAt(
                start + result.latency, obs::EventKind::WalkStep,
                static_cast<std::uint8_t>(level),
                static_cast<std::uint16_t>(mem_access.latency),
                entry_pa);

        const std::uint64_t entry = mem_.read64(entry_pa);

        if (!(entry & pte::present)) {
            // Leaf with present clear (the MicroScope case) or a hole
            // in the tree: either way, raise a page fault.
            result.fault = true;
            ++stats_.faults;
            break;
        }

        if (level == numLevels - 1) {
            // Real MMUs set the Accessed bit when they walk to a
            // leaf; Sneaky Page Monitoring (§2.4 [58]) watches it.
            if (!(entry & pte::accessed))
                mem_.write64(entry_pa, entry | pte::accessed);
            result.entry = TlbEntry{entryPpn(entry), entry & ~pte::frameMask};
            break;
        }

        table = entryPpn(entry) << pageShift;
        pwc_.insert(va, pcid, static_cast<Level>(level), table);
    }

    latency_.add(static_cast<double>(result.latency));
    if (traced)
        obs_->trace.recordAt(start + result.latency,
                             obs::EventKind::WalkEnd, result.fault,
                             static_cast<std::uint16_t>(result.latency),
                             va);
    return result;
}

void
Walker::exportMetrics(obs::MetricRegistry &registry) const
{
    registry.counter("vm.walker.walks").set(stats_.walks);
    registry.counter("vm.walker.faults").set(stats_.faults);
    registry.counter("vm.walker.steps").set(stats_.ptFetches);
    registry.latency("vm.walker.latency").fold(latency_);
}

} // namespace uscope::vm
