#include "vm/walker.hh"

namespace uscope::vm
{

Walker::Walker(mem::PhysMem &mem, mem::Hierarchy &hierarchy, Pwc &pwc,
               Cycles step_cost)
    : mem_(mem), hierarchy_(hierarchy), pwc_(pwc), stepCost_(step_cost)
{
}

WalkResult
Walker::walk(VAddr va, Pcid pcid, PAddr root)
{
    WalkResult result;
    ++stats_.walks;

    unsigned level = 0;
    PAddr table = root;
    if (auto hit = pwc_.lookup(va, pcid)) {
        level = static_cast<unsigned>(hit->level) + 1;
        table = hit->tablePa;
    }
    result.startLevel = static_cast<Level>(level);

    for (; level < numLevels; ++level) {
        const PAddr entry_pa =
            table + 8ull * levelIndex(va, static_cast<Level>(level));

        const mem::AccessResult mem_access = hierarchy_.access(entry_pa);
        result.latency += mem_access.latency + stepCost_;
        ++result.ptFetches;
        ++stats_.ptFetches;

        const std::uint64_t entry = mem_.read64(entry_pa);

        if (!(entry & pte::present)) {
            // Leaf with present clear (the MicroScope case) or a hole
            // in the tree: either way, raise a page fault.
            result.fault = true;
            ++stats_.faults;
            return result;
        }

        if (level == numLevels - 1) {
            // Real MMUs set the Accessed bit when they walk to a
            // leaf; Sneaky Page Monitoring (§2.4 [58]) watches it.
            if (!(entry & pte::accessed))
                mem_.write64(entry_pa, entry | pte::accessed);
            result.entry = TlbEntry{entryPpn(entry), entry & ~pte::frameMask};
            return result;
        }

        table = entryPpn(entry) << pageShift;
        pwc_.insert(va, pcid, static_cast<Level>(level), table);
    }

    return result;
}

} // namespace uscope::vm
