/**
 * @file
 * The hardware page-table walker (paper Figure 2).
 *
 * A walk starts at the deepest level the PWC can supply, then fetches
 * one 8-byte entry per remaining level *through the cache hierarchy*;
 * each fetch pays the latency of wherever that entry currently resides
 * (L1 .. DRAM).  This is precisely the knob MicroScope turns: by
 * staging the PGD/PUD/PMD/PTE entries at chosen levels, the Replayer
 * tunes a walk from a few cycles to over a thousand (§4.1.2), which
 * sets the length of the victim's speculative replay window.
 */

#ifndef USCOPE_VM_WALKER_HH
#define USCOPE_VM_WALKER_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/hierarchy.hh"
#include "mem/phys_mem.hh"
#include "obs/observer.hh"
#include "vm/paging.hh"
#include "vm/pwc.hh"
#include "vm/tlb.hh"

namespace uscope::obs
{
class MetricRegistry;
} // namespace uscope::obs

namespace uscope::vm
{

/** Outcome of one hardware page walk. */
struct WalkResult
{
    /** True when the translation failed (leaf absent or unmapped). */
    bool fault = false;
    /** Translation to install in the TLBs (valid when !fault). */
    TlbEntry entry;
    /** Total walk latency in cycles. */
    Cycles latency = 0;
    /** Number of page-table entry fetches performed. */
    unsigned ptFetches = 0;
    /** Level the walk started fetching at (after any PWC skip). */
    Level startLevel = Level::Pgd;
};

/** Walker hit/fault counters. */
struct WalkerStats
{
    std::uint64_t walks = 0;
    std::uint64_t faults = 0;
    std::uint64_t ptFetches = 0;
};

/** The MMU's hardware page-table walker. */
class Walker
{
  public:
    /**
     * @param mem       Physical memory holding the tables.
     * @param hierarchy Cache hierarchy the entry fetches go through.
     * @param pwc       Page-walk cache consulted/filled by walks.
     * @param step_cost Fixed per-level walker sequencing cost.
     */
    Walker(mem::PhysMem &mem, mem::Hierarchy &hierarchy, Pwc &pwc,
           Cycles step_cost = 2);

    /**
     * Walk the table rooted at @p root for @p va.
     * Upper-level entries found along the way are cached in the PWC
     * even when the walk ultimately faults (as on real hardware —
     * which is why the Replayer re-flushes the PWC every replay).
     */
    WalkResult walk(VAddr va, Pcid pcid, PAddr root);

    const WalkerStats &stats() const { return stats_; }
    void resetStats()
    {
        stats_ = WalkerStats{};
        latency_ = Summary{};
    }

    /** Distribution of end-to-end walk latencies. */
    const Summary &latencySummary() const { return latency_; }

    /**
     * Adopt @p other's counters and latency summary (snapshot
     * forking, DESIGN.md §12).  The memory/hierarchy/PWC references
     * and observer wiring stay this walker's own — the walker holds
     * no other mutable state.
     */
    void copyStateFrom(const Walker &other)
    {
        stats_ = other.stats_;
        latency_ = other.latency_;
    }

    /** Return to the just-constructed state. */
    void reset() { resetStats(); }

    /** Wire the owning Machine's observability hub (may be null). */
    void setObserver(obs::Observer *observer) { obs_ = observer; }

    /**
     * Earliest cycle at which ticking can change this component's
     * state (fast-forward contract, DESIGN.md §10).  The walker is
     * synchronous — walk() charges its full latency at the call — so
     * it never holds time: always kNoEventCycle.  The hook is the
     * plug-in point for a future overlapped/MSHR-style walker.
     */
    Cycles nextEventCycle() const { return kNoEventCycle; }

    /** Register vm.walker.* counters and the latency summary. */
    void exportMetrics(obs::MetricRegistry &registry) const;

  private:
    mem::PhysMem &mem_;
    mem::Hierarchy &hierarchy_;
    Pwc &pwc_;
    Cycles stepCost_;
    WalkerStats stats_;
    Summary latency_;
    obs::Observer *obs_ = nullptr;
};

} // namespace uscope::vm

#endif // USCOPE_VM_WALKER_HH
