/**
 * @file
 * Translation lookaside buffers (paper Figure 1).
 *
 * Set-associative, tagged by {VPN, PCID}, true LRU per set.  The MMU
 * composes an L1 DTLB and a larger, slower L2 TLB.  The kernel keeps
 * them coherent with INVLPG-style selective invalidation — the
 * operation MicroScope performs on the replay handle's translation
 * before every replay.
 */

#ifndef USCOPE_VM_TLB_HH
#define USCOPE_VM_TLB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace uscope::vm
{

/** A cached translation. */
struct TlbEntry
{
    Ppn ppn = 0;
    std::uint64_t flags = 0;   ///< Leaf pte flags at fill time.
};

/** TLB hit/miss/invalidation counters. */
struct TlbStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;
};

/** One set-associative TLB. */
class Tlb
{
  public:
    /**
     * @param name    Name for stats ("L1-DTLB", "L2-TLB").
     * @param entries Total entry count (power of two per set count).
     * @param assoc   Ways per set.
     */
    Tlb(std::string name, unsigned entries, unsigned assoc);

    const std::string &name() const { return name_; }

    /** Look up {vpn, pcid}; refresh LRU on hit. */
    std::optional<TlbEntry> lookup(Vpn vpn, Pcid pcid);

    /** Probe without touching LRU or stats. */
    std::optional<TlbEntry> peek(Vpn vpn, Pcid pcid) const;

    /** Install a translation, evicting LRU within the set if needed. */
    void insert(Vpn vpn, Pcid pcid, const TlbEntry &entry);

    /** INVLPG: drop one translation.  @return true if it was cached. */
    bool invalidate(Vpn vpn, Pcid pcid);

    /** Drop every translation for one PCID (MOV-to-CR3 semantics). */
    void invalidatePcid(Pcid pcid);

    /** Drop everything. */
    void invalidateAll();

    std::size_t occupancy() const;
    const TlbStats &stats() const { return stats_; }
    void resetStats() { stats_ = TlbStats{}; }

    /**
     * Adopt @p other's ways, LRU clock, and stats (snapshot forking,
     * DESIGN.md §12).  Both TLBs must share the same geometry.
     */
    void copyStateFrom(const Tlb &other)
    {
        ways_ = other.ways_;
        clock_ = other.clock_;
        stats_ = other.stats_;
    }

    /** Return to the just-constructed state (empty, zero stats). */
    void reset()
    {
        ways_.assign(ways_.size(), Way{});
        clock_ = 0;
        stats_ = TlbStats{};
    }

  private:
    struct Way
    {
        bool valid = false;
        Vpn vpn = 0;
        Pcid pcid = 0;
        TlbEntry entry;
        std::uint64_t lruStamp = 0;
    };

    unsigned setOf(Vpn vpn) const;
    Way *findWay(Vpn vpn, Pcid pcid);
    const Way *findWay(Vpn vpn, Pcid pcid) const;

    std::string name_;
    unsigned numSets_;
    unsigned assoc_;
    std::vector<Way> ways_;
    std::uint64_t clock_ = 0;
    TlbStats stats_;
};

} // namespace uscope::vm

#endif // USCOPE_VM_TLB_HH
