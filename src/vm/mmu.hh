/**
 * @file
 * The memory-management unit: L1 DTLB + L2 TLB + PWC + hardware walker.
 *
 * The core calls translate() on every memory micro-op.  The kernel
 * (and through it the MicroScope module) calls the invalidation
 * entry points: invlpg() after editing a leaf entry, flushPwc() before
 * every replay so the walk restarts from the level the Replayer staged.
 */

#ifndef USCOPE_VM_MMU_HH
#define USCOPE_VM_MMU_HH

#include <cstdint>

#include "common/types.hh"
#include "mem/hierarchy.hh"
#include "mem/phys_mem.hh"
#include "vm/pwc.hh"
#include "vm/tlb.hh"
#include "vm/walker.hh"

namespace uscope::vm
{

/** TLB/PWC geometry and latencies. */
struct MmuConfig
{
    unsigned l1TlbEntries = 64;
    unsigned l1TlbAssoc = 4;
    unsigned l2TlbEntries = 1536;
    unsigned l2TlbAssoc = 12;
    /** Extra cycles paid when the L1 TLB misses but the L2 hits. */
    Cycles l2TlbLatency = 7;
    unsigned pwcCapacity = 32;
    /** Fixed per-level walker sequencing cost. */
    Cycles walkStepCost = 2;

    /** Structural equality (snapshot/pool compatibility checks). */
    bool operator==(const MmuConfig &) const = default;
};

/** Outcome of one address translation. */
struct TranslateResult
{
    /** Page fault: leaf absent/non-present.  paddr is invalid. */
    bool fault = false;
    /** Translated physical address (valid when !fault). */
    PAddr paddr = 0;
    /** Translation latency beyond a free L1-TLB hit. */
    Cycles latency = 0;
    /** True when a hardware page walk was needed. */
    bool walked = false;
    /** Walk detail (valid when walked). */
    WalkResult walk;
};

/** The per-core MMU shared by both SMT contexts. */
class Mmu
{
  public:
    Mmu(mem::PhysMem &mem, mem::Hierarchy &hierarchy,
        const MmuConfig &config = MmuConfig{});

    /**
     * Translate @p va under @p pcid with tables rooted at @p root.
     * Fills TLBs/PWC as a real MMU would — including on faulting
     * walks, where upper levels still get cached.
     */
    TranslateResult translate(VAddr va, Pcid pcid, PAddr root);

    /** INVLPG: drop one page's translation from both TLBs. */
    void invlpg(VAddr va, Pcid pcid);

    /** Drop PWC entries covering @p va (MicroScope §5.2.2 op 2). */
    void flushPwc(VAddr va, Pcid pcid);

    /** Full TLB shootdown. */
    void flushTlbAll();

    /** Full PWC flush. */
    void flushPwcAll();

    Tlb &l1Tlb() { return l1Tlb_; }
    Tlb &l2Tlb() { return l2Tlb_; }
    Pwc &pwc() { return pwc_; }
    Walker &walker() { return walker_; }
    const Tlb &l1Tlb() const { return l1Tlb_; }
    const Tlb &l2Tlb() const { return l2Tlb_; }
    const Pwc &pwc() const { return pwc_; }
    const Walker &walker() const { return walker_; }

    /**
     * Adopt @p other's TLB/PWC contents and walker stats (snapshot
     * forking, DESIGN.md §12).  Configs must match; references and
     * observer wiring stay this MMU's own.
     */
    void copyStateFrom(const Mmu &other)
    {
        l1Tlb_.copyStateFrom(other.l1Tlb_);
        l2Tlb_.copyStateFrom(other.l2Tlb_);
        pwc_.copyStateFrom(other.pwc_);
        walker_.copyStateFrom(other.walker_);
    }

    /** Return to the just-constructed state. */
    void reset()
    {
        l1Tlb_.reset();
        l2Tlb_.reset();
        pwc_.reset();
        walker_.reset();
    }

    /** Wire the owning Machine's observability hub (may be null). */
    void setObserver(obs::Observer *observer)
    {
        obs_ = observer;
        walker_.setObserver(observer);
    }

    /** Register vm.tlb.*, vm.pwc.* and the walker's metrics. */
    void exportMetrics(obs::MetricRegistry &registry) const;

  private:
    MmuConfig config_;
    Tlb l1Tlb_;
    Tlb l2Tlb_;
    Pwc pwc_;
    Walker walker_;
    obs::Observer *obs_ = nullptr;
};

} // namespace uscope::vm

#endif // USCOPE_VM_MMU_HH
