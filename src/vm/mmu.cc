#include "vm/mmu.hh"

#include "obs/metrics.hh"

namespace uscope::vm
{

Mmu::Mmu(mem::PhysMem &mem, mem::Hierarchy &hierarchy,
         const MmuConfig &config)
    : config_(config),
      l1Tlb_("L1-DTLB", config.l1TlbEntries, config.l1TlbAssoc),
      l2Tlb_("L2-TLB", config.l2TlbEntries, config.l2TlbAssoc),
      pwc_(config.pwcCapacity),
      walker_(mem, hierarchy, pwc_, config.walkStepCost)
{
}

TranslateResult
Mmu::translate(VAddr va, Pcid pcid, PAddr root)
{
    TranslateResult result;
    const Vpn vpn = pageNumber(va);
    const std::uint64_t offset = va & pageOffsetMask;

    if (auto entry = l1Tlb_.lookup(vpn, pcid)) {
        result.paddr = (entry->ppn << pageShift) | offset;
        return result;
    }

    if (auto entry = l2Tlb_.lookup(vpn, pcid)) {
        result.latency = config_.l2TlbLatency;
        l1Tlb_.insert(vpn, pcid, *entry);
        result.paddr = (entry->ppn << pageShift) | offset;
        return result;
    }

    if (obs::tracing(obs_))
        obs_->trace.record(obs::EventKind::TlbMiss, 0, 0, va);

    result.walked = true;
    result.walk = walker_.walk(va, pcid, root);
    result.latency = config_.l2TlbLatency + result.walk.latency;

    if (result.walk.fault) {
        result.fault = true;
        return result;
    }

    l1Tlb_.insert(vpn, pcid, result.walk.entry);
    l2Tlb_.insert(vpn, pcid, result.walk.entry);
    result.paddr = (result.walk.entry.ppn << pageShift) | offset;
    return result;
}

void
Mmu::invlpg(VAddr va, Pcid pcid)
{
    const Vpn vpn = pageNumber(va);
    l1Tlb_.invalidate(vpn, pcid);
    l2Tlb_.invalidate(vpn, pcid);
}

void
Mmu::flushPwc(VAddr va, Pcid pcid)
{
    pwc_.invalidate(va, pcid);
}

void
Mmu::flushTlbAll()
{
    l1Tlb_.invalidateAll();
    l2Tlb_.invalidateAll();
}

void
Mmu::flushPwcAll()
{
    pwc_.invalidateAll();
}

namespace
{

void
exportTlb(obs::MetricRegistry &registry, const std::string &prefix,
          const TlbStats &stats)
{
    registry.counter(prefix + ".hits").set(stats.hits);
    registry.counter(prefix + ".misses").set(stats.misses);
    registry.counter(prefix + ".invalidations")
        .set(stats.invalidations);
}

} // anonymous namespace

void
Mmu::exportMetrics(obs::MetricRegistry &registry) const
{
    exportTlb(registry, "vm.tlb.l1", l1Tlb_.stats());
    exportTlb(registry, "vm.tlb.l2", l2Tlb_.stats());
    registry.counter("vm.pwc.hits").set(pwc_.hits());
    registry.counter("vm.pwc.misses").set(pwc_.misses());
    walker_.exportMetrics(registry);
}

} // namespace uscope::vm
