/**
 * @file
 * A process' 4-level page table, resident in simulated physical memory.
 *
 * The tables are real radix trees of 8-byte entries stored in PhysMem:
 * the hardware walker (vm/walker.hh) and the kernel's software walk
 * (softwareWalk(), the operation MicroScope's module performs in §5.2.2)
 * read the very same bytes.  Clearing a present bit — the heart of the
 * MicroScope replay loop — is a 1-bit store into PhysMem here.
 */

#ifndef USCOPE_VM_PAGE_TABLE_HH
#define USCOPE_VM_PAGE_TABLE_HH

#include <cstdint>
#include <optional>

#include "common/types.hh"
#include "mem/phys_mem.hh"
#include "vm/frame_alloc.hh"
#include "vm/paging.hh"

namespace uscope::vm
{

/** Result of a software page-table walk. */
struct SoftWalkResult
{
    /** True if a leaf entry exists (even if not present). */
    bool mapped = false;
    /** Leaf entry value (valid when mapped). */
    std::uint64_t leafEntry = 0;
    /** Physical addresses of the pgd_t/pud_t/pmd_t/pte_t touched. */
    EntryAddrs entryAddrs{};
    /** How many of entryAddrs are valid (4 when fully mapped). */
    unsigned levelsValid = 0;
};

/** Per-table bookkeeping counters. */
struct PageTableStats
{
    /** Table pages allocated (root + intermediates). */
    std::uint64_t tablePages = 0;
    /** map() calls (leaf entries written). */
    std::uint64_t maps = 0;
    /** unmap() calls. */
    std::uint64_t unmaps = 0;
    /** Kernel software walks performed. */
    std::uint64_t softwareWalks = 0;
    /** Present-bit flips — one per MicroScope replay arm/disarm. */
    std::uint64_t presentToggles = 0;
};

/** One process' page table rooted at a CR3 physical address. */
class PageTable
{
  public:
    /**
     * @param mem    Backing physical memory holding the tables.
     * @param frames Allocator for table pages.
     */
    PageTable(mem::PhysMem &mem, FrameAllocator &frames);

    /**
     * Rebind-clone for snapshot forking (DESIGN.md §12): a view of
     * @p src's tree over @p mem / @p frames.  Allocates nothing — the
     * table bytes already exist in the (copied) physical memory and
     * the frame allocator's cursor was copied wholesale, so only the
     * root pointer and counters carry over.
     */
    PageTable(mem::PhysMem &mem, FrameAllocator &frames,
              const PageTable &src)
        : mem_(mem), frames_(frames), rootPa_(src.rootPa_),
          stats_(src.stats_)
    {
    }

    /** Physical base address of the root table (CR3). */
    PAddr root() const { return rootPa_; }

    /**
     * Map virtual page @p vpn to physical frame @p ppn, creating
     * intermediate tables as needed.
     *
     * @param flags Leaf entry flags; pte::present is NOT implied.
     */
    void map(Vpn vpn, Ppn ppn, std::uint64_t flags);

    /** Remove the leaf mapping for @p vpn (zero the pte_t). */
    void unmap(Vpn vpn);

    /**
     * Kernel software walk for @p va: locate every table entry the
     * hardware walker would touch.  Never faults; reports what exists.
     */
    SoftWalkResult softwareWalk(VAddr va) const;

    /** Physical address of the leaf pte_t for @p va, if mapped. */
    std::optional<PAddr> leafEntryAddr(VAddr va) const;

    /** Set or clear the present bit in the leaf entry for @p va. */
    void setPresent(VAddr va, bool present);

    /** Read the present bit of the leaf entry for @p va. */
    bool isPresent(VAddr va) const;

    /** Set or clear the accessed bit of the leaf entry for @p va. */
    void setAccessed(VAddr va, bool accessed);

    /** Read and clear the accessed bit (SPM-style monitoring, §2.4). */
    bool testAndClearAccessed(VAddr va);

    /** Physical frame mapped at @p va, if mapped. */
    std::optional<Ppn> lookupPpn(VAddr va) const;

    const PageTableStats &stats() const { return stats_; }

  private:
    /** Allocate and zero a table page; return its physical base. */
    PAddr allocTable();

    mem::PhysMem &mem_;
    FrameAllocator &frames_;
    PAddr rootPa_;
    /** softwareWalk() is logically const; counting it is not. */
    mutable PageTableStats stats_;
};

} // namespace uscope::vm

#endif // USCOPE_VM_PAGE_TABLE_HH
