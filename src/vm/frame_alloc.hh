/**
 * @file
 * Trivial bump allocator for physical page frames.
 *
 * The kernel uses one instance to hand out frames for page tables and
 * for demand-paged data.  Freed frames go on a free list and are
 * reused LIFO; the simulator never needs real reclamation pressure.
 */

#ifndef USCOPE_VM_FRAME_ALLOC_HH
#define USCOPE_VM_FRAME_ALLOC_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace uscope::vm
{

/** Allocates physical frames from a fixed region [base, base+count). */
class FrameAllocator
{
  public:
    /**
     * @param base_ppn First allocatable frame number.
     * @param count    Number of frames in the pool.
     */
    FrameAllocator(Ppn base_ppn, std::uint64_t count);

    /** Allocate one frame; throws SimFatal when the pool is exhausted. */
    Ppn alloc();

    /** Return a frame to the pool. */
    void free(Ppn ppn);

    std::uint64_t framesInUse() const { return inUse_; }
    std::uint64_t framesTotal() const { return count_; }

    /**
     * Adopt @p other's allocation cursor and free list (snapshot
     * forking, DESIGN.md §12).  Pools must cover the same region.
     */
    void copyStateFrom(const FrameAllocator &other)
    {
        next_ = other.next_;
        inUse_ = other.inUse_;
        freeList_ = other.freeList_;
    }

    /** Return to the just-constructed state (every frame free). */
    void reset()
    {
        next_ = 0;
        inUse_ = 0;
        freeList_.clear();
    }

  private:
    Ppn base_;
    std::uint64_t count_;
    std::uint64_t next_ = 0;
    std::uint64_t inUse_ = 0;
    std::vector<Ppn> freeList_;
};

} // namespace uscope::vm

#endif // USCOPE_VM_FRAME_ALLOC_HH
