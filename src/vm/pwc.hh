/**
 * @file
 * Page-Walk Cache: caches translations of the three *upper* page-table
 * levels (PGD/PUD/PMD) so a walk can skip straight to a lower level
 * (paper §2.1).  MicroScope flushes matching entries before every
 * replay so the walk re-fetches every level from wherever the Replayer
 * staged them in the cache hierarchy.
 */

#ifndef USCOPE_VM_PWC_HH
#define USCOPE_VM_PWC_HH

#include <cstdint>
#include <list>
#include <optional>

#include "common/types.hh"
#include "vm/paging.hh"

namespace uscope::vm
{

/** A PWC hit: resume the walk below @p level using table @p tablePa. */
struct PwcHit
{
    /** Deepest upper level whose entry was cached. */
    Level level;
    /** Physical base of the next-level table to index. */
    PAddr tablePa;
};

/**
 * Fully-associative LRU page-walk cache.  Entries are keyed by
 * {pcid, level, va-prefix}; a hit at level L means the walk may skip
 * levels 0..L and start by indexing the table at tablePa.
 */
class Pwc
{
  public:
    explicit Pwc(unsigned capacity = 32);

    /** Deepest usable cached level for @p va, refreshing LRU. */
    std::optional<PwcHit> lookup(VAddr va, Pcid pcid);

    /**
     * Record that the upper-level entry at @p level for @p va points
     * at the next-level table based at @p table_pa.
     */
    void insert(VAddr va, Pcid pcid, Level level, PAddr table_pa);

    /** Drop every entry covering the page of @p va for @p pcid. */
    void invalidate(VAddr va, Pcid pcid);

    /** Drop everything. */
    void invalidateAll();

    std::size_t occupancy() const { return entries_.size(); }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /**
     * Adopt @p other's entries and counters (snapshot forking,
     * DESIGN.md §12).  Both PWCs must share the same capacity.
     */
    void copyStateFrom(const Pwc &other)
    {
        entries_ = other.entries_;
        hits_ = other.hits_;
        misses_ = other.misses_;
    }

    /** Return to the just-constructed state (empty, zero counters). */
    void reset()
    {
        entries_.clear();
        hits_ = 0;
        misses_ = 0;
    }

  private:
    struct Entry
    {
        Pcid pcid;
        Level level;
        std::uint64_t prefix;  ///< VA bits 47..(39 - 9*level).
        PAddr tablePa;
    };

    static std::uint64_t prefixOf(VAddr va, Level level);

    unsigned capacity_;
    std::list<Entry> entries_;  ///< Front = most recent.
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace uscope::vm

#endif // USCOPE_VM_PWC_HH
