#include "vm/tlb.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace uscope::vm
{

Tlb::Tlb(std::string name, unsigned entries, unsigned assoc)
    : name_(std::move(name)), assoc_(assoc)
{
    if (assoc == 0 || entries == 0 || entries % assoc != 0)
        fatal("Tlb %s: %u entries not divisible by assoc %u",
              name_.c_str(), entries, assoc);
    const unsigned sets = entries / assoc;
    if (!isPowerOf2(sets))
        fatal("Tlb %s: set count %u not a power of two",
              name_.c_str(), sets);
    numSets_ = sets;
    ways_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

unsigned
Tlb::setOf(Vpn vpn) const
{
    return static_cast<unsigned>(vpn & (numSets_ - 1));
}

Tlb::Way *
Tlb::findWay(Vpn vpn, Pcid pcid)
{
    Way *set = &ways_[static_cast<std::size_t>(setOf(vpn)) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w)
        if (set[w].valid && set[w].vpn == vpn && set[w].pcid == pcid)
            return &set[w];
    return nullptr;
}

const Tlb::Way *
Tlb::findWay(Vpn vpn, Pcid pcid) const
{
    return const_cast<Tlb *>(this)->findWay(vpn, pcid);
}

std::optional<TlbEntry>
Tlb::lookup(Vpn vpn, Pcid pcid)
{
    if (Way *way = findWay(vpn, pcid)) {
        way->lruStamp = ++clock_;
        ++stats_.hits;
        return way->entry;
    }
    ++stats_.misses;
    return std::nullopt;
}

std::optional<TlbEntry>
Tlb::peek(Vpn vpn, Pcid pcid) const
{
    if (const Way *way = findWay(vpn, pcid))
        return way->entry;
    return std::nullopt;
}

void
Tlb::insert(Vpn vpn, Pcid pcid, const TlbEntry &entry)
{
    if (Way *way = findWay(vpn, pcid)) {
        way->entry = entry;
        way->lruStamp = ++clock_;
        return;
    }
    Way *set = &ways_[static_cast<std::size_t>(setOf(vpn)) * assoc_];
    Way *victim = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (!victim || set[w].lruStamp < victim->lruStamp)
            victim = &set[w];
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->pcid = pcid;
    victim->entry = entry;
    victim->lruStamp = ++clock_;
}

bool
Tlb::invalidate(Vpn vpn, Pcid pcid)
{
    if (Way *way = findWay(vpn, pcid)) {
        way->valid = false;
        ++stats_.invalidations;
        return true;
    }
    return false;
}

void
Tlb::invalidatePcid(Pcid pcid)
{
    for (Way &way : ways_) {
        if (way.valid && way.pcid == pcid) {
            way.valid = false;
            ++stats_.invalidations;
        }
    }
}

void
Tlb::invalidateAll()
{
    for (Way &way : ways_) {
        if (way.valid) {
            way.valid = false;
            ++stats_.invalidations;
        }
    }
}

std::size_t
Tlb::occupancy() const
{
    std::size_t n = 0;
    for (const Way &way : ways_)
        if (way.valid)
            ++n;
    return n;
}

} // namespace uscope::vm
