#include "common/random.hh"

#include <cassert>

namespace uscope
{

namespace
{

/** SplitMix64 used to expand a single seed into full generator state. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

std::uint64_t
mix64(std::uint64_t x)
{
    std::uint64_t state = x;
    return splitMix64(state);
}

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : s_)
        word = splitMix64(sm);
    // All-zero state is the one degenerate case for xoshiro.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0)
        s_[0] = 1;
    draws_ = 0;
}

std::uint64_t
Rng::next()
{
    ++draws_;
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    assert(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t draw = next();
        if (draw >= threshold)
            return draw % bound;
    }
}

void
Rng::discardBelow(std::uint64_t bound, std::uint64_t count)
{
    assert(bound != 0);
    const std::uint64_t threshold = (0 - bound) % bound;
    // Keep the generator state in registers across the whole span;
    // below()'s per-call loads/stores dominate its cost.
    std::uint64_t s0 = s_[0], s1 = s_[1], s2 = s_[2], s3 = s_[3];
    std::uint64_t consumed = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        for (;;) {
            const std::uint64_t draw = rotl(s1 * 5, 7) * 9;
            const std::uint64_t t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = rotl(s3, 45);
            ++consumed;
            if (draw >= threshold)
                break;
        }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
    draws_ += consumed;
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::uniform()
{
    // 53 random mantissa bits, as for std::generate_canonical.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace uscope
