#include "common/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/logging.hh"

namespace uscope
{

void
Summary::add(double sample)
{
    ++count_;
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
}

void
Summary::reset()
{
    *this = Summary{};
}

void
Summary::merge(const Summary &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(count_);
    const auto nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    count_ += other.count_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
Summary::min() const
{
    return count_ ? min_ : 0.0;
}

double
Summary::max() const
{
    return count_ ? max_ : 0.0;
}

Summary
Summary::fromParts(std::uint64_t count, double mean, double m2,
                   double min, double max)
{
    Summary s;
    s.count_ = count;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
}

double
Summary::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, unsigned nbuckets,
                     bool keep_raw)
    : lo_(lo), hi_(hi),
      bucketWidth_((hi - lo) / nbuckets),
      keepRaw_(keep_raw),
      buckets_(nbuckets, 0)
{
    if (!(hi > lo) || nbuckets == 0)
        fatal("Histogram: invalid range [%g, %g) / %u buckets",
              lo, hi, nbuckets);
}

void
Histogram::add(double sample)
{
    summary_.add(sample);
    if (keepRaw_)
        samples_.push_back(sample);
    if (sample < lo_) {
        ++underflow_;
    } else if (sample >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((sample - lo_) / bucketWidth_);
        idx = std::min(idx, buckets_.size() - 1);
        ++buckets_[idx];
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    samples_.clear();
    summary_.reset();
}

void
Histogram::merge(const Histogram &other)
{
    if (lo_ != other.lo_ || hi_ != other.hi_ ||
        buckets_.size() != other.buckets_.size()) {
        fatal("Histogram::merge: shape mismatch "
              "([%g, %g)/%zu vs [%g, %g)/%zu)",
              lo_, hi_, buckets_.size(),
              other.lo_, other.hi_, other.buckets_.size());
    }
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    if (keepRaw_) {
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
    }
    summary_.merge(other.summary_);
}

std::uint64_t
Histogram::countAbove(double threshold) const
{
    if (!keepRaw_ && summary_.count())
        panic("Histogram::countAbove on a keep_raw=false histogram "
              "with %llu samples",
              static_cast<unsigned long long>(summary_.count()));
    std::uint64_t n = 0;
    for (double s : samples_)
        if (s > threshold)
            ++n;
    return n;
}

double
Histogram::percentile(double fraction) const
{
    if (!keepRaw_ && summary_.count())
        panic("Histogram::percentile on a keep_raw=false histogram "
              "with %llu samples",
              static_cast<unsigned long long>(summary_.count()));
    if (samples_.empty())
        return 0.0;
    // Clamp out-of-range (or NaN) fractions: a negative pos would make
    // the size_t cast below undefined behaviour.  NaN fails both
    // comparisons, so it falls through to 0.0 (the minimum).
    if (!(fraction >= 0.0))
        fraction = 0.0;
    else if (fraction > 1.0)
        fraction = 1.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double pos = fraction * static_cast<double>(sorted.size() - 1);
    const auto idx = static_cast<std::size_t>(pos);
    if (idx + 1 >= sorted.size())
        return sorted.back();
    const double frac = pos - static_cast<double>(idx);
    return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

double
Histogram::bucketLo(unsigned idx) const
{
    return lo_ + idx * bucketWidth_;
}

std::string
Histogram::render(unsigned width) const
{
    std::uint64_t peak = 1;
    for (auto b : buckets_)
        peak = std::max(peak, b);

    std::string out;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        const auto bar_len = static_cast<unsigned>(
            (buckets_[i] * width) / peak);
        out += format("%10.1f..%-10.1f %8llu |", bucketLo(i),
                      bucketLo(i) + bucketWidth_,
                      static_cast<unsigned long long>(buckets_[i]));
        out.append(bar_len, '#');
        out += '\n';
    }
    if (underflow_)
        out += format("  underflow: %llu\n",
                      static_cast<unsigned long long>(underflow_));
    if (overflow_)
        out += format("  overflow:  %llu\n",
                      static_cast<unsigned long long>(overflow_));
    return out;
}

} // namespace uscope
