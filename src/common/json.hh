/**
 * @file
 * A minimal, dependency-free JSON value + writer/reader shared by
 * result export (src/exp), observability export (src/obs), and the
 * campaign-service wire protocol (src/svc).  Historically write-only
 * (the simulator produced results, external tooling consumed them);
 * the service daemon made the reverse direction load-bearing — clients
 * submit campaign specs as JSON — so parse() and the read accessors
 * below exist now.  Result export remains write-only: nothing in the
 * simulator parses its own reports back in.
 *
 * Objects preserve insertion order so dumps are deterministic and
 * diffable; non-finite doubles serialize as null (JSON has no NaN).
 */

#ifndef USCOPE_COMMON_JSON_HH
#define USCOPE_COMMON_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace uscope::json
{

/** One JSON value: null, bool, number, string, array, or object. */
class Value
{
  public:
    enum class Type { Null, Bool, Int, Uint, Double, String, Array,
                      Object, Raw };

    Value() = default;                       ///< null
    Value(bool b) : type_(Type::Bool), bool_(b) {}
    Value(int v) : type_(Type::Int), int_(v) {}
    Value(std::int64_t v) : type_(Type::Int), int_(v) {}
    Value(unsigned v) : type_(Type::Uint), uint_(v) {}
    Value(std::uint64_t v) : type_(Type::Uint), uint_(v) {}
    Value(double v) : type_(Type::Double), double_(v) {}
    Value(const char *s) : type_(Type::String), string_(s) {}
    Value(std::string s) : type_(Type::String), string_(std::move(s)) {}

    /** Empty object / array factories (a default Value is null). */
    static Value object() { return Value(Type::Object); }
    static Value array() { return Value(Type::Array); }

    /**
     * A pre-serialized JSON document, emitted verbatim by dump() —
     * indentation requests do not reformat it.  This is how campaign
     * checkpoints restore trial payloads without a JSON parser: the
     * original dump() text round-trips byte for byte.  The caller
     * vouches that @p serialized is valid JSON; nonFiniteCount()
     * reports 0 for raw blobs (non-finite doubles were already
     * serialized as null when the blob was first dumped).
     */
    static Value raw(std::string serialized);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool
    isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Uint ||
               type_ == Type::Double;
    }

    // -----------------------------------------------------------------
    // Read accessors (the svc wire protocol's view of a parsed value).
    // All are total: a kind mismatch returns the fallback / an empty
    // container instead of throwing, so message handlers reduce to
    // straight-line reads followed by validity checks.
    // -----------------------------------------------------------------

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *get(const std::string &key) const;

    /** Numeric coercions (Int/Uint/Double interconvert; a negative
     *  value reads as 0 through asU64). */
    std::uint64_t asU64(std::uint64_t fallback = 0) const;
    std::int64_t asI64(std::int64_t fallback = 0) const;
    double asDouble(double fallback = 0.0) const;
    bool asBool(bool fallback = false) const;

    /** String payload; empty for non-strings. */
    const std::string &asString() const;

    /** Array elements (empty for non-arrays). */
    const std::vector<Value> &items() const;

    /** Object members in insertion order (empty for non-objects). */
    const std::vector<std::pair<std::string, Value>> &entries() const;

    /**
     * Parse one JSON document (the inverse of dump() for everything
     * but Raw, which parses as whatever it serialized).  Returns
     * nullopt on malformed input — truncation, trailing garbage,
     * invalid escapes, nesting deeper than an internal sanity bound.
     * Integral numbers parse as Uint (or Int when negative); anything
     * with a fraction or exponent parses as Double.
     */
    static std::optional<Value> parse(const std::string &text);

    /** Object insert (keeps insertion order); returns *this to chain. */
    Value &set(std::string key, Value v);

    /** Array append; returns *this to chain. */
    Value &push(Value v);

    std::size_t size() const;

    /**
     * Serialize.  @p indent < 0 produces a compact single line;
     * otherwise nested structures indent by @p indent spaces.
     */
    std::string dump(int indent = -1) const;

    /**
     * Number of non-finite doubles (NaN/Inf) anywhere in this value.
     * JSON has no token for them, so dump() writes null in their
     * place; callers that persist results should check this and
     * annotate the dump (see exp::JsonFileSink) so silent nulls don't
     * masquerade as missing data.
     */
    std::size_t nonFiniteCount() const;

    /** JSON-escape @p s (no surrounding quotes). */
    static std::string escape(const std::string &s);

  private:
    explicit Value(Type type) : type_(type) {}

    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Value> array_;
    std::vector<std::pair<std::string, Value>> object_;
};

} // namespace uscope::json

#endif // USCOPE_COMMON_JSON_HH
