/**
 * @file
 * Simple statistics containers used throughout the simulator and the
 * benchmark harnesses: scalar counters, streaming summaries, and
 * fixed-bucket histograms (used, e.g., to render the Figure-10 latency
 * distributions as text).
 */

#ifndef USCOPE_COMMON_STATS_HH
#define USCOPE_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace uscope
{

/**
 * Streaming summary of a sequence of samples: count, mean, min, max,
 * variance (Welford), and arbitrary-threshold exceedance counting.
 */
class Summary
{
  public:
    void add(double sample);
    void reset();

    /**
     * Fold @p other into this summary as if its samples had been
     * added here (Chan et al. pairwise-merge update of the Welford
     * state).  Merging a fixed set of per-trial summaries in a fixed
     * order is a pure float computation, so the aggregate is
     * bit-identical no matter which thread produced each input — the
     * determinism contract src/exp relies on.
     */
    void merge(const Summary &other);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const;
    double max() const;
    double variance() const;
    double stddev() const;

    /**
     * Lossless state access for checkpointing (campaign resume): m2()
     * is the raw Welford sum of squared deviations; rawMin()/rawMax()
     * the raw extrema (±infinity while empty, unlike min()/max()
     * which report 0).  fromParts() rebuilds a Summary bit-identically
     * from the five values — persist the doubles as bit patterns, not
     * decimal text, or merge() results will drift after a resume.
     */
    double m2() const { return m2_; }
    double rawMin() const { return min_; }
    double rawMax() const { return max_; }
    static Summary fromParts(std::uint64_t count, double mean, double m2,
                             double min, double max);

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width-bucket histogram over [lo, hi); samples outside the range
 * are counted in underflow/overflow buckets.  Also retains the raw
 * sample vector so harnesses can post-process (threshold counts,
 * percentiles) and dump series for EXPERIMENTS.md.
 */
class Histogram
{
  public:
    /**
     * @param lo       Lowest bucketed value.
     * @param hi       One past the highest bucketed value.
     * @param nbuckets Number of equal-width buckets.
     * @param keep_raw Retain every raw sample (default on).
     */
    Histogram(double lo, double hi, unsigned nbuckets,
              bool keep_raw = true);

    void add(double sample);
    void reset();

    /**
     * Fold @p other into this histogram: bucket counts add, raw
     * samples concatenate, summaries merge.  Both histograms must
     * have the same [lo, hi) range and bucket count.
     */
    void merge(const Histogram &other);

    std::uint64_t count() const { return summary_.count(); }
    const Summary &summary() const { return summary_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    const std::vector<double> &samples() const { return samples_; }

    /** True when raw samples are retained (keep_raw at construction). */
    bool keepRaw() const { return keepRaw_; }

    /**
     * Number of samples strictly greater than @p threshold.  Requires
     * raw samples: calling this on a populated keep_raw=false
     * histogram is a simulator bug and panics (it would otherwise
     * silently report 0).
     */
    std::uint64_t countAbove(double threshold) const;

    /**
     * Value below which @p fraction of the samples fall.  Requires raw
     * samples: calling this on a populated keep_raw=false histogram is
     * a simulator bug and panics (it would otherwise silently return
     * garbage).
     */
    double percentile(double fraction) const;

    /** Lower edge of bucket @p idx. */
    double bucketLo(unsigned idx) const;

    /** Render as an ASCII bar chart, one bucket per row. */
    std::string render(unsigned width = 50) const;

  private:
    double lo_;
    double hi_;
    double bucketWidth_;
    bool keepRaw_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::vector<double> samples_;
    Summary summary_;
};

} // namespace uscope

#endif // USCOPE_COMMON_STATS_HH
