/**
 * @file
 * Status and error reporting, following the gem5 fatal/panic split:
 *
 *  - panic():  a simulator bug — a condition that should be impossible
 *              regardless of user input.  Throws SimPanic (so tests can
 *              assert on it) after printing.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments).  Throws SimFatal.
 *  - warn():   something may be modelled imprecisely; keep going.
 *  - inform(): normal operating status.
 *
 * A lightweight trace facility (Trace) lets components emit per-cycle
 * event logs gated by named categories; it is off by default so benches
 * run at full speed.
 *
 * Thread-safety contract (campaign workers run concurrent Machines):
 *  - The global category set is guarded by an internal mutex;
 *    enable()/disable()/disableAll() may be called from any thread.
 *  - Trace::enabled() is a single relaxed atomic load — lock-free, so
 *    hot simulation paths never contend on the category registry.
 *    Each live Trace instance caches its own enabled flag; the
 *    category mutators walk the instance registry and refresh every
 *    cached flag under the lock.
 *  - print() serializes its final write so concurrent trace lines
 *    never interleave mid-line.
 *  - A Trace object itself must not be destroyed concurrently with a
 *    category mutation that could observe it; in practice Trace
 *    instances are namespace-scope constants or per-Machine members,
 *    both of which satisfy this.
 */

#ifndef USCOPE_COMMON_LOGGING_HH
#define USCOPE_COMMON_LOGGING_HH

#include <atomic>
#include <cstdarg>
#include <stdexcept>
#include <string>

namespace uscope
{

/** Thrown by panic(): an internal simulator invariant was violated. */
class SimPanic : public std::logic_error
{
  public:
    explicit SimPanic(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the user asked for something unsupported. */
class SimFatal : public std::runtime_error
{
  public:
    explicit SimFatal(const std::string &msg) : std::runtime_error(msg) {}
};

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and throw SimPanic. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error and throw SimFatal. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a non-fatal modelling caveat. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Pluggable sink for panic/fatal/warn/inform text.
 *
 * `severity` is 0 for panic/fatal (the exception still propagates),
 * 1 for warn, 2 for inform.  Installing a handler replaces the
 * default `fprintf(stderr/stdout, ...)` output entirely; passing
 * nullptr restores it.  The hook exists so higher layers (obs::Logger)
 * can route simulator diagnostics through a structured sink without
 * common/ depending on them.  The handler must be callable from any
 * thread and must not call back into panic()/fatal()/warn()/inform().
 */
using LogHandler = void (*)(int severity, const char *msg);
void setLogHandler(LogHandler handler);

/**
 * Per-category trace gate.  Components construct one with a category
 * name; Trace::enable()/disable() flips categories globally by name
 * ("*" matches all).
 */
class Trace
{
  public:
    explicit Trace(std::string category);
    ~Trace();

    Trace(const Trace &) = delete;
    Trace &operator=(const Trace &) = delete;

    /** True when this category is currently enabled (lock-free). */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    const std::string &category() const { return category_; }

    /** Emit one trace line, prefixed by the cycle and category. */
    void print(std::uint64_t cycle, const char *fmt, ...) const
        __attribute__((format(printf, 3, 4)));

    static void enable(const std::string &category);
    static void disable(const std::string &category);
    static void disableAll();

  private:
    friend struct TraceRegistryAccess;

    std::string category_;
    /** Cached gate, refreshed under the registry lock by the static
     *  mutators; mutable so `const Trace` globals stay valid. */
    mutable std::atomic<bool> enabled_{false};
};

} // namespace uscope

#endif // USCOPE_COMMON_LOGGING_HH
