/**
 * @file
 * Status and error reporting, following the gem5 fatal/panic split:
 *
 *  - panic():  a simulator bug — a condition that should be impossible
 *              regardless of user input.  Throws SimPanic (so tests can
 *              assert on it) after printing.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments).  Throws SimFatal.
 *  - warn():   something may be modelled imprecisely; keep going.
 *  - inform(): normal operating status.
 *
 * A lightweight trace facility (Trace) lets components emit per-cycle
 * event logs gated by named categories; it is off by default so benches
 * run at full speed.
 */

#ifndef USCOPE_COMMON_LOGGING_HH
#define USCOPE_COMMON_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace uscope
{

/** Thrown by panic(): an internal simulator invariant was violated. */
class SimPanic : public std::logic_error
{
  public:
    explicit SimPanic(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the user asked for something unsupported. */
class SimFatal : public std::runtime_error
{
  public:
    explicit SimFatal(const std::string &msg) : std::runtime_error(msg) {}
};

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and throw SimPanic. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error and throw SimFatal. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a non-fatal modelling caveat. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Per-category trace gate.  Components construct one with a category
 * name; Trace::enable()/disable() flips categories globally by name
 * ("*" matches all).
 */
class Trace
{
  public:
    explicit Trace(std::string category);

    /** True when this category is currently enabled. */
    bool enabled() const;

    /** Emit one trace line, prefixed by the cycle and category. */
    void print(std::uint64_t cycle, const char *fmt, ...) const
        __attribute__((format(printf, 3, 4)));

    static void enable(const std::string &category);
    static void disable(const std::string &category);
    static void disableAll();

  private:
    std::string category_;
};

} // namespace uscope

#endif // USCOPE_COMMON_LOGGING_HH
