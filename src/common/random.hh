/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulation (DRAM access jitter, SMT
 * arbitration tie-breaks, workload generation) draws from an explicitly
 * seeded Xoshiro256** stream, so a given seed reproduces a run
 * bit-for-bit.  Benches sweep seeds explicitly; tests pin them.
 */

#ifndef USCOPE_COMMON_RANDOM_HH
#define USCOPE_COMMON_RANDOM_HH

#include <cstdint>

namespace uscope
{

/**
 * SplitMix64 finalizer (Vigna): a full-avalanche 64-bit mix.  The
 * building block for deriving decorrelated seeds from structured
 * inputs — trial seeds from (masterSeed, index), fault-site streams
 * from (machine seed, site id) — where plain arithmetic would hand
 * adjacent inputs overlapping PRNG expansions.
 */
std::uint64_t mix64(std::uint64_t x);

/**
 * Xoshiro256** PRNG (Blackman & Vigna).  Small, fast, and good enough
 * for simulation jitter; not cryptographic (the simulated RDRAND draws
 * from a separate, OS-controlled instance on purpose — see §7.2 of the
 * paper, where the attacker biases it).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Re-seed the stream (SplitMix64 expansion of @p seed). */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform draw in [0, bound); bound must be non-zero. */
    std::uint64_t below(std::uint64_t bound);

    /**
     * Consume exactly what @p count below(@p bound) calls would —
     * rejection retries included — without materializing the values.
     * Positions a reconstructed stream (fork reseed mid-run) at the
     * point a live one reached; the tight loop is an order of
     * magnitude faster than repeated below() calls.
     */
    void discardBelow(std::uint64_t bound, std::uint64_t count);

    /** Uniform draw in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

    /** Uniform double in [0, 1). */
    double uniform();

    /**
     * Raw draws consumed since construction or the last seed().
     * Copyable stream position: lets a caller certify "this stream was
     * never touched over an interval" by comparing counts, without
     * inspecting generator internals.  below()/range() count every
     * rejection-sampling retry, so equal counts mean bit-equal
     * positions.
     */
    std::uint64_t draws() const { return draws_; }

  private:
    std::uint64_t s_[4];
    std::uint64_t draws_ = 0;
};

} // namespace uscope

#endif // USCOPE_COMMON_RANDOM_HH
