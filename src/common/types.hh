/**
 * @file
 * Fundamental scalar types shared by every subsystem of the simulator.
 *
 * The simulator models a single physical address space (PhysMem), one or
 * more virtual address spaces (one per simulated process), and a global
 * cycle counter.  All three use 64-bit unsigned integers, but we keep
 * distinct aliases so signatures document which domain a value lives in.
 */

#ifndef USCOPE_COMMON_TYPES_HH
#define USCOPE_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace uscope
{

/** A virtual address in some simulated process' address space. */
using VAddr = std::uint64_t;

/** A physical address in the simulated machine's memory map. */
using PAddr = std::uint64_t;

/** A duration or timestamp measured in core clock cycles. */
using Cycles = std::uint64_t;

/**
 * Sentinel "no pending event" cycle returned by the components'
 * nextEventCycle() methods (see DESIGN.md §10): a component with no
 * deferred state reports this, and the minimum across components is
 * the earliest cycle at which ticking can change architectural or
 * stats state.
 */
constexpr Cycles kNoEventCycle = ~Cycles{0};

/** Virtual page number (VAddr >> pageShift). */
using Vpn = std::uint64_t;

/** Physical page number (PAddr >> pageShift). */
using Ppn = std::uint64_t;

/** Process context identifier, tags TLB entries (x86 PCID). */
using Pcid = std::uint16_t;

/** Base-2 log of the page size; 4 KiB pages as on x86-64. */
constexpr unsigned pageShift = 12;

/** Page size in bytes. */
constexpr std::uint64_t pageSize = std::uint64_t{1} << pageShift;

/** Base-2 log of the cache line size; 64-byte lines as on x86. */
constexpr unsigned lineShift = 6;

/** Cache line size in bytes. */
constexpr std::uint64_t lineSize = std::uint64_t{1} << lineShift;

/** Mask selecting the offset bits within a page. */
constexpr std::uint64_t pageOffsetMask = pageSize - 1;

/** Mask selecting the offset bits within a cache line. */
constexpr std::uint64_t lineOffsetMask = lineSize - 1;

/** Round an address down to its page base. */
constexpr std::uint64_t
pageBase(std::uint64_t addr)
{
    return addr & ~pageOffsetMask;
}

/** Round an address down to its cache-line base. */
constexpr std::uint64_t
lineBase(std::uint64_t addr)
{
    return addr & ~lineOffsetMask;
}

/** Extract the virtual/physical page number of an address. */
constexpr std::uint64_t
pageNumber(std::uint64_t addr)
{
    return addr >> pageShift;
}

/** Extract the cache-line number of an address. */
constexpr std::uint64_t
lineNumber(std::uint64_t addr)
{
    return addr >> lineShift;
}

} // namespace uscope

#endif // USCOPE_COMMON_TYPES_HH
