#include "common/json.hh"

#include <cmath>

#include "common/logging.hh"

namespace uscope::json
{

Value &
Value::set(std::string key, Value v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        panic("json::Value::set on a non-object");
    for (auto &entry : object_) {
        if (entry.first == key) {
            entry.second = std::move(v);
            return *this;
        }
    }
    object_.emplace_back(std::move(key), std::move(v));
    return *this;
}

Value
Value::raw(std::string serialized)
{
    Value v(Type::Raw);
    v.string_ = std::move(serialized);
    return v;
}

Value &
Value::push(Value v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        panic("json::Value::push on a non-array");
    array_.push_back(std::move(v));
    return *this;
}

std::size_t
Value::size() const
{
    switch (type_) {
      case Type::Array: return array_.size();
      case Type::Object: return object_.size();
      default: return 0;
    }
}

std::string
Value::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

namespace
{

void
newline(std::string &out, int indent, int depth)
{
    if (indent < 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Int:
        out += format("%lld", static_cast<long long>(int_));
        break;
      case Type::Uint:
        out += format("%llu", static_cast<unsigned long long>(uint_));
        break;
      case Type::Double:
        // JSON has no NaN/Inf; %.17g round-trips every finite double.
        if (!std::isfinite(double_))
            out += "null";
        else
            out += format("%.17g", double_);
        break;
      case Type::String:
        out += '"';
        out += escape(string_);
        out += '"';
        break;
      case Type::Raw:
        out += string_;
        break;
      case Type::Array:
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out += indent < 0 ? "," : ",";
            newline(out, indent, depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        newline(out, indent, depth);
        out += ']';
        break;
      case Type::Object:
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out += ",";
            newline(out, indent, depth + 1);
            out += '"';
            out += escape(object_[i].first);
            out += indent < 0 ? "\":" : "\": ";
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

std::size_t
Value::nonFiniteCount() const
{
    switch (type_) {
      case Type::Double:
        return std::isfinite(double_) ? 0 : 1;
      case Type::Array: {
        std::size_t n = 0;
        for (const Value &v : array_)
            n += v.nonFiniteCount();
        return n;
      }
      case Type::Object: {
        std::size_t n = 0;
        for (const auto &entry : object_)
            n += entry.second.nonFiniteCount();
        return n;
      }
      default:
        return 0;
    }
}

} // namespace uscope::json
