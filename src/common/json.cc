#include "common/json.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace uscope::json
{

Value &
Value::set(std::string key, Value v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        panic("json::Value::set on a non-object");
    for (auto &entry : object_) {
        if (entry.first == key) {
            entry.second = std::move(v);
            return *this;
        }
    }
    object_.emplace_back(std::move(key), std::move(v));
    return *this;
}

Value
Value::raw(std::string serialized)
{
    Value v(Type::Raw);
    v.string_ = std::move(serialized);
    return v;
}

Value &
Value::push(Value v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        panic("json::Value::push on a non-array");
    array_.push_back(std::move(v));
    return *this;
}

const Value *
Value::get(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &entry : object_)
        if (entry.first == key)
            return &entry.second;
    return nullptr;
}

std::uint64_t
Value::asU64(std::uint64_t fallback) const
{
    switch (type_) {
      case Type::Uint: return uint_;
      case Type::Int:
        return int_ < 0 ? 0 : static_cast<std::uint64_t>(int_);
      case Type::Double:
        return double_ < 0.0 ? 0
                             : static_cast<std::uint64_t>(double_);
      default: return fallback;
    }
}

std::int64_t
Value::asI64(std::int64_t fallback) const
{
    switch (type_) {
      case Type::Int: return int_;
      case Type::Uint: return static_cast<std::int64_t>(uint_);
      case Type::Double: return static_cast<std::int64_t>(double_);
      default: return fallback;
    }
}

double
Value::asDouble(double fallback) const
{
    switch (type_) {
      case Type::Double: return double_;
      case Type::Int: return static_cast<double>(int_);
      case Type::Uint: return static_cast<double>(uint_);
      default: return fallback;
    }
}

bool
Value::asBool(bool fallback) const
{
    return type_ == Type::Bool ? bool_ : fallback;
}

const std::string &
Value::asString() const
{
    static const std::string empty;
    return type_ == Type::String ? string_ : empty;
}

const std::vector<Value> &
Value::items() const
{
    static const std::vector<Value> empty;
    return type_ == Type::Array ? array_ : empty;
}

const std::vector<std::pair<std::string, Value>> &
Value::entries() const
{
    static const std::vector<std::pair<std::string, Value>> empty;
    return type_ == Type::Object ? object_ : empty;
}

namespace
{

/**
 * Recursive-descent parser.  Every method clears `ok` on malformed
 * input instead of throwing; parse() checks once at the end.
 */
struct Parser
{
    const std::string &s;
    std::size_t pos = 0;
    bool ok = true;
    /** Deep nesting is an attack surface (stack exhaustion from a
     *  hostile client frame), not a real workload; bound it. */
    static constexpr int maxDepth = 96;

    void
    skipSpace()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (s.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    /** One \uXXXX escape (possibly a surrogate pair) to UTF-8. */
    void
    appendUnicodeEscape(std::string &out)
    {
        const auto hex4 = [&]() -> std::uint32_t {
            std::uint32_t v = 0;
            for (int i = 0; i < 4; ++i) {
                if (pos >= s.size())
                    return ok = false, 0u;
                const char c = s[pos++];
                v <<= 4;
                if (c >= '0' && c <= '9')
                    v |= static_cast<std::uint32_t>(c - '0');
                else if (c >= 'a' && c <= 'f')
                    v |= static_cast<std::uint32_t>(c - 'a' + 10);
                else if (c >= 'A' && c <= 'F')
                    v |= static_cast<std::uint32_t>(c - 'A' + 10);
                else
                    return ok = false, 0u;
            }
            return v;
        };
        std::uint32_t cp = hex4();
        if (!ok)
            return;
        if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired \uXXXX low half.
            if (!(pos + 1 < s.size() && s[pos] == '\\' &&
                  s[pos + 1] == 'u')) {
                ok = false;
                return;
            }
            pos += 2;
            const std::uint32_t low = hex4();
            if (!ok || low < 0xDC00 || low > 0xDFFF) {
                ok = false;
                return;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            ok = false; // unpaired low surrogate
            return;
        }
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    std::string
    string()
    {
        std::string out;
        if (pos >= s.size() || s[pos] != '"')
            return ok = false, out;
        ++pos;
        while (pos < s.size()) {
            const char c = s[pos];
            if (c == '"') {
                ++pos;
                return out;
            }
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    return ok = false, out;
                switch (s[pos++]) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': appendUnicodeEscape(out); break;
                  default: ok = false; return out;
                }
                if (!ok)
                    return out;
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return ok = false, out; // bare control character
            } else {
                out += c;
                ++pos;
            }
        }
        ok = false; // unterminated
        return out;
    }

    Value
    number()
    {
        const std::size_t start = pos;
        bool negative = false;
        bool integral = true;
        if (pos < s.size() && s[pos] == '-') {
            negative = true;
            ++pos;
        }
        while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9')
            ++pos;
        if (pos < s.size() && s[pos] == '.') {
            integral = false;
            ++pos;
            while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9')
                ++pos;
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            integral = false;
            ++pos;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
                ++pos;
            while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9')
                ++pos;
        }
        const std::string text = s.substr(start, pos - start);
        if (text.empty() || text == "-")
            return ok = false, Value{};
        errno = 0;
        char *end = nullptr;
        if (integral && !negative) {
            const std::uint64_t v =
                std::strtoull(text.c_str(), &end, 10);
            if (end == text.c_str() + text.size() && errno == 0)
                return Value{v};
        } else if (integral) {
            const std::int64_t v = std::strtoll(text.c_str(), &end, 10);
            if (end == text.c_str() + text.size() && errno == 0)
                return Value{v};
        }
        errno = 0;
        const double d = std::strtod(text.c_str(), &end);
        if (end != text.c_str() + text.size())
            return ok = false, Value{};
        return Value{d};
    }

    Value
    value(int depth)
    {
        if (depth > maxDepth)
            return ok = false, Value{};
        skipSpace();
        if (pos >= s.size())
            return ok = false, Value{};
        switch (s[pos]) {
          case '{': {
            ++pos;
            Value out = Value::object();
            if (consume('}'))
                return out;
            do {
                skipSpace();
                std::string key = string();
                if (!ok || !consume(':'))
                    return ok = false, Value{};
                Value member = value(depth + 1);
                if (!ok)
                    return Value{};
                out.set(std::move(key), std::move(member));
            } while (consume(','));
            if (!consume('}'))
                ok = false;
            return out;
          }
          case '[': {
            ++pos;
            Value out = Value::array();
            if (consume(']'))
                return out;
            do {
                Value element = value(depth + 1);
                if (!ok)
                    return Value{};
                out.push(std::move(element));
            } while (consume(','));
            if (!consume(']'))
                ok = false;
            return out;
          }
          case '"':
            return Value{string()};
          case 't':
            if (literal("true"))
                return Value{true};
            return ok = false, Value{};
          case 'f':
            if (literal("false"))
                return Value{false};
            return ok = false, Value{};
          case 'n':
            if (literal("null"))
                return Value{};
            return ok = false, Value{};
          default:
            return number();
        }
    }
};

} // namespace

std::optional<Value>
Value::parse(const std::string &text)
{
    Parser p{text};
    Value v = p.value(0);
    p.skipSpace();
    if (!p.ok || p.pos != text.size())
        return std::nullopt;
    return v;
}

std::size_t
Value::size() const
{
    switch (type_) {
      case Type::Array: return array_.size();
      case Type::Object: return object_.size();
      default: return 0;
    }
}

std::string
Value::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

namespace
{

void
newline(std::string &out, int indent, int depth)
{
    if (indent < 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Int:
        out += format("%lld", static_cast<long long>(int_));
        break;
      case Type::Uint:
        out += format("%llu", static_cast<unsigned long long>(uint_));
        break;
      case Type::Double:
        // JSON has no NaN/Inf; %.17g round-trips every finite double.
        if (!std::isfinite(double_))
            out += "null";
        else
            out += format("%.17g", double_);
        break;
      case Type::String:
        out += '"';
        out += escape(string_);
        out += '"';
        break;
      case Type::Raw:
        out += string_;
        break;
      case Type::Array:
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out += indent < 0 ? "," : ",";
            newline(out, indent, depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        newline(out, indent, depth);
        out += ']';
        break;
      case Type::Object:
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out += ",";
            newline(out, indent, depth + 1);
            out += '"';
            out += escape(object_[i].first);
            out += indent < 0 ? "\":" : "\": ";
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

std::size_t
Value::nonFiniteCount() const
{
    switch (type_) {
      case Type::Double:
        return std::isfinite(double_) ? 0 : 1;
      case Type::Array: {
        std::size_t n = 0;
        for (const Value &v : array_)
            n += v.nonFiniteCount();
        return n;
      }
      case Type::Object: {
        std::size_t n = 0;
        for (const auto &entry : object_)
            n += entry.second.nonFiniteCount();
        return n;
      }
      default:
        return 0;
    }
}

} // namespace uscope::json
