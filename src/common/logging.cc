#include "common/logging.hh"

#include <cstdio>
#include <cstdint>
#include <mutex>
#include <set>

namespace uscope
{

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    const int len = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out(len > 0 ? static_cast<std::size_t>(len) : 0, '\0');
    if (len > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw SimPanic(msg);
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw SimFatal(msg);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

namespace
{

std::mutex traceMutex;
std::set<std::string> enabledCategories;

bool
categoryEnabled(const std::string &category)
{
    std::lock_guard<std::mutex> lock(traceMutex);
    return enabledCategories.count("*") > 0 ||
           enabledCategories.count(category) > 0;
}

} // anonymous namespace

Trace::Trace(std::string category) : category_(std::move(category))
{
}

bool
Trace::enabled() const
{
    return categoryEnabled(category_);
}

void
Trace::print(std::uint64_t cycle, const char *fmt, ...) const
{
    if (!enabled())
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "%10llu: %s: %s\n",
                 static_cast<unsigned long long>(cycle),
                 category_.c_str(), msg.c_str());
}

void
Trace::enable(const std::string &category)
{
    std::lock_guard<std::mutex> lock(traceMutex);
    enabledCategories.insert(category);
}

void
Trace::disable(const std::string &category)
{
    std::lock_guard<std::mutex> lock(traceMutex);
    enabledCategories.erase(category);
}

void
Trace::disableAll()
{
    std::lock_guard<std::mutex> lock(traceMutex);
    enabledCategories.clear();
}

} // namespace uscope
