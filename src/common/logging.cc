#include "common/logging.hh"

#include <cstdio>
#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

namespace uscope
{

namespace
{

/** The installed sink for panic/fatal/warn/inform, or null for the
 *  default fprintf output.  Relaxed is enough: installation happens
 *  during process setup, long before concurrent emission. */
std::atomic<LogHandler> logHandler{nullptr};

/** Route one diagnostic line: the handler if installed, else the
 *  historical fprintf shape. */
void
emit(int severity, const char *prefix, std::FILE *stream,
     const std::string &msg)
{
    if (LogHandler handler = logHandler.load(std::memory_order_relaxed)) {
        handler(severity, msg.c_str());
        return;
    }
    std::fprintf(stream, "%s: %s\n", prefix, msg.c_str());
}

} // anonymous namespace

void
setLogHandler(LogHandler handler)
{
    logHandler.store(handler, std::memory_order_relaxed);
}

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    const int len = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out(len > 0 ? static_cast<std::size_t>(len) : 0, '\0');
    if (len > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit(0, "panic", stderr, msg);
    throw SimPanic(msg);
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit(0, "fatal", stderr, msg);
    throw SimFatal(msg);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit(1, "warn", stderr, msg);
}

void
inform(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit(2, "info", stdout, msg);
}

namespace
{

/**
 * Registry state shared by every Trace instance.  Function-local so
 * namespace-scope `const Trace` objects in other translation units can
 * register during static initialization without an ordering hazard.
 */
struct TraceRegistry
{
    std::mutex lock;
    std::set<std::string> categories;
    std::vector<const Trace *> instances;
    /** Serializes print() output so lines never interleave. */
    std::mutex printLock;
};

TraceRegistry &
registry()
{
    static TraceRegistry instance;
    return instance;
}

bool
categoryEnabledLocked(const TraceRegistry &reg,
                      const std::string &category)
{
    return reg.categories.count("*") > 0 ||
           reg.categories.count(category) > 0;
}

} // anonymous namespace

/** Grants the registry access to each instance's cached flag. */
struct TraceRegistryAccess
{
    static void
    refresh(const Trace &trace, bool enabled)
    {
        trace.enabled_.store(enabled, std::memory_order_relaxed);
    }

    static void
    refreshAllLocked(TraceRegistry &reg)
    {
        for (const Trace *trace : reg.instances)
            refresh(*trace,
                    categoryEnabledLocked(reg, trace->category()));
    }
};

Trace::Trace(std::string category) : category_(std::move(category))
{
    TraceRegistry &reg = registry();
    std::lock_guard<std::mutex> guard(reg.lock);
    reg.instances.push_back(this);
    TraceRegistryAccess::refresh(*this,
                                 categoryEnabledLocked(reg, category_));
}

Trace::~Trace()
{
    TraceRegistry &reg = registry();
    std::lock_guard<std::mutex> guard(reg.lock);
    std::erase(reg.instances, this);
}

void
Trace::print(std::uint64_t cycle, const char *fmt, ...) const
{
    if (!enabled())
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::lock_guard<std::mutex> guard(registry().printLock);
    std::fprintf(stderr, "%10llu: %s: %s\n",
                 static_cast<unsigned long long>(cycle),
                 category_.c_str(), msg.c_str());
}

void
Trace::enable(const std::string &category)
{
    TraceRegistry &reg = registry();
    std::lock_guard<std::mutex> guard(reg.lock);
    reg.categories.insert(category);
    TraceRegistryAccess::refreshAllLocked(reg);
}

void
Trace::disable(const std::string &category)
{
    TraceRegistry &reg = registry();
    std::lock_guard<std::mutex> guard(reg.lock);
    reg.categories.erase(category);
    TraceRegistryAccess::refreshAllLocked(reg);
}

void
Trace::disableAll()
{
    TraceRegistry &reg = registry();
    std::lock_guard<std::mutex> guard(reg.lock);
    reg.categories.clear();
    TraceRegistryAccess::refreshAllLocked(reg);
}

} // namespace uscope
