/**
 * @file
 * Bit-manipulation helpers used by the page-table walker, the TLB index
 * functions, and the cache index/tag decomposition.
 */

#ifndef USCOPE_COMMON_BITFIELD_HH
#define USCOPE_COMMON_BITFIELD_HH

#include <cstdint>
#include <cassert>

namespace uscope
{

/** Return a mask with the low @p nbits bits set. */
constexpr std::uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << nbits) - 1;
}

/**
 * Extract bits [@p hi : @p lo] (inclusive) of @p val, right-justified.
 * Mirrors the bit-range notation used in the x86 page-walk description
 * (e.g., bits 47:39 of a virtual address index the PGD).
 */
constexpr std::uint64_t
bits(std::uint64_t val, unsigned hi, unsigned lo)
{
    return (val >> lo) & mask(hi - lo + 1);
}

/** Replace bits [@p hi : @p lo] of @p dst with the low bits of @p val. */
constexpr std::uint64_t
insertBits(std::uint64_t dst, unsigned hi, unsigned lo, std::uint64_t val)
{
    const std::uint64_t m = mask(hi - lo + 1) << lo;
    return (dst & ~m) | ((val << lo) & m);
}

/** True if @p val is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t val)
{
    unsigned n = 0;
    while (val > 1) {
        val >>= 1;
        ++n;
    }
    return n;
}

/** Round @p val up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t val, std::uint64_t align)
{
    return (val + align - 1) & ~(align - 1);
}

/** Round @p val down to a multiple of @p align (a power of two). */
constexpr std::uint64_t
roundDown(std::uint64_t val, std::uint64_t align)
{
    return val & ~(align - 1);
}

} // namespace uscope

#endif // USCOPE_COMMON_BITFIELD_HH
