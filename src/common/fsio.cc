#include "common/fsio.hh"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <system_error>
#include <unistd.h>

#include "common/logging.hh"

namespace uscope
{

void
fsyncDirectory(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        warn("writeFileAtomic: cannot open directory '%s' to fsync: %s",
             dir.c_str(), std::strerror(errno));
        return;
    }
    if (::fsync(fd) != 0 && errno != EINVAL && errno != ENOTSUP)
        warn("writeFileAtomic: fsync of directory '%s' failed: %s",
             dir.c_str(), std::strerror(errno));
    ::close(fd);
}

void
writeFileAtomic(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0)
        fatal("writeFileAtomic: cannot open '%s' for writing: %s",
              tmp.c_str(), std::strerror(errno));
    std::size_t written = 0;
    while (written < content.size()) {
        const ssize_t n = ::write(fd, content.data() + written,
                                  content.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno;
            ::close(fd);
            fatal("writeFileAtomic: short write to '%s': %s",
                  tmp.c_str(), std::strerror(err));
        }
        written += static_cast<std::size_t>(n);
    }
    // Data must be on disk *before* the rename becomes visible, or a
    // power cut can leave a fully-renamed, zero-length file — the one
    // torn state the tmp+rename dance exists to rule out.
    if (::fsync(fd) != 0 && errno != EINVAL && errno != ENOTSUP) {
        const int err = errno;
        ::close(fd);
        fatal("writeFileAtomic: fsync of '%s' failed: %s", tmp.c_str(),
              std::strerror(err));
    }
    ::close(fd);

    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        fatal("writeFileAtomic: rename '%s' -> '%s' failed: %s",
              tmp.c_str(), path.c_str(), ec.message().c_str());

    // And the rename itself must reach disk: the directory entry is
    // what a resuming campaign (or a worker told a manifest exists)
    // will look up after a crash.
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    fsyncDirectory(parent.empty() ? std::string(".")
                                  : parent.string());
}

} // namespace uscope
