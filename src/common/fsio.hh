/**
 * @file
 * Durable filesystem primitives shared by every layer that persists
 * state: campaign checkpoints (src/exp), the service daemon's shard
 * manifests, and the observability trace spills (src/obs).  Moved
 * here from exp/checkpoint so obs can use them without depending on
 * the experiment layer (the same exp -> common promotion the JSON
 * library went through).
 */

#ifndef USCOPE_COMMON_FSIO_HH
#define USCOPE_COMMON_FSIO_HH

#include <string>

namespace uscope
{

/**
 * Atomically AND durably replace @p path: write to `<path>.tmp`,
 * fsync the tmp file, rename over the destination, then fsync the
 * parent directory.  On POSIX the rename is atomic within a
 * directory, so concurrent readers — and a campaign resuming after a
 * kill — see either the old content or the new, never a prefix; the
 * two fsyncs extend that guarantee to *power loss*, not just process
 * death: without them the rename can reach disk before the data (the
 * classic ext4 zero-length-file hazard), or the rename itself can be
 * lost with the directory update still in the page cache.  The
 * campaign service's shard-reassignment correctness rides on this —
 * a manifest a worker was told exists must actually be readable after
 * the machine comes back.  Throws SimFatal on any I/O failure;
 * filesystems that cannot fsync a directory (EINVAL/ENOTSUP) degrade
 * to the old atomic-only behavior with a warning.
 */
void writeFileAtomic(const std::string &path, const std::string &content);

/**
 * fsync a directory so a rename inside it survives power loss.  Some
 * filesystems refuse to fsync directories; that degrades durability,
 * not atomicity, so it warns instead of failing the caller.
 */
void fsyncDirectory(const std::string &dir);

} // namespace uscope

#endif // USCOPE_COMMON_FSIO_HH
