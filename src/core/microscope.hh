/**
 * @file
 * The MicroScope kernel module (paper §5).
 *
 * Microscope plugs into the kernel's page-fault path (Figure 9) and
 * drives the replay loop of §4.1.4:
 *
 *   1. arm(): clear the present bit of the replay handle's leaf PTE,
 *      flush its translation from the TLBs, PWC, and data caches, and
 *      stage the page-table entries at the cache levels the recipe's
 *      PageWalkPlan asks for.
 *   2. The victim issues the handle, misses the TLB, walks (paying
 *      the staged latencies), and keeps executing younger — sensitive
 *      — instructions in the walk's shadow.
 *   3. The fault reaches the ROB head; the core squashes and traps;
 *      the kernel trampolines into Microscope::onPageFault.
 *   4. onPageFault invokes the recipe's measurement hook, and either
 *      re-arms (leaving the present bit clear: another replay) or
 *      releases the handle — optionally arming the pivot to
 *      single-step to the next loop iteration (§4.2.2).
 *
 * The class also exposes the exact user API of Table 2.
 */

#ifndef USCOPE_CORE_MICROSCOPE_HH
#define USCOPE_CORE_MICROSCOPE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "core/recipe.hh"
#include "os/kernel.hh"
#include "os/machine.hh"
#include "os/module.hh"

namespace uscope::ms
{

struct ReplayBatchStats;

/** Module-level statistics. */
struct MicroscopeStats
{
    std::uint64_t handleFaults = 0;
    std::uint64_t pivotFaults = 0;
    /** Faults not claimed by the module (kernel default path). */
    std::uint64_t foreignFaults = 0;
    std::uint64_t episodes = 0;
    std::uint64_t totalReplays = 0;
    /**
     * Trace events carry the replay counter in a 16-bit field; counts
     * past 0xffff are clamped there (never in these stats) and each
     * clamped emission is tallied here so long denoise campaigns can
     * tell saturation from a genuinely short episode.
     */
    std::uint64_t replayCounterSaturations = 0;

    /** Fold @p other in (campaign aggregation across machines). */
    void
    merge(const MicroscopeStats &other)
    {
        handleFaults += other.handleFaults;
        pivotFaults += other.pivotFaults;
        foreignFaults += other.foreignFaults;
        episodes += other.episodes;
        totalReplays += other.totalReplays;
        replayCounterSaturations += other.replayCounterSaturations;
    }
};

/**
 * The engine's episode-loop position, exported alongside an episode
 * snapshot so a differential-replay fork — possibly driven through a
 * *different* Microscope instance on the restored machine — resumes
 * the §4.1.4 loop exactly where the snapshotted instance stood.
 */
struct EpisodeState
{
    bool armed = false;
    std::uint64_t replays = 0;
    MicroscopeStats stats;
};

/** The MicroScope module. */
class Microscope : public os::FaultModule
{
  public:
    /** Construct and register with @p machine's kernel. */
    explicit Microscope(os::Machine &machine);
    ~Microscope() override;

    Microscope(const Microscope &) = delete;
    Microscope &operator=(const Microscope &) = delete;

    // ------------------------------------------------------------------
    // Table 2: the user-facing attack-exploration API.
    // ------------------------------------------------------------------

    /** provide_replay_handle(addr). */
    void provideReplayHandle(os::Pid pid, VAddr addr);

    /** provide_pivot(addr). */
    void providePivot(VAddr addr);

    /** provide_monitor_addr(addr). */
    void provideMonitorAddr(VAddr addr);

    /**
     * initiate_page_walk(addr, length): arrange for the next access
     * to @p addr to TLB-miss and perform a hardware walk fetching
     * exactly @p length page-table levels, staged at @p where.
     */
    void initiatePageWalk(VAddr addr, unsigned length,
                          mem::HitLevel where = mem::HitLevel::Dram);

    /**
     * initiate_page_fault(addr): clear the present bit and flush the
     * translation path so the next access faults after a full walk.
     */
    void initiatePageFault(VAddr addr);

    // ------------------------------------------------------------------
    // Recipe management and the replay engine.
    // ------------------------------------------------------------------

    /** Install a full recipe (replaces Table-2 piecemeal setup). */
    void setRecipe(AttackRecipe recipe);
    const AttackRecipe &recipe() const { return recipe_; }
    AttackRecipe &recipe() { return recipe_; }

    /** Start the attack: arm the replay handle. */
    void arm();

    /** Stop: restore present bits on handle and pivot, flush TLBs. */
    void disarm();

    bool armed() const { return armed_; }

    /** FaultModule hook: the replay engine (Figure 9 steps 4-6). */
    bool onPageFault(const os::PageFaultEvent &event) override;

    // ------------------------------------------------------------------
    // Differential replay (DESIGN.md §15): COW-fork the episode at
    // the replay handle instead of re-simulating the prefix.
    // ------------------------------------------------------------------

    /**
     * True after the engine passed this episode's snapshot point (the
     * first re-arm) with recipe().differentialReplay set.  The flag is
     * raised *inside* the fault tick, where a snapshot cannot be taken
     * (the core is mid-retire); the harness observes it between ticks
     * — e.g. machine().runUntil([&]{ return
     * scope.episodeSnapshotPending(); }) — and then calls
     * takeEpisodeSnapshot().
     */
    bool episodeSnapshotPending() const { return snapPending_; }

    /**
     * Capture the episode snapshot: a COW Machine::snapshot() plus the
     * engine's own loop position.  Must be called between ticks while
     * episodeSnapshotPending(); the victim is stalled in the fault
     * handler with the handle re-armed, so every restoreEpisode()
     * resumes exactly at the replay handle.
     */
    void takeEpisodeSnapshot();

    bool hasEpisodeSnapshot() const { return episodeSnap_.valid(); }

    /** The captured snapshot (fatal if none); movable into an
     *  artifact for cross-instance reuse via restoreEpisodeFrom(). */
    const os::Snapshot &episodeSnapshot() const;

    /** Engine loop position as of takeEpisodeSnapshot(). */
    const EpisodeState &episodeState() const { return episodeSt_; }

    /** Drop the captured snapshot (frees its COW pages). */
    void dropEpisodeSnapshot();

    /**
     * One differential replay iteration: restore the machine from the
     * captured episode snapshot, reseed every stream with @p seed (a
     * fresh noise realization), and re-adopt the snapshotted engine
     * state.  The caller then simply runs the machine; the victim
     * resumes from the handler stall into the speculative window.
     */
    void restoreEpisode(std::uint64_t seed);

    /**
     * Cross-instance variant: restore from an externally held episode
     * snapshot + state (e.g. minted by a campaign warmup's Microscope
     * and carried in the warmup artifact).  This instance must be
     * registered on the same machine and carry an equivalent recipe.
     */
    void restoreEpisodeFrom(const os::Snapshot &snap,
                            const EpisodeState &state,
                            std::uint64_t seed);

    /** Adopt @p state verbatim (loop position of a forked episode). */
    void adoptEpisodeState(const EpisodeState &state);

    /**
     * restoreEpisodeFrom, but the machine restore goes through the
     * armed cache-hierarchy undo journal (batched lockstep replay,
     * DESIGN.md §17) — bit-identical to the full restore, O(ways the
     * previous sibling touched) instead of O(cache size).
     *
     * @return true when the journal path ran; false when it fell back
     *         to the full copy (journal unarmed or poisoned).
     */
    bool restoreEpisodeJournaled(const os::Snapshot &snap,
                                 const EpisodeState &state,
                                 std::uint64_t seed);

    /**
     * restoreEpisodeJournaled from a *mid-window* snapshot: @p snap
     * freezes a sibling's state at the lockstep divergence point D,
     * and the reseed anchors at the episode origin @p origin (= the
     * episode snapshot's cycle) via Machine::reseedForkedAt, so the
     * result is bit-identical to restoreEpisodeJournaled at the
     * origin followed by running origin -> D.  Only sound when the
     * span [origin, D) is a certified shared prefix (runReplayBatch's
     * divergence sentinels); @p state is the same episode state — the
     * engine's loop position cannot have moved in a fault-free span.
     */
    bool restoreEpisodeForked(const os::Snapshot &snap,
                              const EpisodeState &state,
                              std::uint64_t seed, Cycles origin);

    /**
     * Record the last batch's telemetry (runReplayBatch calls this);
     * exportMetrics then emits os.replay.batch.*.  Like obs.trace.*,
     * those counters describe the mechanics, not the result, and are
     * stripped from result fingerprints.
     */
    void noteBatchStats(const ReplayBatchStats &stats);

    // ------------------------------------------------------------------
    // Measurement utilities for recipe callbacks (Replayer-as-Monitor).
    // ------------------------------------------------------------------

    /** Timed probe of monitor address @p idx. */
    os::ProbeResult probeMonitorAddr(std::size_t idx);

    /** Timed probes of every monitor address, in order. */
    std::vector<os::ProbeResult> probeAllMonitorAddrs();

    /** Evict every monitor address to DRAM (Prime). */
    void primeMonitorAddrs();

    os::Kernel &kernel() { return kernel_; }
    os::Machine &machine() { return machine_; }

    const MicroscopeStats &stats() const { return stats_; }

    /** Register os.replay.* and os.faults.replayed counters. */
    void exportMetrics(obs::MetricRegistry &registry) const;

    /** Replays so far in the current episode. */
    std::uint64_t replaysThisEpisode() const { return replays_; }

  private:
    void stageWalk(VAddr va, const PageWalkPlan &plan);
    void stageHandleWalk();
    void armHandle();
    void releaseHandle();
    void armPivot();
    void releasePivot();

    /** Clamp the replay counter into a 16-bit trace field (long
     *  denoise campaigns overflow 65 535). */
    std::uint16_t traceReplayCount() const;

    os::Machine &machine_;
    os::Kernel &kernel_;
    AttackRecipe recipe_;
    bool armed_ = false;
    std::uint64_t replays_ = 0;
    MicroscopeStats stats_;

    /** Differential replay: snapshot-point flag and captured state. */
    bool snapPending_ = false;
    os::Snapshot episodeSnap_;
    EpisodeState episodeSt_;

    /** Last batch's telemetry (exported only after a batch ran). */
    bool batchRan_ = false;
    Cycles batchSharedCycles_ = 0;
    Cycles batchDivergenceCycle_ = 0;
    std::uint64_t batchJournaledRestores_ = 0;
    std::uint64_t batchFullRestores_ = 0;
};

} // namespace uscope::ms

#endif // USCOPE_CORE_MICROSCOPE_HH
