/**
 * @file
 * Attack Recipes (paper §5.2.1).
 *
 * A recipe bundles everything the MicroScope module needs for one
 * microarchitectural replay attack: the replay handle, the optional
 * pivot, addresses to monitor for cache-based side channels, the
 * confidence threshold that bounds replays, a page-walk plan that
 * tunes the speculative-window length, and the attack functions
 * invoked from the fault path.  Recipes can be swapped mid-attack
 * ("if a side-channel attack is unsuccessful for a number of replays,
 * the attacker can switch from a long page walk to a short one").
 */

#ifndef USCOPE_CORE_RECIPE_HH
#define USCOPE_CORE_RECIPE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "mem/hierarchy.hh"
#include "os/module.hh"
#include "vm/paging.hh"

namespace uscope::ms
{

class Microscope;

/**
 * Where to stage each page-table entry before a replay, and how many
 * levels the hardware walk must fetch.  This is the §4.1.2 duration
 * knob: all-DRAM with 4 fetched levels gives a >1000-cycle window;
 * PWC-prefilled with the leaf in L1 gives a few cycles.
 */
struct PageWalkPlan
{
    std::array<mem::HitLevel, vm::numLevels> levels{
        mem::HitLevel::Dram, mem::HitLevel::Dram, mem::HitLevel::Dram,
        mem::HitLevel::Dram};
    /** Levels the walk must fetch (1..4); 4-n upper levels come from
     *  a pre-filled PWC. */
    unsigned fetchLevels = vm::numLevels;

    /** Longest window: PWC flushed, every entry in DRAM. */
    static PageWalkPlan longest();

    /** Shortest window: PWC covers the upper levels, leaf in L1. */
    static PageWalkPlan shortest();

    /** All fetched entries staged at one level. */
    static PageWalkPlan uniform(mem::HitLevel level,
                                unsigned fetch_levels = vm::numLevels);
};

/** Context handed to the recipe's attack functions. */
struct ReplayEvent
{
    Microscope &scope;
    const os::PageFaultEvent &fault;
    /** 1-based replay count within the current episode. */
    std::uint64_t replayIndex;
    /** 0-based episode count (episodes advance at pivot swaps). */
    std::uint64_t episode;
};

/** One attack recipe (§5.2.1). */
struct AttackRecipe
{
    os::Pid victim = 0;

    /** The page-fault-inducing load address (§4.1.1). */
    VAddr replayHandle = 0;

    /**
     * Optional pivot on a different page; when set, releasing the
     * handle arms the pivot and vice versa, single-stepping the
     * victim through loop iterations (§4.2.2).
     */
    std::optional<VAddr> pivot;

    /** Victim addresses probed by cache-based monitors. */
    std::vector<VAddr> monitorAddrs;

    /**
     * Confidence threshold: replays per episode before the module
     * decides the noise is low enough and releases the handle.
     */
    std::uint64_t confidence = 10;

    /** Episodes before the module disarms entirely (0 = unbounded). */
    std::uint64_t maxEpisodes = 0;

    PageWalkPlan walkPlan = PageWalkPlan::longest();

    /**
     * Walk plan staged for a page being *released* (made present
     * again) at an episode end or pivot swap.  A short plan makes the
     * released access retire quickly, so instructions that depend on
     * its value execute well before the newly-armed page's fault
     * squashes the window — the §4.1.2/§4.4 walk-duration tuning in
     * its second role.
     */
    PageWalkPlan releasePlan = PageWalkPlan::shortest();

    /**
     * Differential replay (DESIGN.md §15): when set, the engine flags
     * the first re-arm of each episode as a snapshot point.  A harness
     * that runs the machine until Microscope::episodeSnapshotPending()
     * and then calls takeEpisodeSnapshot() can afterwards re-enter the
     * episode any number of times via restoreEpisode(seed) — a COW
     * fork at the replay handle — instead of re-simulating the prefix
     * up to the faulting load.  Off by default: the flag changes no
     * machine-visible behaviour, only whether the engine offers the
     * snapshot point.
     */
    bool differentialReplay = false;

    /**
     * Measurement hook, called on every handle fault (the Replayer-
     * as-Monitor configuration).  Return false to end the episode
     * before the confidence threshold.
     */
    std::function<bool(const ReplayEvent &)> onReplay;

    /** Called after re-arming, before the victim resumes (priming). */
    std::function<void(const ReplayEvent &)> beforeResume;

    /** Called when an episode ends (handle released). */
    std::function<void(const ReplayEvent &)> onEpisodeEnd;

    /** Called on each pivot fault. */
    std::function<void(const ReplayEvent &)> onPivot;
};

} // namespace uscope::ms

#endif // USCOPE_CORE_RECIPE_HH
