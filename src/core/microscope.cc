#include "core/microscope.hh"

#include "common/logging.hh"
#include "core/replay_batch.hh"
#include "obs/metrics.hh"

namespace uscope::ms
{

PageWalkPlan
PageWalkPlan::longest()
{
    return PageWalkPlan{};
}

PageWalkPlan
PageWalkPlan::shortest()
{
    PageWalkPlan plan;
    plan.levels.fill(mem::HitLevel::L1);
    plan.fetchLevels = 1;
    return plan;
}

PageWalkPlan
PageWalkPlan::uniform(mem::HitLevel level, unsigned fetch_levels)
{
    PageWalkPlan plan;
    plan.levels.fill(level);
    plan.fetchLevels = fetch_levels;
    return plan;
}

Microscope::Microscope(os::Machine &machine)
    : machine_(machine), kernel_(machine.kernel())
{
    kernel_.registerModule(this);
}

Microscope::~Microscope()
{
    kernel_.registerModule(nullptr);
}

void
Microscope::provideReplayHandle(os::Pid pid, VAddr addr)
{
    recipe_.victim = pid;
    recipe_.replayHandle = addr;
}

void
Microscope::providePivot(VAddr addr)
{
    if (recipe_.victim == 0)
        fatal("providePivot: provide a replay handle (and pid) first");
    if (pageBase(addr) == pageBase(recipe_.replayHandle))
        fatal("providePivot: pivot must map to a different page than "
              "the replay handle (§4.2.2)");
    recipe_.pivot = addr;
}

void
Microscope::provideMonitorAddr(VAddr addr)
{
    recipe_.monitorAddrs.push_back(addr);
}

void
Microscope::initiatePageWalk(VAddr addr, unsigned length,
                             mem::HitLevel where)
{
    if (recipe_.victim == 0)
        fatal("initiatePageWalk: no victim process selected");
    if (length < 1 || length > vm::numLevels)
        fatal("initiatePageWalk: length must be 1..4, got %u", length);
    kernel_.invlpg(recipe_.victim, addr);
    kernel_.prefillPwc(recipe_.victim, addr, length);
    for (unsigned lvl = vm::numLevels - length; lvl < vm::numLevels;
         ++lvl) {
        kernel_.installPtEntryAt(recipe_.victim, addr,
                                 static_cast<vm::Level>(lvl), where);
    }
}

void
Microscope::initiatePageFault(VAddr addr)
{
    if (recipe_.victim == 0)
        fatal("initiatePageFault: no victim process selected");
    kernel_.setPresent(recipe_.victim, addr, false);
    kernel_.flushTranslationEntries(recipe_.victim, addr);
    kernel_.invlpg(recipe_.victim, addr);
}

void
Microscope::setRecipe(AttackRecipe recipe)
{
    recipe_ = std::move(recipe);
    if (recipe_.pivot &&
        pageBase(*recipe_.pivot) == pageBase(recipe_.replayHandle)) {
        fatal("setRecipe: pivot and replay handle share a page");
    }
    snapPending_ = false;
    episodeSnap_ = os::Snapshot{};
}

std::uint16_t
Microscope::traceReplayCount() const
{
    // The trace event's b field is 16 bits; clamp instead of wrapping
    // (a denoise campaign's replay 65 537 must not masquerade as
    // replay 1).  Saturations are counted where the counter advances,
    // not here, so stats stay identical with tracing on or off.
    return replays_ > 0xffff ? std::uint16_t{0xffff}
                             : static_cast<std::uint16_t>(replays_);
}

void
Microscope::stageWalk(VAddr va, const PageWalkPlan &plan)
{
    kernel_.prefillPwc(recipe_.victim, va, plan.fetchLevels);
    for (unsigned lvl = vm::numLevels - plan.fetchLevels;
         lvl < vm::numLevels; ++lvl) {
        kernel_.installPtEntryAt(recipe_.victim, va,
                                 static_cast<vm::Level>(lvl),
                                 plan.levels[lvl]);
    }
}

void
Microscope::stageHandleWalk()
{
    stageWalk(recipe_.replayHandle, recipe_.walkPlan);
}

void
Microscope::armHandle()
{
    // §4.1.1 setup: flush the handle's data line, clear the present
    // bit, flush the four translation entries and the TLB entry, then
    // stage the walk at the recipe's chosen levels.
    kernel_.flushDataLine(recipe_.victim, recipe_.replayHandle);
    kernel_.setPresent(recipe_.victim, recipe_.replayHandle, false);
    kernel_.flushTranslationEntries(recipe_.victim,
                                    recipe_.replayHandle);
    kernel_.invlpg(recipe_.victim, recipe_.replayHandle);
    stageHandleWalk();
}

void
Microscope::releaseHandle()
{
    kernel_.setPresent(recipe_.victim, recipe_.replayHandle, true);
    kernel_.invlpg(recipe_.victim, recipe_.replayHandle);
    // Fast re-walk so the released access retires promptly and its
    // dependents execute inside the next armed page's window.
    stageWalk(recipe_.replayHandle, recipe_.releasePlan);
}

void
Microscope::armPivot()
{
    kernel_.setPresent(recipe_.victim, *recipe_.pivot, false);
    kernel_.flushTranslationEntries(recipe_.victim, *recipe_.pivot);
    kernel_.invlpg(recipe_.victim, *recipe_.pivot);
}

void
Microscope::releasePivot()
{
    kernel_.setPresent(recipe_.victim, *recipe_.pivot, true);
    kernel_.invlpg(recipe_.victim, *recipe_.pivot);
    stageWalk(*recipe_.pivot, recipe_.releasePlan);
}

void
Microscope::arm()
{
    if (recipe_.victim == 0 || recipe_.replayHandle == 0)
        fatal("arm: recipe needs a victim and a replay handle");
    armHandle();
    armed_ = true;
    replays_ = 0;
    // A fresh attack invalidates any episode snapshot still held from
    // the previous one.
    snapPending_ = false;
    episodeSnap_ = os::Snapshot{};
}

void
Microscope::disarm()
{
    if (!armed_)
        return;
    releaseHandle();
    if (recipe_.pivot)
        releasePivot();
    armed_ = false;
    replays_ = 0;
}

bool
Microscope::onPageFault(const os::PageFaultEvent &event)
{
    if (!armed_ || event.pid != recipe_.victim) {
        ++stats_.foreignFaults;
        return false;
    }

    const Vpn fault_vpn = pageNumber(event.va);

    if (fault_vpn == pageNumber(recipe_.replayHandle)) {
        ++stats_.handleFaults;
        ++stats_.totalReplays;
        ++replays_;
        if (replays_ > 0xffff)
            ++stats_.replayCounterSaturations;
        if (obs::tracing(&machine_.observer()))
            machine_.observer().trace.record(
                obs::EventKind::ReplayBoundary, /*handle=*/1,
                traceReplayCount(), stats_.episodes);
        const ReplayEvent replay{*this, event, replays_,
                                 stats_.episodes};

        bool more = replays_ < recipe_.confidence;
        if (recipe_.onReplay && !recipe_.onReplay(replay))
            more = false;

        if (more) {
            // Step 5: keep the present bit clear, re-flush the
            // translation path, and stage the next walk.
            kernel_.flushTranslationEntries(recipe_.victim,
                                            recipe_.replayHandle);
            kernel_.invlpg(recipe_.victim, recipe_.replayHandle);
            stageHandleWalk();
            if (recipe_.beforeResume)
                recipe_.beforeResume(replay);
            // Differential replay: the machine now sits exactly at
            // the replay handle (victim stalled in the handler, handle
            // re-armed) — a snapshot taken here re-enters the window
            // without the prefix.  The snapshot itself must wait for a
            // tick boundary (we are mid-retire); flag it for the
            // harness.
            if (recipe_.differentialReplay)
                snapPending_ = true;
            return true;
        }

        // Step 6: release the victim; optionally arm the pivot so the
        // next iteration's handle can be re-armed from its fault.
        // Arm before releasing: arming flushes the (shared) upper
        // page-table levels and PWC prefixes, which must not undo the
        // released page's fast-walk staging.
        if (obs::tracing(&machine_.observer()))
            machine_.observer().trace.record(
                obs::EventKind::EpisodeEnd, 0, traceReplayCount(),
                stats_.episodes);
        ++stats_.episodes;
        replays_ = 0;
        snapPending_ = false;  // The window this flag pointed at is over.
        if (recipe_.pivot &&
            (recipe_.maxEpisodes == 0 ||
             stats_.episodes < recipe_.maxEpisodes)) {
            armPivot();
        } else {
            armed_ = false;
        }
        releaseHandle();
        if (recipe_.onEpisodeEnd)
            recipe_.onEpisodeEnd(replay);
        return true;
    }

    if (recipe_.pivot && fault_vpn == pageNumber(*recipe_.pivot)) {
        ++stats_.pivotFaults;
        if (obs::tracing(&machine_.observer()))
            machine_.observer().trace.record(
                obs::EventKind::ReplayBoundary, /*pivot=*/2, 0,
                stats_.episodes);
        const ReplayEvent replay{*this, event, 0, stats_.episodes};
        if (recipe_.onPivot)
            recipe_.onPivot(replay);
        // §4.2.2: set the pivot present and clear the handle again
        // (arm first — see the ordering note above).
        armHandle();
        releasePivot();
        if (recipe_.beforeResume)
            recipe_.beforeResume(replay);
        return true;
    }

    ++stats_.foreignFaults;
    return false;
}

os::ProbeResult
Microscope::probeMonitorAddr(std::size_t idx)
{
    if (idx >= recipe_.monitorAddrs.size())
        panic("probeMonitorAddr: index %zu out of range", idx);
    return kernel_.timedProbe(recipe_.victim, recipe_.monitorAddrs[idx]);
}

std::vector<os::ProbeResult>
Microscope::probeAllMonitorAddrs()
{
    std::vector<os::ProbeResult> results;
    results.reserve(recipe_.monitorAddrs.size());
    for (VAddr addr : recipe_.monitorAddrs)
        results.push_back(kernel_.timedProbe(recipe_.victim, addr));
    return results;
}

void
Microscope::primeMonitorAddrs()
{
    for (VAddr addr : recipe_.monitorAddrs) {
        if (auto pa = kernel_.translate(recipe_.victim, addr)) {
            kernel_.flushPhysLine(*pa);
        }
    }
}

void
Microscope::takeEpisodeSnapshot()
{
    if (!snapPending_)
        fatal("takeEpisodeSnapshot: no snapshot point pending (set "
              "Recipe::differentialReplay and run to the first re-arm)");
    episodeSnap_ = machine_.snapshot();
    episodeSt_.armed = armed_;
    episodeSt_.replays = replays_;
    episodeSt_.stats = stats_;
    snapPending_ = false;
}

const os::Snapshot &
Microscope::episodeSnapshot() const
{
    if (!episodeSnap_.valid())
        fatal("episodeSnapshot: no episode snapshot captured");
    return episodeSnap_;
}

void
Microscope::dropEpisodeSnapshot()
{
    episodeSnap_ = os::Snapshot{};
    snapPending_ = false;
}

void
Microscope::adoptEpisodeState(const EpisodeState &state)
{
    // Machine restores wipe the kernel's fault-module registration
    // (modules are per-machine externals, not snapshot state, so
    // Kernel::copyStateFrom cannot know about this instance).  Re-
    // register here so the resumed episode's faults keep routing
    // through this engine instead of the kernel's default path.
    kernel_.registerModule(this);
    armed_ = state.armed;
    replays_ = state.replays;
    stats_ = state.stats;
    snapPending_ = false;
}

void
Microscope::restoreEpisode(std::uint64_t seed)
{
    restoreEpisodeFrom(episodeSnapshot(), episodeSt_, seed);
}

void
Microscope::restoreEpisodeFrom(const os::Snapshot &snap,
                               const EpisodeState &state,
                               std::uint64_t seed)
{
    // Order matters: restoreFrom rewinds every stream to snapshot-era
    // positions, then reseed() re-derives them (and re-anchors the
    // fault schedules) at the restored cycle — the same restore +
    // reseed pair the campaign executor uses per trial, one level
    // deeper.  The adopted EpisodeState makes this instance continue
    // the §4.1.4 loop exactly where the snapshotted one stood.
    machine_.restoreFrom(snap);
    machine_.reseed(seed);
    adoptEpisodeState(state);
}

bool
Microscope::restoreEpisodeJournaled(const os::Snapshot &snap,
                                    const EpisodeState &state,
                                    std::uint64_t seed)
{
    // Same restore + reseed + adopt sequence as restoreEpisodeFrom,
    // with the hierarchy rewound through the armed undo journal when
    // viable.  Either path leaves the machine bit-identical, so the
    // return value is telemetry, not a semantic difference.
    const bool journaled = machine_.journaledRestoreFrom(snap);
    machine_.reseed(seed);
    adoptEpisodeState(state);
    return journaled;
}

bool
Microscope::restoreEpisodeForked(const os::Snapshot &snap,
                                 const EpisodeState &state,
                                 std::uint64_t seed, Cycles origin)
{
    const bool journaled = machine_.journaledRestoreFrom(snap);
    machine_.reseedForkedAt(seed, origin);
    adoptEpisodeState(state);
    return journaled;
}

void
Microscope::noteBatchStats(const ReplayBatchStats &stats)
{
    batchRan_ = true;
    batchSharedCycles_ = stats.sharedCycles;
    batchDivergenceCycle_ = stats.divergenceCycle;
    batchJournaledRestores_ = stats.journaledRestores;
    batchFullRestores_ = stats.fullRestores;
}

void
Microscope::exportMetrics(obs::MetricRegistry &registry) const
{
    registry.counter("os.faults.replayed").set(stats_.totalReplays);
    registry.counter("os.replay.episodes").set(stats_.episodes);
    registry.counter("os.replay.handle_faults").set(stats_.handleFaults);
    registry.counter("os.replay.pivot_faults").set(stats_.pivotFaults);
    registry.counter("os.replay.foreign_faults")
        .set(stats_.foreignFaults);
    registry.counter("os.replay.counter_saturations")
        .set(stats_.replayCounterSaturations);
    // Batch telemetry appears only after a batch ran, so per-sibling
    // and batched campaigns export identical metric *sets* once the
    // mechanics prefixes (stripped like obs.trace.*) are removed.
    if (batchRan_) {
        registry.counter("os.replay.batch.shared_cycles")
            .set(batchSharedCycles_);
        registry.counter("os.replay.batch.divergence_cycle")
            .set(batchDivergenceCycle_);
        registry.counter("os.replay.batch.journaled_restores")
            .set(batchJournaledRestores_);
        registry.counter("os.replay.batch.full_restores")
            .set(batchFullRestores_);
    }
}

} // namespace uscope::ms
