#include "mem/cache.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace uscope::mem
{

Cache::Cache(std::string name, std::uint64_t size, unsigned assoc)
    : name_(std::move(name)), assoc_(assoc)
{
    if (assoc == 0 || size == 0 || size % (lineSize * assoc) != 0)
        fatal("Cache %s: size %llu not divisible by line*assoc",
              name_.c_str(), static_cast<unsigned long long>(size));
    const std::uint64_t sets = size / (lineSize * assoc);
    if (!isPowerOf2(sets))
        fatal("Cache %s: set count %llu not a power of two",
              name_.c_str(), static_cast<unsigned long long>(sets));
    numSets_ = static_cast<unsigned>(sets);
    ways_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

unsigned
Cache::setIndex(PAddr addr) const
{
    return static_cast<unsigned>(lineNumber(addr) & (numSets_ - 1));
}

std::uint64_t
Cache::tagOf(PAddr addr) const
{
    return lineNumber(addr) / numSets_;
}

Cache::Way *
Cache::findWay(PAddr addr)
{
    const std::uint64_t tag = tagOf(addr);
    Way *set = &ways_[static_cast<std::size_t>(setIndex(addr)) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w)
        if (set[w].valid && set[w].tag == tag)
            return &set[w];
    return nullptr;
}

const Cache::Way *
Cache::findWay(PAddr addr) const
{
    return const_cast<Cache *>(this)->findWay(addr);
}

bool
Cache::contains(PAddr addr) const
{
    return findWay(addr) != nullptr;
}

bool
Cache::access(PAddr addr)
{
    Way *way = findWay(addr);
    if (way) {
        journalWay(*way);
        way->lruStamp = ++clock_;
        ++stats_.hits;
        return true;
    }
    ++stats_.misses;
    return false;
}

std::optional<PAddr>
Cache::insert(PAddr addr)
{
    if (Way *way = findWay(addr)) {
        // Already resident (races between walker and core fills);
        // treat as a touch.
        journalWay(*way);
        way->lruStamp = ++clock_;
        return std::nullopt;
    }

    const unsigned set = setIndex(addr);
    Way *set_base = &ways_[static_cast<std::size_t>(set) * assoc_];
    Way *victim = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &cand = set_base[w];
        if (!cand.valid) {
            victim = &cand;
            break;
        }
        if (!victim || cand.lruStamp < victim->lruStamp)
            victim = &cand;
    }

    std::optional<PAddr> evicted;
    if (victim->valid) {
        ++stats_.evictions;
        evicted = (victim->tag * numSets_ + set) << lineShift;
    }
    journalWay(*victim);
    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->lruStamp = ++clock_;
    return evicted;
}

bool
Cache::invalidate(PAddr addr)
{
    if (Way *way = findWay(addr)) {
        journalWay(*way);
        way->valid = false;
        ++stats_.invalidations;
        return true;
    }
    return false;
}

void
Cache::invalidateAll()
{
    // A bulk wipe touches every way; undoing it entry-by-entry would
    // cost as much as the full copy the journal exists to avoid, so it
    // poisons the journal instead (rewind falls back to copyStateFrom).
    if (journal_.armed)
        journal_.poisoned = true;
    for (Way &way : ways_) {
        if (way.valid) {
            way.valid = false;
            ++stats_.invalidations;
        }
    }
}

std::optional<PAddr>
Cache::residentLine(unsigned set, unsigned way) const
{
    const Way &w = ways_[static_cast<std::size_t>(set) * assoc_ + way];
    if (!w.valid)
        return std::nullopt;
    return (w.tag * numSets_ + set) << lineShift;
}

std::size_t
Cache::occupancy() const
{
    std::size_t n = 0;
    for (const Way &way : ways_)
        if (way.valid)
            ++n;
    return n;
}

namespace
{

/**
 * Entry cap: bounds journal memory on pathological windows.  A window
 * touching more distinct way-mutations than this is in full-copy
 * territory anyway, so overflow poisons rather than grows.
 */
constexpr std::size_t kJournalCap = 1u << 16;

} // anonymous namespace

void
Cache::beginJournal()
{
    journal_.armed = true;
    journal_.poisoned = false;
    journal_.entries.clear();
    journal_.clock0 = clock_;
    journal_.stats0 = stats_;
}

void
Cache::recordUndo(const Way &way)
{
    if (journal_.poisoned)
        return;
    if (journal_.entries.size() >= kJournalCap) {
        journal_.poisoned = true;
        return;
    }
    const auto index =
        static_cast<std::uint32_t>(&way - ways_.data());
    journal_.entries.push_back({index, way});
}

bool
Cache::rewindJournal()
{
    if (!journalViable())
        return false;
    // Reverse order makes duplicate records of one way harmless: the
    // last applied (= first recorded) image is the armed-time state.
    for (auto it = journal_.entries.rbegin();
         it != journal_.entries.rend(); ++it) {
        ways_[it->index] = it->pre;
    }
    clock_ = journal_.clock0;
    stats_ = journal_.stats0;
    journal_.entries.clear();
    return true;
}

std::uint64_t
Cache::stateDigest() const
{
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [&h](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 1099511628211ull;
        }
    };
    for (const Way &way : ways_) {
        mix(way.valid ? 1 : 0);
        mix(way.tag);
        mix(way.lruStamp);
    }
    mix(clock_);
    mix(stats_.hits);
    mix(stats_.misses);
    mix(stats_.evictions);
    mix(stats_.invalidations);
    return h;
}

} // namespace uscope::mem
