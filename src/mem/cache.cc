#include "mem/cache.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace uscope::mem
{

Cache::Cache(std::string name, std::uint64_t size, unsigned assoc)
    : name_(std::move(name)), assoc_(assoc)
{
    if (assoc == 0 || size == 0 || size % (lineSize * assoc) != 0)
        fatal("Cache %s: size %llu not divisible by line*assoc",
              name_.c_str(), static_cast<unsigned long long>(size));
    const std::uint64_t sets = size / (lineSize * assoc);
    if (!isPowerOf2(sets))
        fatal("Cache %s: set count %llu not a power of two",
              name_.c_str(), static_cast<unsigned long long>(sets));
    numSets_ = static_cast<unsigned>(sets);
    ways_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

unsigned
Cache::setIndex(PAddr addr) const
{
    return static_cast<unsigned>(lineNumber(addr) & (numSets_ - 1));
}

std::uint64_t
Cache::tagOf(PAddr addr) const
{
    return lineNumber(addr) / numSets_;
}

Cache::Way *
Cache::findWay(PAddr addr)
{
    const std::uint64_t tag = tagOf(addr);
    Way *set = &ways_[static_cast<std::size_t>(setIndex(addr)) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w)
        if (set[w].valid && set[w].tag == tag)
            return &set[w];
    return nullptr;
}

const Cache::Way *
Cache::findWay(PAddr addr) const
{
    return const_cast<Cache *>(this)->findWay(addr);
}

bool
Cache::contains(PAddr addr) const
{
    return findWay(addr) != nullptr;
}

bool
Cache::access(PAddr addr)
{
    Way *way = findWay(addr);
    if (way) {
        way->lruStamp = ++clock_;
        ++stats_.hits;
        return true;
    }
    ++stats_.misses;
    return false;
}

std::optional<PAddr>
Cache::insert(PAddr addr)
{
    if (Way *way = findWay(addr)) {
        // Already resident (races between walker and core fills);
        // treat as a touch.
        way->lruStamp = ++clock_;
        return std::nullopt;
    }

    const unsigned set = setIndex(addr);
    Way *set_base = &ways_[static_cast<std::size_t>(set) * assoc_];
    Way *victim = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &cand = set_base[w];
        if (!cand.valid) {
            victim = &cand;
            break;
        }
        if (!victim || cand.lruStamp < victim->lruStamp)
            victim = &cand;
    }

    std::optional<PAddr> evicted;
    if (victim->valid) {
        ++stats_.evictions;
        evicted = (victim->tag * numSets_ + set) << lineShift;
    }
    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->lruStamp = ++clock_;
    return evicted;
}

bool
Cache::invalidate(PAddr addr)
{
    if (Way *way = findWay(addr)) {
        way->valid = false;
        ++stats_.invalidations;
        return true;
    }
    return false;
}

void
Cache::invalidateAll()
{
    for (Way &way : ways_) {
        if (way.valid) {
            way.valid = false;
            ++stats_.invalidations;
        }
    }
}

std::optional<PAddr>
Cache::residentLine(unsigned set, unsigned way) const
{
    const Way &w = ways_[static_cast<std::size_t>(set) * assoc_ + way];
    if (!w.valid)
        return std::nullopt;
    return (w.tag * numSets_ + set) << lineShift;
}

std::size_t
Cache::occupancy() const
{
    std::size_t n = 0;
    for (const Way &way : ways_)
        if (way.valid)
            ++n;
    return n;
}

} // namespace uscope::mem
