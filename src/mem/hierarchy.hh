/**
 * @file
 * The three-level cache hierarchy plus DRAM.
 *
 * This is the timing side of the memory system: every demand access —
 * core loads/stores, hardware page-walker fetches of page-table
 * entries, and attacker probe loads — resolves its hit level here and
 * pays the corresponding latency.  State updates happen at access time,
 * so accesses issued by *squashed* (speculative) instructions still
 * leave residue; that residue is the side channel MicroScope denoises.
 *
 * The L3 is inclusive: evicting a line from the L3 back-invalidates it
 * from the L2 and L1, which is what lets the Replayer push page-table
 * entries and victim table lines all the way to DRAM (paper §4.1.1,
 * "flushes from the cache subsystem the four page table entries").
 */

#ifndef USCOPE_MEM_HIERARCHY_HH
#define USCOPE_MEM_HIERARCHY_HH

#include <cstdint>

#include "common/random.hh"
#include "common/types.hh"
#include "mem/cache.hh"
#include "obs/observer.hh"

namespace uscope::obs
{
class MetricRegistry;
} // namespace uscope::obs

namespace uscope::mem
{

/** Where an access was satisfied. */
enum class HitLevel
{
    L1,
    L2,
    L3,
    Dram,
};

/** Printable name of a hit level. */
const char *hitLevelName(HitLevel level);

/** Outcome of one timed access. */
struct AccessResult
{
    HitLevel level;
    Cycles latency;
};

/**
 * Cache and DRAM geometry/latency configuration.
 *
 * The latencies are calibrated so that a timed probe (load plus the
 * attack code's ~45-cycle RDTSC measurement overhead) lands in the
 * bands the paper reports in Figure 11: L1 hits below 60 cycles, L2/L3
 * hits between 100 and 200 cycles, DRAM accesses above 300 cycles —
 * and so that a fully-uncached page walk (4 entries from DRAM) takes
 * "over one thousand cycles" (§4.1.2).
 */
struct MemConfig
{
    std::uint64_t l1Size = 32 * 1024;
    unsigned l1Assoc = 8;
    std::uint64_t l2Size = 256 * 1024;
    unsigned l2Assoc = 8;
    std::uint64_t l3Size = 8 * 1024 * 1024;
    unsigned l3Assoc = 16;

    Cycles l1Latency = 6;
    Cycles l2Latency = 70;
    Cycles l3Latency = 150;
    Cycles dramLatency = 290;
    /** DRAM latency jitter: uniform in [-jitter, +jitter]. */
    Cycles dramJitter = 15;

    /** Structural equality (snapshot/pool compatibility checks). */
    bool operator==(const MemConfig &) const = default;
};

/** L1D + L2 + inclusive L3 + DRAM, shared by both SMT contexts. */
class Hierarchy
{
  public:
    explicit Hierarchy(const MemConfig &config = MemConfig{},
                       std::uint64_t seed = 1);

    const MemConfig &config() const { return config_; }

    /**
     * Demand access to the line holding @p addr: resolve the hit
     * level, fill all missed levels, and return the latency paid.
     */
    AccessResult access(PAddr addr);

    /** Where would @p addr hit right now?  No state change. */
    HitLevel peekLevel(PAddr addr) const;

    /** Latency an access satisfied at @p level pays (no jitter). */
    Cycles latencyFor(HitLevel level) const;

    /** clflush: drop the line from every level. */
    void flushLine(PAddr addr);

    /** Flush every line of [addr, addr+len). */
    void flushRange(PAddr addr, std::uint64_t len);

    /**
     * Arrange for the next access to @p addr to be satisfied exactly
     * at @p level.  This is the Replayer's page-walk tuning primitive
     * (install page-table entries at chosen levels) and its priming
     * primitive (HitLevel::Dram evicts the line entirely).
     */
    void installAt(PAddr addr, HitLevel level);

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    Cache &l3() { return l3_; }
    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }
    const Cache &l3() const { return l3_; }

    void resetStats();

    /**
     * Adopt @p other's cache contents, stats, and DRAM-jitter RNG
     * stream (snapshot forking, DESIGN.md §12).  Configs must match;
     * the observer wiring is left untouched.
     */
    void copyStateFrom(const Hierarchy &other);

    /** Seed-fresh state: empty caches, zero stats, reseeded jitter. */
    void reset(std::uint64_t seed);

    /** Re-derive the DRAM-jitter stream from @p seed (fork reseed). */
    void reseed(std::uint64_t seed) { rng_.seed(seed); }

    /** Wire the owning Machine's observability hub (may be null). */
    void setObserver(obs::Observer *observer) { obs_ = observer; }

    // ------------------------------------------------------------------
    // Undo journal (batched lockstep replay, DESIGN.md §17).
    // ------------------------------------------------------------------

    /** Arm all three caches' undo journals at the current state. */
    void beginJournal();

    /** Disarm without rewinding (keeps the mutated state). */
    void endJournal();

    /**
     * Restore the state captured by the last beginJournal() by
     * rewinding every cache's undo journal (O(ways touched)), and
     * adopt @p snap's DRAM-jitter RNG so the net effect is exactly
     * copyStateFrom(@p snap) — @p snap must be the state the journal
     * was armed at.  Leaves the journals armed-and-empty.
     *
     * @return false when any cache's journal is not viable (poisoned
     *         by invalidateAll or entry-cap overflow); no state is
     *         touched and the caller must fall back to copyStateFrom
     *         (+ beginJournal to re-arm).
     */
    bool rewindJournalTo(const Hierarchy &snap);

    /** All three journals armed and unpoisoned. */
    bool journalViable() const
    {
        return l1_.journalViable() && l2_.journalViable() &&
               l3_.journalViable();
    }

    /** Combined FNV digest of all cache state (tests). */
    std::uint64_t stateDigest() const;

    /** DRAM-jitter RNG draws consumed since the last (re)seed.  Zero
     *  across an interval certifies no seed-dependent latency was
     *  sampled in it (lockstep-replay divergence sentinel). */
    std::uint64_t rngDraws() const { return rng_.draws(); }

    /**
     * Earliest cycle at which ticking can change this component's
     * state (fast-forward contract, DESIGN.md §10).  The hierarchy is
     * synchronous — access() charges hit/miss latency at the call and
     * fills immediately — so it never holds time: always
     * kNoEventCycle.  The hook is the plug-in point for future
     * outstanding-fill (MSHR) models.
     */
    Cycles nextEventCycle() const { return kNoEventCycle; }

    /** Register mem.l1d/l2/l3.* counters from the cache stats. */
    void exportMetrics(obs::MetricRegistry &registry) const;

  private:
    void fillLine(PAddr addr, bool into_l1, bool into_l2);

    MemConfig config_;
    Cache l1_;
    Cache l2_;
    Cache l3_;
    Rng rng_;
    obs::Observer *obs_ = nullptr;
};

} // namespace uscope::mem

#endif // USCOPE_MEM_HIERARCHY_HH
