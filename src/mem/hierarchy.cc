#include "mem/hierarchy.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace uscope::mem
{

const char *
hitLevelName(HitLevel level)
{
    switch (level) {
      case HitLevel::L1: return "L1";
      case HitLevel::L2: return "L2";
      case HitLevel::L3: return "L3";
      case HitLevel::Dram: return "DRAM";
    }
    return "?";
}

Hierarchy::Hierarchy(const MemConfig &config, std::uint64_t seed)
    : config_(config),
      l1_("L1D", config.l1Size, config.l1Assoc),
      l2_("L2", config.l2Size, config.l2Assoc),
      l3_("L3", config.l3Size, config.l3Assoc),
      rng_(seed)
{
}

Cycles
Hierarchy::latencyFor(HitLevel level) const
{
    switch (level) {
      case HitLevel::L1: return config_.l1Latency;
      case HitLevel::L2: return config_.l2Latency;
      case HitLevel::L3: return config_.l3Latency;
      case HitLevel::Dram: return config_.dramLatency;
    }
    return config_.dramLatency;
}

void
Hierarchy::fillLine(PAddr addr, bool into_l1, bool into_l2)
{
    // Fill the inclusive L3 first; an L3 eviction back-invalidates the
    // inner levels so inclusion is preserved.
    if (auto evicted = l3_.insert(addr)) {
        l2_.invalidate(*evicted);
        l1_.invalidate(*evicted);
    }
    if (into_l2)
        l2_.insert(addr);
    if (into_l1)
        l1_.insert(addr);
}

AccessResult
Hierarchy::access(PAddr addr)
{
    AccessResult result;
    if (l1_.access(addr)) {
        result = {HitLevel::L1, config_.l1Latency};
    } else if (l2_.access(addr)) {
        l1_.insert(addr);
        result = {HitLevel::L2, config_.l2Latency};
    } else if (l3_.access(addr)) {
        fillLine(addr, true, true);
        result = {HitLevel::L3, config_.l3Latency};
    } else {
        fillLine(addr, true, true);
        const Cycles jitter = config_.dramJitter
            ? rng_.range(0, 2 * config_.dramJitter)
            : config_.dramJitter;
        result = {HitLevel::Dram,
                  config_.dramLatency - config_.dramJitter + jitter};
    }
    if (obs::tracing(obs_))
        obs_->trace.record(obs::EventKind::CacheAccess,
                           static_cast<std::uint8_t>(result.level),
                           static_cast<std::uint16_t>(result.latency),
                           lineBase(addr));
    return result;
}

HitLevel
Hierarchy::peekLevel(PAddr addr) const
{
    if (l1_.contains(addr))
        return HitLevel::L1;
    if (l2_.contains(addr))
        return HitLevel::L2;
    if (l3_.contains(addr))
        return HitLevel::L3;
    return HitLevel::Dram;
}

void
Hierarchy::flushLine(PAddr addr)
{
    l1_.invalidate(addr);
    l2_.invalidate(addr);
    l3_.invalidate(addr);
}

void
Hierarchy::flushRange(PAddr addr, std::uint64_t len)
{
    const PAddr first = lineBase(addr);
    const PAddr last = lineBase(addr + (len ? len - 1 : 0));
    for (PAddr line = first; line <= last; line += lineSize)
        flushLine(line);
}

void
Hierarchy::installAt(PAddr addr, HitLevel level)
{
    switch (level) {
      case HitLevel::L1:
        fillLine(addr, true, true);
        break;
      case HitLevel::L2:
        l1_.invalidate(addr);
        fillLine(addr, false, true);
        break;
      case HitLevel::L3:
        l1_.invalidate(addr);
        l2_.invalidate(addr);
        fillLine(addr, false, false);
        break;
      case HitLevel::Dram:
        flushLine(addr);
        break;
    }
}

void
Hierarchy::resetStats()
{
    l1_.resetStats();
    l2_.resetStats();
    l3_.resetStats();
}

void
Hierarchy::copyStateFrom(const Hierarchy &other)
{
    l1_.copyStateFrom(other.l1_);
    l2_.copyStateFrom(other.l2_);
    l3_.copyStateFrom(other.l3_);
    rng_ = other.rng_;
}

void
Hierarchy::reset(std::uint64_t seed)
{
    l1_.reset();
    l2_.reset();
    l3_.reset();
    rng_.seed(seed);
}

void
Hierarchy::beginJournal()
{
    l1_.beginJournal();
    l2_.beginJournal();
    l3_.beginJournal();
}

void
Hierarchy::endJournal()
{
    l1_.endJournal();
    l2_.endJournal();
    l3_.endJournal();
}

bool
Hierarchy::rewindJournalTo(const Hierarchy &snap)
{
    // All-or-nothing: check viability first so a poisoned level never
    // leaves the hierarchy half-rewound.
    if (!journalViable())
        return false;
    l1_.rewindJournal();
    l2_.rewindJournal();
    l3_.rewindJournal();
    rng_ = snap.rng_;
    return true;
}

std::uint64_t
Hierarchy::stateDigest() const
{
    std::uint64_t h = 14695981039346656037ull;
    for (std::uint64_t d : {l1_.stateDigest(), l2_.stateDigest(),
                            l3_.stateDigest()}) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (d >> (8 * i)) & 0xFF;
            h *= 1099511628211ull;
        }
    }
    return h;
}

namespace
{

void
exportCache(obs::MetricRegistry &registry, const std::string &prefix,
            const CacheStats &stats)
{
    registry.counter(prefix + ".hits").set(stats.hits);
    registry.counter(prefix + ".misses").set(stats.misses);
    registry.counter(prefix + ".evictions").set(stats.evictions);
    registry.counter(prefix + ".invalidations")
        .set(stats.invalidations);
}

} // anonymous namespace

void
Hierarchy::exportMetrics(obs::MetricRegistry &registry) const
{
    exportCache(registry, "mem.l1d", l1_.stats());
    exportCache(registry, "mem.l2", l2_.stats());
    exportCache(registry, "mem.l3", l3_.stats());
}

} // namespace uscope::mem
