/**
 * @file
 * A single set-associative cache level with true-LRU replacement.
 *
 * The cache tracks presence only — data always lives in PhysMem — which
 * is all the timing model and the side channels need.  The hierarchy
 * (mem/hierarchy.hh) composes three of these plus DRAM.
 */

#ifndef USCOPE_MEM_CACHE_HH
#define USCOPE_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace uscope::mem
{

/** Aggregate hit/miss/eviction counters for one cache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
};

/**
 * Set-associative cache of 64-byte lines, physically indexed and
 * tagged, with true LRU within each set.
 */
class Cache
{
  public:
    /**
     * @param name  Name used in stats dumps ("L1D", "L2", "L3").
     * @param size  Capacity in bytes.
     * @param assoc Associativity (ways per set).
     */
    Cache(std::string name, std::uint64_t size, unsigned assoc);

    const std::string &name() const { return name_; }
    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }

    /** True if the line holding @p addr is present (no LRU update). */
    bool contains(PAddr addr) const;

    /**
     * Access the line holding @p addr.  On a hit, refresh LRU and
     * return true.  On a miss, return false and leave the set
     * unchanged (call insert() to fill).
     */
    bool access(PAddr addr);

    /**
     * Fill the line holding @p addr, evicting the LRU way if the set
     * is full.
     *
     * @return Base address of the evicted line, if any.
     */
    std::optional<PAddr> insert(PAddr addr);

    /** Remove the line holding @p addr.  @return true if it was there. */
    bool invalidate(PAddr addr);

    /** Drop every line (e.g., on a simulated WBINVD). */
    void invalidateAll();

    /** Number of valid lines currently resident (tests/stats). */
    std::size_t occupancy() const;

    /** Set index this cache maps @p addr to (for eviction-set tests). */
    unsigned setIndex(PAddr addr) const;

    /**
     * Base address of the line resident at (@p set, @p way), or
     * nullopt when that way is invalid.  Lets the fault injector pick
     * a uniformly random victim line for interrupt-residue evictions
     * without walking tags itself.
     */
    std::optional<PAddr> residentLine(unsigned set, unsigned way) const;

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }

    /**
     * Adopt @p other's ways, LRU clock, and stats (snapshot forking,
     * DESIGN.md §12).  Both caches must share the same geometry.
     * Disarms any journal — a wholesale overwrite invalidates it.
     */
    void copyStateFrom(const Cache &other)
    {
        ways_ = other.ways_;
        clock_ = other.clock_;
        stats_ = other.stats_;
        disarmJournal();
    }

    /** Return to the just-constructed state (empty, zero stats). */
    void reset()
    {
        ways_.assign(ways_.size(), Way{});
        clock_ = 0;
        stats_ = CacheStats{};
        disarmJournal();
    }

    // ------------------------------------------------------------------
    // Undo journal (batched lockstep replay, DESIGN.md §17).
    // ------------------------------------------------------------------

    /**
     * Arm the undo journal at the current state: every subsequent way
     * mutation records the overwritten way image so rewindJournal()
     * can restore this exact state in O(ways touched), instead of the
     * O(all ways) copyStateFrom a full restore pays.  Re-arming
     * discards any previous journal.
     */
    void beginJournal();

    /** Disarm without rewinding (keeps the mutated state). */
    void endJournal() { disarmJournal(); }

    /**
     * Undo every journaled mutation in reverse order, restoring the
     * exact state beginJournal() captured (ways, LRU clock, stats),
     * and leave the journal armed-and-empty for the next window.
     *
     * @return false when the journal is not viable (never armed,
     *         poisoned by invalidateAll, or overflowed the entry cap);
     *         the state is then left untouched and the caller must
     *         fall back to copyStateFrom + beginJournal.
     */
    bool rewindJournal();

    /** Armed and not poisoned — rewindJournal() would succeed. */
    bool journalViable() const
    {
        return journal_.armed && !journal_.poisoned;
    }

    /** Undo entries currently recorded (diagnostics/tests). */
    std::size_t journalSize() const { return journal_.entries.size(); }

    /**
     * FNV-1a digest of the complete mutable state (ways, LRU clock,
     * stats) — the rewind-equals-restore test oracle.
     */
    std::uint64_t stateDigest() const;

  private:
    struct Way
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lruStamp = 0;
    };

    /** One undo record: the pre-mutation image of ways_[index]. */
    struct JournalEntry
    {
        std::uint32_t index;
        Way pre;
    };

    struct Journal
    {
        bool armed = false;
        bool poisoned = false;
        std::vector<JournalEntry> entries;
        std::uint64_t clock0 = 0;
        CacheStats stats0;
    };

    /** Record @p way's pre-mutation image (no-op unless armed). */
    void journalWay(const Way &way)
    {
        if (journal_.armed)
            recordUndo(way);
    }

    void recordUndo(const Way &way);

    void disarmJournal()
    {
        journal_.armed = false;
        journal_.poisoned = false;
        journal_.entries.clear();
    }

    std::uint64_t tagOf(PAddr addr) const;
    Way *findWay(PAddr addr);
    const Way *findWay(PAddr addr) const;

    std::string name_;
    unsigned numSets_;
    unsigned assoc_;
    std::vector<Way> ways_;      ///< numSets_ * assoc_, row-major by set.
    std::uint64_t clock_ = 0;    ///< monotonic stamp source for LRU.
    CacheStats stats_;
    Journal journal_;
};

} // namespace uscope::mem

#endif // USCOPE_MEM_CACHE_HH
