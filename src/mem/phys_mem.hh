/**
 * @file
 * The machine's physical memory: a sparse, page-granular byte store.
 *
 * Page tables, victim data (AES tables, key schedules), and Monitor
 * buffers all live here as real bytes; the page-table walker, the core's
 * load/store units, and the kernel all read and write the same storage.
 * Timing is modelled separately by the cache hierarchy — PhysMem is the
 * functional backing store.
 *
 * Storage is a slab arena of refcounted page slots plus an
 * open-addressed PPN → slot index (no per-page heap node, no hash-map
 * pointer chase on the hot path).  Two PhysMem instances may share
 * pages copy-on-write via shareStateFrom(): both sides keep reading
 * the shared bytes for free, and whichever side writes a shared page
 * first gets a private copy (DESIGN.md §12).  Sharing is only legal
 * between instances owned by the same thread — refcounts are not
 * atomic by design (snapshots and forks are per-worker).
 */

#ifndef USCOPE_MEM_PHYS_MEM_HH
#define USCOPE_MEM_PHYS_MEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace uscope::mem
{

/**
 * Slab-backed storage for refcounted physical pages.  Page bytes live
 * in large contiguous slabs; a PageRef is a stable 32-bit slot index.
 * Freed slots go on a free list and are reused, so a Machine that is
 * reset() between trials never gives slabs back to the allocator.
 */
class PageArena
{
  public:
    using PageRef = std::uint32_t;
    static constexpr PageRef kNullRef = ~PageRef{0};

    /** Allocate a zero-filled page with refcount 1. */
    PageRef allocZeroed();

    /** Allocate a copy of @p src's bytes with refcount 1. */
    PageRef allocCopyOf(PageRef src);

    void incref(PageRef ref) { ++refs_[ref]; }

    /** Drop one reference; a slot reaching zero joins the free list. */
    void decref(PageRef ref)
    {
        if (--refs_[ref] == 0)
            free_.push_back(ref);
    }

    std::uint32_t refs(PageRef ref) const { return refs_[ref]; }

    std::uint8_t *data(PageRef ref)
    {
        return slabs_[ref >> slabPagesShift].get() +
               (static_cast<std::size_t>(ref & slabPagesMask)
                << pageShift);
    }

    const std::uint8_t *data(PageRef ref) const
    {
        return slabs_[ref >> slabPagesShift].get() +
               (static_cast<std::size_t>(ref & slabPagesMask)
                << pageShift);
    }

    /** Total page slots backed by slabs (reserved, live or free). */
    std::size_t pagesReserved() const
    {
        return slabs_.size() << slabPagesShift;
    }

    /** Page slots currently holding a referenced page. */
    std::size_t pagesLive() const { return refs_.size() - free_.size(); }

  private:
    // 64 pages (256 KiB) per slab: large enough to amortize the
    // allocation, small enough that tiny tests stay tiny.
    static constexpr unsigned slabPagesShift = 6;
    static constexpr std::uint32_t slabPagesMask =
        (1u << slabPagesShift) - 1;

    std::vector<std::unique_ptr<std::uint8_t[]>> slabs_;
    std::vector<std::uint32_t> refs_; // per slot; index == PageRef
    std::vector<PageRef> free_;
};

/** Sparse physical memory; pages materialize zero-filled on first touch. */
class PhysMem
{
  public:
    /** @param size Total physical memory size in bytes (for bounds). */
    explicit PhysMem(std::uint64_t size = std::uint64_t{1} << 32);

    PhysMem(const PhysMem &) = delete;
    PhysMem &operator=(const PhysMem &) = delete;

    std::uint64_t size() const { return size_; }

    /** Read @p len (1/2/4/8) bytes, little-endian, at @p addr. */
    std::uint64_t read(PAddr addr, unsigned len) const;

    /** Write the low @p len bytes of @p val, little-endian, at @p addr. */
    void write(PAddr addr, std::uint64_t val, unsigned len);

    std::uint8_t read8(PAddr addr) const { return read(addr, 1); }
    std::uint32_t read32(PAddr addr) const
    {
        return static_cast<std::uint32_t>(read(addr, 4));
    }
    std::uint64_t read64(PAddr addr) const { return read(addr, 8); }

    void write8(PAddr addr, std::uint8_t val) { write(addr, val, 1); }
    void write32(PAddr addr, std::uint32_t val) { write(addr, val, 4); }
    void write64(PAddr addr, std::uint64_t val) { write(addr, val, 8); }

    /** Bulk copy into physical memory. */
    void writeBytes(PAddr addr, const void *src, std::uint64_t len);

    /** Bulk copy out of physical memory. */
    void readBytes(PAddr addr, void *dst, std::uint64_t len) const;

    /** Zero a whole physical page (stays materialized if present). */
    void zeroPage(Ppn ppn);

    /**
     * Become a copy-on-write alias of @p src: adopt its arena, share
     * every materialized page, and let first-writers (on either side)
     * copy privately.  Own pages are released first.  Both instances
     * must belong to the same thread from here on.
     *
     * Differential-replay fast path (DESIGN.md §15): re-sharing from
     * the *same, unmutated* @p src this instance last shared from
     * re-shares only the pages written since (tracked per write), so
     * a per-replay restore costs O(pages dirtied in the window), not
     * O(pages mapped) — the slab index is reused, not rebuilt.  Any
     * deviation (different source, source mutated, fresh pages
     * materialized, index grown) falls back to the full share.
     */
    void shareStateFrom(const PhysMem &src);

    /** Full-share count since construction (observability/tests). */
    std::uint64_t sharesFull() const { return sharesFull_; }

    /** Dirty-page fast-path share count (observability/tests). */
    std::uint64_t sharesFast() const { return sharesFast_; }

    /** Times dirty tracking overflowed kMaxDirtyTracked and poisoned
     *  the fast path back to a full rebuild (observability/tests). */
    std::uint64_t rebuildPoisons() const { return rebuildPoisons_; }

    /**
     * Drop every materialized page.  Slabs stay reserved in the arena
     * for reuse, so a pooled Machine's reset() performs no page-sized
     * allocation on its next warm-up.
     */
    void reset();

    /** Number of pages materialized so far (for tests/stats). */
    std::size_t pagesAllocated() const { return used_; }

    /** Page slots the backing arena keeps reserved (for tests). */
    std::size_t slabPagesReserved() const
    {
        return arena_->pagesReserved();
    }

  private:
    using PageRef = PageArena::PageRef;

    struct Slot
    {
        Ppn ppn = 0;
        PageRef ref = PageArena::kNullRef; // kNullRef == empty slot
    };

    /** Writable page bytes for @p addr (materializes, un-shares). */
    std::uint8_t *pageFor(PAddr addr);

    /** Readable page bytes for @p addr, or nullptr if untouched. */
    const std::uint8_t *pageForConst(PAddr addr) const;

    std::size_t probe(Ppn ppn) const;
    void grow();
    void releaseAll();
    void checkBounds(PAddr addr, std::uint64_t len) const;

    /** Note @p ppn as diverged from the last share source. */
    void markDirty(Ppn ppn);

    std::uint64_t size_;
    std::shared_ptr<PageArena> arena_;
    std::vector<Slot> slots_; // open-addressed, power-of-two size
    std::size_t mask_;
    std::size_t used_ = 0;

    // --- in-place re-share bookkeeping (DESIGN.md §15) -------------
    /** Process-unique instance id; guards against a stale-pointer
     *  (ABA) match on shareOrigin_. */
    std::uint64_t id_;
    /** Bumped on every own-side mutation; a share source whose epoch
     *  moved invalidates cached dirty tracking in its targets. */
    std::uint64_t mutationEpoch_ = 0;
    /** Last share source (+ its id and epoch at share time). */
    const PhysMem *shareOrigin_ = nullptr;
    std::uint64_t shareOriginId_ = 0;
    std::uint64_t shareOriginEpoch_ = 0;
    /** PPNs whose slot diverged from the source since the share;
     *  duplicates are harmless (re-pointing a slot is idempotent). */
    std::vector<Ppn> dirtyPpns_;
    /** Set when the slot table itself diverged (growth or fresh
     *  materialization) — forces the full-share path. */
    bool tableDiverged_ = false;

    std::uint64_t sharesFull_ = 0;
    std::uint64_t sharesFast_ = 0;
    std::uint64_t rebuildPoisons_ = 0;
};

} // namespace uscope::mem

#endif // USCOPE_MEM_PHYS_MEM_HH
