/**
 * @file
 * The machine's physical memory: a sparse, page-granular byte store.
 *
 * Page tables, victim data (AES tables, key schedules), and Monitor
 * buffers all live here as real bytes; the page-table walker, the core's
 * load/store units, and the kernel all read and write the same storage.
 * Timing is modelled separately by the cache hierarchy — PhysMem is the
 * functional backing store.
 */

#ifndef USCOPE_MEM_PHYS_MEM_HH
#define USCOPE_MEM_PHYS_MEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace uscope::mem
{

/** Sparse physical memory; pages materialize zero-filled on first touch. */
class PhysMem
{
  public:
    /** @param size Total physical memory size in bytes (for bounds). */
    explicit PhysMem(std::uint64_t size = std::uint64_t{1} << 32);

    std::uint64_t size() const { return size_; }

    /** Read @p len (1/2/4/8) bytes, little-endian, at @p addr. */
    std::uint64_t read(PAddr addr, unsigned len) const;

    /** Write the low @p len bytes of @p val, little-endian, at @p addr. */
    void write(PAddr addr, std::uint64_t val, unsigned len);

    std::uint8_t read8(PAddr addr) const { return read(addr, 1); }
    std::uint32_t read32(PAddr addr) const
    {
        return static_cast<std::uint32_t>(read(addr, 4));
    }
    std::uint64_t read64(PAddr addr) const { return read(addr, 8); }

    void write8(PAddr addr, std::uint8_t val) { write(addr, val, 1); }
    void write32(PAddr addr, std::uint32_t val) { write(addr, val, 4); }
    void write64(PAddr addr, std::uint64_t val) { write(addr, val, 8); }

    /** Bulk copy into physical memory. */
    void writeBytes(PAddr addr, const void *src, std::uint64_t len);

    /** Bulk copy out of physical memory. */
    void readBytes(PAddr addr, void *dst, std::uint64_t len) const;

    /** Zero a whole physical page. */
    void zeroPage(Ppn ppn);

    /** Number of pages materialized so far (for tests/stats). */
    std::size_t pagesAllocated() const { return pages_.size(); }

  private:
    using Page = std::array<std::uint8_t, pageSize>;

    Page &pageFor(PAddr addr);
    const Page *pageForConst(PAddr addr) const;
    void checkBounds(PAddr addr, std::uint64_t len) const;

    std::uint64_t size_;
    // unique_ptr keeps the map nodes small and page storage stable.
    mutable std::unordered_map<Ppn, std::unique_ptr<Page>> pages_;
};

} // namespace uscope::mem

#endif // USCOPE_MEM_PHYS_MEM_HH
