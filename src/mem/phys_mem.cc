#include "mem/phys_mem.hh"

#include <cstring>

#include "common/logging.hh"

namespace uscope::mem
{

PhysMem::PhysMem(std::uint64_t size) : size_(size)
{
}

void
PhysMem::checkBounds(PAddr addr, std::uint64_t len) const
{
    if (addr + len > size_ || addr + len < addr)
        panic("PhysMem access [%#llx, +%llu) out of bounds (size %#llx)",
              static_cast<unsigned long long>(addr),
              static_cast<unsigned long long>(len),
              static_cast<unsigned long long>(size_));
}

PhysMem::Page &
PhysMem::pageFor(PAddr addr)
{
    auto &slot = pages_[pageNumber(addr)];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

const PhysMem::Page *
PhysMem::pageForConst(PAddr addr) const
{
    auto it = pages_.find(pageNumber(addr));
    return it == pages_.end() ? nullptr : it->second.get();
}

std::uint64_t
PhysMem::read(PAddr addr, unsigned len) const
{
    checkBounds(addr, len);
    std::uint64_t val = 0;
    for (unsigned i = 0; i < len; ++i) {
        const PAddr byte_addr = addr + i;
        const Page *page = pageForConst(byte_addr);
        const std::uint8_t byte =
            page ? (*page)[byte_addr & pageOffsetMask] : 0;
        val |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return val;
}

void
PhysMem::write(PAddr addr, std::uint64_t val, unsigned len)
{
    checkBounds(addr, len);
    for (unsigned i = 0; i < len; ++i) {
        const PAddr byte_addr = addr + i;
        pageFor(byte_addr)[byte_addr & pageOffsetMask] =
            static_cast<std::uint8_t>(val >> (8 * i));
    }
}

void
PhysMem::writeBytes(PAddr addr, const void *src, std::uint64_t len)
{
    checkBounds(addr, len);
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    std::uint64_t done = 0;
    while (done < len) {
        const PAddr cur = addr + done;
        const std::uint64_t in_page =
            std::min<std::uint64_t>(len - done,
                                    pageSize - (cur & pageOffsetMask));
        std::memcpy(pageFor(cur).data() + (cur & pageOffsetMask),
                    bytes + done, in_page);
        done += in_page;
    }
}

void
PhysMem::readBytes(PAddr addr, void *dst, std::uint64_t len) const
{
    checkBounds(addr, len);
    auto *bytes = static_cast<std::uint8_t *>(dst);
    std::uint64_t done = 0;
    while (done < len) {
        const PAddr cur = addr + done;
        const std::uint64_t in_page =
            std::min<std::uint64_t>(len - done,
                                    pageSize - (cur & pageOffsetMask));
        const Page *page = pageForConst(cur);
        if (page) {
            std::memcpy(bytes + done,
                        page->data() + (cur & pageOffsetMask), in_page);
        } else {
            std::memset(bytes + done, 0, in_page);
        }
        done += in_page;
    }
}

void
PhysMem::zeroPage(Ppn ppn)
{
    checkBounds(ppn << pageShift, pageSize);
    auto it = pages_.find(ppn);
    if (it != pages_.end())
        it->second->fill(0);
}

} // namespace uscope::mem
