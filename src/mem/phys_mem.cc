#include "mem/phys_mem.hh"

#include <atomic>
#include <cstring>

#include "common/logging.hh"
#include "common/random.hh"

namespace uscope::mem
{

namespace
{

/** Dirty lists past this size stop paying for themselves; poison the
 *  fast path instead of tracking further. */
constexpr std::size_t kMaxDirtyTracked = 4096;

std::uint64_t
nextPhysMemId()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

PageArena::PageRef
PageArena::allocZeroed()
{
    if (free_.empty()) {
        if (refs_.size() == static_cast<std::size_t>(kNullRef))
            panic("PageArena exhausted its 32-bit slot space");
        if ((refs_.size() & slabPagesMask) == 0) {
            auto slab = std::make_unique<std::uint8_t[]>(
                std::size_t{1} << (slabPagesShift + pageShift));
            slabs_.push_back(std::move(slab));
        }
        refs_.push_back(1);
        const PageRef ref = static_cast<PageRef>(refs_.size() - 1);
        std::memset(data(ref), 0, pageSize);
        return ref;
    }
    const PageRef ref = free_.back();
    free_.pop_back();
    refs_[ref] = 1;
    std::memset(data(ref), 0, pageSize);
    return ref;
}

PageArena::PageRef
PageArena::allocCopyOf(PageRef src)
{
    // Grab the slot first: allocZeroed may grow slabs_, but PageRefs
    // and slab base pointers are stable, so data(src) stays valid.
    const PageRef ref = allocZeroed();
    std::memcpy(data(ref), data(src), pageSize);
    return ref;
}

namespace
{

/** Initial index capacity; must be a power of two. */
constexpr std::size_t kInitialSlots = 256;

} // namespace

PhysMem::PhysMem(std::uint64_t size)
    : size_(size), arena_(std::make_shared<PageArena>()),
      slots_(kInitialSlots), mask_(kInitialSlots - 1),
      id_(nextPhysMemId())
{
}

void
PhysMem::markDirty(Ppn ppn)
{
    if (!shareOrigin_ || tableDiverged_)
        return;
    if (dirtyPpns_.size() >= kMaxDirtyTracked) {
        tableDiverged_ = true;
        dirtyPpns_.clear();
        ++rebuildPoisons_;
        return;
    }
    dirtyPpns_.push_back(ppn);
}

void
PhysMem::checkBounds(PAddr addr, std::uint64_t len) const
{
    if (addr + len > size_ || addr + len < addr)
        panic("PhysMem access [%#llx, +%llu) out of bounds (size %#llx)",
              static_cast<unsigned long long>(addr),
              static_cast<unsigned long long>(len),
              static_cast<unsigned long long>(size_));
}

std::size_t
PhysMem::probe(Ppn ppn) const
{
    std::size_t i = mix64(ppn) & mask_;
    while (slots_[i].ref != PageArena::kNullRef && slots_[i].ppn != ppn)
        i = (i + 1) & mask_;
    return i;
}

void
PhysMem::grow()
{
    tableDiverged_ = true;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    for (const Slot &slot : old) {
        if (slot.ref == PageArena::kNullRef)
            continue;
        std::size_t i = mix64(slot.ppn) & mask_;
        while (slots_[i].ref != PageArena::kNullRef)
            i = (i + 1) & mask_;
        slots_[i] = slot;
    }
}

std::uint8_t *
PhysMem::pageFor(PAddr addr)
{
    const Ppn ppn = pageNumber(addr);
    // Every writable-page access can change bytes, including writes to
    // already-private pages; targets sharing *from* this instance key
    // their dirty-tracking validity off this epoch.
    ++mutationEpoch_;
    std::size_t i = probe(ppn);
    if (slots_[i].ref == PageArena::kNullRef) {
        // Keep the load factor below ~2/3 so probes stay short.
        if ((used_ + 1) * 3 > slots_.size() * 2) {
            grow();
            i = probe(ppn);
        }
        slots_[i].ppn = ppn;
        slots_[i].ref = arena_->allocZeroed();
        ++used_;
        // A fresh page changes the slot table's shape, not just a
        // ref: the dirty-page re-share can no longer mirror the
        // source's layout.
        markDirty(ppn);
        tableDiverged_ = true;
        return arena_->data(slots_[i].ref);
    }
    PageRef ref = slots_[i].ref;
    if (arena_->refs(ref) > 1) {
        // Copy-on-write: un-share before the first write.
        const PageRef fresh = arena_->allocCopyOf(ref);
        arena_->decref(ref);
        slots_[i].ref = fresh;
        ref = fresh;
        markDirty(ppn);
    }
    return arena_->data(ref);
}

const std::uint8_t *
PhysMem::pageForConst(PAddr addr) const
{
    const std::size_t i = probe(pageNumber(addr));
    return slots_[i].ref == PageArena::kNullRef
               ? nullptr
               : arena_->data(slots_[i].ref);
}

std::uint64_t
PhysMem::read(PAddr addr, unsigned len) const
{
    checkBounds(addr, len);
    std::uint64_t val = 0;
    for (unsigned i = 0; i < len; ++i) {
        const PAddr byte_addr = addr + i;
        const std::uint8_t *page = pageForConst(byte_addr);
        const std::uint8_t byte =
            page ? page[byte_addr & pageOffsetMask] : 0;
        val |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return val;
}

void
PhysMem::write(PAddr addr, std::uint64_t val, unsigned len)
{
    checkBounds(addr, len);
    for (unsigned i = 0; i < len; ++i) {
        const PAddr byte_addr = addr + i;
        pageFor(byte_addr)[byte_addr & pageOffsetMask] =
            static_cast<std::uint8_t>(val >> (8 * i));
    }
}

void
PhysMem::writeBytes(PAddr addr, const void *src, std::uint64_t len)
{
    checkBounds(addr, len);
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    std::uint64_t done = 0;
    while (done < len) {
        const PAddr cur = addr + done;
        const std::uint64_t in_page =
            std::min<std::uint64_t>(len - done,
                                    pageSize - (cur & pageOffsetMask));
        std::memcpy(pageFor(cur) + (cur & pageOffsetMask), bytes + done,
                    in_page);
        done += in_page;
    }
}

void
PhysMem::readBytes(PAddr addr, void *dst, std::uint64_t len) const
{
    checkBounds(addr, len);
    auto *bytes = static_cast<std::uint8_t *>(dst);
    std::uint64_t done = 0;
    while (done < len) {
        const PAddr cur = addr + done;
        const std::uint64_t in_page =
            std::min<std::uint64_t>(len - done,
                                    pageSize - (cur & pageOffsetMask));
        const std::uint8_t *page = pageForConst(cur);
        if (page) {
            std::memcpy(bytes + done, page + (cur & pageOffsetMask),
                        in_page);
        } else {
            std::memset(bytes + done, 0, in_page);
        }
        done += in_page;
    }
}

void
PhysMem::zeroPage(Ppn ppn)
{
    checkBounds(ppn << pageShift, pageSize);
    const std::size_t i = probe(ppn);
    if (slots_[i].ref == PageArena::kNullRef)
        return;
    ++mutationEpoch_;
    markDirty(ppn);
    if (arena_->refs(slots_[i].ref) > 1) {
        // Shared: swap in a fresh zero page instead of copying bytes
        // we are about to clear.
        arena_->decref(slots_[i].ref);
        slots_[i].ref = arena_->allocZeroed();
        return;
    }
    std::memset(arena_->data(slots_[i].ref), 0, pageSize);
}

void
PhysMem::releaseAll()
{
    for (Slot &slot : slots_) {
        if (slot.ref == PageArena::kNullRef)
            continue;
        arena_->decref(slot.ref);
        slot = Slot{};
    }
    used_ = 0;
    ++mutationEpoch_;
    shareOrigin_ = nullptr;
    dirtyPpns_.clear();
    tableDiverged_ = false;
}

void
PhysMem::shareStateFrom(const PhysMem &src)
{
    if (&src == this)
        return;

    // Fast path: re-share from the same source we last shared from,
    // with neither side's slot table diverged and the source's bytes
    // untouched since.  Only the slots written in between (a replay
    // window's worth, typically dozens) need re-pointing; the index
    // itself is bit-for-bit the source's already.
    if (shareOrigin_ == &src && shareOriginId_ == src.id_ &&
        shareOriginEpoch_ == src.mutationEpoch_ &&
        arena_ == src.arena_ && !tableDiverged_) {
        for (const Ppn ppn : dirtyPpns_) {
            const std::size_t i = probe(ppn);
            const PageRef mine = slots_[i].ref;
            const PageRef theirs = src.slots_[i].ref;
            if (mine == theirs)
                continue;
            arena_->incref(theirs);
            arena_->decref(mine);
            slots_[i].ref = theirs;
        }
        dirtyPpns_.clear();
        ++mutationEpoch_;
        ++sharesFast_;
        return;
    }

    releaseAll();
    size_ = src.size_;
    arena_ = src.arena_;
    slots_ = src.slots_;
    mask_ = src.mask_;
    used_ = src.used_;
    for (const Slot &slot : slots_)
        if (slot.ref != PageArena::kNullRef)
            arena_->incref(slot.ref);
    ++sharesFull_;
    shareOrigin_ = &src;
    shareOriginId_ = src.id_;
    shareOriginEpoch_ = src.mutationEpoch_;
    dirtyPpns_.clear();
    tableDiverged_ = false;
}

void
PhysMem::reset()
{
    releaseAll();
}

} // namespace uscope::mem
