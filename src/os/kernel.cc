#include "os/kernel.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace uscope::os
{

Kernel::Kernel(mem::PhysMem &mem, mem::Hierarchy &hierarchy,
               vm::Mmu &mmu, cpu::Core &core, const KernelCosts &costs,
               std::uint64_t seed)
    : mem_(mem), hierarchy_(hierarchy), mmu_(mmu), core_(core),
      costs_(costs), rng_(seed),
      frames_(/*base_ppn=*/1, mem.size() / pageSize - 1)
{
}

void
Kernel::copyStateFrom(const Kernel &other)
{
    rng_ = other.rng_;
    frames_.copyStateFrom(other.frames_);
    processes_.clear();
    processes_.reserve(other.processes_.size());
    for (const Process &src : other.processes_) {
        Process p;
        p.pid = src.pid;
        p.name = src.name;
        // Rebind the table over this kernel's memory/frames; the tree
        // bytes themselves arrived with the copied PhysMem.
        p.pageTable = std::make_unique<vm::PageTable>(mem_, frames_,
                                                      *src.pageTable);
        p.pcid = src.pcid;
        p.pcBias = src.pcBias;
        p.nextVa = src.nextVa;
        p.enclaves = src.enclaves;
        p.faultCount = src.faultCount;
        p.boundCtx = src.boundCtx;
        processes_.push_back(std::move(p));
    }
    module_ = nullptr;
    inHandler_ = other.inHandler_;
    handlerBudget_ = other.handlerBudget_;
    handlerCycles_ = other.handlerCycles_;
    totalFaults_ = other.totalFaults_;
    handlerLatency_ = other.handlerLatency_;
}

void
Kernel::reset(std::uint64_t seed)
{
    rng_.seed(seed);
    frames_.reset();
    processes_.clear();
    module_ = nullptr;
    inHandler_ = false;
    handlerBudget_ = 0;
    handlerCycles_ = 0;
    totalFaults_ = 0;
    handlerLatency_ = Summary{};
}

Kernel::Process &
Kernel::processOf(Pid pid)
{
    for (Process &proc : processes_)
        if (proc.pid == pid)
            return proc;
    panic("Kernel: unknown pid %u", pid);
}

const Kernel::Process &
Kernel::processOf(Pid pid) const
{
    return const_cast<Kernel *>(this)->processOf(pid);
}

Kernel::Process *
Kernel::processOnCtx(unsigned ctx)
{
    for (Process &proc : processes_)
        if (proc.boundCtx && *proc.boundCtx == ctx)
            return &proc;
    return nullptr;
}

Pid
Kernel::createProcess(const std::string &name)
{
    Process proc;
    proc.pid = static_cast<Pid>(processes_.size() + 1);
    proc.name = name;
    proc.pageTable = std::make_unique<vm::PageTable>(mem_, frames_);
    proc.pcid = static_cast<Pcid>(proc.pid);
    // Distinct text bases so victim and monitor branches do not alias
    // in the shared predictor by accident (the attacker knows them).
    proc.pcBias = std::uint64_t{proc.pid} << 20;
    proc.nextVa = 0x10000;
    processes_.push_back(std::move(proc));
    return processes_.back().pid;
}

VAddr
Kernel::allocVirtual(Pid pid, std::uint64_t size)
{
    Process &proc = processOf(pid);
    const VAddr base = proc.nextVa;
    const std::uint64_t npages = (size + pageSize - 1) / pageSize;
    for (std::uint64_t i = 0; i < npages; ++i)
        mapPage(pid, pageNumber(base) + i);
    // Guard page between regions keeps replay handles and pivots on
    // provably distinct pages.
    proc.nextVa = base + (npages + 1) * pageSize;
    return base;
}

void
Kernel::mapPage(Pid pid, Vpn vpn)
{
    Process &proc = processOf(pid);
    const Ppn ppn = frames_.alloc();
    mem_.zeroPage(ppn);
    proc.pageTable->map(vpn, ppn,
                        vm::pte::present | vm::pte::writable |
                        vm::pte::user);
}

void
Kernel::declareEnclave(Pid pid, VAddr base, std::uint64_t len)
{
    processOf(pid).enclaves.emplace_back(base, len);
}

bool
Kernel::inEnclave(Pid pid, VAddr va) const
{
    for (const auto &[base, len] : processOf(pid).enclaves)
        if (va >= base && va < base + len)
            return true;
    return false;
}

bool
Kernel::writeVirtual(Pid pid, VAddr va, const void *src,
                     std::uint64_t len)
{
    if (inEnclave(pid, va) || (len && inEnclave(pid, va + len - 1)))
        return false;  // SGX: supervisor cannot write enclave memory.
    const Process &proc = processOf(pid);
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    std::uint64_t done = 0;
    while (done < len) {
        const VAddr cur = va + done;
        const auto ppn = proc.pageTable->lookupPpn(cur);
        if (!ppn)
            return false;
        const std::uint64_t in_page =
            std::min<std::uint64_t>(len - done,
                                    pageSize - (cur & pageOffsetMask));
        mem_.writeBytes((*ppn << pageShift) | (cur & pageOffsetMask),
                        bytes + done, in_page);
        done += in_page;
    }
    return true;
}

bool
Kernel::readVirtual(Pid pid, VAddr va, void *dst,
                    std::uint64_t len) const
{
    if (inEnclave(pid, va) || (len && inEnclave(pid, va + len - 1)))
        return false;  // SGX: supervisor cannot read enclave memory.
    const Process &proc = processOf(pid);
    auto *bytes = static_cast<std::uint8_t *>(dst);
    std::uint64_t done = 0;
    while (done < len) {
        const VAddr cur = va + done;
        const auto ppn = proc.pageTable->lookupPpn(cur);
        if (!ppn)
            return false;
        const std::uint64_t in_page =
            std::min<std::uint64_t>(len - done,
                                    pageSize - (cur & pageOffsetMask));
        mem_.readBytes((*ppn << pageShift) | (cur & pageOffsetMask),
                       bytes + done, in_page);
        done += in_page;
    }
    return true;
}

std::optional<PAddr>
Kernel::translate(Pid pid, VAddr va) const
{
    const auto ppn = processOf(pid).pageTable->lookupPpn(va);
    if (!ppn)
        return std::nullopt;
    return (*ppn << pageShift) | (va & pageOffsetMask);
}

void
Kernel::startOnContext(Pid pid, unsigned ctx,
                       std::shared_ptr<const cpu::Program> program,
                       std::uint64_t entry)
{
    Process &proc = processOf(pid);
    proc.boundCtx = ctx;
    core_.startContext(ctx, std::move(program), entry, proc.pcid,
                       proc.pageTable->root(), proc.pcBias);
}

vm::PageTable &
Kernel::pageTable(Pid pid)
{
    return *processOf(pid).pageTable;
}

Pcid
Kernel::pcidOf(Pid pid) const
{
    return processOf(pid).pcid;
}

std::uint64_t
Kernel::pcBiasOf(Pid pid) const
{
    return processOf(pid).pcBias;
}

std::uint64_t
Kernel::faultCount(Pid pid) const
{
    return processOf(pid).faultCount;
}

void
Kernel::registerModule(FaultModule *module)
{
    module_ = module;
}

void
Kernel::chargeCycles(Cycles cycles)
{
    if (inHandler_)
        handlerBudget_ += cycles;
}

vm::SoftWalkResult
Kernel::softwareWalk(Pid pid, VAddr va)
{
    chargeCycles(costs_.softwareWalk);
    return processOf(pid).pageTable->softwareWalk(va);
}

void
Kernel::setPresent(Pid pid, VAddr va, bool present)
{
    processOf(pid).pageTable->setPresent(va, present);
    chargeCycles(costs_.softwareWalk);
}

void
Kernel::flushTranslationEntries(Pid pid, VAddr va)
{
    Process &proc = processOf(pid);
    const vm::SoftWalkResult walk = proc.pageTable->softwareWalk(va);
    for (unsigned lvl = 0; lvl < walk.levelsValid; ++lvl) {
        hierarchy_.flushLine(walk.entryAddrs[lvl]);
        core_.notifyLineEvicted(walk.entryAddrs[lvl]);
        chargeCycles(costs_.clflush);
    }
    mmu_.flushPwc(va, proc.pcid);
    chargeCycles(costs_.pwcFlush);
}

void
Kernel::invlpg(Pid pid, VAddr va)
{
    mmu_.invlpg(va, processOf(pid).pcid);
    chargeCycles(costs_.invlpg);
}

void
Kernel::flushDataLine(Pid pid, VAddr va)
{
    if (auto pa = translate(pid, va))
        flushPhysLine(*pa);
}

void
Kernel::flushPhysLine(PAddr pa)
{
    hierarchy_.flushLine(pa);
    core_.notifyLineEvicted(pa);
    chargeCycles(costs_.clflush);
}

void
Kernel::installPhysAt(PAddr pa, mem::HitLevel level)
{
    hierarchy_.installAt(pa, level);
    if (level == mem::HitLevel::Dram)
        core_.notifyLineEvicted(pa);
    chargeCycles(costs_.installLine);
}

void
Kernel::installPtEntryAt(Pid pid, VAddr va, vm::Level pt_level,
                         mem::HitLevel cache_level)
{
    const vm::SoftWalkResult walk =
        processOf(pid).pageTable->softwareWalk(va);
    const unsigned lvl = static_cast<unsigned>(pt_level);
    if (lvl >= walk.levelsValid)
        panic("installPtEntryAt: level %u not mapped for va %#llx",
              lvl, static_cast<unsigned long long>(va));
    installPhysAt(walk.entryAddrs[lvl], cache_level);
}

void
Kernel::prefillPwc(Pid pid, VAddr va, unsigned fetch_levels)
{
    if (fetch_levels < 1 || fetch_levels > vm::numLevels)
        panic("prefillPwc: bad fetch_levels %u", fetch_levels);
    Process &proc = processOf(pid);
    mmu_.flushPwc(va, proc.pcid);
    chargeCycles(costs_.pwcFlush);
    const vm::SoftWalkResult walk = proc.pageTable->softwareWalk(va);
    for (unsigned lvl = 0; lvl + fetch_levels < vm::numLevels; ++lvl) {
        if (lvl >= walk.levelsValid)
            panic("prefillPwc: level %u unmapped for va %#llx", lvl,
                  static_cast<unsigned long long>(va));
        const std::uint64_t entry = mem_.read64(walk.entryAddrs[lvl]);
        const PAddr next_table = vm::entryPpn(entry) << pageShift;
        mmu_.pwc().insert(va, proc.pcid, static_cast<vm::Level>(lvl),
                          next_table);
        chargeCycles(costs_.installLine);
    }
}

void
Kernel::primeRange(PAddr pa, std::uint64_t len)
{
    const PAddr first = lineBase(pa);
    const PAddr last = lineBase(pa + (len ? len - 1 : 0));
    for (PAddr line = first; line <= last; line += lineSize) {
        hierarchy_.flushLine(line);
        core_.notifyLineEvicted(line);
        chargeCycles(costs_.installLine);
    }
}

ProbeResult
Kernel::timedProbePhys(PAddr pa)
{
    const mem::AccessResult access = hierarchy_.access(pa);
    const Cycles overhead = costs_.probeOverhead +
        (costs_.probeJitter ? rng_.range(0, costs_.probeJitter) : 0) +
        (probeNoise_ ? probeNoise_() : 0);
    const Cycles latency = access.latency + overhead;
    chargeCycles(latency);
    if (obs::tracing(obs_))
        obs_->trace.record(obs::EventKind::Probe,
                           static_cast<std::uint8_t>(access.level),
                           static_cast<std::uint16_t>(latency),
                           lineBase(pa));
    return {latency, access.level};
}

ProbeResult
Kernel::timedProbe(Pid pid, VAddr va)
{
    const auto pa = translate(pid, va);
    if (!pa)
        panic("timedProbe: va %#llx unmapped",
              static_cast<unsigned long long>(va));
    return timedProbePhys(*pa);
}

void
Kernel::signalMonitor()
{
    chargeCycles(costs_.signalMonitor);
}

void
Kernel::handleFault(const cpu::FaultInfo &info)
{
    ++totalFaults_;
    Process *proc = processOnCtx(info.ctx);
    if (!proc)
        panic("page fault on context %u with no bound process",
              info.ctx);
    ++proc->faultCount;

    const bool enclave = inEnclave(proc->pid, info.va);
    PageFaultEvent event;
    event.pid = proc->pid;
    event.ctx = info.ctx;
    // AEX: enclave faults expose only the VPN to the OS (§2.3).
    event.va = enclave ? pageBase(info.va) : info.va;
    event.pc = info.pc;
    event.isStore = info.isStore;
    event.inEnclave = enclave;
    event.faultIndex = proc->faultCount;

    inHandler_ = true;
    handlerBudget_ = costs_.faultBase;

    const bool handled = module_ && module_->onPageFault(event);
    if (!handled) {
        // Default demand-paging policy.
        const vm::SoftWalkResult walk = softwareWalk(proc->pid, info.va);
        if (walk.mapped && !(walk.leafEntry & vm::pte::present)) {
            setPresent(proc->pid, info.va, true);
            invlpg(proc->pid, info.va);
        } else if (!walk.mapped) {
            // Fresh demand allocation (heap growth).
            mapPage(proc->pid, pageNumber(info.va));
            invlpg(proc->pid, info.va);
        }
    }

    inHandler_ = false;
    handlerCycles_ += handlerBudget_;
    handlerLatency_.add(static_cast<double>(handlerBudget_));
    core_.stallContext(info.ctx, handlerBudget_);
}

void
Kernel::exportMetrics(obs::MetricRegistry &registry) const
{
    registry.counter("os.faults.total").set(totalFaults_);
    registry.counter("os.faults.handler_cycles").set(handlerCycles_);
    registry.latency("os.faults.handler_latency").fold(handlerLatency_);

    vm::PageTableStats tables;
    for (const Process &proc : processes_) {
        const vm::PageTableStats &stats = proc.pageTable->stats();
        tables.tablePages += stats.tablePages;
        tables.maps += stats.maps;
        tables.unmaps += stats.unmaps;
        tables.softwareWalks += stats.softwareWalks;
        tables.presentToggles += stats.presentToggles;
    }
    registry.counter("vm.page_table.table_pages").set(tables.tablePages);
    registry.counter("vm.page_table.maps").set(tables.maps);
    registry.counter("vm.page_table.unmaps").set(tables.unmaps);
    registry.counter("vm.page_table.software_walks")
        .set(tables.softwareWalks);
    registry.counter("vm.page_table.present_toggles")
        .set(tables.presentToggles);
}

} // namespace uscope::os
