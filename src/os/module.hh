/**
 * @file
 * Kernel-module interface for the page-fault trampoline (Figure 9).
 *
 * The kernel's page-fault handler, before applying its default demand-
 * paging policy, offers every fault to the registered module.  A
 * module that returns true claims the fault: the kernel then skips its
 * own handling (in particular it will NOT set the present bit), which
 * is exactly the hook MicroScope uses to keep the victim replaying.
 */

#ifndef USCOPE_OS_MODULE_HH
#define USCOPE_OS_MODULE_HH

#include <cstdint>

#include "common/types.hh"

namespace uscope::os
{

/** Identifies a simulated process. */
using Pid = std::uint32_t;

/** A page fault as presented to a kernel module. */
struct PageFaultEvent
{
    Pid pid = 0;
    unsigned ctx = 0;
    /**
     * Faulting virtual address.  For faults inside an enclave this is
     * page-aligned — SGX's AEX reports only the VPN to the OS (§2.3).
     */
    VAddr va = 0;
    /** PC of the faulting instruction (instruction index). */
    std::uint64_t pc = 0;
    bool isStore = false;
    /** True when the faulting access hit an enclave-private page. */
    bool inEnclave = false;
    /** Running count of faults this process has taken. */
    std::uint64_t faultIndex = 0;
};

/** A loadable kernel module hooked into the page-fault path. */
class FaultModule
{
  public:
    virtual ~FaultModule() = default;

    /**
     * Offer a fault to the module.
     *
     * @return true when the module handled the fault (kernel default
     *         handling is skipped).
     */
    virtual bool onPageFault(const PageFaultEvent &event) = 0;
};

} // namespace uscope::os

#endif // USCOPE_OS_MODULE_HH
