#include "os/machine.hh"

#include "obs/metrics.hh"

namespace uscope::os
{

Machine::Machine(const MachineConfig &config)
    : config_(config),
      obs_(config.obs),
      mem_(config.physMemBytes),
      hierarchy_(config.mem, config.seed * 3 + 1),
      mmu_(mem_, hierarchy_, config.mmu),
      core_(mem_, hierarchy_, mmu_, config.core, config.seed * 5 + 2),
      kernel_(mem_, hierarchy_, mmu_, core_, config.costs,
              config.seed * 7 + 3),
      entropy_(config.seed * 11 + 4)
{
    core_.setFaultHandler(
        [this](const cpu::FaultInfo &info) { kernel_.handleFault(info); });
    core_.setRdrandSource([this]() { return entropy_.next(); });

    // Wire the observability hub; the core also binds the event clock
    // to its cycle counter.
    hierarchy_.setObserver(&obs_);
    mmu_.setObserver(&obs_);
    core_.setObserver(&obs_);
    kernel_.setObserver(&obs_);
}

void
Machine::run(Cycles n)
{
    for (Cycles i = 0; i < n; ++i)
        core_.tick();
}

bool
Machine::runUntilHalted(unsigned ctx, Cycles max_cycles)
{
    return runUntil([this, ctx]() { return core_.halted(ctx); },
                    max_cycles);
}

bool
Machine::runUntil(const std::function<bool()> &pred, Cycles max_cycles)
{
    return core_.runUntil(pred, max_cycles);
}

void
Machine::exportMetrics(obs::MetricRegistry &registry) const
{
    hierarchy_.exportMetrics(registry);
    mmu_.exportMetrics(registry);
    core_.exportMetrics(registry);
    kernel_.exportMetrics(registry);
}

obs::MetricSnapshot
Machine::metricsSnapshot() const
{
    obs::MetricRegistry registry;
    exportMetrics(registry);
    return registry.snapshot();
}

} // namespace uscope::os
