#include "os/machine.hh"

#include <algorithm>
#include <memory>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace uscope::os
{

bool
sameStructure(const MachineConfig &a, const MachineConfig &b)
{
    return a.physMemBytes == b.physMemBytes && a.mem == b.mem &&
           a.mmu == b.mmu && a.core == b.core && a.costs == b.costs &&
           a.obs == b.obs && a.fault == b.fault &&
           a.fastForward == b.fastForward;
}

namespace
{

const MachineConfig &
configOf(const Snapshot &snap)
{
    if (!snap.valid())
        panic("Machine: invalid (empty or moved-from) Snapshot");
    return snap.config();
}

} // namespace

Machine::Machine(const MachineConfig &config)
    : config_(config),
      obs_(config.obs),
      mem_(config.physMemBytes),
      hierarchy_(config.mem, config.seed * 3 + 1),
      mmu_(mem_, hierarchy_, config.mmu),
      core_(mem_, hierarchy_, mmu_, config.core, config.seed * 5 + 2),
      kernel_(mem_, hierarchy_, mmu_, core_, config.costs,
              config.seed * 7 + 3),
      entropy_(config.seed * 11 + 4),
      faults_(config.fault, config.seed * 13 + 5)
{
    core_.setFaultHandler(
        [this](const cpu::FaultInfo &info) { kernel_.handleFault(info); });
    core_.setRdrandSource([this]() { return entropy_.next(); });

    // Wire the observability hub; the core also binds the event clock
    // to its cycle counter.
    hierarchy_.setObserver(&obs_);
    mmu_.setObserver(&obs_);
    core_.setObserver(&obs_);
    kernel_.setObserver(&obs_);

    // Wire the fault layer (all hooks stay unset for an inert plan, so
    // the noiseless hot paths pay nothing).
    faults_.wire(&hierarchy_, &mmu_, &core_, &obs_);
    if (faults_.active()) {
        core_.setIssueJitterHook(
            [this](unsigned ctx) { return faults_.issueJitter(ctx); });
        kernel_.setProbeNoise([this]() { return faults_.probeJitter(); });
    }
}

Machine::Machine(const Snapshot &snap) : Machine(configOf(snap))
{
    copyStateFrom(*snap.frozen_);
}

void
Machine::copyStateFrom(const Machine &other)
{
    if (!sameStructure(config_, other.config_))
        panic("Machine::copyStateFrom: structural config mismatch");
    config_.seed = other.config_.seed;
    mem_.shareStateFrom(other.mem_);
    hierarchy_.copyStateFrom(other.hierarchy_);
    mmu_.copyStateFrom(other.mmu_);
    core_.copyStateFrom(other.core_);
    kernel_.copyStateFrom(other.kernel_);
    entropy_ = other.entropy_;
    faults_.copyStateFrom(other.faults_);
    // A consistent source keeps its pending firing cycles at or after
    // its own cycle, so this is a no-op; it exists so no restore path
    // can ever strand a schedule in the past (one poll() would then
    // deliver the whole catch-up burst at the restored cycle).
    faults_.reanchorAt(core_.cycle());
    obs_.trace.copyStateFrom(other.obs_.trace);
}

Snapshot
Machine::snapshot() const
{
    // Reuse a pooled frozen machine when its last Snapshot is gone:
    // the construction cost (slab arena, cache arrays, ROB) dwarfs
    // the state copy.  Either path runs the same copyStateFrom, so
    // the snapshot's content is identical.
    for (auto &slot : scratchSnaps_) {
        if (slot && slot.use_count() == 1 &&
            sameStructure(slot->config_, config_)) {
            slot->copyStateFrom(*this);
            return Snapshot(slot);
        }
    }
    auto frozen = std::make_shared<Machine>(config_);
    frozen->copyStateFrom(*this);
    scratchSnaps_[scratchNext_] = frozen;
    scratchNext_ = (scratchNext_ + 1) % scratchSnaps_.size();
    return Snapshot(std::move(frozen));
}

void
Machine::restoreFrom(const Snapshot &snap)
{
    if (!snap.valid())
        panic("Machine::restoreFrom: invalid Snapshot");
    copyStateFrom(*snap.frozen_);
}

bool
Machine::journaledRestoreFrom(const Snapshot &snap)
{
    if (!snap.valid())
        panic("Machine::journaledRestoreFrom: invalid Snapshot");
    const Machine &other = *snap.frozen_;
    if (!sameStructure(config_, other.config_))
        panic("Machine::journaledRestoreFrom: structural config "
              "mismatch");
    config_.seed = other.config_.seed;
    mem_.shareStateFrom(other.mem_);
    const bool journaled = hierarchy_.rewindJournalTo(other.hierarchy_);
    if (!journaled) {
        // Poisoned (invalidateAll / overflow) or never armed: pay the
        // full copy once and re-arm for the next sibling.
        hierarchy_.copyStateFrom(other.hierarchy_);
        hierarchy_.beginJournal();
    }
    mmu_.copyStateFrom(other.mmu_);
    core_.copyStateFrom(other.core_);
    kernel_.copyStateFrom(other.kernel_);
    entropy_ = other.entropy_;
    faults_.copyStateFrom(other.faults_);
    faults_.reanchorAt(core_.cycle());
    obs_.trace.copyStateFrom(other.obs_.trace);
    return journaled;
}

void
Machine::reset(const MachineConfig &config)
{
    if (!sameStructure(config_, config))
        panic("Machine::reset: structural config mismatch "
              "(construct a new Machine instead)");
    config_ = config;
    mem_.reset();
    hierarchy_.reset(config_.seed * 3 + 1);
    mmu_.reset();
    core_.reset(config_.seed * 5 + 2);
    kernel_.reset(config_.seed * 7 + 3);
    entropy_.seed(config_.seed * 11 + 4);
    faults_.reset(config_.seed * 13 + 5);
    obs_.trace.clear();
}

void
Machine::reseed(std::uint64_t seed)
{
    config_.seed = seed;
    hierarchy_.reseed(config_.seed * 3 + 1);
    core_.reseed(config_.seed * 5 + 2);
    kernel_.reseed(config_.seed * 7 + 3);
    entropy_.seed(config_.seed * 11 + 4);
    faults_.reseedAt(config_.seed * 13 + 5, core_.cycle());
}

void
Machine::reseedForkedAt(std::uint64_t seed, Cycles origin)
{
    if (origin > core_.cycle())
        panic("Machine::reseedForkedAt: origin %llu ahead of cycle "
              "%llu",
              static_cast<unsigned long long>(origin),
              static_cast<unsigned long long>(core_.cycle()));
    config_.seed = seed;
    // Streams whose draws the caller certified unconsumed over
    // [origin, now) restart fresh; the core's per-tick stream
    // advances to its natural position; the fault schedule anchors
    // where the sibling's own reseed would have (the episode
    // origin), so scheduled firings land on the same cycles.
    hierarchy_.reseed(seed * 3 + 1);
    core_.reseedAdvanced(seed * 5 + 2, core_.cycle() - origin);
    kernel_.reseed(seed * 7 + 3);
    entropy_.seed(seed * 11 + 4);
    faults_.reseedAt(seed * 13 + 5, origin);
}

Cycles
Machine::nextEventCycle() const
{
    Cycles next = core_.nextEventCycle();
    next = std::min(next, mmu_.walker().nextEventCycle());
    next = std::min(next, hierarchy_.nextEventCycle());
    next = std::min(next, kernel_.nextEventCycle());
    next = std::min(next, faults_.nextEventCycle());
    return next;
}

void
Machine::run(Cycles n)
{
    const Cycles limit = core_.cycle() + n;
    if (!config_.fastForward) {
        while (core_.cycle() < limit)
            tick();
        return;
    }
    while (core_.cycle() < limit) {
        const Cycles next = nextEventCycle();
        if (next > core_.cycle()) {
            // The jump is clamped so callers asking for exactly n
            // cycles (trial budgets!) never overshoot.
            core_.fastForwardTo(std::min(next, limit));
        } else {
            tick();
        }
    }
}

bool
Machine::runUntilHalted(unsigned ctx, Cycles max_cycles)
{
    return runUntil([this, ctx]() { return core_.halted(ctx); },
                    max_cycles);
}

bool
Machine::runUntil(const std::function<bool()> &pred, Cycles max_cycles)
{
    const Cycles limit = core_.cycle() + max_cycles;
    if (!config_.fastForward) {
        while (core_.cycle() < limit) {
            if (pred())
                return true;
            tick();
        }
        return pred();
    }
    while (core_.cycle() < limit) {
        if (pred())
            return true;
        const Cycles next = nextEventCycle();
        if (next > core_.cycle())
            core_.fastForwardTo(std::min(next, limit));
        else
            tick();
    }
    return pred();
}

void
Machine::exportMetrics(obs::MetricRegistry &registry) const
{
    hierarchy_.exportMetrics(registry);
    mmu_.exportMetrics(registry);
    core_.exportMetrics(registry);
    kernel_.exportMetrics(registry);
    faults_.exportMetrics(registry);
    // COW page-sharing telemetry (DESIGN.md §15).  Like obs.trace.*,
    // these count host-side mechanics (how a state was reached, not
    // what it is), so deterministicFingerprint strips the
    // mem.physmem.* prefix.
    registry.counter("mem.physmem.shares_full").set(mem_.sharesFull());
    registry.counter("mem.physmem.shares_fast").set(mem_.sharesFast());
    registry.counter("mem.physmem.rebuild_poisons")
        .set(mem_.rebuildPoisons());
    // Trace-loss accounting (DESIGN.md §14): lets a campaign assert
    // "no events were overwritten" from its MetricSnapshot without
    // parsing trace files.  Only exported while tracing so untraced
    // runs' snapshots are unchanged; deterministicFingerprint filters
    // the obs.trace.* prefix for the same reason.
    if (obs_.trace.enabled()) {
        registry.counter("obs.trace.recorded")
            .set(obs_.trace.totalRecorded());
        registry.counter("obs.trace.dropped").set(obs_.trace.dropped());
    }
}

obs::MetricSnapshot
Machine::metricsSnapshot() const
{
    obs::MetricRegistry registry;
    exportMetrics(registry);
    return registry.snapshot();
}

} // namespace uscope::os
