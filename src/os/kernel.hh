/**
 * @file
 * The simulated operating system.
 *
 * The kernel owns physical frames, per-process page tables, and the
 * page-fault path.  It is the paper's "Replayer" privilege level: a
 * malicious OS that manages demand paging for a victim it cannot
 * directly introspect.  Enclave semantics follow §2.3: the kernel may
 * manipulate translations for enclave pages but can neither read nor
 * write enclave-private memory, and on an enclave fault it learns only
 * the VPN (AEX).
 *
 * Every privileged operation a module can invoke (software page walk,
 * clflush of page-table entries, INVLPG, cache priming, timed probes)
 * is costed in cycles; the total accrued inside a fault handler is
 * charged to the faulting context as a stall, reproducing the paper's
 * observation that handler time dominates each replay iteration
 * (§6.1).
 */

#ifndef USCOPE_OS_KERNEL_HH
#define USCOPE_OS_KERNEL_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/core.hh"
#include "mem/hierarchy.hh"
#include "mem/phys_mem.hh"
#include "obs/observer.hh"
#include "os/module.hh"
#include "vm/frame_alloc.hh"
#include "vm/mmu.hh"
#include "vm/page_table.hh"

namespace uscope::obs
{
class MetricRegistry;
} // namespace uscope::obs

namespace uscope::os
{

/** Cycle costs of privileged operations (tunable for ablations). */
struct KernelCosts
{
    /** Trap entry + exit, AEX bookkeeping, IRET. */
    Cycles faultBase = 1800;
    /** Kernel software page walk (4 dependent reads). */
    Cycles softwareWalk = 200;
    /** One CLFLUSH. */
    Cycles clflush = 90;
    /** One INVLPG (plus shootdown bookkeeping). */
    Cycles invlpg = 120;
    /** PWC flush of one translation path. */
    Cycles pwcFlush = 30;
    /** Staging one line at a chosen cache level. */
    Cycles installLine = 100;
    /** RDTSC-pair overhead added to a timed probe. */
    Cycles probeOverhead = 45;
    /** Probe overhead jitter: uniform in [0, jitter]. */
    Cycles probeJitter = 8;
    /** Signalling the Monitor process (shared memory poke). */
    Cycles signalMonitor = 50;

    /** Structural equality (snapshot/pool compatibility checks). */
    bool operator==(const KernelCosts &) const = default;
};

/** Result of a kernel timed probe of one cache line. */
struct ProbeResult
{
    Cycles latency = 0;       ///< As an attacker would measure it.
    mem::HitLevel level = mem::HitLevel::Dram;  ///< Ground truth.
};

/** The kernel. */
class Kernel
{
  public:
    Kernel(mem::PhysMem &mem, mem::Hierarchy &hierarchy, vm::Mmu &mmu,
           cpu::Core &core, const KernelCosts &costs = KernelCosts{},
           std::uint64_t seed = 13);

    // ------------------------------------------------------------------
    // Process management.
    // ------------------------------------------------------------------

    /** Create a process; returns its pid. */
    Pid createProcess(const std::string &name);

    /**
     * Allocate, zero, and map @p size bytes of fresh virtual memory
     * in @p pid; returns the (page-aligned) base VA.
     */
    VAddr allocVirtual(Pid pid, std::uint64_t size);

    /** Map one page va -> fresh frame (present, writable, user). */
    void mapPage(Pid pid, Vpn vpn);

    /**
     * Mark [base, base+len) of @p pid as enclave-private.  From this
     * point the kernel can no longer read or write those bytes and
     * faults there report only the VPN.
     */
    void declareEnclave(Pid pid, VAddr base, std::uint64_t len);

    /** True if @p va lies in one of @p pid's enclave ranges. */
    bool inEnclave(Pid pid, VAddr va) const;

    /**
     * Copy bytes into a process' memory.  Denied (returns false) for
     * enclave-private destinations.
     */
    bool writeVirtual(Pid pid, VAddr va, const void *src,
                      std::uint64_t len);

    /** Copy bytes out; denied for enclave-private sources. */
    bool readVirtual(Pid pid, VAddr va, void *dst,
                     std::uint64_t len) const;

    /** Kernel-privilege translation (no enclave restriction). */
    std::optional<PAddr> translate(Pid pid, VAddr va) const;

    /** Launch @p pid's program on hardware context @p ctx. */
    void startOnContext(Pid pid, unsigned ctx,
                        std::shared_ptr<const cpu::Program> program,
                        std::uint64_t entry = 0);

    /** The page table of @p pid (tests and the MicroScope module). */
    vm::PageTable &pageTable(Pid pid);
    Pcid pcidOf(Pid pid) const;
    std::uint64_t pcBiasOf(Pid pid) const;
    std::uint64_t faultCount(Pid pid) const;

    // ------------------------------------------------------------------
    // Module (Replayer) operations — functional effect + cycle cost.
    // ------------------------------------------------------------------

    /** Register the fault-path module (Figure 9 trampoline). */
    void registerModule(FaultModule *module);

    /** §5.2.2 op 1: software page walk for @p va. */
    vm::SoftWalkResult softwareWalk(Pid pid, VAddr va);

    /** Set/clear the present bit of @p va's leaf PTE. */
    void setPresent(Pid pid, VAddr va, bool present);

    /**
     * §5.2.2 op 2: flush the four page-table entries translating
     * @p va from the cache hierarchy, and the covering PWC entries.
     */
    void flushTranslationEntries(Pid pid, VAddr va);

    /** §5.2.2 op 3: INVLPG both TLBs for @p va. */
    void invlpg(Pid pid, VAddr va);

    /** CLFLUSH the data line of @p va (through @p pid's tables). */
    void flushDataLine(Pid pid, VAddr va);

    /** CLFLUSH a physical line. */
    void flushPhysLine(PAddr pa);

    /**
     * Stage the line of physical address @p pa so the next access
     * hits at @p level — the page-walk tuning / priming primitive.
     */
    void installPhysAt(PAddr pa, mem::HitLevel level);

    /** Stage @p va's PT entry for @p level_idx at cache level. */
    void installPtEntryAt(Pid pid, VAddr va, vm::Level pt_level,
                          mem::HitLevel cache_level);

    /**
     * Pre-fill the PWC so the next walk of @p va fetches only the
     * deepest @p fetch_levels page-table levels (1..4).  Together with
     * installPtEntryAt this realizes the Table-2 initiate_page_walk
     * operation with a chosen walk length.
     */
    void prefillPwc(Pid pid, VAddr va, unsigned fetch_levels);

    /** §5.2.2 op 5: prime (evict to DRAM) a physical range. */
    void primeRange(PAddr pa, std::uint64_t len);

    /** Timed Prime+Probe read of one physical line. */
    ProbeResult timedProbePhys(PAddr pa);

    /** Timed probe through a process' translation. */
    ProbeResult timedProbe(Pid pid, VAddr va);

    /** §5.2.2 op 4: signal the Monitor (cost only; data via harness). */
    void signalMonitor();

    /** Add explicit cycles to the current handler's budget. */
    void chargeCycles(Cycles cycles);

    // ------------------------------------------------------------------
    // Fault path (installed into the core by Machine).
    // ------------------------------------------------------------------

    /** The core's page-fault entry point. */
    void handleFault(const cpu::FaultInfo &info);

    const KernelCosts &costs() const { return costs_; }

    /** Total cycles spent in fault handlers (stats). */
    Cycles handlerCycles() const { return handlerCycles_; }

    /** Total number of faults taken machine-wide. */
    std::uint64_t totalFaults() const { return totalFaults_; }

    /**
     * Adopt @p other's mutable state — frame allocator, processes
     * (page tables rebound over this kernel's memory), fault-path
     * counters, and the RNG stream (snapshot forking, DESIGN.md §12).
     * Costs must match.  The module pointer is NOT carried over:
     * fault modules (e.g. ms::Microscope) are external objects that
     * register against one specific kernel; a fork starts unmodded
     * and the module's machine-visible effects (present bits, staged
     * lines, TLB/PWC state) arrive via the copied memory system.
     */
    void copyStateFrom(const Kernel &other);

    /** Return to the just-constructed state with a fresh @p seed. */
    void reset(std::uint64_t seed);

    /** Re-derive the kernel's RNG stream (probe jitter) from @p seed
     *  (fork reseed; leaves processes, frames, and stats alone). */
    void reseed(std::uint64_t seed) { rng_.seed(seed); }

    /** Probe-jitter RNG draws consumed since the last (re)seed.  Zero
     *  across an interval certifies no timed probe sampled jitter in
     *  it (lockstep-replay divergence sentinel). */
    std::uint64_t rngDraws() const { return rng_.draws(); }

    /** Wire the owning Machine's observability hub (may be null). */
    void setObserver(obs::Observer *observer) { obs_ = observer; }

    /**
     * Deterministic-noise hook (fault-injection layer): extra cycles
     * added to every timed probe measurement, modeling attacker-side
     * RDTSC/serialization jitter on top of the kernel's own
     * probeJitter cost model.  Draws from an injector-owned stream so
     * the kernel's rng_ sequence is untouched.
     */
    using ProbeNoise = std::function<Cycles()>;
    void setProbeNoise(ProbeNoise noise) { probeNoise_ = std::move(noise); }

    /**
     * Earliest cycle at which ticking can change this component's
     * state (fast-forward contract, DESIGN.md §10).  Fault handling
     * is synchronous — handleFault() runs inside the faulting tick
     * and charges handler time as a core stall — so the kernel never
     * holds time of its own: always kNoEventCycle.  The hook is the
     * plug-in point for future deferred-work (softirq-style) models.
     */
    Cycles nextEventCycle() const { return kNoEventCycle; }

    /** Register os.faults.* plus per-process page-table counters. */
    void exportMetrics(obs::MetricRegistry &registry) const;

  private:
    struct Process
    {
        Pid pid;
        std::string name;
        std::unique_ptr<vm::PageTable> pageTable;
        Pcid pcid;
        std::uint64_t pcBias;
        VAddr nextVa;
        std::vector<std::pair<VAddr, std::uint64_t>> enclaves;
        std::uint64_t faultCount = 0;
        std::optional<unsigned> boundCtx;
    };

    Process &processOf(Pid pid);
    const Process &processOf(Pid pid) const;
    Process *processOnCtx(unsigned ctx);

    mem::PhysMem &mem_;
    mem::Hierarchy &hierarchy_;
    vm::Mmu &mmu_;
    cpu::Core &core_;
    KernelCosts costs_;
    Rng rng_;

    vm::FrameAllocator frames_;
    std::vector<Process> processes_;
    FaultModule *module_ = nullptr;

    bool inHandler_ = false;
    Cycles handlerBudget_ = 0;
    Cycles handlerCycles_ = 0;
    std::uint64_t totalFaults_ = 0;
    Summary handlerLatency_;
    obs::Observer *obs_ = nullptr;
    ProbeNoise probeNoise_;
};

} // namespace uscope::os

#endif // USCOPE_OS_KERNEL_HH
