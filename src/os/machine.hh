/**
 * @file
 * Top-level simulated machine: physical memory, cache hierarchy, MMU,
 * the SMT out-of-order core, and the kernel, wired together.
 *
 * This is the library's main entry point: construct a Machine, create
 * processes through its kernel, start programs on SMT contexts, and
 * tick.  The MicroScope framework (src/core) attaches to the kernel as
 * a fault module.
 */

#ifndef USCOPE_OS_MACHINE_HH
#define USCOPE_OS_MACHINE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/random.hh"
#include "common/types.hh"
#include "cpu/core.hh"
#include "fault/injector.hh"
#include "fault/plan.hh"
#include "mem/hierarchy.hh"
#include "mem/phys_mem.hh"
#include "obs/observer.hh"
#include "os/kernel.hh"
#include "vm/mmu.hh"

namespace uscope::os
{

/**
 * Master seed with an explicit "was assigned" signal.
 *
 * Converts implicitly to/from std::uint64_t so existing code
 * (`config.seed = 7`, `config.seed * 3 + 1`) keeps working, but any
 * assignment — even of the default value 42 — flips explicitlySet.
 * Consumers that want to stamp their own seed only when the user left
 * the default (e.g. exp::CampaignRunner's per-trial derived seeds)
 * check explicitlySet instead of comparing against the default value,
 * which misfired for factories that deliberately chose 42.
 */
struct Seed
{
    constexpr Seed() = default;
    constexpr Seed(std::uint64_t v) : value(v), explicitlySet(true) {}

    constexpr Seed &
    operator=(std::uint64_t v)
    {
        value = v;
        explicitlySet = true;
        return *this;
    }

    constexpr operator std::uint64_t() const { return value; }

    std::uint64_t value = 42;
    bool explicitlySet = false;
};

/** Aggregate configuration of the whole machine. */
struct MachineConfig
{
    std::uint64_t physMemBytes = std::uint64_t{1} << 32;
    mem::MemConfig mem;
    vm::MmuConfig mmu;
    cpu::CoreConfig core;
    KernelCosts costs;
    obs::ObsConfig obs;
    /**
     * The machine's fault/noise model (DESIGN.md §11).  Defaults to
     * the process-wide environment plan — inert unless
     * USCOPE_FAULT_PLAN=chaos is exported (the CI chaos job).
     * Explicit assignment (even of an empty plan) always wins.
     */
    fault::FaultPlan fault = fault::FaultPlan::environmentDefault();
    /** Master seed; sub-components derive their own streams. */
    Seed seed;
    /**
     * Event-driven fast-forward: Machine::run/runUntil jump the clock
     * over provably inert cycles (the minimum of every component's
     * nextEventCycle()) instead of ticking one by one.  Results are
     * bit-identical either way (see DESIGN.md §10); off exists for
     * differential testing and debugging.
     */
    bool fastForward = true;
};

/**
 * Structural equality of two configs: every knob except the seed.
 * Machines with the same structure can share snapshots and pooled
 * instances — only their RNG streams (reseedable at any time) differ.
 */
bool sameStructure(const MachineConfig &a, const MachineConfig &b);

class Snapshot;

/** The machine. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config = MachineConfig{});

    /**
     * Construct a machine whose state equals @p snap (DESIGN.md §12).
     * Pages are shared copy-on-write with the snapshot; everything
     * else is copied.  Panics on an invalid (moved-from) snapshot.
     */
    explicit Machine(const Snapshot &snap);

    mem::PhysMem &mem() { return mem_; }
    mem::Hierarchy &hierarchy() { return hierarchy_; }
    vm::Mmu &mmu() { return mmu_; }
    cpu::Core &core() { return core_; }
    Kernel &kernel() { return kernel_; }
    const MachineConfig &config() const { return config_; }

    /** The machine's fault injector (inert for an empty plan). */
    fault::FaultInjector &faults() { return faults_; }
    const fault::FaultInjector &faults() const { return faults_; }

    /** Advance one cycle (scheduled faults due now fire first). */
    void
    tick()
    {
        if (faults_.active())
            faults_.poll(core_.cycle());
        core_.tick();
    }

    /** Current cycle. */
    Cycles cycle() const { return core_.cycle(); }

    /**
     * Advance exactly @p n cycles.  With config().fastForward this
     * elides inert cycles via nextEventCycle() but lands on exactly
     * the same state a cycle-by-cycle run would reach.
     */
    void run(Cycles n);

    /**
     * Tick until context @p ctx halts or @p max_cycles pass.
     * @return true if the context halted.
     */
    bool runUntilHalted(unsigned ctx, Cycles max_cycles);

    /**
     * Tick until @p pred() holds or @p max_cycles pass.
     *
     * @p pred must be a pure function of machine state (stats,
     * registers, memory, context states) — not of the raw cycle
     * counter — so that it cannot flip during a span of cycles the
     * fast-forward path proves inert.  Every predicate in the tree
     * satisfies this today (they test halted()/stat counters).
     */
    bool runUntil(const std::function<bool()> &pred, Cycles max_cycles);

    /**
     * Earliest cycle at which ticking can change architectural or
     * stats state: the minimum of every time-holding component's
     * nextEventCycle() (core in-flight ops; the fault injector's next
     * scheduled injection; the walker, hierarchy and kernel are
     * synchronous today and report kNoEventCycle — the hooks are the
     * plug-in points for future MSHR/async-fill models).
     * kNoEventCycle when nothing is in flight anywhere.
     */
    Cycles nextEventCycle() const;

    /** The machine's observability hub (event ring). */
    obs::Observer &observer() { return obs_; }
    const obs::Observer &observer() const { return obs_; }

    /**
     * Register every component's counters into @p registry
     * (mem.*, vm.*, core.*, os.*).
     */
    void exportMetrics(obs::MetricRegistry &registry) const;

    /** Convenience: exportMetrics into a fresh registry + snapshot. */
    obs::MetricSnapshot metricsSnapshot() const;

    // ------------------------------------------------------------------
    // Snapshot, fork, and pooling (DESIGN.md §12).
    // ------------------------------------------------------------------

    /**
     * Freeze a deep-but-cheap copy of the machine's entire mutable
     * state: core/ROB/contexts, TLB/PWC/walker, cache ways, kernel
     * processes and fault-path counters, RNG streams, fault-injector
     * schedule, stats, and the event-trace ring.  Physical pages are
     * shared copy-on-write — the snapshot holds references and this
     * machine's (or any fork's) first write to a shared page copies
     * it, so the snapshot stays frozen.
     *
     * Registered fault modules (ms::Microscope) are per-machine
     * external objects and are NOT captured; their machine-visible
     * effects (present bits, staged PT/data lines, TLB/PWC state)
     * are, via the copied memory system.
     */
    Snapshot snapshot() const;

    /**
     * Overwrite this machine's state with @p snap's (same structural
     * config required).  Cheaper than constructing from the snapshot
     * when an instance is pooled: buffers are reused, and pages this
     * machine privatized since the last restore return to the shared
     * arena's free list.
     *
     * Repeated restores from the *same* snapshot — the differential-
     * replay pattern, one restore per replay iteration (DESIGN.md
     * §15) — take PhysMem's in-place fast path: only pages written
     * since the previous restore are re-shared; the slab index is not
     * rebuilt.  Fault schedules are defensively re-anchored at the
     * restored cycle (FaultInjector::reanchorAt), a no-op for any
     * consistent snapshot.
     */
    void restoreFrom(const Snapshot &snap);

    /**
     * Arm the cache hierarchy's undo journal at the current state —
     * the batched-replay primitive (DESIGN.md §17).  Between arming
     * and endReplayJournal(), journaledRestoreFrom() can rewind the
     * hierarchy to this state in O(ways touched) instead of the
     * O(cache size) copy restoreFrom pays.  The state journalled must
     * be the state of the snapshot later passed to
     * journaledRestoreFrom.
     */
    void beginReplayJournal() { hierarchy_.beginJournal(); }

    /** Disarm the journal (keeps the current state). */
    void endReplayJournal() { hierarchy_.endJournal(); }

    /**
     * restoreFrom(@p snap), but the cache hierarchy — the dominant
     * cost of a full restore — is rewound through the armed undo
     * journal when viable.  The result is bit-identical to
     * restoreFrom either way; the return value only reports which
     * path ran (false = journal poisoned or unarmed, full copy used,
     * journal re-armed at the restored state).  @p snap must be the
     * state beginReplayJournal() was called at.
     */
    bool journaledRestoreFrom(const Snapshot &snap);

    /**
     * Return a pooled instance to the seed-fresh state a newly
     * constructed Machine(config()) would have — bit-identically so,
     * including every RNG stream and stat — without freeing the page
     * slabs or per-component buffers.
     */
    void reset() { reset(config_); }

    /**
     * reset() adopting @p config (e.g. a new trial's seed).  Panics
     * unless sameStructure(config(), config): pooling never silently
     * rebuilds geometry — construct a new Machine for that.
     */
    void reset(const MachineConfig &config);

    /**
     * Re-derive every component RNG stream from @p seed, anchored at
     * the *current* cycle — the reseed-at-fork primitive.  Leaves all
     * architectural state, stats, and traces alone.  The determinism
     * contract: a cold machine that runs a warmup and reseeds equals,
     * bit for bit, a fork restored from the post-warmup snapshot and
     * reseeded with the same seed.
     */
    void reseed(std::uint64_t seed);

    /**
     * reseed(@p seed) as if it had happened at cycle @p origin in the
     * past: fault schedules anchor at @p origin (not the current
     * cycle), and the core's per-tick SMT stream advances by
     * (cycle() - origin) draws.  The fork-mid-window primitive for
     * batched lockstep replay (DESIGN.md §17): a machine restored
     * from a sibling's state at cycle D becomes bit-equal to one
     * that reseeded at the episode origin c0 and ran c0 -> D itself,
     * PROVIDED that span consumed no seed-sensitive draws
     * (seedSensitiveDraws() unchanged), delivered no faults, and
     * never had two contexts running (the SMT draw values were
     * inert).  Callers certify that with the divergence sentinels;
     * this only rebuilds the stream positions.
     */
    void reseedForkedAt(std::uint64_t seed, Cycles origin);

    /**
     * Draws consumed so far by the RNG streams whose *values* feed
     * machine state: DRAM jitter (hierarchy), probe jitter (kernel),
     * and RDRAND entropy.  An unchanged count over a run certifies
     * the span was seed-independent.  The core's SMT stream is
     * deliberately excluded: it draws every tick regardless, and its
     * values are inert with fewer than two running contexts —
     * reseedForkedAt() reproduces its position instead.
     */
    std::uint64_t
    seedSensitiveDraws() const
    {
        return hierarchy_.rngDraws() + kernel_.rngDraws() +
               entropy_.draws();
    }

  private:
    /** Overwrite all mutable state with @p other's (same structure). */
    void copyStateFrom(const Machine &other);

    MachineConfig config_;
    obs::Observer obs_;
    mem::PhysMem mem_;
    mem::Hierarchy hierarchy_;
    vm::Mmu mmu_;
    cpu::Core core_;
    /**
     * Frozen-machine pool for snapshot(): constructing a Machine
     * (slab arena, cache arrays, ROB) dwarfs copying one, so dead
     * Snapshots' clones are kept for reuse.  A slot is reusable only
     * while no Snapshot references it (use_count()==1).  Two slots
     * cover the take-new-then-drop-old pattern of an engine that
     * holds one episode snapshot across trials.  Mutable: a pool
     * hand-off never changes this machine's observable state.
     */
    mutable std::array<std::shared_ptr<Machine>, 2> scratchSnaps_;
    mutable std::size_t scratchNext_ = 0;
    Kernel kernel_;
    Rng entropy_;   ///< Hardware RDRAND source.
    fault::FaultInjector faults_;
};

/**
 * A frozen Machine state (DESIGN.md §12): the product of
 * Machine::snapshot(), consumed by Machine(const Snapshot&) and
 * Machine::restoreFrom().  Internally a full state-clone machine that
 * is never ticked; it COW-shares pages with the machine it was taken
 * from and with every fork, so holding one is cheap.  Move-only.
 * Thread confinement follows the Machine rule: a snapshot and all of
 * its forks belong to one simulating thread (page refcounts are
 * deliberately non-atomic).
 */
class Snapshot
{
  public:
    Snapshot() = default;
    Snapshot(Snapshot &&) = default;
    Snapshot &operator=(Snapshot &&) = default;

    /** False for a default-constructed or moved-from snapshot. */
    bool valid() const { return frozen_ != nullptr; }

    /** The frozen machine's config (requires valid()). */
    const MachineConfig &config() const { return frozen_->config(); }

    /** Cycle the snapshot was taken at (requires valid()). */
    Cycles cycle() const { return frozen_->cycle(); }

  private:
    friend class Machine;
    explicit Snapshot(std::shared_ptr<Machine> frozen)
        : frozen_(std::move(frozen))
    {
    }

    /**
     * Shared only with the taking machine's scratch pool (snapshot
     * reuse); a Snapshot is still the sole *owner* in the API sense —
     * the pool never reads or writes a frozen machine while any
     * Snapshot references it (use_count guard in Machine::snapshot).
     */
    std::shared_ptr<Machine> frozen_;
};

} // namespace uscope::os

#endif // USCOPE_OS_MACHINE_HH
