/**
 * @file
 * Top-level simulated machine: physical memory, cache hierarchy, MMU,
 * the SMT out-of-order core, and the kernel, wired together.
 *
 * This is the library's main entry point: construct a Machine, create
 * processes through its kernel, start programs on SMT contexts, and
 * tick.  The MicroScope framework (src/core) attaches to the kernel as
 * a fault module.
 */

#ifndef USCOPE_OS_MACHINE_HH
#define USCOPE_OS_MACHINE_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "common/random.hh"
#include "common/types.hh"
#include "cpu/core.hh"
#include "fault/injector.hh"
#include "fault/plan.hh"
#include "mem/hierarchy.hh"
#include "mem/phys_mem.hh"
#include "obs/observer.hh"
#include "os/kernel.hh"
#include "vm/mmu.hh"

namespace uscope::os
{

/**
 * Master seed with an explicit "was assigned" signal.
 *
 * Converts implicitly to/from std::uint64_t so existing code
 * (`config.seed = 7`, `config.seed * 3 + 1`) keeps working, but any
 * assignment — even of the default value 42 — flips explicitlySet.
 * Consumers that want to stamp their own seed only when the user left
 * the default (e.g. exp::CampaignRunner's per-trial derived seeds)
 * check explicitlySet instead of comparing against the default value,
 * which misfired for factories that deliberately chose 42.
 */
struct Seed
{
    constexpr Seed() = default;
    constexpr Seed(std::uint64_t v) : value(v), explicitlySet(true) {}

    constexpr Seed &
    operator=(std::uint64_t v)
    {
        value = v;
        explicitlySet = true;
        return *this;
    }

    constexpr operator std::uint64_t() const { return value; }

    std::uint64_t value = 42;
    bool explicitlySet = false;
};

/** Aggregate configuration of the whole machine. */
struct MachineConfig
{
    std::uint64_t physMemBytes = std::uint64_t{1} << 32;
    mem::MemConfig mem;
    vm::MmuConfig mmu;
    cpu::CoreConfig core;
    KernelCosts costs;
    obs::ObsConfig obs;
    /**
     * The machine's fault/noise model (DESIGN.md §11).  Defaults to
     * the process-wide environment plan — inert unless
     * USCOPE_FAULT_PLAN=chaos is exported (the CI chaos job).
     * Explicit assignment (even of an empty plan) always wins.
     */
    fault::FaultPlan fault = fault::FaultPlan::environmentDefault();
    /** Master seed; sub-components derive their own streams. */
    Seed seed;
    /**
     * Event-driven fast-forward: Machine::run/runUntil jump the clock
     * over provably inert cycles (the minimum of every component's
     * nextEventCycle()) instead of ticking one by one.  Results are
     * bit-identical either way (see DESIGN.md §10); off exists for
     * differential testing and debugging.
     */
    bool fastForward = true;
};

/** The machine. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config = MachineConfig{});

    mem::PhysMem &mem() { return mem_; }
    mem::Hierarchy &hierarchy() { return hierarchy_; }
    vm::Mmu &mmu() { return mmu_; }
    cpu::Core &core() { return core_; }
    Kernel &kernel() { return kernel_; }
    const MachineConfig &config() const { return config_; }

    /** The machine's fault injector (inert for an empty plan). */
    fault::FaultInjector &faults() { return faults_; }
    const fault::FaultInjector &faults() const { return faults_; }

    /** Advance one cycle (scheduled faults due now fire first). */
    void
    tick()
    {
        if (faults_.active())
            faults_.poll(core_.cycle());
        core_.tick();
    }

    /** Current cycle. */
    Cycles cycle() const { return core_.cycle(); }

    /**
     * Advance exactly @p n cycles.  With config().fastForward this
     * elides inert cycles via nextEventCycle() but lands on exactly
     * the same state a cycle-by-cycle run would reach.
     */
    void run(Cycles n);

    /**
     * Tick until context @p ctx halts or @p max_cycles pass.
     * @return true if the context halted.
     */
    bool runUntilHalted(unsigned ctx, Cycles max_cycles);

    /**
     * Tick until @p pred() holds or @p max_cycles pass.
     *
     * @p pred must be a pure function of machine state (stats,
     * registers, memory, context states) — not of the raw cycle
     * counter — so that it cannot flip during a span of cycles the
     * fast-forward path proves inert.  Every predicate in the tree
     * satisfies this today (they test halted()/stat counters).
     */
    bool runUntil(const std::function<bool()> &pred, Cycles max_cycles);

    /**
     * Earliest cycle at which ticking can change architectural or
     * stats state: the minimum of every time-holding component's
     * nextEventCycle() (core in-flight ops; the fault injector's next
     * scheduled injection; the walker, hierarchy and kernel are
     * synchronous today and report kNoEventCycle — the hooks are the
     * plug-in points for future MSHR/async-fill models).
     * kNoEventCycle when nothing is in flight anywhere.
     */
    Cycles nextEventCycle() const;

    /** The machine's observability hub (event ring). */
    obs::Observer &observer() { return obs_; }
    const obs::Observer &observer() const { return obs_; }

    /**
     * Register every component's counters into @p registry
     * (mem.*, vm.*, core.*, os.*).
     */
    void exportMetrics(obs::MetricRegistry &registry) const;

    /** Convenience: exportMetrics into a fresh registry + snapshot. */
    obs::MetricSnapshot metricsSnapshot() const;

  private:
    MachineConfig config_;
    obs::Observer obs_;
    mem::PhysMem mem_;
    mem::Hierarchy hierarchy_;
    vm::Mmu mmu_;
    cpu::Core core_;
    Kernel kernel_;
    Rng entropy_;   ///< Hardware RDRAND source.
    fault::FaultInjector faults_;
};

} // namespace uscope::os

#endif // USCOPE_OS_MACHINE_HH
