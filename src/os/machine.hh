/**
 * @file
 * Top-level simulated machine: physical memory, cache hierarchy, MMU,
 * the SMT out-of-order core, and the kernel, wired together.
 *
 * This is the library's main entry point: construct a Machine, create
 * processes through its kernel, start programs on SMT contexts, and
 * tick.  The MicroScope framework (src/core) attaches to the kernel as
 * a fault module.
 */

#ifndef USCOPE_OS_MACHINE_HH
#define USCOPE_OS_MACHINE_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "common/random.hh"
#include "common/types.hh"
#include "cpu/core.hh"
#include "mem/hierarchy.hh"
#include "mem/phys_mem.hh"
#include "obs/observer.hh"
#include "os/kernel.hh"
#include "vm/mmu.hh"

namespace uscope::os
{

/** Aggregate configuration of the whole machine. */
struct MachineConfig
{
    std::uint64_t physMemBytes = std::uint64_t{1} << 32;
    mem::MemConfig mem;
    vm::MmuConfig mmu;
    cpu::CoreConfig core;
    KernelCosts costs;
    obs::ObsConfig obs;
    /** Master seed; sub-components derive their own streams. */
    std::uint64_t seed = 42;
};

/** The machine. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config = MachineConfig{});

    mem::PhysMem &mem() { return mem_; }
    mem::Hierarchy &hierarchy() { return hierarchy_; }
    vm::Mmu &mmu() { return mmu_; }
    cpu::Core &core() { return core_; }
    Kernel &kernel() { return kernel_; }
    const MachineConfig &config() const { return config_; }

    /** Advance one cycle. */
    void tick() { core_.tick(); }

    /** Current cycle. */
    Cycles cycle() const { return core_.cycle(); }

    /** Tick for exactly @p n cycles. */
    void run(Cycles n);

    /**
     * Tick until context @p ctx halts or @p max_cycles pass.
     * @return true if the context halted.
     */
    bool runUntilHalted(unsigned ctx, Cycles max_cycles);

    /** Tick until @p pred() holds or @p max_cycles pass. */
    bool runUntil(const std::function<bool()> &pred, Cycles max_cycles);

    /** The machine's observability hub (event ring). */
    obs::Observer &observer() { return obs_; }
    const obs::Observer &observer() const { return obs_; }

    /**
     * Register every component's counters into @p registry
     * (mem.*, vm.*, core.*, os.*).
     */
    void exportMetrics(obs::MetricRegistry &registry) const;

    /** Convenience: exportMetrics into a fresh registry + snapshot. */
    obs::MetricSnapshot metricsSnapshot() const;

  private:
    MachineConfig config_;
    obs::Observer obs_;
    mem::PhysMem mem_;
    mem::Hierarchy hierarchy_;
    vm::Mmu mmu_;
    cpu::Core core_;
    Kernel kernel_;
    Rng entropy_;   ///< Hardware RDRAND source.
};

} // namespace uscope::os

#endif // USCOPE_OS_MACHINE_HH
