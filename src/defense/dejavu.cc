#include "defense/dejavu.hh"

#include "attack/victims.hh"
#include "core/microscope.hh"
#include "cpu/program.hh"

namespace uscope::defense
{

namespace
{

/** Victim wrapping the sensitive region in reference-clock reads. */
struct DejavuVictim
{
    os::Pid pid = 0;
    std::shared_ptr<const cpu::Program> program;
    VAddr handle = 0;
    VAddr transmitA = 0;   ///< mul-side line.
    VAddr transmitB = 0;   ///< div-side line.
};

DejavuVictim
buildDejavuVictim(os::Kernel &kernel, bool secret, Cycles threshold)
{
    DejavuVictim victim;
    victim.pid = kernel.createProcess("dejavu-victim");
    victim.handle = kernel.allocVirtual(victim.pid, pageSize);
    victim.transmitA = kernel.allocVirtual(victim.pid, pageSize);
    victim.transmitB = kernel.allocVirtual(victim.pid, pageSize);
    const VAddr secret_page = kernel.allocVirtual(victim.pid, pageSize);

    const std::uint64_t secret_word = secret ? 1 : 0;
    kernel.writeVirtual(victim.pid, secret_page, &secret_word, 8);
    kernel.declareEnclave(victim.pid, secret_page, pageSize);

    // r24 = detection flag; r22 = measured elapsed cycles.
    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(victim.handle))
        .movi(2, static_cast<std::int64_t>(secret_page))
        .movi(3, static_cast<std::int64_t>(victim.transmitA))
        .movi(4, static_cast<std::int64_t>(victim.transmitB))
        .movi(7, 0)
        .movi(23, static_cast<std::int64_t>(threshold))
        .movi(24, 0)
        .ld(5, 2, 0)
        .rdtsc(20)              // clock: region start
        .ld(6, 1, 0)            // replay handle
        .beq(5, 7, "mul_side")
        .ld(10, 4, 0)           // transmit via div-side line
        .jmp("join")
        .label("mul_side")
        .ld(10, 3, 0)           // transmit via mul-side line
        .label("join")
        .rdtsc(21)              // clock: region end (younger than the
                                // handle: cannot retire while replaying)
        .sub(22, 21, 20)
        .blt(22, 23, "ok")
        .movi(24, 1)            // Déjà Vu: compromise detected
        .label("ok")
        .halt();
    victim.program = std::make_shared<const cpu::Program>(b.build());
    return victim;
}

/** Victim-visible cost of one benign minor fault (calibration). */
Cycles
benignFaultCost(std::uint64_t seed)
{
    Cycles with_fault = 0;
    Cycles without = 0;
    for (bool fault : {true, false}) {
        os::MachineConfig mcfg;
        mcfg.seed = seed;
        os::Machine machine(mcfg);
        auto &kernel = machine.kernel();
        const os::Pid pid = kernel.createProcess("calib");
        const VAddr page = kernel.allocVirtual(pid, pageSize);
        if (fault)
            kernel.pageTable(pid).setPresent(page, false);
        cpu::ProgramBuilder b;
        b.movi(1, static_cast<std::int64_t>(page))
            .rdtsc(20)
            .ld(2, 1, 0)
            .rdtsc(21)
            .sub(22, 21, 20)
            .halt();
        kernel.startOnContext(
            pid, 0, std::make_shared<const cpu::Program>(b.build()));
        machine.runUntilHalted(0, 1'000'000);
        (fault ? with_fault : without) =
            machine.core().readIntReg(0, 22);
    }
    return with_fault > without ? with_fault - without : 0;
}

} // anonymous namespace

DejavuResult
runDejavuExperiment(const DejavuConfig &config)
{
    os::MachineConfig mcfg = config.machine;
    mcfg.seed = config.seed;
    os::Machine machine(mcfg);
    auto &kernel = machine.kernel();

    const DejavuVictim victim = buildDejavuVictim(
        kernel, config.secret, config.detectionThreshold);
    const PAddr mul_pa =
        *kernel.translate(victim.pid, victim.transmitA);
    const PAddr div_pa =
        *kernel.translate(victim.pid, victim.transmitB);

    DejavuResult result;
    std::uint64_t mul_votes = 0;
    std::uint64_t div_votes = 0;
    std::uint64_t replays_at_extraction = 0;

    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle;
    recipe.confidence = config.replays;
    recipe.onReplay = [&](const ms::ReplayEvent &ev) {
        const bool mul_hot =
            kernel.timedProbePhys(mul_pa).latency < 100;
        const bool div_hot =
            kernel.timedProbePhys(div_pa).latency < 100;
        mul_votes += mul_hot;
        div_votes += div_hot;
        if ((mul_hot != div_hot) && replays_at_extraction == 0)
            replays_at_extraction = ev.replayIndex;
        return true;
    };
    recipe.beforeResume = [&](const ms::ReplayEvent &) {
        kernel.flushPhysLine(mul_pa);
        kernel.flushPhysLine(div_pa);
    };
    scope.setRecipe(std::move(recipe));

    kernel.flushPhysLine(mul_pa);
    kernel.flushPhysLine(div_pa);
    scope.arm();
    kernel.startOnContext(victim.pid, 0, victim.program);
    machine.runUntil(
        [&]() { return !scope.armed() || machine.core().halted(0); },
        Cycles{config.replays} * 50000 + 2'000'000);
    scope.disarm();
    machine.runUntilHalted(0, 1'000'000);

    result.replaysCompleted = scope.stats().totalReplays;
    result.secretExtracted = mul_votes + div_votes > 0;
    result.inferredSecret = div_votes > mul_votes;
    result.measuredElapsed = machine.core().readIntReg(0, 22);
    result.detected = machine.core().readIntReg(0, 24) == 1;
    result.benignFaultCost = benignFaultCost(config.seed);
    return result;
}

} // namespace uscope::defense
