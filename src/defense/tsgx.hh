/**
 * @file
 * T-SGX defense model (§8, [50]): the enclave wraps its code in TSX
 * transactions, so a page fault aborts to a user-level handler
 * instead of trapping to the malicious OS; after N = 10 failed
 * transactions the application terminates.
 *
 * The paper's critique, reproduced here: the design still hands the
 * attacker N-1 replays, because each retry re-runs the transaction
 * body whose younger instructions execute speculatively before the
 * page fault aborts — and N-1 windows "can be sufficient in many
 * attacks".  The attacker never needs the OS fault handler: it
 * re-flushes the handle's translation path asynchronously between
 * retries.
 */

#ifndef USCOPE_DEFENSE_TSGX_HH
#define USCOPE_DEFENSE_TSGX_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "os/machine.hh"

namespace uscope::defense
{

/** Configuration of one T-SGX attack run. */
struct TsgxConfig
{
    bool secret = true;       ///< Victim path: divides vs multiplies.
    unsigned abortThreshold = 10;  ///< T-SGX's N.
    unsigned monitorSamples = 4000;
    unsigned cont = 4;
    Cycles threshold = 120;   ///< Port-contention threshold.
    std::uint64_t seed = 42;
    os::MachineConfig machine;
};

/** Outcome. */
struct TsgxResult
{
    /** Transaction aborts the victim observed (= windows granted). */
    std::uint64_t txAborts = 0;
    /** True when T-SGX terminated the application. */
    bool victimTerminated = false;
    /** Monitor samples above the contention threshold. */
    std::uint64_t aboveThreshold = 0;
    /** Port-channel verdict (noisy; N-1 windows may not suffice). */
    bool inferredDividesPort = false;
    /** Cache-channel votes per retry window (noiseless). */
    std::uint64_t mulHits = 0;
    std::uint64_t divHits = 0;
    /** Cache-channel verdict — one window suffices. */
    bool inferredDividesCache = false;
    bool monitorCompleted = false;
};

/** Attack a T-SGX-protected control-flow victim. */
TsgxResult runTsgxAttack(const TsgxConfig &);

} // namespace uscope::defense

#endif // USCOPE_DEFENSE_TSGX_HH
