/**
 * @file
 * Déjà Vu defense model (§8, [13]): the victim measures, with a
 * reference clock, whether its code took abnormally long, inferring
 * compromise.
 *
 * The model makes the paper's two critiques measurable:
 *
 *  1. Masking: a replay costs about as much victim-visible time as an
 *     ordinary minor page fault, so the detection threshold must
 *     tolerate a few genuine faults — and the attacker gets that many
 *     replays for free.
 *  2. Clock starvation / late detection: the closing clock read is
 *     younger than the replay handle, so it cannot retire until the
 *     attacker releases the victim: detection — if any — fires only
 *     after the secret has already been extracted.
 */

#ifndef USCOPE_DEFENSE_DEJAVU_HH
#define USCOPE_DEFENSE_DEJAVU_HH

#include <cstdint>

#include "common/types.hh"
#include "os/machine.hh"

namespace uscope::defense
{

/** Configuration of one Déjà Vu experiment. */
struct DejavuConfig
{
    bool secret = true;
    /** Replays the attacker takes. */
    std::uint64_t replays = 10;
    /**
     * Victim's detection threshold in cycles for the guarded region;
     * calibrated as a multiple of a benign minor-fault cost.
     */
    Cycles detectionThreshold = 12000;
    std::uint64_t seed = 42;
    os::MachineConfig machine;
};

/** Outcome. */
struct DejavuResult
{
    /** Victim-measured elapsed cycles for the guarded region. */
    Cycles measuredElapsed = 0;
    /** Did the victim's check fire? */
    bool detected = false;
    /** Replays the attacker completed before any detection. */
    std::uint64_t replaysCompleted = 0;
    /** Did the attacker read the secret (cache channel)? */
    bool secretExtracted = false;
    bool inferredSecret = false;
    /** Cost of one benign minor fault (threshold calibration aid). */
    Cycles benignFaultCost = 0;
};

/** Run the experiment. */
DejavuResult runDejavuExperiment(const DejavuConfig &);

} // namespace uscope::defense

#endif // USCOPE_DEFENSE_DEJAVU_HH
