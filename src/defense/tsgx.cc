#include "defense/tsgx.hh"

#include "attack/monitor.hh"
#include "attack/port_contention.hh"
#include "cpu/program.hh"

namespace uscope::defense
{

namespace
{

/** A T-SGX-wrapped control-flow victim (Figure 6 body inside TSX). */
struct TsgxVictim
{
    os::Pid pid = 0;
    std::shared_ptr<const cpu::Program> program;
    VAddr handle = 0;
    VAddr mulOps = 0;
    VAddr divOps = 0;
};

TsgxVictim
buildTsgxVictim(os::Kernel &kernel, bool secret,
                unsigned abort_threshold)
{
    TsgxVictim victim;
    victim.pid = kernel.createProcess("tsgx-victim");
    victim.handle = kernel.allocVirtual(victim.pid, pageSize);
    const VAddr mul_ops = kernel.allocVirtual(victim.pid, pageSize);
    const VAddr div_ops = kernel.allocVirtual(victim.pid, pageSize);
    victim.mulOps = mul_ops;
    victim.divOps = div_ops;
    const VAddr secret_page = kernel.allocVirtual(victim.pid, pageSize);

    const std::uint64_t ints[2] = {3, 7};
    kernel.writeVirtual(victim.pid, mul_ops, ints, 16);
    const double doubles[2] = {3.5, 7.25};
    kernel.writeVirtual(victim.pid, div_ops, doubles, 16);
    const std::uint64_t secret_word = secret ? 1 : 0;
    kernel.writeVirtual(victim.pid, secret_page, &secret_word, 8);
    kernel.declareEnclave(victim.pid, secret_page, pageSize);

    // r15: 1 = committed, 2 = T-SGX terminated the application.
    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(victim.handle))
        .movi(2, static_cast<std::int64_t>(secret_page))
        .movi(3, static_cast<std::int64_t>(mul_ops))
        .movi(4, static_cast<std::int64_t>(div_ops))
        .movi(7, 0)
        .movi(21, 0)                    // failed-transaction count
        .movi(22, abort_threshold)
        .movi(15, 0)
        .ld(5, 2, 0)                    // secret
        .label("retry")
        .txbegin("abort")
        // The replay handle: count++ on a page the OS keeps absent.
        .ld(6, 1, 0x20)
        .addi(6, 6, 1)
        .st(1, 0x20, 6)
        .beq(5, 7, "mul_side")
        .ldf(0, 4, 0)
        .ldf(1, 4, 8)
        .fmov(2, 1)
        .fdiv(2, 2, 0)
        .fmov(3, 1)
        .fdiv(3, 3, 0)
        .jmp("join")
        .label("mul_side")
        .ld(8, 3, 0)
        .ld(9, 3, 8)
        .mov(10, 9)
        .mul(10, 10, 8)
        .mov(11, 9)
        .mul(11, 11, 8)
        .label("join")
        .txend()
        .movi(15, 1)
        .jmp("done")
        .label("abort")
        // T-SGX user-level handler: count failures, terminate at N.
        .addi(21, 21, 1)
        .blt(21, 22, "retry")
        .movi(15, 2)
        .label("done")
        .halt();
    victim.program = std::make_shared<const cpu::Program>(b.build());
    return victim;
}

} // anonymous namespace

TsgxResult
runTsgxAttack(const TsgxConfig &config)
{
    os::MachineConfig mcfg = config.machine;
    mcfg.seed = config.seed;
    os::Machine machine(mcfg);
    auto &kernel = machine.kernel();

    const TsgxVictim victim =
        buildTsgxVictim(kernel, config.secret, config.abortThreshold);
    const attack::MonitorImage monitor =
        attack::buildDivContentionMonitor(kernel, config.monitorSamples,
                                          config.cont);

    const PAddr mul_pa = *kernel.translate(victim.pid, victim.mulOps);
    const PAddr div_pa = *kernel.translate(victim.pid, victim.divOps);

    // Arm by hand: T-SGX never lets the OS fault handler run, so the
    // attacker manipulates translations asynchronously instead.
    kernel.setPresent(victim.pid, victim.handle, false);
    kernel.flushTranslationEntries(victim.pid, victim.handle);
    kernel.invlpg(victim.pid, victim.handle);
    kernel.flushPhysLine(mul_pa);
    kernel.flushPhysLine(div_pa);

    // The adversary schedules freely: warm the Monitor up before
    // admitting the victim, so no retry window goes unobserved.
    kernel.startOnContext(monitor.pid, 1, monitor.program);
    machine.run(20000);
    kernel.startOnContext(victim.pid, 0, victim.program);

    TsgxResult result;
    std::uint64_t aborts_seen = 0;
    const Cycles budget =
        Cycles{config.monitorSamples} * (config.cont * 100 + 2000) +
        1000000;
    while (!machine.core().halted(1) && machine.cycle() < budget) {
        machine.run(50);
        const std::uint64_t aborts = machine.core().stats(0).txAborts;
        if (aborts > aborts_seen) {
            aborts_seen = aborts;
            // Cache channel: probe the two operand lines the retry
            // window touched speculatively, then re-prime.
            if (kernel.timedProbePhys(mul_pa).latency < 100)
                ++result.mulHits;
            if (kernel.timedProbePhys(div_pa).latency < 100)
                ++result.divHits;
            kernel.flushPhysLine(mul_pa);
            kernel.flushPhysLine(div_pa);
            // Re-flush so every retry's walk is long again (§4.1.4
            // step 5, performed without any OS fault involvement).
            kernel.flushTranslationEntries(victim.pid, victim.handle);
            kernel.invlpg(victim.pid, victim.handle);
        }
    }

    result.txAborts = machine.core().stats(0).txAborts;
    result.monitorCompleted = machine.core().halted(1);
    machine.runUntilHalted(0, 1'000'000);
    result.victimTerminated =
        machine.core().readIntReg(0, 15) == 2;

    const auto samples = attack::readMonitorSamples(kernel, monitor);
    for (Cycles sample : samples)
        if (sample > config.threshold)
            ++result.aboveThreshold;
    result.inferredDividesPort = attack::inferDivides(
        result.aboveThreshold, config.monitorSamples);
    result.inferredDividesCache = result.divHits > result.mulHits;
    return result;
}

} // namespace uscope::defense
