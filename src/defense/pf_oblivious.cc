#include "defense/pf_oblivious.hh"

#include <set>

#include "attack/monitor.hh"
#include "attack/port_contention.hh"
#include "core/microscope.hh"
#include "cpu/program.hh"

namespace uscope::defense
{

namespace
{

struct ObliviousVictim
{
    os::Pid pid = 0;
    std::shared_ptr<const cpu::Program> program;
    VAddr handle = 0;
    VAddr mulOps = 0;
    VAddr divOps = 0;
    VAddr secretPage = 0;
};

/**
 * The PF-oblivious transform of the Figure-6 victim: both sides of
 * the branch load from BOTH operand pages (one access redundant), so
 * the page-access pattern is secret-independent.
 */
ObliviousVictim
buildObliviousVictim(os::Kernel &kernel, bool secret)
{
    ObliviousVictim victim;
    victim.pid = kernel.createProcess("pfo-victim");
    victim.handle = kernel.allocVirtual(victim.pid, pageSize);
    victim.mulOps = kernel.allocVirtual(victim.pid, pageSize);
    victim.divOps = kernel.allocVirtual(victim.pid, pageSize);
    victim.secretPage = kernel.allocVirtual(victim.pid, pageSize);

    const std::uint64_t ints[2] = {3, 7};
    kernel.writeVirtual(victim.pid, victim.mulOps, ints, 16);
    const double doubles[2] = {3.5, 7.25};
    kernel.writeVirtual(victim.pid, victim.divOps, doubles, 16);
    const std::uint64_t secret_word = secret ? 1 : 0;
    kernel.writeVirtual(victim.pid, victim.secretPage, &secret_word, 8);
    kernel.declareEnclave(victim.pid, victim.secretPage, pageSize);

    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(victim.handle))
        .movi(2, static_cast<std::int64_t>(victim.secretPage))
        .movi(3, static_cast<std::int64_t>(victim.mulOps))
        .movi(4, static_cast<std::int64_t>(victim.divOps))
        .movi(7, 0)
        .ld(5, 2, 0)
        // Replay handle.
        .ld(6, 1, 0x20)
        .addi(6, 6, 1)
        .st(1, 0x20, 6)
        .beq(5, 7, "mul_side")
        // Div side: redundant mul-page access, then the divides.
        .ld(8, 3, 0)
        .ldf(0, 4, 0)
        .ldf(1, 4, 8)
        .fmov(2, 1)
        .fdiv(2, 2, 0)
        .fmov(3, 1)
        .fdiv(3, 3, 0)
        .jmp("done")
        .label("mul_side")
        // Mul side: redundant div-page access, then the multiplies.
        .ldf(0, 4, 0)
        .ld(8, 3, 0)
        .ld(9, 3, 8)
        .mov(10, 9)
        .mul(10, 10, 8)
        .mov(11, 9)
        .mul(11, 11, 8)
        .label("done")
        .halt();
    victim.program = std::make_shared<const cpu::Program>(b.build());
    return victim;
}

/** Pages a clean (un-attacked) run of the victim loads from. */
std::set<Vpn>
pagesTouched(bool secret, std::uint64_t seed)
{
    os::MachineConfig mcfg;
    mcfg.seed = seed;
    os::Machine machine(mcfg);
    auto &kernel = machine.kernel();
    const ObliviousVictim victim =
        buildObliviousVictim(kernel, secret);

    std::set<Vpn> pages;
    machine.core().setMemProbe(
        [&](unsigned, VAddr va, PAddr, bool is_store, bool) {
            if (!is_store)
                pages.insert(pageNumber(va));
        });
    machine.core().predictor().flush();
    kernel.startOnContext(victim.pid, 0, victim.program);
    machine.runUntilHalted(0, 1'000'000);
    return pages;
}

} // anonymous namespace

PfObliviousResult
runPfObliviousExperiment(const PfObliviousConfig &config)
{
    PfObliviousResult result;

    // 1. Controlled channel closed: both secrets load the same pages.
    const std::set<Vpn> pages_div = pagesTouched(true, config.seed);
    const std::set<Vpn> pages_mul = pagesTouched(false, config.seed);
    result.pageTraceSecretIndependent = pages_div == pages_mul;
    // Handle candidates = distinct data pages the victim touches;
    // every one can host a page-fault-inducing load.
    result.obliviousHandleCandidates =
        static_cast<unsigned>(pages_div.size());
    // The original (non-oblivious) victim touches one fewer page on
    // each path (no redundant access).
    result.originalHandleCandidates =
        result.obliviousHandleCandidates
            ? result.obliviousHandleCandidates - 1
            : 0;

    // 2. The port-contention channel still leaks through MicroScope.
    os::MachineConfig mcfg = config.machine;
    mcfg.seed = config.seed;
    os::Machine machine(mcfg);
    auto &kernel = machine.kernel();
    const ObliviousVictim victim =
        buildObliviousVictim(kernel, config.secret);
    const attack::MonitorImage monitor =
        attack::buildDivContentionMonitor(kernel, config.monitorSamples,
                                          config.cont);

    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle + 0x20;
    recipe.confidence = config.replays;
    scope.setRecipe(std::move(recipe));
    machine.core().predictor().flush();

    scope.arm();
    kernel.startOnContext(victim.pid, 0, victim.program);
    kernel.startOnContext(monitor.pid, 1, monitor.program);
    const Cycles budget =
        Cycles{config.monitorSamples} * (config.cont * 100 + 2000) +
        1000000;
    machine.runUntil([&]() { return machine.core().halted(1); },
                     budget);
    scope.disarm();
    machine.runUntilHalted(0, 1'000'000);

    const auto samples = attack::readMonitorSamples(kernel, monitor);
    for (Cycles sample : samples)
        if (sample > config.threshold)
            ++result.aboveThreshold;
    result.inferredDivides = attack::inferDivides(
        result.aboveThreshold, config.monitorSamples);
    result.inferenceCorrect =
        result.inferredDivides == config.secret;
    return result;
}

} // namespace uscope::defense
