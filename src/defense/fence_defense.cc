#include "defense/fence_defense.hh"

#include "cpu/program.hh"
#include "os/machine.hh"

namespace uscope::defense
{

namespace
{

/**
 * Benign workload: touch @p npages freshly-mapped-but-non-present
 * pages (classic demand paging), then sum their first words.
 * Measures how much the fence-on-flush defense costs an application
 * that takes ordinary page faults.
 */
Cycles
benignDemandPagingCycles(bool fenced, std::uint64_t seed,
                         unsigned npages = 24)
{
    os::MachineConfig mcfg;
    mcfg.seed = seed;
    mcfg.core.fenceOnPipelineFlush = fenced;
    os::Machine machine(mcfg);
    auto &kernel = machine.kernel();
    const os::Pid pid = kernel.createProcess("benign");
    const VAddr region = kernel.allocVirtual(pid, npages * pageSize);
    for (unsigned i = 0; i < npages; ++i)
        kernel.pageTable(pid).setPresent(region + i * pageSize, false);

    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(region))
        .movi(2, 0)                   // sum
        .movi(3, 0)                   // i
        .movi(4, npages)
        .movi(6, pageSize)
        .label("loop")
        .ld(5, 1, 0)                  // faults once per page
        .add(2, 2, 5)
        .add(1, 1, 6)
        .addi(3, 3, 1)
        .blt(3, 4, "loop")
        .halt();
    kernel.startOnContext(
        pid, 0, std::make_shared<const cpu::Program>(b.build()));
    machine.runUntilHalted(0, 10'000'000);
    return machine.cycle();
}

} // anonymous namespace

FenceAblationResult
runFenceAblation(std::uint64_t seed, unsigned samples)
{
    FenceAblationResult result;

    attack::PortContentionConfig base;
    base.seed = seed;
    base.samples = samples;

    attack::PortContentionConfig cfg = base;
    cfg.victimDivides = true;
    result.baselineDiv = attack::runPortContentionAttack(cfg);

    cfg.machine.core.fenceOnPipelineFlush = true;
    result.fencedDiv = attack::runPortContentionAttack(cfg);

    cfg.victimDivides = false;
    result.fencedMul = attack::runPortContentionAttack(cfg);

    // Defeated when the fenced div case is indistinguishable from the
    // noise floor (no longer passes the adversary's decision rule).
    result.attackDefeated = !result.fencedDiv.inferredDivides;

    result.benignBaselineCycles =
        benignDemandPagingCycles(false, seed);
    result.benignFencedCycles = benignDemandPagingCycles(true, seed);
    result.benignOverhead =
        result.benignBaselineCycles
            ? (static_cast<double>(result.benignFencedCycles) /
                   static_cast<double>(result.benignBaselineCycles) -
               1.0)
            : 0.0;
    return result;
}

} // namespace uscope::defense
