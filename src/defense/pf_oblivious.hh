/**
 * @file
 * Page-fault obliviousness defense model (§8, Shinde et al. [51]):
 * the program is transformed so both branch directions touch the same
 * pages (redundant accesses), making the page-fault *sequence*
 * independent of the secret and defeating controlled-channel attacks.
 *
 * The paper's observation, reproduced here: the transformation
 * actually *helps* MicroScope — the redundant memory accesses are
 * additional replay-handle candidates, and the finer-grained channels
 * (execution-port contention) remain secret-dependent.
 */

#ifndef USCOPE_DEFENSE_PF_OBLIVIOUS_HH
#define USCOPE_DEFENSE_PF_OBLIVIOUS_HH

#include <cstdint>

#include "common/types.hh"
#include "os/machine.hh"

namespace uscope::defense
{

/** Configuration of the PF-obliviousness experiment. */
struct PfObliviousConfig
{
    bool secret = true;
    std::uint64_t replays = 40;
    unsigned monitorSamples = 4000;
    unsigned cont = 4;
    Cycles threshold = 120;
    std::uint64_t seed = 42;
    os::MachineConfig machine;
};

/** Outcome. */
struct PfObliviousResult
{
    /**
     * The controlled channel is closed: the set of pages faulted on
     * is the same for both secrets.
     */
    bool pageTraceSecretIndependent = false;
    /**
     * Replay-handle candidates (distinct data pages accessed before
     * the sensitive operations) in the oblivious binary vs the
     * original — the transformation adds handles.
     */
    unsigned obliviousHandleCandidates = 0;
    unsigned originalHandleCandidates = 0;
    /** Port-contention samples above threshold (still leaks). */
    std::uint64_t aboveThreshold = 0;
    bool inferredDivides = false;
    bool inferenceCorrect = false;
};

/** Run the experiment. */
PfObliviousResult runPfObliviousExperiment(const PfObliviousConfig &);

} // namespace uscope::defense

#endif // USCOPE_DEFENSE_PF_OBLIVIOUS_HH
