/**
 * @file
 * §8 "Fences on Pipeline Flushes": after every pipeline flush the
 * hardware (or OS) inserts a fence, so a replayed window cannot issue
 * anything younger than the faulting instruction — starving
 * MicroScope of speculative side effects.
 *
 * This module evaluates the defense: the port-contention attack under
 * the fence (it should collapse to the mul-path noise floor) and the
 * performance cost on a benign demand-paging workload.
 */

#ifndef USCOPE_DEFENSE_FENCE_DEFENSE_HH
#define USCOPE_DEFENSE_FENCE_DEFENSE_HH

#include <cstdint>

#include "attack/port_contention.hh"

namespace uscope::defense
{

/** Outcome of the fence-on-flush ablation. */
struct FenceAblationResult
{
    /** Attack on the div victim, fence off / on. */
    attack::PortContentionResult baselineDiv;
    attack::PortContentionResult fencedDiv;
    /** Attack on the mul victim with the fence (noise floor). */
    attack::PortContentionResult fencedMul;
    /** True when the fence reduced the div case to the noise floor. */
    bool attackDefeated = false;

    /** Benign demand-paging workload cycles, fence off / on. */
    Cycles benignBaselineCycles = 0;
    Cycles benignFencedCycles = 0;
    double benignOverhead = 0.0;
};

/** Run the full ablation. */
FenceAblationResult runFenceAblation(std::uint64_t seed = 42,
                                     unsigned samples = 4000);

} // namespace uscope::defense

#endif // USCOPE_DEFENSE_FENCE_DEFENSE_HH
