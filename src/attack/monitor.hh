/**
 * @file
 * The Monitor process of Figure 7: a loop that repeatedly executes a
 * floating-point divide on the SMT sibling of the Victim, timing each
 * burst with RDTSC and storing the latencies into a buffer.
 *
 * When the Victim's replayed window contains divides, the shared
 * (unpipelined) divider port delays the Monitor's divides and the
 * sample exceeds the contention threshold; with multiplies it does
 * not.  This is the sensor for the paper's main result (Figure 10).
 */

#ifndef USCOPE_ATTACK_MONITOR_HH
#define USCOPE_ATTACK_MONITOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "cpu/program.hh"
#include "os/kernel.hh"

namespace uscope::attack
{

/** A Monitor process image. */
struct MonitorImage
{
    os::Pid pid = 0;
    std::shared_ptr<const cpu::Program> program;
    VAddr buffer = 0;      ///< Latency samples, 8 bytes each.
    unsigned samples = 0;  ///< Number of measurements (buff).
    unsigned cont = 0;     ///< Divides per measurement (cont).
};

/**
 * Build the Figure-7 port-contention Monitor.
 *
 * @param samples Number of latency measurements (paper: 10,000).
 * @param cont    unit_div_contention() calls per measurement.
 */
MonitorImage buildDivContentionMonitor(os::Kernel &kernel,
                                       unsigned samples, unsigned cont);

/** Read the Monitor's latency buffer after (or during) the run. */
std::vector<Cycles> readMonitorSamples(os::Kernel &kernel,
                                       const MonitorImage &monitor);

} // namespace uscope::attack

#endif // USCOPE_ATTACK_MONITOR_HH
