#include "attack/mispredict_replay.hh"

#include "common/logging.hh"
#include "cpu/program.hh"

namespace uscope::attack
{

MispredictReplayResult
runMispredictReplay(const MispredictReplayConfig &config)
{
    os::MachineConfig mcfg = config.machine;
    mcfg.seed = config.seed;
    os::Machine machine(mcfg);
    auto &kernel = machine.kernel();

    const os::Pid pid = kernel.createProcess("victim");
    const VAddr transmit = kernel.allocVirtual(pid, pageSize);

    // A run of always-taken branches (each jumping to the next
    // instruction) followed by the sensitive load.  All branches are
    // in flight together, so each primed misprediction squashes and
    // re-fetches everything younger — including the transmit.
    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(transmit));
    std::vector<std::uint64_t> branch_pcs;
    for (unsigned i = 0; i < config.branches; ++i) {
        branch_pcs.push_back(b.here());
        b.beq(1, 1, format("next%u", i));   // always taken
        b.label(format("next%u", i));
    }
    b.ld(2, 1, 0)   // the sensitive ("transmit") load
        .halt();

    std::uint64_t transmit_execs = 0;
    machine.core().setMemProbe(
        [&](unsigned, VAddr va, PAddr, bool is_store, bool) {
            if (!is_store && pageBase(va) == transmit)
                ++transmit_execs;
        });

    // The attacker primes the shared predictor; it knows the victim
    // binary and its pc bias (§4.2.3).
    const std::uint64_t bias = kernel.pcBiasOf(pid);
    for (std::uint64_t pc : branch_pcs)
        machine.core().predictor().prime(bias + pc,
                                         !config.primeToMispredict);

    const PAddr transmit_pa = *kernel.translate(pid, transmit);
    kernel.flushPhysLine(transmit_pa);

    cpu::Program program = b.build();
    kernel.startOnContext(
        pid, 0,
        std::make_shared<const cpu::Program>(std::move(program)));

    MispredictReplayResult result;
    result.victimCompleted = machine.runUntilHalted(0, 1'000'000);
    result.transmitExecutions = transmit_execs;
    result.mispredicts = machine.core().stats(0).mispredicts;
    result.residueObserved =
        kernel.timedProbePhys(transmit_pa).latency < 100;
    return result;
}

} // namespace uscope::attack
