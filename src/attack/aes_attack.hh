/**
 * @file
 * The AES cache attack of §4.4 and Figure 11.
 *
 * The victim enclave runs one OpenSSL-0.9.8-style AES decryption
 * (compiled to the mini-ISA).  MicroScope single-steps it with a
 * replay handle on the Td0 page and a pivot on the rk page: each
 * t-group's Td0 lookup faults, the walk's shadow executes the
 * *remaining* independent table lookups, and the Replayer probes the
 * Td tables after every replay.  Priming between replays makes the
 * channel noiseless: exactly the in-window lines hit L1, everything
 * else misses to DRAM — from a single logical decryption.
 *
 * Handle/pivot roles are mirrored relative to the paper's walkthrough
 * (which faults on rk and pivots on Td0); with a Td0 handle every
 * episode cleanly isolates one t-group, which sharpens attribution.
 * The mechanism — alternating present bits between the two pages
 * (§4.2.2) — is identical.
 *
 * As an extension beyond the paper, the per-episode line sets are
 * resolved to individual state bytes by suffix differencing, which
 * recovers the high nibble of (ciphertext ^ round-key) bytes.
 */

#ifndef USCOPE_ATTACK_AES_ATTACK_HH
#define USCOPE_ATTACK_AES_ATTACK_HH

#include <array>
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "common/types.hh"
#include "crypto/aes.hh"
#include "mem/hierarchy.hh"
#include "obs/event.hh"
#include "obs/metrics.hh"
#include "os/machine.hh"

namespace uscope::attack
{

/** Configuration shared by the Figure-11 run and the full extraction. */
struct AesAttackConfig
{
    /** Key bytes; the first keyBits/8 are used. */
    std::array<std::uint8_t, 32> key{};
    std::array<std::uint8_t, 16> plaintext{};
    unsigned keyBits = 128;
    /** Replays per episode (Figure 11 uses 3). */
    std::uint64_t replaysPerEpisode = 3;
    std::uint64_t seed = 42;
    os::MachineConfig machine;
};

/** One probe sweep over a table's 16 lines. */
struct LineProbe
{
    std::array<Cycles, 16> latency{};
    std::array<mem::HitLevel, 16> level{};

    /** Lines whose probe latency marks a cache hit. */
    std::set<unsigned> hitLines(Cycles hit_threshold = 100) const;
};

/** Result of the Figure-11 experiment. */
struct Fig11Result
{
    /** Td1 probe sweeps after Replay 0, 1, 2. */
    std::vector<LineProbe> replays;
    /** Ground truth: Td1 lines accessed in the measured window. */
    std::set<unsigned> expectedLines;
    /** Lines classified as hits after each primed replay. */
    std::vector<std::set<unsigned>> measuredLines;
    bool consistentAcrossPrimedReplays = false;
    bool matchesGroundTruth = false;
    /**
     * §4.3 denoising: a line is hot when a strict majority of primed
     * replays measured it hot.  Noiselessly identical to any single
     * primed replay; under a FaultPlan this is the estimate whose
     * accuracy grows with replaysPerEpisode.
     */
    std::set<unsigned> majorityLines;
    bool majorityMatchesGroundTruth = false;
    /** Component metrics snapshot taken after the run. */
    obs::MetricSnapshot metrics;
    /** Event trace (non-empty when config.machine.obs.traceEvents). */
    obs::EventLog events;
};

/** Reproduce Figure 11. */
Fig11Result runFig11(const AesAttackConfig &config);

/** Per-episode measurement of the full single-stepping attack. */
struct AesEpisode
{
    unsigned round = 0;  ///< 1-based inner round.
    unsigned group = 0;  ///< t-group 0..3.
    /** Lines seen per table (slot 0: Td0 from the pivot window;
     *  slots 1..3: Td1..Td3 by majority vote across the episode's
     *  primed replays — §4.3 denoising, so a fault-evicted line in
     *  one replay does not erase it from the episode). */
    std::array<std::set<unsigned>, 4> lines;
    /** True when every primed replay measured the same line sets. */
    bool stable = true;
};

/** Result of the full extraction. */
struct AesExtractionResult
{
    std::vector<AesEpisode> episodes;
    /** Final-round Td4 lines (from the last pivot window). */
    std::set<unsigned> td4Lines;
    /** Whether the decryption still produced the right plaintext. */
    bool plaintextCorrect = false;
    std::uint64_t totalReplays = 0;
    std::uint64_t totalFaults = 0;
    /** Component metrics snapshot taken after the run. */
    obs::MetricSnapshot metrics;
    /** Event trace (non-empty when config.machine.obs.traceEvents). */
    obs::EventLog events;

    /** Per-round, per-table union of measured lines. */
    std::array<std::set<unsigned>, 4>
    roundLines(unsigned round) const;

    /**
     * Attribute lines to groups by suffix differencing.  Entry
     * [round-1][group][table] is the recovered line, or nullopt when
     * collisions make it ambiguous.
     */
    std::vector<std::array<std::array<std::optional<unsigned>, 4>, 4>>
    attributeLines(unsigned rounds) const;
};

/** Single-step one full decryption and extract every table access. */
AesExtractionResult runAesExtraction(const AesAttackConfig &config);

/**
 * Extension: recover the high nibbles of the round-1 state bytes
 * (i.e., of ciphertext ^ rk[0..3]) from attributed lines.  Returns
 * recovered nibble (or nullopt) for each of the 16 state bytes.
 */
std::array<std::optional<unsigned>, 16>
recoverRound1Nibbles(const AesExtractionResult &result);

/** Ground truth the recovery is checked against. */
std::array<unsigned, 16>
groundTruthRound1Nibbles(const AesAttackConfig &config);

} // namespace uscope::attack

#endif // USCOPE_ATTACK_AES_ATTACK_HH
