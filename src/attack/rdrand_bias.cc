#include "attack/rdrand_bias.hh"

#include "attack/victims.hh"
#include "core/microscope.hh"

namespace uscope::attack
{

RdrandResult
runRdrandObservation(const RdrandConfig &config)
{
    os::MachineConfig mcfg = config.machine;
    mcfg.seed = config.seed;
    mcfg.core.rdrandSerializing = config.serializingRdrand;
    os::Machine machine(mcfg);
    auto &kernel = machine.kernel();

    const VictimImage victim = buildRdrandVictim(kernel);
    const PAddr line0 = *kernel.translate(victim.pid, victim.transmitA);
    const PAddr line1 = line0 + lineSize;

    RdrandResult result;

    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle;
    recipe.confidence = config.replays;
    recipe.walkPlan = ms::PageWalkPlan::longest();
    recipe.onReplay = [&](const ms::ReplayEvent &) {
        const bool hot0 = kernel.timedProbePhys(line0).latency < 100;
        const bool hot1 = kernel.timedProbePhys(line1).latency < 100;
        int observed = -1;
        if (hot0 != hot1) {
            observed = hot1 ? 1 : 0;
            ++result.observations;
        }
        result.observedBits.push_back(observed);
        return true;
    };
    recipe.beforeResume = [&](const ms::ReplayEvent &) {
        kernel.flushPhysLine(line0);
        kernel.flushPhysLine(line1);
    };
    scope.setRecipe(std::move(recipe));

    kernel.flushPhysLine(line0);
    kernel.flushPhysLine(line1);
    scope.arm();
    kernel.startOnContext(victim.pid, 0, victim.program);
    machine.runUntil(
        [&]() { return !scope.armed() || machine.core().halted(0); },
        Cycles{config.replays} * 50000 + 1000000);
    scope.disarm();
    machine.runUntilHalted(0, 1'000'000);

    result.victimCompleted = machine.core().halted(0);

    std::uint64_t retired = 0;
    if (kernel.readVirtual(victim.pid, victim.transmitA + 1024,
                           &retired, 8)) {
        result.retiredBit = static_cast<int>(retired & 1);
    }
    return result;
}

} // namespace uscope::attack
