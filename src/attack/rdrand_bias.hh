/**
 * @file
 * RDRAND integrity attack (paper §7.2).
 *
 * The victim draws hardware entropy in the shadow of a replay handle
 * and transmits bit 0 of the draw through a cache line.  Two
 * configurations are measured:
 *
 *  - RDRAND *without* its serializing fence: the transmit executes
 *    speculatively, so the attacker observes every speculative draw
 *    over the cache channel (the observation component of the
 *    attack works).
 *  - RDRAND *with* the fence (real Intel behaviour): nothing younger
 *    than RDRAND executes in the window, so the attacker observes
 *    nothing — "the attack does not go through".
 *
 * The run also reports the honest limitation of bias-via-page-fault
 * replay: every replay and the final release each re-draw, so the
 * retired value is a fresh sample regardless of what was observed
 * (biasing the committed value needs a replay handle that can abort
 * *after* retirement — TSX, see attack/tsx_replay.hh).
 */

#ifndef USCOPE_ATTACK_RDRAND_BIAS_HH
#define USCOPE_ATTACK_RDRAND_BIAS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "os/machine.hh"

namespace uscope::attack
{

/** Configuration of one RDRAND-observation run. */
struct RdrandConfig
{
    bool serializingRdrand = true;  ///< Intel's actual behaviour.
    std::uint64_t replays = 32;
    std::uint64_t seed = 42;
    os::MachineConfig machine;
};

/** Outcome. */
struct RdrandResult
{
    /** Per-replay observation: -1 none, else the observed bit. */
    std::vector<int> observedBits;
    /** Replays in which a draw was observed over the channel. */
    std::uint64_t observations = 0;
    /** Bit 0 of the value the victim architecturally consumed. */
    int retiredBit = -1;
    bool victimCompleted = false;
};

/** Run the observation experiment once. */
RdrandResult runRdrandObservation(const RdrandConfig &);

} // namespace uscope::attack

#endif // USCOPE_ATTACK_RDRAND_BIAS_HH
