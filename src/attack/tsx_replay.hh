/**
 * @file
 * TSX-abort replay handles (paper §7.1).
 *
 * Entering a transaction is an alternative replay handle: the
 * attacker aborts the transaction at will (Intel TSX aborts when
 * dirty — write-set — data is evicted from the private cache, which
 * a malicious OS controls), rolling architectural state back to
 * TXBEGIN while microarchitectural residue survives.  Two properties
 * distinguish this from page-fault handles:
 *
 *  - the replayed window is the whole transaction body, not the ROB;
 *  - instructions *retire* (transactionally) inside the window, so a
 *    serializing RDRAND no longer hides its value (§7.2's fence "will
 *    no longer be effective") — and, because the attacker can choose
 *    to abort *after observing* a retired draw but *before commit*,
 *    the committed value can actually be biased.
 */

#ifndef USCOPE_ATTACK_TSX_REPLAY_HH
#define USCOPE_ATTACK_TSX_REPLAY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "os/machine.hh"

namespace uscope::attack
{

/** Configuration of the TSX secret-replay experiment. */
struct TsxReplayConfig
{
    bool secret = true;
    /** Times the attacker aborts (= replays obtained). */
    unsigned aborts = 8;
    /** Victim's retry budget (must exceed aborts to succeed). */
    unsigned maxRetries = 16;
    /** Attacker polling period in cycles. */
    Cycles pollInterval = 25;
    std::uint64_t seed = 42;
    os::MachineConfig machine;
};

/** Outcome of the secret-replay experiment. */
struct TsxReplayResult
{
    /** Replays in which the secret was observed over the channel. */
    std::uint64_t observations = 0;
    std::uint64_t txAborts = 0;
    bool victimSucceeded = false;  ///< Transaction finally committed.
    bool inferredSecret = false;
    bool victimCompleted = false;
};

/** Replay a transaction body @p aborts times, observing each pass. */
TsxReplayResult runTsxSecretReplay(const TsxReplayConfig &);

/** Configuration of the RDRAND-bias-via-TSX experiment. */
struct TsxBiasConfig
{
    int desiredBit = 1;     ///< The attacker wants this bit committed.
    unsigned maxAborts = 64;
    unsigned maxRetries = 256;
    Cycles pollInterval = 10;
    std::uint64_t seed = 42;
    os::MachineConfig machine;   ///< rdrandSerializing stays true!
};

/** Outcome of one bias run. */
struct TsxBiasResult
{
    int committedBit = -1;
    std::uint64_t abortsIssued = 0;
    std::uint64_t drawsObserved = 0;
    bool victimCompleted = false;
    /** True when the committed bit equals the desired bit. */
    bool biased = false;
};

/**
 * Bias a (serializing!) RDRAND: abort the transaction whenever the
 * observed draw has the wrong bit, release it when it is right.
 */
TsxBiasResult runTsxRdrandBias(const TsxBiasConfig &);

} // namespace uscope::attack

#endif // USCOPE_ATTACK_TSX_REPLAY_HH
