#include "attack/port_contention.hh"

#include <algorithm>

#include "attack/monitor.hh"
#include "attack/victims.hh"
#include "core/microscope.hh"

namespace uscope::attack
{

bool
inferDivides(std::uint64_t above_threshold, unsigned samples)
{
    // The paper observes 4 vs 64 exceedances in 10,000 samples (16x).
    // Call it a divide when exceedances clear 0.2% of the samples —
    // comfortably above the mul path's noise floor, comfortably below
    // the div path's signal.
    return above_threshold * 500 > samples;
}

PortContentionResult
runPortContentionAttack(const PortContentionConfig &config)
{
    os::MachineConfig mcfg = config.machine;
    mcfg.seed = config.seed;
    os::Machine machine(mcfg);
    auto &kernel = machine.kernel();

    // Victim on SMT context 0, Monitor on its sibling, context 1.
    const VictimImage victim =
        buildControlFlowVictim(kernel, config.victimDivides);
    const MonitorImage monitor =
        buildDivContentionMonitor(kernel, config.samples, config.cont);

    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle + 0x20;  // the count++ access
    recipe.confidence = config.replays;
    recipe.walkPlan = ms::PageWalkPlan::longest();
    scope.setRecipe(std::move(recipe));

    if (config.flushPredictor) {
        // Enclave-boundary countermeasure [12]: also puts the
        // predictor into a *public* state, which §4.2.3 exploits.
        machine.core().predictor().flush();
    }

    scope.arm();
    kernel.startOnContext(victim.pid, 0, victim.program);
    kernel.startOnContext(monitor.pid, 1, monitor.program);

    // One Monitor sample costs on the order of cont * divLatency
    // cycles; budget generously beyond that.
    const Cycles budget =
        Cycles{config.samples} * (config.cont * 100 + 2000) + 1000000;
    machine.runUntil([&]() { return machine.core().halted(1); }, budget);

    PortContentionResult result;
    result.replaysDone = scope.stats().totalReplays;
    result.monitorCompleted = machine.core().halted(1);
    scope.disarm();
    machine.runUntilHalted(0, 1000000);
    result.victimCompleted = machine.core().halted(0);
    result.totalCycles = machine.cycle();

    // The fault layer models the attacker losing measurements (SMT
    // sibling descheduled, buffer overruns): each raw sample passes
    // one deterministic drop draw, so the draw count — and with it
    // the schedule — depends only on the monitor geometry.
    const std::vector<Cycles> raw = readMonitorSamples(kernel, monitor);
    result.samples.reserve(raw.size());
    for (Cycles sample : raw) {
        if (machine.faults().dropMonitorSample())
            ++result.samplesDropped;
        else
            result.samples.push_back(sample);
    }
    for (Cycles sample : result.samples)
        if (sample > config.threshold)
            ++result.aboveThreshold;

    std::vector<Cycles> sorted = result.samples;
    std::sort(sorted.begin(), sorted.end());
    result.medianLatency = sorted.empty() ? 0 : sorted[sorted.size() / 2];
    result.maxLatency = sorted.empty() ? 0 : sorted.back();
    result.inferredDivides = inferDivides(
        result.aboveThreshold,
        static_cast<unsigned>(result.samples.size()));

    obs::MetricRegistry registry;
    machine.exportMetrics(registry);
    scope.exportMetrics(registry);
    result.metrics = registry.snapshot();
    result.events = machine.observer().trace.drain();
    return result;
}

} // namespace uscope::attack
