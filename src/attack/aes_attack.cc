#include "attack/aes_attack.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "core/microscope.hh"
#include "crypto/aes_codegen.hh"

namespace uscope::attack
{

namespace
{

/**
 * The probe classifies a line as a cache hit below this latency.
 * After priming, hits are L1 (~50 cycles measured) and misses DRAM
 * (>300 cycles); the Figure-11 bands sit far apart.
 */
constexpr Cycles hitThreshold = 100;

/** Everything one AES attack run needs, wired once. */
struct AesRig
{
    os::Machine machine;
    os::Pid pid = 0;
    crypto::AesKey decKey;
    crypto::AesVictimLayout layout;
    std::array<std::uint8_t, 16> ct{};
    std::array<PAddr, 5> tablePa{};
    std::shared_ptr<const cpu::Program> program;

    explicit AesRig(const AesAttackConfig &config)
        : machine([&] {
              os::MachineConfig mcfg = config.machine;
              mcfg.seed = config.seed;
              return mcfg;
          }()),
          decKey(config.key.data(), config.keyBits, true)
    {
        auto &kernel = machine.kernel();
        pid = kernel.createProcess("aes-enclave");
        layout = crypto::setupAesVictim(kernel, pid, decKey);

        const crypto::AesKey enc(config.key.data(), config.keyBits,
                                 false);
        crypto::encryptBlock(enc, config.plaintext.data(), ct.data());
        crypto::loadCiphertext(kernel, pid, layout, ct.data());

        for (unsigned t = 0; t < 5; ++t)
            tablePa[t] = *kernel.translate(pid, layout.tableVa(t));

        // Seal the enclave after the image is loaded (SGX builds and
        // measures pages in, then locks them).  The round keys are
        // the secret; the tables are sealed too — the attacker's
        // probes below model same-set Prime+Probe conflict timing,
        // which needs only physical-address knowledge, not reads of
        // enclave data.
        for (unsigned t = 0; t < 5; ++t)
            kernel.declareEnclave(pid, layout.tableVa(t), pageSize);
        kernel.declareEnclave(pid, layout.rk, pageSize);
        kernel.declareEnclave(pid, layout.input, pageSize);

        program = std::make_shared<const cpu::Program>(
            crypto::buildAesDecryptProgram(layout));
    }

    void
    primeTables(unsigned upto = 4)
    {
        for (unsigned t = 0; t < upto; ++t)
            machine.kernel().primeRange(tablePa[t], 1024);
    }

    LineProbe
    probeTable(unsigned table)
    {
        LineProbe probe;
        for (unsigned line = 0; line < 16; ++line) {
            const os::ProbeResult r = machine.kernel().timedProbePhys(
                tablePa[table] + line * lineSize);
            probe.latency[line] = r.latency;
            probe.level[line] = r.level;
        }
        return probe;
    }

    /**
     * Model the cache state a warm system would have after enclave
     * setup: table lines scattered across the hierarchy.
     */
    void
    warmTables(std::uint64_t seed)
    {
        Rng rng(seed);
        const mem::HitLevel levels[4] = {
            mem::HitLevel::L1, mem::HitLevel::L2, mem::HitLevel::L3,
            mem::HitLevel::Dram};
        for (unsigned t = 0; t < 5; ++t)
            for (unsigned line = 0; line < 16; ++line)
                machine.kernel().installPhysAt(
                    tablePa[t] + line * lineSize,
                    levels[rng.below(4)]);
    }
};

/** Machine + module metrics, snapshotted after a finished run. */
obs::MetricSnapshot
snapshotRun(const os::Machine &machine, const ms::Microscope &scope)
{
    obs::MetricRegistry registry;
    machine.exportMetrics(registry);
    scope.exportMetrics(registry);
    return registry.snapshot();
}

} // namespace

std::set<unsigned>
LineProbe::hitLines(Cycles hit_threshold) const
{
    std::set<unsigned> hits;
    for (unsigned line = 0; line < 16; ++line)
        if (latency[line] < hit_threshold)
            hits.insert(line);
    return hits;
}

Fig11Result
runFig11(const AesAttackConfig &config)
{
    AesRig rig(config);
    Fig11Result result;

    ms::Microscope scope(rig.machine);
    ms::AttackRecipe recipe;
    recipe.victim = rig.pid;
    recipe.replayHandle = rig.layout.td0;
    recipe.pivot = rig.layout.rk;
    recipe.confidence = config.replaysPerEpisode;
    recipe.maxEpisodes = 1;
    recipe.walkPlan = ms::PageWalkPlan::longest();
    recipe.onReplay = [&](const ms::ReplayEvent &) {
        result.replays.push_back(rig.probeTable(1));
        return true;
    };
    recipe.beforeResume = [&](const ms::ReplayEvent &) {
        // "Before each of the next two replays, the Replayer primes
        // the cache hierarchy, evicting all the lines of the tables."
        rig.primeTables();
    };
    scope.setRecipe(std::move(recipe));

    // Replay 0 runs against warm (unprimed) cache state, giving the
    // mixed L1 / L2-L3 / memory latencies of Figure 11's first panel.
    rig.warmTables(config.seed * 17 + 5);

    scope.arm();
    rig.machine.kernel().startOnContext(rig.pid, 0, rig.program);
    rig.machine.runUntilHalted(0, 50'000'000);
    scope.disarm();

    // Ground truth: the window behind the round-1 t0 Td0 fault covers
    // every independent round-1 lookup, i.e. all four Td1 accesses.
    const crypto::DecAccessTrace trace =
        crypto::traceDecryption(rig.decKey, rig.ct.data());
    for (std::uint8_t index : trace.indices[0][1])
        result.expectedLines.insert(crypto::tableLineOf(index));

    for (std::size_t i = 1; i < result.replays.size(); ++i)
        result.measuredLines.push_back(
            result.replays[i].hitLines(hitThreshold));

    result.consistentAcrossPrimedReplays =
        !result.measuredLines.empty();
    for (const auto &lines : result.measuredLines)
        result.consistentAcrossPrimedReplays &=
            lines == result.measuredLines.front();
    result.matchesGroundTruth =
        result.consistentAcrossPrimedReplays &&
        !result.measuredLines.empty() &&
        result.measuredLines.front() == result.expectedLines;

    // §4.3: average the channel over replays.  A line counts as hot
    // when a strict majority of primed replays saw it hot, so isolated
    // fault-layer evictions (which only ever remove hits — jitter and
    // misses push latencies up, never below the threshold) are voted
    // down as replaysPerEpisode grows.
    std::array<unsigned, 16> votes{};
    for (const auto &lines : result.measuredLines)
        for (unsigned line : lines)
            ++votes[line];
    for (unsigned line = 0; line < 16; ++line)
        if (votes[line] * 2 > result.measuredLines.size())
            result.majorityLines.insert(line);
    result.majorityMatchesGroundTruth =
        !result.measuredLines.empty() &&
        result.majorityLines == result.expectedLines;
    result.metrics = snapshotRun(rig.machine, scope);
    result.events = rig.machine.observer().trace.drain();
    return result;
}

std::array<std::set<unsigned>, 4>
AesExtractionResult::roundLines(unsigned round) const
{
    std::array<std::set<unsigned>, 4> lines;
    for (const AesEpisode &episode : episodes) {
        if (episode.round != round)
            continue;
        for (unsigned t = 0; t < 4; ++t)
            lines[t].insert(episode.lines[t].begin(),
                            episode.lines[t].end());
    }
    return lines;
}

std::vector<std::array<std::array<std::optional<unsigned>, 4>, 4>>
AesExtractionResult::attributeLines(unsigned rounds) const
{
    std::vector<std::array<std::array<std::optional<unsigned>, 4>, 4>>
        out(rounds);
    auto episode_at = [this](unsigned round,
                             unsigned group) -> const AesEpisode * {
        for (const AesEpisode &e : episodes)
            if (e.round == round && e.group == group)
                return &e;
        return nullptr;
    };

    for (unsigned r = 1; r <= rounds; ++r) {
        for (unsigned t = 0; t < 4; ++t) {
            for (unsigned g = 0; g < 4; ++g) {
                const AesEpisode *cur = episode_at(r, g);
                if (!cur)
                    continue;
                std::set<unsigned> diff = cur->lines[t];
                if (g < 3) {
                    if (const AesEpisode *next = episode_at(r, g + 1))
                        for (unsigned line : next->lines[t])
                            diff.erase(line);
                }
                // A singleton difference pins the group's line; an
                // empty one means it collides with a later group's.
                if (diff.size() == 1)
                    out[r - 1][g][t] = *diff.begin();
            }
        }
    }
    return out;
}

AesExtractionResult
runAesExtraction(const AesAttackConfig &config)
{
    AesRig rig(config);
    AesExtractionResult result;
    const unsigned rounds = rig.decKey.rounds();
    const unsigned inner_groups = (rounds - 1) * 4;

    // Per-episode scratch, keyed by the engine's episode counter.
    // Handle-window tables (Td1..Td3) accumulate per-line votes over
    // the episode's primed replays and classify by strict majority
    // (§4.3 denoising): noiselessly identical to the first replay,
    // and under a FaultPlan a single evicted line cannot erase a hit
    // once replaysPerEpisode outvotes it.
    struct Scratch
    {
        std::array<std::set<unsigned>, 4> lines;
        std::array<std::array<unsigned, 16>, 4> votes{};
        unsigned primedReplays = 0;
        bool stable = true;
        bool started = false;
    };
    std::vector<Scratch> scratch(inner_groups + 2);

    ms::Microscope scope(rig.machine);
    ms::AttackRecipe recipe;
    recipe.victim = rig.pid;
    recipe.replayHandle = rig.layout.td0;
    recipe.pivot = rig.layout.rk;
    recipe.confidence = config.replaysPerEpisode;
    recipe.maxEpisodes = 0;
    recipe.walkPlan = ms::PageWalkPlan::longest();

    recipe.onReplay = [&](const ms::ReplayEvent &ev) {
        if (ev.episode >= scratch.size())
            return true;
        Scratch &s = scratch[ev.episode];
        std::array<std::set<unsigned>, 4> now;
        for (unsigned t = 1; t < 4; ++t)
            now[t] = rig.probeTable(t).hitLines(hitThreshold);
        ++s.primedReplays;
        if (!s.started) {
            s.started = true;
            for (unsigned t = 1; t < 4; ++t)
                s.lines[t] = now[t];
        } else {
            for (unsigned t = 1; t < 4; ++t)
                s.stable &= now[t] == s.lines[t];
        }
        for (unsigned t = 1; t < 4; ++t)
            for (unsigned line : now[t])
                ++s.votes[t][line];
        return true;
    };
    recipe.beforeResume = [&](const ms::ReplayEvent &) {
        rig.primeTables(5);
    };
    recipe.onEpisodeEnd = [&](const ms::ReplayEvent &) {
        // Prime so the pivot window (which measures Td0) is clean.
        rig.primeTables(5);
    };
    recipe.onPivot = [&](const ms::ReplayEvent &ev) {
        // The pivot fault follows the window that re-ran this group's
        // Td0 access and the younger groups' — probe Td0 (and Td4,
        // which only the last pivot's window can have touched).
        const std::uint64_t episode = ev.episode ? ev.episode - 1 : 0;
        if (episode < scratch.size())
            scratch[episode].lines[0] =
                rig.probeTable(0).hitLines(hitThreshold);
        result.td4Lines = rig.probeTable(4).hitLines(hitThreshold);
    };
    scope.setRecipe(std::move(recipe));

    rig.primeTables(5);
    scope.arm();
    rig.machine.kernel().startOnContext(rig.pid, 0, rig.program);
    rig.machine.runUntilHalted(0, 500'000'000);
    scope.disarm();
    rig.machine.runUntilHalted(0, 10'000'000);

    result.totalReplays = scope.stats().totalReplays;
    result.totalFaults = rig.machine.kernel().faultCount(rig.pid);

    std::uint8_t plaintext[16];
    crypto::readPlaintext(rig.machine.kernel(), rig.pid, rig.layout,
                          plaintext);
    result.plaintextCorrect =
        std::equal(plaintext, plaintext + 16, config.plaintext.begin());

    for (unsigned e = 0; e < inner_groups; ++e) {
        if (!scratch[e].started)
            continue;
        AesEpisode episode;
        episode.round = 1 + e / 4;
        episode.group = e % 4;
        // Slot 0 (Td0, pivot window) is a single probe; slots 1..3
        // resolve by majority over the episode's primed replays.
        episode.lines[0] = scratch[e].lines[0];
        for (unsigned t = 1; t < 4; ++t)
            for (unsigned line = 0; line < 16; ++line)
                if (scratch[e].votes[t][line] * 2 >
                    scratch[e].primedReplays)
                    episode.lines[t].insert(line);
        episode.stable = scratch[e].stable;
        result.episodes.push_back(std::move(episode));
    }
    result.metrics = snapshotRun(rig.machine, scope);
    result.events = rig.machine.observer().trace.drain();
    return result;
}

std::array<std::optional<unsigned>, 16>
recoverRound1Nibbles(const AesExtractionResult &result)
{
    std::array<std::optional<unsigned>, 16> nibbles;
    const auto attribution = result.attributeLines(1);
    if (attribution.empty())
        return nibbles;

    for (unsigned g = 0; g < 4; ++g) {
        for (unsigned t = 0; t < 4; ++t) {
            const auto line = attribution[0][g][t];
            if (!line)
                continue;
            // Figure 8a index sources: t_g reads
            //   Td0[s_g >> 24], Td1[(s_{g+3} >> 16) & 0xff],
            //   Td2[(s_{g+2} >> 8) & 0xff], Td3[s_{g+1} & 0xff]
            // and the table line is the index's high nibble.
            const unsigned word = (g + (4 - t)) % 4;
            const unsigned byte = t;
            nibbles[4 * word + byte] = *line;
        }
    }
    return nibbles;
}

std::array<unsigned, 16>
groundTruthRound1Nibbles(const AesAttackConfig &config)
{
    const crypto::AesKey enc(config.key.data(), config.keyBits, false);
    const crypto::AesKey dec(config.key.data(), config.keyBits, true);
    std::uint8_t ct[16];
    crypto::encryptBlock(enc, config.plaintext.data(), ct);

    std::array<unsigned, 16> nibbles{};
    const auto &rk = dec.roundKeys();
    for (unsigned w = 0; w < 4; ++w) {
        const std::uint32_t word =
            ((std::uint32_t{ct[4 * w]} << 24) |
             (std::uint32_t{ct[4 * w + 1]} << 16) |
             (std::uint32_t{ct[4 * w + 2]} << 8) |
             std::uint32_t{ct[4 * w + 3]}) ^
            rk[w];
        for (unsigned b = 0; b < 4; ++b)
            nibbles[4 * w + b] = (word >> (24 - 8 * b + 4)) & 0xF;
    }
    return nibbles;
}

} // namespace uscope::attack
