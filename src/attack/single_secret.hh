/**
 * @file
 * Single-secret attack (paper Figure 5, §4.2.1): getSecret(id, key).
 *
 * Two channels are denoised from one logical run of the function:
 *
 *  - Subnormal channel: the secrets[id]/key divide's latency reveals
 *    whether secrets[id] is subnormal [7].  The Monitor on the SMT
 *    sibling sees much longer divider-port contention per replay for
 *    the subnormal case.
 *  - Cache channel: the secrets[id] load reveals the cache line of
 *    the accessed element ("extract the cache line address of
 *    secrets[id]"), recovering id to 8-element granularity.
 */

#ifndef USCOPE_ATTACK_SINGLE_SECRET_HH
#define USCOPE_ATTACK_SINGLE_SECRET_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "os/machine.hh"

namespace uscope::attack
{

/** Configuration of one single-secret run. */
struct SingleSecretConfig
{
    unsigned id = 137;        ///< Index into secrets[512].
    bool subnormal = true;    ///< Whether secrets[id] is subnormal.
    std::uint64_t replays = 50;
    unsigned monitorSamples = 2000;
    unsigned cont = 4;
    /**
     * Samples above this latency indicate a *subnormal* divide held
     * the port (normal divides stay under it).
     */
    Cycles subnormalThreshold = 170;
    std::uint64_t seed = 42;
    os::MachineConfig machine;
};

/** Attack outcome. */
struct SingleSecretResult
{
    /** Monitor samples above the subnormal threshold. */
    std::uint64_t slowSamples = 0;
    std::vector<Cycles> samples;
    bool inferredSubnormal = false;
    /** Cache channel: line of the secrets page observed hot. */
    std::optional<unsigned> inferredLine;
    unsigned trueLine = 0;
    bool victimCompleted = false;
    std::uint64_t replaysDone = 0;
};

/** Run the Figure-5 attack once. */
SingleSecretResult runSingleSecretAttack(const SingleSecretConfig &);

} // namespace uscope::attack

#endif // USCOPE_ATTACK_SINGLE_SECRET_HH
