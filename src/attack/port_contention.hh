/**
 * @file
 * The paper's main attack (§4.3, Figure 10): denoising the execution-
 * unit port-contention channel with microarchitectural replay.
 *
 * A Victim executes the Figure-6 control-flow-secret snippet once —
 * two multiplies or two divides, no loop.  MicroScope replays the
 * window behind a page-faulting handle while a Monitor on the SMT
 * sibling times bursts of divides (Figure 7).  The distribution of
 * Monitor latencies separates the two victim paths cleanly after a
 * modest number of replays, revealing the branch direction (and with
 * it, e.g., subnormal operands of individual FP instructions) from a
 * single logical run.
 */

#ifndef USCOPE_ATTACK_PORT_CONTENTION_HH
#define USCOPE_ATTACK_PORT_CONTENTION_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "obs/event.hh"
#include "obs/metrics.hh"
#include "os/machine.hh"

namespace uscope::attack
{

/** Configuration of one port-contention attack run. */
struct PortContentionConfig
{
    /** True: victim takes the two-divide path (Figure 6b). */
    bool victimDivides = true;
    /** Monitor measurements (paper: 10,000). */
    unsigned samples = 10000;
    /** Divides per Monitor measurement. */
    unsigned cont = 4;
    /** Replays of the victim window (the confidence threshold). */
    std::uint64_t replays = 100;
    /** Contention threshold in cycles (paper: slightly under 120). */
    Cycles threshold = 120;
    /** Flush the branch predictor at "enclave entry" [12]. */
    bool flushPredictor = true;
    std::uint64_t seed = 42;
    /** Machine-config override hook (defenses ablate through this). */
    os::MachineConfig machine;
};

/** Outcome of one run. */
struct PortContentionResult
{
    /** Monitor samples that survived the fault layer's drop model. */
    std::vector<Cycles> samples;
    /** Samples lost to the machine's FaultPlan (0 when noiseless). */
    std::uint64_t samplesDropped = 0;
    std::uint64_t aboveThreshold = 0;
    Cycles medianLatency = 0;
    Cycles maxLatency = 0;
    std::uint64_t replaysDone = 0;
    bool victimCompleted = false;
    bool monitorCompleted = false;
    /** The adversary's verdict: did the victim divide? */
    bool inferredDivides = false;
    Cycles totalCycles = 0;
    /** Component metrics snapshot taken after the run. */
    obs::MetricSnapshot metrics;
    /** Event trace (non-empty when config.machine.obs.traceEvents). */
    obs::EventLog events;
};

/** Run the attack once. */
PortContentionResult
runPortContentionAttack(const PortContentionConfig &config);

/**
 * The adversary's decision rule: given counts from a calibration run
 * (mul path) and the observed count, decide "divides" when the count
 * exceeds @p calibration by a comfortable factor.
 */
bool inferDivides(std::uint64_t above_threshold, unsigned samples);

} // namespace uscope::attack

#endif // USCOPE_ATTACK_PORT_CONTENTION_HH
