#include "attack/control_flow.hh"

#include "attack/victims.hh"
#include "core/microscope.hh"

namespace uscope::attack
{

ControlFlowResult
runControlFlowAttack(const ControlFlowConfig &config)
{
    os::MachineConfig mcfg = config.machine;
    mcfg.seed = config.seed;
    os::Machine machine(mcfg);
    auto &kernel = machine.kernel();

    const VictimImage victim =
        buildControlFlowVictim(kernel, config.secret);

    const PAddr mul_pa = *kernel.translate(victim.pid, victim.transmitA);
    const PAddr div_pa = *kernel.translate(victim.pid, victim.transmitB);

    ControlFlowResult result;

    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle + 0x20;
    recipe.confidence = config.replays;
    recipe.walkPlan = ms::PageWalkPlan::longest();
    recipe.onReplay = [&](const ms::ReplayEvent &) {
        const bool mul_hot =
            kernel.timedProbePhys(mul_pa).latency < 100;
        const bool div_hot =
            kernel.timedProbePhys(div_pa).latency < 100;
        if (mul_hot)
            ++result.mulHits;
        if (div_hot)
            ++result.divHits;
        return true;
    };
    recipe.beforeResume = [&](const ms::ReplayEvent &) {
        kernel.flushPhysLine(mul_pa);
        kernel.flushPhysLine(div_pa);
    };
    scope.setRecipe(std::move(recipe));

    // Put the predictor into a public state: either the enclave-
    // boundary flush [12] or adversarial priming as in [33].
    if (config.primeTaken) {
        // The attacker knows the victim binary and its pc bias (it
        // loaded both), so it can index the shared predictor.
        const std::uint64_t branch_pc =
            kernel.pcBiasOf(victim.pid) + victim.branchPc;
        machine.core().predictor().prime(branch_pc, *config.primeTaken);
    } else {
        machine.core().predictor().flush();
    }

    kernel.flushPhysLine(mul_pa);
    kernel.flushPhysLine(div_pa);
    scope.arm();
    kernel.startOnContext(victim.pid, 0, victim.program);

    machine.runUntil(
        [&]() { return !scope.armed() || machine.core().halted(0); },
        Cycles{config.replays} * 50000 + 1000000);
    scope.disarm();
    machine.runUntilHalted(0, 1000000);

    result.victimCompleted = machine.core().halted(0);
    result.replaysDone = scope.stats().totalReplays;
    result.victimMispredicts = machine.core().stats(0).mispredicts;

    // Decision rule: the architecturally-correct side executes in
    // every replay; the wrong side only shows up while the predictor
    // still mispredicts.  Majority across replays gives the secret.
    if (result.divHits > result.mulHits)
        result.inferredSecret = true;
    else if (result.mulHits > result.divHits)
        result.inferredSecret = false;
    result.bothPathsObserved = result.mulHits > 0 && result.divHits > 0;
    return result;
}

} // namespace uscope::attack
