/**
 * @file
 * Victim programs from the paper, written in the mini-ISA.
 *
 * Each builder returns the program plus a description of where its
 * data lives (so the attacker — who controls the OS — knows the
 * replay handle and transmit addresses, as the threat model allows).
 *
 *  - Figure 5:  getSecret(): count++ is the replay handle, the
 *    secrets[id]/key fdiv is the transmit instruction (subnormal
 *    operands change its latency), and the secrets[id] load leaks a
 *    cache line.
 *  - Figure 6:  control-flow secret: a replay handle (count++), then
 *    a branch on a secret; one path executes two integer multiplies,
 *    the other two FP divides — the port-contention transmitters.
 *  - Figure 4b: loop secret: per-iteration replay handle + transmit
 *    load + pivot on a separate page.
 *  - §7.2:      RDRAND victim whose drawn value is transmitted
 *    through a secret-dependent load.
 *  - §7.1:      TSX victim wrapping sensitive code in a transaction;
 *    aborts replay the body (an alternative replay handle).
 */

#ifndef USCOPE_ATTACK_VICTIMS_HH
#define USCOPE_ATTACK_VICTIMS_HH

#include <cstdint>
#include <memory>

#include "common/types.hh"
#include "cpu/program.hh"
#include "os/kernel.hh"

namespace uscope::attack
{

/** A victim process with its program and attack-relevant addresses. */
struct VictimImage
{
    os::Pid pid = 0;
    std::shared_ptr<const cpu::Program> program;

    /** The replay handle's data address (its own page). */
    VAddr handle = 0;
    /** Pivot data address (its own page), when the victim has one. */
    VAddr pivot = 0;
    /** Transmit/monitor addresses (attack-specific meaning). */
    VAddr transmitA = 0;
    VAddr transmitB = 0;
    /** Enclave-private region holding the secret. */
    VAddr secretBase = 0;
    /** Instruction index of the secret-dependent branch, if any. */
    std::uint64_t branchPc = 0;
};

/**
 * Figure 6 control-flow-secret victim.
 *
 * The secret (0 or 1) is stored in enclave memory and loaded into a
 * register before the replay handle; the branch picks the two-mul or
 * the two-fdiv path.  No loop: each path's transmitter executes once
 * per (speculative) pass — the paper's headline "two divide
 * instructions" setting.
 */
VictimImage buildControlFlowVictim(os::Kernel &kernel, bool secret);

/**
 * Figure 5 single-secret victim: getSecret(id, key).
 *
 * secrets[] lives in enclave memory; secrets[id]/key is the transmit
 * fdiv.  @p subnormal selects whether secrets[id] holds a subnormal
 * double (the §4.3 "fine-grain property of an instruction").
 */
VictimImage buildSingleSecretVictim(os::Kernel &kernel, unsigned id,
                                    bool subnormal);

/**
 * Figure 4b loop-secret victim: in each of @p iterations, a replay
 * handle access, a transmit load of secret[i] (each iteration touches
 * a different cache line of the secret page), then a pivot access.
 */
VictimImage buildLoopSecretVictim(os::Kernel &kernel,
                                  unsigned iterations,
                                  const std::uint8_t *secret_lines);

/**
 * §7.2 RDRAND victim: draws entropy, then transmits bit 0 of the
 * draw through one of two cache lines.  With the (default)
 * serializing RDRAND the transmit never executes speculatively.
 */
VictimImage buildRdrandVictim(os::Kernel &kernel);

/**
 * §7.1 TSX victim: a transaction whose body transmits the secret
 * through a cache line, with a retry loop in the abort handler
 * (bounded by @p max_retries).
 */
VictimImage buildTsxVictim(os::Kernel &kernel, bool secret,
                           unsigned max_retries);

/**
 * §7.1 + §7.2 combined: a transaction that draws RDRAND, transmits
 * bit 0 through a cache line (the draw *retires* transactionally, so
 * the serializing fence does not hide it), pads so a concurrent
 * attacker can react, then commits and stores the draw.
 * transmitA+1024 holds the committed value; transmitA+1088 holds a
 * success flag.
 */
VictimImage buildTsxRdrandVictim(os::Kernel &kernel,
                                 unsigned max_retries);

} // namespace uscope::attack

#endif // USCOPE_ATTACK_VICTIMS_HH
