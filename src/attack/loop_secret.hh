/**
 * @file
 * Loop-secret attack (paper Figure 4b, §4.2.2).
 *
 * Each loop iteration transmits a different secret (here: which cache
 * line of a transmit page gets loaded).  The challenge the paper
 * highlights is disambiguating secret[i] from secret[i+1]; MicroScope
 * solves it with the pivot: after denoising iteration i at the replay
 * handle, the Replayer flips present bits between the handle page and
 * the pivot page to advance exactly one iteration.
 *
 * Because younger iterations' independent loads also execute in the
 * window (up to the ROB limit), the per-iteration secret is resolved
 * by suffix differencing of consecutive episodes' line sets.
 */

#ifndef USCOPE_ATTACK_LOOP_SECRET_HH
#define USCOPE_ATTACK_LOOP_SECRET_HH

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "common/types.hh"
#include "os/machine.hh"

namespace uscope::attack
{

/** Configuration of one loop-secret run. */
struct LoopSecretConfig
{
    /** The secret sequence: one transmit line index per iteration. */
    std::vector<std::uint8_t> secretLines{9, 3, 60, 3, 27, 41, 0, 55};
    std::uint64_t replaysPerIteration = 2;
    std::uint64_t seed = 42;
    os::MachineConfig machine;
};

/** Attack outcome. */
struct LoopSecretResult
{
    /** Observed line sets per episode (iteration). */
    std::vector<std::set<unsigned>> episodeLines;
    /** Recovered per-iteration line (nullopt = ambiguous). */
    std::vector<std::optional<unsigned>> recovered;
    unsigned correct = 0;
    unsigned wrong = 0;
    bool victimCompleted = false;
    std::uint64_t totalReplays = 0;
};

/** Run the loop-secret attack once. */
LoopSecretResult runLoopSecretAttack(const LoopSecretConfig &);

} // namespace uscope::attack

#endif // USCOPE_ATTACK_LOOP_SECRET_HH
