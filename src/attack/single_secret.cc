#include "attack/single_secret.hh"

#include <map>

#include "attack/monitor.hh"
#include "attack/victims.hh"
#include "core/microscope.hh"

namespace uscope::attack
{

SingleSecretResult
runSingleSecretAttack(const SingleSecretConfig &config)
{
    os::MachineConfig mcfg = config.machine;
    mcfg.seed = config.seed;
    os::Machine machine(mcfg);
    auto &kernel = machine.kernel();

    const VictimImage victim =
        buildSingleSecretVictim(kernel, config.id, config.subnormal);
    const MonitorImage monitor = buildDivContentionMonitor(
        kernel, config.monitorSamples, config.cont);

    SingleSecretResult result;
    result.trueLine =
        static_cast<unsigned>((8ull * config.id) / lineSize);

    // The secrets page is enclave-private, but its physical lines can
    // be probed via Prime+Probe conflicts; precompute their PAs.
    const PAddr secrets_pa = *kernel.translate(victim.pid,
                                               victim.secretBase);

    // Cache-channel bookkeeping: votes per observed hot line.
    std::map<unsigned, unsigned> line_votes;

    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle;
    recipe.confidence = config.replays;
    recipe.walkPlan = ms::PageWalkPlan::longest();
    recipe.onReplay = [&](const ms::ReplayEvent &) {
        // Replayer-as-Monitor configuration: probe the secrets page.
        for (unsigned line = 0; line < pageSize / lineSize; ++line) {
            const os::ProbeResult probe = kernel.timedProbePhys(
                secrets_pa + line * lineSize);
            if (probe.latency < 100)
                ++line_votes[line];
        }
        return true;
    };
    recipe.beforeResume = [&](const ms::ReplayEvent &) {
        kernel.primeRange(secrets_pa, pageSize);
    };
    scope.setRecipe(std::move(recipe));

    kernel.primeRange(secrets_pa, pageSize);
    scope.arm();
    kernel.startOnContext(victim.pid, 0, victim.program);
    kernel.startOnContext(monitor.pid, 1, monitor.program);

    const Cycles budget =
        Cycles{config.monitorSamples} * (config.cont * 100 + 2000) +
        1000000;
    machine.runUntil([&]() { return machine.core().halted(1); }, budget);
    scope.disarm();
    machine.runUntilHalted(0, 1000000);
    result.victimCompleted = machine.core().halted(0);
    result.replaysDone = scope.stats().totalReplays;

    // Subnormal channel: count slow Monitor samples.
    result.samples = readMonitorSamples(kernel, monitor);
    for (Cycles sample : result.samples)
        if (sample > config.subnormalThreshold)
            ++result.slowSamples;
    // A subnormal divide occupies the port for fdivSubnormalLatency
    // cycles per replay, so roughly one Monitor sample per replay
    // crosses the threshold; a normal divide essentially never does.
    result.inferredSubnormal =
        result.replaysDone > 0 &&
        2 * result.slowSamples >= result.replaysDone;

    // Cache channel: majority vote across replays.
    unsigned best_votes = 0;
    for (const auto &[line, votes] : line_votes) {
        if (votes > best_votes) {
            best_votes = votes;
            result.inferredLine = line;
        }
    }
    return result;
}

} // namespace uscope::attack
