#include "attack/loop_secret.hh"

#include "attack/victims.hh"
#include "core/microscope.hh"

namespace uscope::attack
{

LoopSecretResult
runLoopSecretAttack(const LoopSecretConfig &config)
{
    os::MachineConfig mcfg = config.machine;
    mcfg.seed = config.seed;
    os::Machine machine(mcfg);
    auto &kernel = machine.kernel();

    const auto iterations =
        static_cast<unsigned>(config.secretLines.size());
    const VictimImage victim = buildLoopSecretVictim(
        kernel, iterations, config.secretLines.data());

    const PAddr transmit_pa =
        *kernel.translate(victim.pid, victim.transmitA);

    LoopSecretResult result;
    result.episodeLines.resize(iterations);
    std::vector<bool> started(iterations, false);

    ms::Microscope scope(machine);
    ms::AttackRecipe recipe;
    recipe.victim = victim.pid;
    recipe.replayHandle = victim.handle;
    recipe.pivot = victim.pivot;
    recipe.confidence = config.replaysPerIteration;
    recipe.maxEpisodes = iterations;
    // §4.4-style tuning: a consistently SHORT walk keeps every window
    // the same size across episodes (the handle's and pivot's leaf
    // PTEs share a cache line here, so a long plan could not survive
    // the pivot swaps anyway), which makes the suffix differences
    // between consecutive episodes align exactly.
    recipe.walkPlan = ms::PageWalkPlan::shortest();
    recipe.onReplay = [&](const ms::ReplayEvent &ev) {
        // Record the episode's LAST window: the first window after a
        // cold start can miss dependent accesses whose own page walks
        // outlast the (deliberately short) replay window.
        if (ev.episode >= iterations || started[ev.episode] ||
            ev.replayIndex < config.replaysPerIteration) {
            return true;
        }
        started[ev.episode] = true;
        for (unsigned line = 0; line < pageSize / lineSize; ++line) {
            if (kernel.timedProbePhys(transmit_pa + line * lineSize)
                    .latency < 100) {
                result.episodeLines[ev.episode].insert(line);
            }
        }
        return true;
    };
    recipe.beforeResume = [&](const ms::ReplayEvent &) {
        kernel.primeRange(transmit_pa, pageSize);
    };
    recipe.onEpisodeEnd = [&](const ms::ReplayEvent &) {
        kernel.primeRange(transmit_pa, pageSize);
    };
    scope.setRecipe(std::move(recipe));

    kernel.primeRange(transmit_pa, pageSize);
    scope.arm();
    kernel.startOnContext(victim.pid, 0, victim.program);
    machine.runUntilHalted(0, 100'000'000);
    scope.disarm();
    machine.runUntilHalted(0, 1'000'000);

    result.victimCompleted = machine.core().halted(0);
    result.totalReplays = scope.stats().totalReplays;

    // Episode i's window covers iterations i.. (ROB-bounded), so the
    // per-iteration line is the suffix difference; the final episode
    // has nothing younger and is exact.
    result.recovered.resize(iterations);
    for (unsigned i = 0; i < iterations; ++i) {
        std::set<unsigned> diff = result.episodeLines[i];
        if (i + 1 < iterations) {
            for (unsigned line : result.episodeLines[i + 1])
                diff.erase(line);
        }
        if (diff.size() == 1)
            result.recovered[i] = *diff.begin();
        // An empty diff means iteration i's line collides with a
        // younger iteration's — ambiguous from suffix sets alone,
        // unless the set itself is a singleton.
        else if (result.episodeLines[i].size() == 1)
            result.recovered[i] = *result.episodeLines[i].begin();
    }

    for (unsigned i = 0; i < iterations; ++i) {
        if (!result.recovered[i])
            continue;
        if (*result.recovered[i] == config.secretLines[i])
            ++result.correct;
        else
            ++result.wrong;
    }
    return result;
}

} // namespace uscope::attack
