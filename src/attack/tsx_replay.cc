#include "attack/tsx_replay.hh"

#include "attack/victims.hh"

namespace uscope::attack
{

namespace
{

/** Probe one transmit line and restore the primed state. */
bool
probeAndReprime(os::Kernel &kernel, PAddr line)
{
    const bool hot = kernel.timedProbePhys(line).latency < 100;
    kernel.flushPhysLine(line);
    return hot;
}

} // anonymous namespace

TsxReplayResult
runTsxSecretReplay(const TsxReplayConfig &config)
{
    os::MachineConfig mcfg = config.machine;
    mcfg.seed = config.seed;
    os::Machine machine(mcfg);
    auto &kernel = machine.kernel();

    const VictimImage victim =
        buildTsxVictim(kernel, config.secret, config.maxRetries);
    const PAddr line0 = *kernel.translate(victim.pid, victim.transmitA);
    const PAddr line1 = line0 + lineSize;
    const PAddr txdata = *kernel.translate(victim.pid, victim.handle);

    TsxReplayResult result;
    kernel.flushPhysLine(line0);
    kernel.flushPhysLine(line1);
    kernel.startOnContext(victim.pid, 0, victim.program);

    std::uint64_t aborts_wanted = 0;
    std::uint64_t aborts_seen = 0;
    bool pending_abort = false;
    std::uint64_t votes[2] = {0, 0};
    const Cycles budget = 5'000'000;
    while (!machine.core().halted(0) && machine.cycle() < budget) {
        machine.run(config.pollInterval);

        // Persist with a requested abort until the core confirms it:
        // the dirty write-set line only exists once the transactional
        // store has retired, so a single eviction may be too early.
        const std::uint64_t aborts_now =
            machine.core().stats(0).txAborts;
        if (pending_abort) {
            if (aborts_now > aborts_seen) {
                aborts_seen = aborts_now;
                pending_abort = false;
            } else {
                kernel.flushPhysLine(txdata);
                continue;
            }
        }

        const bool hot0 = probeAndReprime(kernel, line0);
        const bool hot1 = probeAndReprime(kernel, line1);
        if (hot0 == hot1)
            continue;
        ++result.observations;
        ++votes[hot1 ? 1 : 0];
        if (aborts_wanted < config.aborts) {
            ++aborts_wanted;
            pending_abort = true;
            kernel.flushPhysLine(txdata);
        } else {
            // Enough replays: let the transaction commit.
            machine.runUntilHalted(0, 1'000'000);
        }
    }

    result.txAborts = machine.core().stats(0).txAborts;
    result.victimCompleted = machine.core().halted(0);
    result.victimSucceeded = machine.core().readIntReg(0, 15) == 1;
    result.inferredSecret = votes[1] > votes[0];
    return result;
}

TsxBiasResult
runTsxRdrandBias(const TsxBiasConfig &config)
{
    os::MachineConfig mcfg = config.machine;
    mcfg.seed = config.seed;
    os::Machine machine(mcfg);
    auto &kernel = machine.kernel();

    const VictimImage victim =
        buildTsxRdrandVictim(kernel, config.maxRetries);
    const PAddr line0 = *kernel.translate(victim.pid, victim.transmitA);
    const PAddr line1 = line0 + lineSize;
    const PAddr txdata = *kernel.translate(victim.pid, victim.handle);

    TsxBiasResult result;
    kernel.flushPhysLine(line0);
    kernel.flushPhysLine(line1);
    kernel.startOnContext(victim.pid, 0, victim.program);

    bool released = false;
    bool pending_abort = false;
    std::uint64_t aborts_seen = 0;
    const Cycles budget = 50'000'000;
    while (!machine.core().halted(0) && machine.cycle() < budget) {
        machine.run(config.pollInterval);
        if (released)
            continue;

        const std::uint64_t aborts_now =
            machine.core().stats(0).txAborts;
        if (pending_abort) {
            if (aborts_now > aborts_seen) {
                aborts_seen = aborts_now;
                pending_abort = false;
            } else {
                kernel.flushPhysLine(txdata);
                continue;
            }
        }

        const bool hot0 = probeAndReprime(kernel, line0);
        const bool hot1 = probeAndReprime(kernel, line1);
        if (hot0 == hot1)
            continue;
        ++result.drawsObserved;
        const int bit = hot1 ? 1 : 0;
        if (bit != config.desiredBit &&
            result.abortsIssued < config.maxAborts) {
            ++result.abortsIssued;
            pending_abort = true;
            kernel.flushPhysLine(txdata);
        } else if (bit == config.desiredBit) {
            released = true;  // Let this draw commit.
        }
    }
    machine.runUntilHalted(0, 1'000'000);

    result.victimCompleted = machine.core().halted(0);
    std::uint64_t committed = 0;
    std::uint64_t flag = 0;
    kernel.readVirtual(victim.pid, victim.transmitA + 1088, &flag, 8);
    if (flag == 1 &&
        kernel.readVirtual(victim.pid, victim.transmitA + 1024,
                           &committed, 8)) {
        result.committedBit = static_cast<int>(committed & 1);
        result.biased = result.committedBit == config.desiredBit;
    }
    return result;
}

} // namespace uscope::attack
