#include "attack/victims.hh"

#include "common/logging.hh"

namespace uscope::attack
{

namespace
{

std::shared_ptr<const cpu::Program>
share(cpu::Program program)
{
    return std::make_shared<const cpu::Program>(std::move(program));
}

void
mustWrite(os::Kernel &kernel, os::Pid pid, VAddr va, const void *src,
          std::uint64_t len)
{
    if (!kernel.writeVirtual(pid, va, src, len))
        panic("victim setup: write to va %#llx failed",
              static_cast<unsigned long long>(va));
}

} // anonymous namespace

VictimImage
buildControlFlowVictim(os::Kernel &kernel, bool secret)
{
    VictimImage image;
    image.pid = kernel.createProcess("cf-victim");

    image.handle = kernel.allocVirtual(image.pid, pageSize);
    image.transmitA = kernel.allocVirtual(image.pid, pageSize);  // muls
    image.transmitB = kernel.allocVirtual(image.pid, pageSize);  // divs
    image.secretBase = kernel.allocVirtual(image.pid, pageSize);

    const std::uint64_t mul_ops[2] = {3, 7};
    mustWrite(kernel, image.pid, image.transmitA, mul_ops, 16);
    const double div_ops[2] = {3.5, 7.25};
    mustWrite(kernel, image.pid, image.transmitB, div_ops, 16);
    const std::uint64_t secret_word = secret ? 1 : 0;
    mustWrite(kernel, image.pid, image.secretBase, &secret_word, 8);
    // Seal the secret: the OS can no longer read it (SGX semantics).
    kernel.declareEnclave(image.pid, image.secretBase, pageSize);

    // Figure 6: "addq $0x1,0x20(%rbp)" is the replay handle, executed
    // before the branch; each side then performs two operations.
    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(image.handle))
        .movi(2, static_cast<std::int64_t>(image.secretBase))
        .movi(3, static_cast<std::int64_t>(image.transmitA))
        .movi(4, static_cast<std::int64_t>(image.transmitB))
        .movi(7, 0)
        .ld(5, 2, 0)        // secret -> r5 (retires before the attack)
        // --- replay handle: count++ ---
        .ld(6, 1, 0x20)
        .addi(6, 6, 1)
        .st(1, 0x20, 6)
        // --- secret-dependent branch (Figure 4c shape) ---
        ;
    image.branchPc = b.here();
    b.beq(5, 7, "mul_side")
        // __victim_div (Figure 6b): two loads, two divides.
        .ldf(0, 4, 0)
        .ldf(1, 4, 8)
        .fmov(2, 1)
        .fdiv(2, 2, 0)
        .fmov(3, 1)
        .fdiv(3, 3, 0)
        .jmp("done")
        .label("mul_side")
        // __victim_mul (Figure 6a): two loads, two multiplies.
        .ld(8, 3, 0)
        .ld(9, 3, 8)
        .mov(10, 9)
        .mul(10, 10, 8)
        .mov(11, 9)
        .mul(11, 11, 8)
        .label("done")
        .halt();
    image.program = share(b.build());
    return image;
}

VictimImage
buildSingleSecretVictim(os::Kernel &kernel, unsigned id, bool subnormal)
{
    if (id >= 512)
        fatal("buildSingleSecretVictim: id %u out of range", id);

    VictimImage image;
    image.pid = kernel.createProcess("ss-victim");
    image.handle = kernel.allocVirtual(image.pid, pageSize);  // count
    image.secretBase = kernel.allocVirtual(image.pid, pageSize);

    // static float secrets[512] — we use doubles; secrets[id] is
    // subnormal or a plain value depending on the secret.
    std::array<double, 512> secrets{};
    for (unsigned i = 0; i < 512; ++i)
        secrets[i] = 1.0 + i;
    secrets[id] = subnormal ? 4.9406564584124654e-324 : 1.5;
    mustWrite(kernel, image.pid, image.secretBase, secrets.data(),
              secrets.size() * 8);
    kernel.declareEnclave(image.pid, image.secretBase, pageSize);

    image.transmitA = image.secretBase + 8ull * id;

    // Figure 5b: the count++ load is the replay handle (line 6); the
    // secrets[id] access (line 11) and the divide (line 12) are the
    // measurement and transmit instructions.
    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(image.handle))
        .movi(2, static_cast<std::int64_t>(image.secretBase))
        // count++
        .ld(3, 1, 0)
        .addi(3, 3, 1)
        .st(1, 0, 3)
        // secrets[id]
        .ldf(0, 2, 8ll * id)
        // / key
        .fmovi(1, 2.0)
        .fdiv(2, 0, 1)
        .halt();
    image.program = share(b.build());
    return image;
}

VictimImage
buildLoopSecretVictim(os::Kernel &kernel, unsigned iterations,
                      const std::uint8_t *secret_lines)
{
    VictimImage image;
    image.pid = kernel.createProcess("loop-victim");
    image.handle = kernel.allocVirtual(image.pid, pageSize);  // pub_addrA
    image.pivot = kernel.allocVirtual(image.pid, pageSize);   // pub_addrB
    const VAddr idx = kernel.allocVirtual(image.pid, pageSize);
    image.transmitA = kernel.allocVirtual(image.pid, pageSize);
    image.secretBase = idx;

    std::vector<std::uint64_t> indices(iterations);
    for (unsigned i = 0; i < iterations; ++i) {
        if (secret_lines[i] >= pageSize / lineSize)
            fatal("buildLoopSecretVictim: line %u out of page",
                  secret_lines[i]);
        indices[i] = secret_lines[i];
    }
    mustWrite(kernel, image.pid, idx, indices.data(),
              indices.size() * 8);
    kernel.declareEnclave(image.pid, idx, pageSize);

    // Figure 4b: handle(pub_addrA); transmit(secret[i]); pivot(pub_addrB).
    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(image.handle))
        .movi(2, static_cast<std::int64_t>(image.pivot))
        .movi(3, static_cast<std::int64_t>(idx))
        .movi(4, static_cast<std::int64_t>(image.transmitA))
        .movi(5, 0)
        .movi(6, iterations)
        .label("loop")
        .ld(7, 1, 0)           // handle(pub_addrA)
        .shli(8, 5, 3)
        .add(8, 3, 8)
        .ld(9, 8, 0)           // secret line index (enclave data)
        .shli(9, 9, 6)
        .add(9, 4, 9)
        .ld(10, 9, 0)          // transmit(secret[i])
        .ld(11, 2, 0)          // pivot(pub_addrB)
        .addi(5, 5, 1)
        .blt(5, 6, "loop")
        .halt();
    image.program = share(b.build());
    return image;
}

VictimImage
buildRdrandVictim(os::Kernel &kernel)
{
    VictimImage image;
    image.pid = kernel.createProcess("rdrand-victim");
    image.handle = kernel.allocVirtual(image.pid, pageSize);
    image.transmitA = kernel.allocVirtual(image.pid, pageSize);

    // §7.2: the replay handle precedes RDRAND; bit 0 of the draw
    // selects between line 0 and line 1 of the transmit page, and the
    // draw is finally stored (the architectural "use").
    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(image.handle))
        .movi(2, static_cast<std::int64_t>(image.transmitA))
        .ld(3, 1, 0)          // replay handle
        .rdrand(4)
        .andi(5, 4, 1)
        .shli(5, 5, 6)
        .add(5, 2, 5)
        .ld(6, 5, 0)          // transmit bit 0 via cache line
        .st(2, 1024, 4)       // consume the value architecturally
        .halt();
    image.program = share(b.build());
    return image;
}

VictimImage
buildTsxVictim(os::Kernel &kernel, bool secret, unsigned max_retries)
{
    VictimImage image;
    image.pid = kernel.createProcess("tsx-victim");
    const VAddr txdata = kernel.allocVirtual(image.pid, pageSize);
    image.handle = txdata;  // the write-set line the attacker evicts
    image.transmitA = kernel.allocVirtual(image.pid, pageSize);
    image.secretBase = kernel.allocVirtual(image.pid, pageSize);

    const std::uint64_t secret_word = secret ? 1 : 0;
    mustWrite(kernel, image.pid, image.secretBase, &secret_word, 8);
    kernel.declareEnclave(image.pid, image.secretBase, pageSize);

    // §7.1: the transaction body transmits the secret; an abort
    // (e.g., the attacker evicting the write-set line) rolls back and
    // the retry loop replays it — a replay handle with a window as
    // large as the transaction, not the ROB.
    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(txdata))
        .movi(2, static_cast<std::int64_t>(image.transmitA))
        .movi(3, static_cast<std::int64_t>(image.secretBase))
        .movi(8, 0)                       // retries
        .movi(9, max_retries)
        .movi(15, 0)                      // success flag
        .st(1, 64, 8)   // warm the txdata page's translation
        .label("retry")
        .txbegin("abort")
        .st(1, 0, 8)                      // join the write set
        .ld(4, 3, 0)                      // secret
        .shli(5, 4, 6)
        .add(5, 2, 5)
        .ld(6, 5, 0)                      // transmit secret line
        // Padding: a chain *dependent on the transmit* so the
        // transaction stays open (unretired) long enough for a
        // concurrent monitor to observe the residue and react.
        .addi(20, 6, 1);
    for (unsigned i = 0; i < 100; ++i)
        b.addi(20, 20, 1);
    b.txend()
        .movi(15, 1)
        .jmp("done")
        .label("abort")
        .addi(8, 8, 1)
        .blt(8, 9, "retry")
        .label("done")
        .halt();
    image.program = share(b.build());
    return image;
}

VictimImage
buildTsxRdrandVictim(os::Kernel &kernel, unsigned max_retries)
{
    VictimImage image;
    image.pid = kernel.createProcess("tsx-rdrand-victim");
    const VAddr txdata = kernel.allocVirtual(image.pid, pageSize);
    image.handle = txdata;
    image.transmitA = kernel.allocVirtual(image.pid, pageSize);

    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(txdata))
        .movi(2, static_cast<std::int64_t>(image.transmitA))
        .movi(8, 0)                       // retries
        .movi(9, max_retries)
        .movi(20, 0)
        .st(1, 64, 8)   // warm the txdata page's translation
        .label("retry")
        .txbegin("abort")
        .st(1, 0, 8)                      // join the write set
        .rdrand(4)                        // serializing — but retires
        .andi(5, 4, 1)
        .shli(5, 5, 6)
        .add(5, 2, 5)
        .ld(6, 5, 0)                      // transmit bit 0
        // Chain dependent on the transmit: the attacker's reaction
        // window between the observable access and the commit.
        .addi(20, 6, 1);
    for (unsigned i = 0; i < 100; ++i)
        b.addi(20, 20, 1);
    b.txend()
        .st(2, 1024, 4)                   // committed value
        .movi(15, 1)
        .st(2, 1088, 15)                  // success flag
        .jmp("done")
        .label("abort")
        .addi(8, 8, 1)
        .blt(8, 9, "retry")
        .label("done")
        .halt();
    image.program = share(b.build());
    return image;
}

} // namespace uscope::attack
