/**
 * @file
 * Branch mispredictions as replay handles (paper §7.1, last part):
 * "any instruction which can squash speculative execution, e.g., a
 * branch that mispredicts, can cause some subsequent code to be
 * replayed...  To maximize replays, the adversary can...  prime the
 * branch predictor to mispredict if there are not already mechanisms
 * to flush the predictors on context switches."
 *
 * The victim executes a run of always-taken branches followed by
 * sensitive code.  The attacker primes every branch toward
 * "not-taken": each one resolves, mispredicts, squashes, and
 * re-fetches — so the sensitive code executes once per mispredicting
 * in-flight branch, plus the final architectural time.  Unlike page
 * faults the replay count is bounded (each branch mispredicts once
 * before the 2-bit counter flips), so this is an amplifier, not an
 * unbounded denoiser — exactly the paper's framing.
 */

#ifndef USCOPE_ATTACK_MISPREDICT_REPLAY_HH
#define USCOPE_ATTACK_MISPREDICT_REPLAY_HH

#include <cstdint>

#include "common/types.hh"
#include "os/machine.hh"

namespace uscope::attack
{

/** Configuration of one mispredict-replay run. */
struct MispredictReplayConfig
{
    /** Number of primable branches before the sensitive code. */
    unsigned branches = 6;
    /** Prime the predictor against the actual direction? */
    bool primeToMispredict = true;
    std::uint64_t seed = 42;
    os::MachineConfig machine;
};

/** Outcome. */
struct MispredictReplayResult
{
    /** Times the sensitive (transmit) load executed. */
    std::uint64_t transmitExecutions = 0;
    std::uint64_t mispredicts = 0;
    /** Attacker-side evidence: was the transmit line hot at the end? */
    bool residueObserved = false;
    bool victimCompleted = false;
};

/** Run the experiment once. */
MispredictReplayResult
runMispredictReplay(const MispredictReplayConfig &);

} // namespace uscope::attack

#endif // USCOPE_ATTACK_MISPREDICT_REPLAY_HH
