#include "attack/monitor.hh"

#include "common/logging.hh"

namespace uscope::attack
{

MonitorImage
buildDivContentionMonitor(os::Kernel &kernel, unsigned samples,
                          unsigned cont)
{
    MonitorImage monitor;
    monitor.pid = kernel.createProcess("monitor");
    monitor.samples = samples;
    monitor.cont = cont;
    monitor.buffer =
        kernel.allocVirtual(monitor.pid, std::uint64_t{samples} * 8);
    const VAddr operands = kernel.allocVirtual(monitor.pid, pageSize);

    const double ops[2] = {3.0, 7.5};
    if (!kernel.writeVirtual(monitor.pid, operands, ops, 16))
        panic("monitor setup failed");

    // Figure 7a: for each j, time `cont` calls of the Figure-7b
    // divide body.  The fences order RDTSC around the burst the way
    // the real code's rdtscp/lfence pairs do.
    cpu::ProgramBuilder b;
    b.movi(1, static_cast<std::int64_t>(monitor.buffer))
        .movi(2, 0)                       // j
        .movi(3, samples)                 // buff
        .movi(4, cont)                    // cont
        .movi(9, 0)
        .movi(20, static_cast<std::int64_t>(operands))
        .label("outer")
        .fence()
        .rdtsc(10)                        // t1
        .mov(5, 4)
        .label("inner")
        // unit_div_contention() (Figure 7b): two loads, one divide.
        .ldf(0, 20, 0)
        .ldf(1, 20, 8)
        .fdiv(2, 1, 0)
        .addi(5, 5, -1)
        .bne(5, 9, "inner")
        .fence()
        .rdtsc(11)                        // t2
        .sub(12, 11, 10)
        .shli(13, 2, 3)
        .add(13, 1, 13)
        .st(13, 0, 12)                    // buffer[j] = t2 - t1
        .addi(2, 2, 1)
        .blt(2, 3, "outer")
        .halt();
    monitor.program =
        std::make_shared<const cpu::Program>(b.build());
    return monitor;
}

std::vector<Cycles>
readMonitorSamples(os::Kernel &kernel, const MonitorImage &monitor)
{
    std::vector<Cycles> samples(monitor.samples, 0);
    if (!kernel.readVirtual(monitor.pid, monitor.buffer, samples.data(),
                            samples.size() * 8)) {
        panic("readMonitorSamples: buffer read failed");
    }
    return samples;
}

} // namespace uscope::attack
