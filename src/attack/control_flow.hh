/**
 * @file
 * Control-flow-secret attack, cache variant (paper Figure 4c,
 * §4.2.3).
 *
 * The victim branches on an enclave secret; the two sides touch
 * different pages (the Figure-6 mul/div operand pages double as the
 * "different cache lines" of the paper's first variant).  The
 * Replayer primes both transmit lines, replays the window behind the
 * handle, and probes which line came back hot — recovering the branch
 * direction from a single logical run.
 *
 * The Prediction experiment (§4.2.3 "Prediction") is also modelled:
 * with the branch predictor primed to a *known* direction, whether
 * the wrong-path residue appears reveals secret == prediction; with
 * the predictor flushed at the enclave boundary [12] the same
 * reasoning applies against the known reset state.
 */

#ifndef USCOPE_ATTACK_CONTROL_FLOW_HH
#define USCOPE_ATTACK_CONTROL_FLOW_HH

#include <cstdint>
#include <optional>

#include "common/types.hh"
#include "os/machine.hh"

namespace uscope::attack
{

/** Configuration of one control-flow-secret run. */
struct ControlFlowConfig
{
    bool secret = true;       ///< Ground truth branch direction.
    std::uint64_t replays = 20;
    std::uint64_t seed = 42;
    /**
     * Predictor priming: nullopt = flush at enclave entry [12];
     * otherwise prime the victim branch toward the given direction.
     */
    std::optional<bool> primeTaken;
    os::MachineConfig machine;
};

/** Attack outcome. */
struct ControlFlowResult
{
    /** Replays where the mul-side page showed residue. */
    std::uint64_t mulHits = 0;
    /** Replays where the div-side page showed residue. */
    std::uint64_t divHits = 0;
    /** The adversary's verdict for the secret. */
    std::optional<bool> inferredSecret;
    /** Whether both paths showed residue (misprediction signature). */
    bool bothPathsObserved = false;
    bool victimCompleted = false;
    std::uint64_t replaysDone = 0;
    std::uint64_t victimMispredicts = 0;
};

/** Run the cache-variant control-flow attack once. */
ControlFlowResult runControlFlowAttack(const ControlFlowConfig &);

} // namespace uscope::attack

#endif // USCOPE_ATTACK_CONTROL_FLOW_HH
