#include "crypto/aes.hh"

#include <cstring>

#include "common/logging.hh"

namespace uscope::crypto
{

namespace
{

/** GF(2^8) doubling modulo x^8 + x^4 + x^3 + x + 1. */
std::uint8_t
xtime(std::uint8_t a)
{
    return static_cast<std::uint8_t>((a << 1) ^ ((a >> 7) * 0x1B));
}

/** GF(2^8) multiplication. */
std::uint8_t
gmul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t result = 0;
    while (b) {
        if (b & 1)
            result ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return result;
}

/** Forward and inverse S-boxes, computed (not transcribed). */
struct Sboxes
{
    std::array<std::uint8_t, 256> sbox;
    std::array<std::uint8_t, 256> inv;

    Sboxes()
    {
        // Multiplicative inverses via 3-as-generator log tables.
        std::array<std::uint8_t, 256> log{};
        std::array<std::uint8_t, 256> alog{};
        std::uint8_t p = 1;
        for (unsigned i = 0; i < 255; ++i) {
            alog[i] = p;
            log[p] = static_cast<std::uint8_t>(i);
            p = static_cast<std::uint8_t>(p ^ xtime(p));  // * 3
        }
        for (unsigned x = 0; x < 256; ++x) {
            const std::uint8_t inv_x = (x == 0)
                ? 0
                : alog[(255 - log[x]) % 255];
            // Affine transform: b ^ rot1 ^ rot2 ^ rot3 ^ rot4 ^ 0x63.
            std::uint8_t b = inv_x;
            std::uint8_t s = 0x63;
            for (unsigned r = 0; r < 4; ++r) {
                b = static_cast<std::uint8_t>((b << 1) | (b >> 7));
                s ^= b;
            }
            s ^= inv_x;
            sbox[x] = s;
            inv[s] = static_cast<std::uint8_t>(x);
        }
    }
};

const Sboxes &
sboxes()
{
    static const Sboxes boxes;
    return boxes;
}

std::uint32_t
pack(std::uint8_t b0, std::uint8_t b1, std::uint8_t b2, std::uint8_t b3)
{
    return (std::uint32_t{b0} << 24) | (std::uint32_t{b1} << 16) |
           (std::uint32_t{b2} << 8) | std::uint32_t{b3};
}

std::uint32_t
getu32(const std::uint8_t *bytes)
{
    return pack(bytes[0], bytes[1], bytes[2], bytes[3]);
}

void
putu32(std::uint8_t *bytes, std::uint32_t word)
{
    bytes[0] = static_cast<std::uint8_t>(word >> 24);
    bytes[1] = static_cast<std::uint8_t>(word >> 16);
    bytes[2] = static_cast<std::uint8_t>(word >> 8);
    bytes[3] = static_cast<std::uint8_t>(word);
}

std::uint32_t
subWord(std::uint32_t word)
{
    const auto &s = sboxes().sbox;
    return pack(s[(word >> 24) & 0xFF], s[(word >> 16) & 0xFF],
                s[(word >> 8) & 0xFF], s[word & 0xFF]);
}

std::uint32_t
invMixColumn(std::uint32_t word)
{
    const std::uint8_t b0 = static_cast<std::uint8_t>(word >> 24);
    const std::uint8_t b1 = static_cast<std::uint8_t>(word >> 16);
    const std::uint8_t b2 = static_cast<std::uint8_t>(word >> 8);
    const std::uint8_t b3 = static_cast<std::uint8_t>(word);
    return pack(
        gmul(b0, 0x0E) ^ gmul(b1, 0x0B) ^ gmul(b2, 0x0D) ^ gmul(b3, 0x09),
        gmul(b0, 0x09) ^ gmul(b1, 0x0E) ^ gmul(b2, 0x0B) ^ gmul(b3, 0x0D),
        gmul(b0, 0x0D) ^ gmul(b1, 0x09) ^ gmul(b2, 0x0E) ^ gmul(b3, 0x0B),
        gmul(b0, 0x0B) ^ gmul(b1, 0x0D) ^ gmul(b2, 0x09) ^ gmul(b3, 0x0E));
}

} // anonymous namespace

const AesEncTables &
encTables()
{
    static const AesEncTables tables = [] {
        AesEncTables t;
        const auto &s = sboxes().sbox;
        for (unsigned x = 0; x < 256; ++x) {
            const std::uint8_t v = s[x];
            const std::uint8_t v2 = xtime(v);
            const std::uint8_t v3 = static_cast<std::uint8_t>(v2 ^ v);
            t.te0[x] = pack(v2, v, v, v3);
            t.te1[x] = pack(v3, v2, v, v);
            t.te2[x] = pack(v, v3, v2, v);
            t.te3[x] = pack(v, v, v3, v2);
            t.te4[x] = pack(v, v, v, v);
        }
        return t;
    }();
    return tables;
}

const AesDecTables &
decTables()
{
    static const AesDecTables tables = [] {
        AesDecTables t;
        const auto &inv = sboxes().inv;
        for (unsigned x = 0; x < 256; ++x) {
            const std::uint8_t v = inv[x];
            const std::uint8_t e = gmul(v, 0x0E);
            const std::uint8_t n = gmul(v, 0x09);
            const std::uint8_t d = gmul(v, 0x0D);
            const std::uint8_t b = gmul(v, 0x0B);
            t.td0[x] = pack(e, n, d, b);
            t.td1[x] = pack(b, e, n, d);
            t.td2[x] = pack(d, b, e, n);
            t.td3[x] = pack(n, d, b, e);
            t.td4[x] = pack(v, v, v, v);
        }
        return t;
    }();
    return tables;
}

AesKey::AesKey(const std::uint8_t *key, unsigned key_bits, bool decrypt)
{
    if (key_bits != 128 && key_bits != 192 && key_bits != 256)
        fatal("AesKey: unsupported key size %u", key_bits);
    expandEncrypt(key, key_bits);
    if (decrypt)
        invertForDecrypt();
}

void
AesKey::expandEncrypt(const std::uint8_t *key, unsigned key_bits)
{
    const unsigned nk = key_bits / 32;
    rounds_ = nk + 6;  // 10/12/14 rounds (§4.4).
    const unsigned nwords = 4 * (rounds_ + 1);
    rk_.resize(nwords);

    for (unsigned i = 0; i < nk; ++i)
        rk_[i] = getu32(key + 4 * i);

    std::uint8_t rcon = 1;
    for (unsigned i = nk; i < nwords; ++i) {
        std::uint32_t temp = rk_[i - 1];
        if (i % nk == 0) {
            temp = subWord((temp << 8) | (temp >> 24)) ^
                   (std::uint32_t{rcon} << 24);
            rcon = xtime(rcon);
        } else if (nk > 6 && i % nk == 4) {
            temp = subWord(temp);
        }
        rk_[i] = rk_[i - nk] ^ temp;
    }
}

void
AesKey::invertForDecrypt()
{
    // Equivalent inverse cipher: reverse round order, then apply
    // InvMixColumns to the inner rounds' keys.
    std::vector<std::uint32_t> dk(rk_.size());
    for (unsigned r = 0; r <= rounds_; ++r)
        for (unsigned w = 0; w < 4; ++w)
            dk[4 * r + w] = rk_[4 * (rounds_ - r) + w];
    for (unsigned r = 1; r < rounds_; ++r)
        for (unsigned w = 0; w < 4; ++w)
            dk[4 * r + w] = invMixColumn(dk[4 * r + w]);
    rk_ = std::move(dk);
}

void
encryptBlock(const AesKey &key, const std::uint8_t in[16],
             std::uint8_t out[16])
{
    const AesEncTables &t = encTables();
    const auto &rk = key.roundKeys();
    const unsigned rounds = key.rounds();

    std::uint32_t s0 = getu32(in) ^ rk[0];
    std::uint32_t s1 = getu32(in + 4) ^ rk[1];
    std::uint32_t s2 = getu32(in + 8) ^ rk[2];
    std::uint32_t s3 = getu32(in + 12) ^ rk[3];

    for (unsigned r = 1; r < rounds; ++r) {
        const std::uint32_t t0 =
            t.te0[s0 >> 24] ^ t.te1[(s1 >> 16) & 0xFF] ^
            t.te2[(s2 >> 8) & 0xFF] ^ t.te3[s3 & 0xFF] ^ rk[4 * r];
        const std::uint32_t t1 =
            t.te0[s1 >> 24] ^ t.te1[(s2 >> 16) & 0xFF] ^
            t.te2[(s3 >> 8) & 0xFF] ^ t.te3[s0 & 0xFF] ^ rk[4 * r + 1];
        const std::uint32_t t2 =
            t.te0[s2 >> 24] ^ t.te1[(s3 >> 16) & 0xFF] ^
            t.te2[(s0 >> 8) & 0xFF] ^ t.te3[s1 & 0xFF] ^ rk[4 * r + 2];
        const std::uint32_t t3 =
            t.te0[s3 >> 24] ^ t.te1[(s0 >> 16) & 0xFF] ^
            t.te2[(s1 >> 8) & 0xFF] ^ t.te3[s2 & 0xFF] ^ rk[4 * r + 3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    const unsigned base = 4 * rounds;
    const std::uint32_t o0 =
        (t.te4[s0 >> 24] & 0xFF000000u) ^
        (t.te4[(s1 >> 16) & 0xFF] & 0x00FF0000u) ^
        (t.te4[(s2 >> 8) & 0xFF] & 0x0000FF00u) ^
        (t.te4[s3 & 0xFF] & 0x000000FFu) ^ rk[base];
    const std::uint32_t o1 =
        (t.te4[s1 >> 24] & 0xFF000000u) ^
        (t.te4[(s2 >> 16) & 0xFF] & 0x00FF0000u) ^
        (t.te4[(s3 >> 8) & 0xFF] & 0x0000FF00u) ^
        (t.te4[s0 & 0xFF] & 0x000000FFu) ^ rk[base + 1];
    const std::uint32_t o2 =
        (t.te4[s2 >> 24] & 0xFF000000u) ^
        (t.te4[(s3 >> 16) & 0xFF] & 0x00FF0000u) ^
        (t.te4[(s0 >> 8) & 0xFF] & 0x0000FF00u) ^
        (t.te4[s1 & 0xFF] & 0x000000FFu) ^ rk[base + 2];
    const std::uint32_t o3 =
        (t.te4[s3 >> 24] & 0xFF000000u) ^
        (t.te4[(s0 >> 16) & 0xFF] & 0x00FF0000u) ^
        (t.te4[(s1 >> 8) & 0xFF] & 0x0000FF00u) ^
        (t.te4[s2 & 0xFF] & 0x000000FFu) ^ rk[base + 3];

    putu32(out, o0);
    putu32(out + 4, o1);
    putu32(out + 8, o2);
    putu32(out + 12, o3);
}

void
decryptBlock(const AesKey &key, const std::uint8_t in[16],
             std::uint8_t out[16])
{
    const AesDecTables &t = decTables();
    const auto &rk = key.roundKeys();
    const unsigned rounds = key.rounds();

    std::uint32_t s0 = getu32(in) ^ rk[0];
    std::uint32_t s1 = getu32(in + 4) ^ rk[1];
    std::uint32_t s2 = getu32(in + 8) ^ rk[2];
    std::uint32_t s3 = getu32(in + 12) ^ rk[3];

    // The paper's Figure 8a inner round, verbatim structure.
    for (unsigned r = 1; r < rounds; ++r) {
        const std::uint32_t t0 =
            t.td0[s0 >> 24] ^ t.td1[(s3 >> 16) & 0xFF] ^
            t.td2[(s2 >> 8) & 0xFF] ^ t.td3[s1 & 0xFF] ^ rk[4 * r];
        const std::uint32_t t1 =
            t.td0[s1 >> 24] ^ t.td1[(s0 >> 16) & 0xFF] ^
            t.td2[(s3 >> 8) & 0xFF] ^ t.td3[s2 & 0xFF] ^ rk[4 * r + 1];
        const std::uint32_t t2 =
            t.td0[s2 >> 24] ^ t.td1[(s1 >> 16) & 0xFF] ^
            t.td2[(s0 >> 8) & 0xFF] ^ t.td3[s3 & 0xFF] ^ rk[4 * r + 2];
        const std::uint32_t t3 =
            t.td0[s3 >> 24] ^ t.td1[(s2 >> 16) & 0xFF] ^
            t.td2[(s1 >> 8) & 0xFF] ^ t.td3[s0 & 0xFF] ^ rk[4 * r + 3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    const unsigned base = 4 * rounds;
    const std::uint32_t o0 =
        (t.td4[s0 >> 24] & 0xFF000000u) ^
        (t.td4[(s3 >> 16) & 0xFF] & 0x00FF0000u) ^
        (t.td4[(s2 >> 8) & 0xFF] & 0x0000FF00u) ^
        (t.td4[s1 & 0xFF] & 0x000000FFu) ^ rk[base];
    const std::uint32_t o1 =
        (t.td4[s1 >> 24] & 0xFF000000u) ^
        (t.td4[(s0 >> 16) & 0xFF] & 0x00FF0000u) ^
        (t.td4[(s3 >> 8) & 0xFF] & 0x0000FF00u) ^
        (t.td4[s2 & 0xFF] & 0x000000FFu) ^ rk[base + 1];
    const std::uint32_t o2 =
        (t.td4[s2 >> 24] & 0xFF000000u) ^
        (t.td4[(s1 >> 16) & 0xFF] & 0x00FF0000u) ^
        (t.td4[(s0 >> 8) & 0xFF] & 0x0000FF00u) ^
        (t.td4[s3 & 0xFF] & 0x000000FFu) ^ rk[base + 2];
    const std::uint32_t o3 =
        (t.td4[s3 >> 24] & 0xFF000000u) ^
        (t.td4[(s2 >> 16) & 0xFF] & 0x00FF0000u) ^
        (t.td4[(s1 >> 8) & 0xFF] & 0x0000FF00u) ^
        (t.td4[s0 & 0xFF] & 0x000000FFu) ^ rk[base + 3];

    putu32(out, o0);
    putu32(out + 4, o1);
    putu32(out + 8, o2);
    putu32(out + 12, o3);
}

DecAccessTrace
traceDecryption(const AesKey &key, const std::uint8_t in[16])
{
    const auto &rk = key.roundKeys();
    const unsigned rounds = key.rounds();
    const AesDecTables &t = decTables();

    DecAccessTrace trace;
    trace.indices.resize(rounds);

    std::uint32_t s0 = getu32(in) ^ rk[0];
    std::uint32_t s1 = getu32(in + 4) ^ rk[1];
    std::uint32_t s2 = getu32(in + 8) ^ rk[2];
    std::uint32_t s3 = getu32(in + 12) ^ rk[3];

    auto record = [&trace](unsigned round, unsigned table,
                           std::uint32_t index) {
        trace.indices[round][table].push_back(
            static_cast<std::uint8_t>(index));
    };

    for (unsigned r = 1; r < rounds; ++r) {
        const unsigned ri = r - 1;
        const std::array<std::uint32_t, 4> s{s0, s1, s2, s3};
        std::array<std::uint32_t, 4> next{};
        for (unsigned i = 0; i < 4; ++i) {
            const std::uint32_t i0 = s[i] >> 24;
            const std::uint32_t i1 = (s[(i + 3) % 4] >> 16) & 0xFF;
            const std::uint32_t i2 = (s[(i + 2) % 4] >> 8) & 0xFF;
            const std::uint32_t i3 = s[(i + 1) % 4] & 0xFF;
            record(ri, 0, i0);
            record(ri, 1, i1);
            record(ri, 2, i2);
            record(ri, 3, i3);
            next[i] = t.td0[i0] ^ t.td1[i1] ^ t.td2[i2] ^ t.td3[i3] ^
                      rk[4 * r + i];
        }
        s0 = next[0];
        s1 = next[1];
        s2 = next[2];
        s3 = next[3];
    }

    const std::array<std::uint32_t, 4> s{s0, s1, s2, s3};
    for (unsigned i = 0; i < 4; ++i) {
        record(rounds - 1, 4, s[i] >> 24);
        record(rounds - 1, 4, (s[(i + 3) % 4] >> 16) & 0xFF);
        record(rounds - 1, 4, (s[(i + 2) % 4] >> 8) & 0xFF);
        record(rounds - 1, 4, s[(i + 1) % 4] & 0xFF);
    }

    return trace;
}

} // namespace uscope::crypto
