/**
 * @file
 * Compiles OpenSSL-0.9.8-style table-based AES decryption into the
 * simulator's mini-ISA, so the victim "enclave" really executes the
 * table lookups of Figure 8a against tables resident in its simulated
 * memory.
 *
 * Layout discipline follows the paper's two observations (§4.4): the
 * Td0..Td3 tables and the rk array live on *different pages*, so an rk
 * access can be the replay handle and a Td0 access the pivot; and each
 * table is 16 cache lines, the granularity of Figure 11.
 *
 * Byte-order note: the reference code loads big-endian 32-bit state
 * words (GETU32).  The mini-ISA's Ld32 is little-endian, so the
 * harness pre-stores the GETU32 values of the ciphertext into the
 * input buffer; the table lookups and the leaked line indices are
 * identical to the reference either way.
 */

#ifndef USCOPE_CRYPTO_AES_CODEGEN_HH
#define USCOPE_CRYPTO_AES_CODEGEN_HH

#include <cstdint>

#include "common/types.hh"
#include "cpu/program.hh"
#include "crypto/aes.hh"
#include "os/kernel.hh"

namespace uscope::crypto
{

/** Where an AES victim's data lives in its virtual address space. */
struct AesVictimLayout
{
    VAddr td0 = 0;    ///< 1 KiB table, own page.
    VAddr td1 = 0;
    VAddr td2 = 0;
    VAddr td3 = 0;
    VAddr td4 = 0;    ///< Inverse s-box table, own page.
    VAddr rk = 0;     ///< Round keys, own page (the replay handles).
    VAddr input = 0;  ///< 4 state words (GETU32 of the ciphertext).
    VAddr output = 0; ///< 4 plaintext words.
    unsigned rounds = 0;

    /** VA of one table by index 0..4. */
    VAddr tableVa(unsigned table) const;

    /** VA of rk word @p w. */
    VAddr rkVa(unsigned w) const { return rk + 4ull * w; }
};

/**
 * Allocate the victim's AES data regions (one page each) and copy in
 * the decryption tables and the expanded decryption key.
 *
 * Note the deliberate asymmetry of the SGX model: the kernel loads the
 * enclave image (tables and key) *before* the harness seals the pages
 * with Kernel::declareEnclave, just as SGX measures pages in at
 * enclave build time and locks them afterwards.
 */
AesVictimLayout setupAesVictim(os::Kernel &kernel, os::Pid pid,
                               const AesKey &dec_key);

/** Store a ciphertext block into the victim's input buffer. */
void loadCiphertext(os::Kernel &kernel, os::Pid pid,
                    const AesVictimLayout &layout,
                    const std::uint8_t ct[16]);

/** Read the 16-byte result from the victim's output buffer. */
void readPlaintext(os::Kernel &kernel, os::Pid pid,
                   const AesVictimLayout &layout, std::uint8_t out[16]);

/**
 * Emit the full (unrolled) decryption: initial whitening, rounds-1
 * inner rounds in the exact lookup order of Figure 8a, and the Td4
 * final round, ending in Halt.
 */
cpu::Program buildAesDecryptProgram(const AesVictimLayout &layout);

} // namespace uscope::crypto

#endif // USCOPE_CRYPTO_AES_CODEGEN_HH
