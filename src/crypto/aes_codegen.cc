#include "crypto/aes_codegen.hh"

#include "common/logging.hh"

namespace uscope::crypto
{

namespace
{

// Register allocation for the generated code.
constexpr cpu::Reg rTd0 = 1;
constexpr cpu::Reg rTd1 = 2;
constexpr cpu::Reg rTd2 = 3;
constexpr cpu::Reg rTd3 = 4;
constexpr cpu::Reg rTd4 = 5;
constexpr cpu::Reg rRk = 6;
constexpr cpu::Reg rIn = 7;
constexpr cpu::Reg rS0 = 8;   // s0..s3 in r8..r11
constexpr cpu::Reg rT0 = 12;  // t0..t3 in r12..r15
constexpr cpu::Reg rAddr = 16;
constexpr cpu::Reg rVal = 17;
constexpr cpu::Reg rRkVal = 19;
constexpr cpu::Reg rOut = 20;

constexpr cpu::Reg tableBaseReg[4] = {rTd0, rTd1, rTd2, rTd3};

/**
 * Emit: rVal = table[(s >> shift) & 0xff], leaving the extracted
 * index scaled and added to the table base in rAddr.
 */
void
emitLookup(cpu::ProgramBuilder &builder, cpu::Reg table_base,
           cpu::Reg s_reg, unsigned shift)
{
    if (shift) {
        builder.shri(rAddr, s_reg, shift);
        if (shift != 24)  // s is a 32-bit value: >>24 needs no mask.
            builder.andi(rAddr, rAddr, 0xFF);
    } else {
        builder.andi(rAddr, s_reg, 0xFF);
    }
    builder.shli(rAddr, rAddr, 2);  // 4-byte entries.
    builder.add(rAddr, table_base, rAddr);
    builder.ld32(rVal, rAddr, 0);
}

} // anonymous namespace

VAddr
AesVictimLayout::tableVa(unsigned table) const
{
    switch (table) {
      case 0: return td0;
      case 1: return td1;
      case 2: return td2;
      case 3: return td3;
      case 4: return td4;
    }
    panic("AesVictimLayout: bad table %u", table);
}

AesVictimLayout
setupAesVictim(os::Kernel &kernel, os::Pid pid, const AesKey &dec_key)
{
    const AesDecTables &tables = decTables();

    AesVictimLayout layout;
    layout.rounds = dec_key.rounds();
    layout.td0 = kernel.allocVirtual(pid, pageSize);
    layout.td1 = kernel.allocVirtual(pid, pageSize);
    layout.td2 = kernel.allocVirtual(pid, pageSize);
    layout.td3 = kernel.allocVirtual(pid, pageSize);
    layout.td4 = kernel.allocVirtual(pid, pageSize);
    layout.rk = kernel.allocVirtual(pid, pageSize);
    layout.input = kernel.allocVirtual(pid, pageSize);
    layout.output = kernel.allocVirtual(pid, pageSize);

    auto copy_table = [&](VAddr va, const AesTable &table) {
        if (!kernel.writeVirtual(pid, va, table.data(),
                                 table.size() * 4)) {
            panic("setupAesVictim: table copy failed");
        }
    };
    copy_table(layout.td0, tables.td0);
    copy_table(layout.td1, tables.td1);
    copy_table(layout.td2, tables.td2);
    copy_table(layout.td3, tables.td3);
    copy_table(layout.td4, tables.td4);

    const auto &rk = dec_key.roundKeys();
    if (!kernel.writeVirtual(pid, layout.rk, rk.data(), rk.size() * 4))
        panic("setupAesVictim: round-key copy failed");

    return layout;
}

void
loadCiphertext(os::Kernel &kernel, os::Pid pid,
               const AesVictimLayout &layout, const std::uint8_t ct[16])
{
    for (unsigned i = 0; i < 4; ++i) {
        const std::uint32_t word =
            (std::uint32_t{ct[4 * i]} << 24) |
            (std::uint32_t{ct[4 * i + 1]} << 16) |
            (std::uint32_t{ct[4 * i + 2]} << 8) |
            std::uint32_t{ct[4 * i + 3]};
        if (!kernel.writeVirtual(pid, layout.input + 4ull * i, &word, 4))
            panic("loadCiphertext: write failed");
    }
}

void
readPlaintext(os::Kernel &kernel, os::Pid pid,
              const AesVictimLayout &layout, std::uint8_t out[16])
{
    for (unsigned i = 0; i < 4; ++i) {
        std::uint32_t word = 0;
        if (!kernel.readVirtual(pid, layout.output + 4ull * i, &word, 4))
            panic("readPlaintext: read failed");
        out[4 * i] = static_cast<std::uint8_t>(word >> 24);
        out[4 * i + 1] = static_cast<std::uint8_t>(word >> 16);
        out[4 * i + 2] = static_cast<std::uint8_t>(word >> 8);
        out[4 * i + 3] = static_cast<std::uint8_t>(word);
    }
}

cpu::Program
buildAesDecryptProgram(const AesVictimLayout &layout)
{
    cpu::ProgramBuilder builder;

    builder.movi(rTd0, static_cast<std::int64_t>(layout.td0))
        .movi(rTd1, static_cast<std::int64_t>(layout.td1))
        .movi(rTd2, static_cast<std::int64_t>(layout.td2))
        .movi(rTd3, static_cast<std::int64_t>(layout.td3))
        .movi(rTd4, static_cast<std::int64_t>(layout.td4))
        .movi(rRk, static_cast<std::int64_t>(layout.rk))
        .movi(rIn, static_cast<std::int64_t>(layout.input))
        .movi(rOut, static_cast<std::int64_t>(layout.output));

    // Initial whitening: s_i = input[i] ^ rk[i].  (These rk loads are
    // the pre-loop replay handles §4.4 mentions.)
    for (unsigned i = 0; i < 4; ++i) {
        builder.ld32(rS0 + i, rIn, 4 * i);
        builder.ld32(rRkVal, rRk, 4 * i);
        builder.xor_(rS0 + i, rS0 + i, rRkVal);
    }

    // Inner rounds, Figure 8a order: for each t_i, the four table
    // lookups then the rk word — so the rk load is the natural replay
    // handle and the next group's Td0 lookup the natural pivot.
    const unsigned rounds = layout.rounds;
    for (unsigned r = 1; r < rounds; ++r) {
        for (unsigned i = 0; i < 4; ++i) {
            const cpu::Reg t = rT0 + i;
            emitLookup(builder, tableBaseReg[0], rS0 + i, 24);
            builder.mov(t, rVal);
            emitLookup(builder, tableBaseReg[1], rS0 + (i + 3) % 4, 16);
            builder.xor_(t, t, rVal);
            emitLookup(builder, tableBaseReg[2], rS0 + (i + 2) % 4, 8);
            builder.xor_(t, t, rVal);
            emitLookup(builder, tableBaseReg[3], rS0 + (i + 1) % 4, 0);
            builder.xor_(t, t, rVal);
            builder.ld32(rRkVal, rRk, 4 * (4 * r + i));
            builder.xor_(t, t, rRkVal);
        }
        for (unsigned i = 0; i < 4; ++i)
            builder.mov(rS0 + i, rT0 + i);
    }

    // Final round through Td4 with per-byte masks.
    const unsigned base = 4 * rounds;
    for (unsigned i = 0; i < 4; ++i) {
        const cpu::Reg t = rT0 + i;
        emitLookup(builder, rTd4, rS0 + i, 24);
        builder.andi(rVal, rVal, 0xFF000000ll);
        builder.mov(t, rVal);
        emitLookup(builder, rTd4, rS0 + (i + 3) % 4, 16);
        builder.andi(rVal, rVal, 0x00FF0000ll);
        builder.xor_(t, t, rVal);
        emitLookup(builder, rTd4, rS0 + (i + 2) % 4, 8);
        builder.andi(rVal, rVal, 0x0000FF00ll);
        builder.xor_(t, t, rVal);
        emitLookup(builder, rTd4, rS0 + (i + 1) % 4, 0);
        builder.andi(rVal, rVal, 0x000000FFll);
        builder.xor_(t, t, rVal);
        builder.ld32(rRkVal, rRk, 4 * (base + i));
        builder.xor_(t, t, rRkVal);
        builder.st32(rOut, 4 * i, t);
    }

    builder.halt();
    return builder.build();
}

} // namespace uscope::crypto
