/**
 * @file
 * Table-based AES, from scratch, in the style of OpenSSL 0.9.8 — the
 * implementation the paper attacks (§4.4).
 *
 * Encryption uses the Te0..Te3 tables and decryption the Td0..Td3
 * tables; each table has 256 32-bit entries (1 KiB = 16 cache lines,
 * as in Figure 11).  The decryption round reads
 *
 *   t0 = Td0[s0>>24] ^ Td1[(s3>>16)&0xff] ^ Td2[(s2>>8)&0xff]
 *        ^ Td3[s1&0xff] ^ rk[4];
 *
 * exactly as the paper's Figure 8a.  The same tables are copied into
 * the victim's simulated memory by the code generator
 * (crypto/aes_codegen.hh), so the cache lines MicroScope extracts are
 * bit-for-bit the lines this reference implementation touches.
 *
 * The final decryption round uses an inverse-S-box table (Td4) stored
 * as 256 32-bit entries.
 */

#ifndef USCOPE_CRYPTO_AES_HH
#define USCOPE_CRYPTO_AES_HH

#include <array>
#include <cstdint>
#include <vector>

namespace uscope::crypto
{

/** Number of 32-bit entries per lookup table. */
constexpr unsigned aesTableEntries = 256;

/** One 1 KiB lookup table. */
using AesTable = std::array<std::uint32_t, aesTableEntries>;

/** The five decryption tables (Td0..Td3 plus the Td4 inv-sbox). */
struct AesDecTables
{
    AesTable td0;
    AesTable td1;
    AesTable td2;
    AesTable td3;
    AesTable td4;  ///< InvSbox replicated into all four bytes.
};

/** The encryption tables (Te0..Te3 plus sbox table). */
struct AesEncTables
{
    AesTable te0;
    AesTable te1;
    AesTable te2;
    AesTable te3;
    AesTable te4;  ///< Sbox replicated into all four bytes.
};

/** Lazily-built, process-wide table sets. */
const AesEncTables &encTables();
const AesDecTables &decTables();

/** Expanded key for one direction. */
class AesKey
{
  public:
    /**
     * Expand @p key for encryption or decryption.
     * @param key      Raw key bytes.
     * @param key_bits 128, 192, or 256.
     * @param decrypt  Build the equivalent-inverse-cipher schedule.
     */
    AesKey(const std::uint8_t *key, unsigned key_bits, bool decrypt);

    /** Number of rounds (10/12/14 — §4.4). */
    unsigned rounds() const { return rounds_; }

    /** Round-key words, 4*(rounds+1) of them. */
    const std::vector<std::uint32_t> &roundKeys() const { return rk_; }

  private:
    void expandEncrypt(const std::uint8_t *key, unsigned key_bits);
    void invertForDecrypt();

    unsigned rounds_;
    std::vector<std::uint32_t> rk_;
};

/** Encrypt one 16-byte block. */
void encryptBlock(const AesKey &key, const std::uint8_t in[16],
                  std::uint8_t out[16]);

/** Decrypt one 16-byte block. */
void decryptBlock(const AesKey &key, const std::uint8_t in[16],
                  std::uint8_t out[16]);

/**
 * Ground truth for the cache attack: the Td-table indices the
 * reference decryption touches, per round, per table.
 * indices[round][table] is the list of byte indices (0..255) looked
 * up in Td<table> during that round (4 per round; the final round
 * reports Td4 indices in table slot 4).
 */
struct DecAccessTrace
{
    // [round][table 0..4] -> indices accessed.
    std::vector<std::array<std::vector<std::uint8_t>, 5>> indices;
};

/** Run the reference decryption and record every table access. */
DecAccessTrace traceDecryption(const AesKey &key,
                               const std::uint8_t in[16]);

/**
 * Cache-line index (0..15) of a table entry: entries are 4 bytes and
 * lines 64, so line = index / 16 — the granularity Figure 11 reports.
 */
constexpr unsigned
tableLineOf(std::uint8_t index)
{
    return index / 16;
}

} // namespace uscope::crypto

#endif // USCOPE_CRYPTO_AES_HH
