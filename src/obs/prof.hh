/**
 * @file
 * Phase profiling (DESIGN.md §14): wall-time latency per named phase,
 * behind a zero-cost-when-off RAII timer.
 *
 * The taxonomy is dot-path phase names, mirroring the metric
 * namespace:
 *
 *   prof.trial.warmup    cold warmup of a trial's Machine
 *   prof.trial.fork      snapshot restore + reseed of a warm fork
 *   prof.trial.run       the trial body itself
 *   prof.trial.export    trace drain + spill write
 *   prof.svc.dispatch    daemon shard assignment + frame send
 *   prof.svc.merge       daemon partial/final aggregate folds
 *   prof.svc.checkpoint  daemon-side checkpoint preload on submit
 *
 * `ProfScope` reads the clock only when handed a non-null ProfData —
 * a disabled caller passes nullptr and pays two pointer compares.
 * Wall times are inherently nondeterministic, so ProfData NEVER flows
 * into TrialOutput::metrics or any fingerprinted surface: it rides
 * side channels only (CampaignResult::prof -> campaign JSON "prof",
 * worker heartbeats -> the daemon's stats reply).
 *
 * ObsLevel — the campaign-wide observability dial — lives here too:
 * it gates both profiling (>= Metrics) and per-trial event tracing
 * (>= Trace); Full is Trace with nothing held back (reserved for
 * future extra-cost surfaces; today Trace and Full differ only in
 * name, and the A/B bench measures all four).
 */

#ifndef USCOPE_OBS_PROF_HH
#define USCOPE_OBS_PROF_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/json.hh"
#include "common/stats.hh"

namespace uscope::obs
{

/** The campaign observability dial (--obs=LEVEL). */
enum class ObsLevel : int
{
    Off = 0,     ///< No profiling, no tracing.
    Metrics = 1, ///< Phase profiling + metric export only.
    Trace = 2,   ///< Metrics + per-trial event traces (and spills).
    Full = 3,    ///< Everything on.
};

/** Printable name ("off", "metrics", "trace", "full"). */
const char *obsLevelName(ObsLevel level);

/** Inverse of obsLevelName; nullopt on anything else. */
std::optional<ObsLevel> parseObsLevel(const std::string &name);

/** Accumulated wall-time per phase (insertion-ordered by name). */
class ProfData
{
  public:
    /** Fold one measured span into @p phase. */
    void
    add(const std::string &phase, double seconds)
    {
        phases_[phase].add(seconds);
    }

    /** Fold another ProfData in (cross-worker aggregation). */
    void
    merge(const ProfData &other)
    {
        for (const auto &[phase, summary] : other.phases_)
            phases_[phase].merge(summary);
    }

    bool empty() const { return phases_.empty(); }
    const std::map<std::string, Summary> &phases() const
    {
        return phases_;
    }

    /** `{phase: {count,total_seconds,mean_seconds,max_seconds}}`. */
    json::Value toJson() const;

    /** Round-trip for the wire (worker -> daemon): toJson() form in,
     *  summaries rebuilt losslessly enough for display (count + total
     *  + mean + max; stddev is not carried). */
    static ProfData fromJson(const json::Value &value);

  private:
    std::map<std::string, Summary> phases_;
};

/**
 * RAII phase timer.  Null @p data disables it entirely — no clock
 * read, no allocation — which is how ObsLevel::Off stays invisible in
 * the A/B bench.
 */
class ProfScope
{
  public:
    ProfScope(ProfData *data, const char *phase)
        : data_(data), phase_(phase)
    {
        if (data_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ProfScope()
    {
        if (data_)
            data_->add(phase_,
                       std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    ProfData *data_;
    const char *phase_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace uscope::obs

#endif // USCOPE_OBS_PROF_HH
