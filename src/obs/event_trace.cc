#include "obs/event_trace.hh"

#include <bit>

#include "common/logging.hh"

namespace uscope::obs
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::WalkStart: return "WalkStart";
      case EventKind::WalkStep: return "WalkStep";
      case EventKind::WalkEnd: return "WalkEnd";
      case EventKind::TlbMiss: return "TlbMiss";
      case EventKind::SpecIssue: return "SpecIssue";
      case EventKind::Retire: return "Retire";
      case EventKind::Squash: return "Squash";
      case EventKind::PortConflict: return "PortConflict";
      case EventKind::CacheAccess: return "CacheAccess";
      case EventKind::PageFault: return "PageFault";
      case EventKind::Probe: return "Probe";
      case EventKind::ReplayBoundary: return "ReplayBoundary";
      case EventKind::EpisodeEnd: return "EpisodeEnd";
      case EventKind::FaultInject: return "FaultInject";
    }
    return "?";
}

EventTrace::EventTrace(std::size_t capacity)
{
    if (capacity)
        reserve(capacity);
}

void
EventTrace::reserve(std::size_t capacity)
{
    if (capacity == 0)
        fatal("EventTrace::reserve: capacity must be nonzero");
    ring_.assign(std::bit_ceil(capacity), Event{});
    mask_ = ring_.size() - 1;
    total_ = 0;
}

void
EventTrace::setEnabled(bool enabled)
{
    if (enabled && ring_.empty())
        panic("EventTrace::setEnabled: no ring capacity reserved");
    enabled_ = enabled;
}

EventLog
EventTrace::drain() const
{
    EventLog log;
    log.total = total_;
    log.dropped = dropped();
    const std::uint64_t retained = total_ - log.dropped;
    log.events.reserve(static_cast<std::size_t>(retained));
    for (std::uint64_t i = log.dropped; i < total_; ++i)
        log.events.push_back(
            ring_[static_cast<std::size_t>(i) & mask_]);
    return log;
}

} // namespace uscope::obs
