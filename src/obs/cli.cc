#include "obs/cli.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "obs/log.hh"

namespace uscope::obs
{

namespace
{

/** Match `--flag` or `--flag=value`; value (or null) via @p value. */
bool
matchFlag(const char *arg, const char *flag, const char **value)
{
    const std::size_t len = std::strlen(flag);
    if (std::strncmp(arg, flag, len) != 0)
        return false;
    if (arg[len] == '\0') {
        *value = nullptr;
        return true;
    }
    if (arg[len] == '=') {
        *value = arg + len + 1;
        return true;
    }
    return false;
}

} // anonymous namespace

std::optional<std::uint64_t>
parseUnsignedValue(const char *text)
{
    if (!text || !*text)
        return std::nullopt;
    // strtoull accepts a leading minus sign and wraps it; reject it
    // (and stray whitespace) up front so "-1" never becomes 2^64-1.
    if (!std::isdigit(static_cast<unsigned char>(text[0])))
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(text, &end, 0);
    if (errno == ERANGE || !end || *end != '\0')
        return std::nullopt;
    return static_cast<std::uint64_t>(n);
}

std::uint64_t
requireUnsignedFlag(const char *flag, const char *text, std::uint64_t max)
{
    const std::optional<std::uint64_t> n = parseUnsignedValue(text);
    if (!n)
        panic("%s: bad value '%s' (expected an unsigned number)", flag,
              text ? text : "");
    if (*n > max)
        panic("%s: value %llu out of range (max %llu)", flag,
              static_cast<unsigned long long>(*n),
              static_cast<unsigned long long>(max));
    return *n;
}

BenchObsOptions
parseBenchObsOptions(int argc, char **argv,
                     const std::string &default_trace_path)
{
    configureLogFromEnv();
    BenchObsOptions opts;
    opts.tracePath = default_trace_path;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (matchFlag(arg, "--trace", &value)) {
            opts.trace = true;
            if (value && *value)
                opts.tracePath = value;
        } else if (matchFlag(arg, "--trace-capacity", &value)) {
            if (!value || !*value)
                panic("--trace-capacity requires a value");
            const std::uint64_t n =
                requireUnsignedFlag("--trace-capacity", value);
            if (n == 0)
                panic("--trace-capacity: bad value '%s'", value);
            opts.traceCapacity = static_cast<std::size_t>(n);
        } else if (matchFlag(arg, "--metrics", &value)) {
            opts.metrics = true;
        } else if (matchFlag(arg, "--fast-forward", &value)) {
            if (value && std::strcmp(value, "on") == 0)
                opts.fastForward = true;
            else if (value && std::strcmp(value, "off") == 0)
                opts.fastForward = false;
            else
                panic("--fast-forward requires 'on' or 'off'");
        } else if (matchFlag(arg, "--obs", &value)) {
            const std::optional<ObsLevel> level =
                value ? parseObsLevel(value) : std::nullopt;
            if (!level)
                panic("--obs requires off|metrics|trace|full");
            opts.obsLevel = level;
        } else if (matchFlag(arg, "--log-level", &value)) {
            const std::optional<LogLevel> level =
                value ? parseLogLevel(value) : std::nullopt;
            if (!level)
                panic("--log-level requires error|warn|info|debug");
            LogConfig lc = logConfig();
            lc.level = *level;
            configureLog(lc);
        } else if (matchFlag(arg, "--log-json", &value)) {
            LogConfig lc = logConfig();
            lc.json = true;
            configureLog(lc);
        } else {
            warn("ignoring unknown argument '%s' "
                 "(known: --trace[=PATH], --trace-capacity=N, "
                 "--metrics, --fast-forward={on,off}, --obs=LEVEL, "
                 "--log-level=LEVEL, --log-json)",
                 arg);
        }
    }
    return opts;
}

void
printMetrics(const MetricSnapshot &snapshot)
{
    for (const MetricValue &value : snapshot.values) {
        switch (value.kind) {
          case MetricKind::Counter:
            std::printf("%-32s %llu\n", value.name.c_str(),
                        static_cast<unsigned long long>(value.counter));
            break;
          case MetricKind::Gauge:
            std::printf("%-32s %.6g\n", value.name.c_str(), value.gauge);
            break;
          case MetricKind::Latency:
            std::printf("%-32s count=%llu mean=%.2f min=%.0f max=%.0f\n",
                        value.name.c_str(),
                        static_cast<unsigned long long>(
                            value.latency.count()),
                        value.latency.mean(), value.latency.min(),
                        value.latency.max());
            break;
        }
    }
}

} // namespace uscope::obs
