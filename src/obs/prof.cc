#include "obs/prof.hh"

namespace uscope::obs
{

const char *
obsLevelName(ObsLevel level)
{
    switch (level) {
      case ObsLevel::Off: return "off";
      case ObsLevel::Metrics: return "metrics";
      case ObsLevel::Trace: return "trace";
      case ObsLevel::Full: return "full";
    }
    return "?";
}

std::optional<ObsLevel>
parseObsLevel(const std::string &name)
{
    for (ObsLevel level : {ObsLevel::Off, ObsLevel::Metrics,
                           ObsLevel::Trace, ObsLevel::Full}) {
        if (name == obsLevelName(level))
            return level;
    }
    return std::nullopt;
}

json::Value
ProfData::toJson() const
{
    json::Value out = json::Value::object();
    for (const auto &[phase, summary] : phases_) {
        out.set(phase,
                json::Value::object()
                    .set("count", summary.count())
                    .set("total_seconds",
                         summary.mean() *
                             static_cast<double>(summary.count()))
                    .set("mean_seconds", summary.mean())
                    .set("max_seconds", summary.rawMax()));
    }
    return out;
}

ProfData
ProfData::fromJson(const json::Value &value)
{
    ProfData out;
    if (!value.isObject())
        return out;
    for (const auto &[phase, entry] : value.entries()) {
        const json::Value *count = entry.get("count");
        const json::Value *mean = entry.get("mean_seconds");
        const json::Value *max = entry.get("max_seconds");
        if (!count || !mean || !max)
            continue;
        // Rebuild a Summary with the carried moments; m2 (variance)
        // is not transported — display surfaces report count/mean/max.
        out.phases_[phase].merge(Summary::fromParts(
            count->asU64(), mean->asDouble(), 0.0, max->asDouble(),
            max->asDouble()));
    }
    return out;
}

} // namespace uscope::obs
