/**
 * @file
 * Chrome trace-event export: renders a drained EventLog as the JSON
 * object format (`{"traceEvents": [...]}`) understood by Perfetto and
 * chrome://tracing, so a Fig-10/11 replay shows up as a visual
 * timeline.
 *
 * Mapping: one simulated cycle is rendered as one microsecond (the
 * trace-event "ts" unit).  Page walks become duration ("B"/"E") spans
 * on the walker track; everything else is an instant event on a track
 * per subsystem (replay boundaries, walker, memory, one track per SMT
 * context).  Ring-buffer drops and writer-side caps are reported in a
 * metadata instant, never silently.
 */

#ifndef USCOPE_OBS_CHROME_TRACE_HH
#define USCOPE_OBS_CHROME_TRACE_HH

#include <cstddef>
#include <string>

#include "obs/event.hh"

namespace uscope::obs
{

/** Writer knobs. */
struct ChromeTraceOptions
{
    /** Emit at most this many events; the tail beyond it is dropped
     *  with a warn() and an in-trace annotation. */
    std::size_t maxEvents = 1u << 20;
};

/** Render @p log as a Chrome trace-event JSON document. */
std::string toChromeTraceJson(const EventLog &log,
                              const ChromeTraceOptions &options = {});

/**
 * Write toChromeTraceJson(@p log) to @p path.
 * @return true on success; warns and returns false on I/O failure.
 */
bool writeChromeTrace(const std::string &path, const EventLog &log,
                      const ChromeTraceOptions &options = {});

} // namespace uscope::obs

#endif // USCOPE_OBS_CHROME_TRACE_HH
