/**
 * @file
 * Chrome trace-event export: renders a drained EventLog as the JSON
 * object format (`{"traceEvents": [...]}`) understood by Perfetto and
 * chrome://tracing, so a Fig-10/11 replay shows up as a visual
 * timeline.
 *
 * Mapping: one simulated cycle is rendered as one microsecond (the
 * trace-event "ts" unit).  Page walks become duration ("B"/"E") spans
 * on the walker track; everything else is an instant event on a track
 * per subsystem (replay boundaries, walker, memory, one track per SMT
 * context).  Ring-buffer drops and writer-side caps are reported in a
 * metadata instant, never silently.
 */

#ifndef USCOPE_OBS_CHROME_TRACE_HH
#define USCOPE_OBS_CHROME_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/event.hh"

namespace uscope::obs
{

/** Writer knobs. */
struct ChromeTraceOptions
{
    /** Emit at most this many events; the tail beyond it is dropped
     *  with a warn() and an in-trace annotation. */
    std::size_t maxEvents = 1u << 20;
};

/** Render @p log as a Chrome trace-event JSON document. */
std::string toChromeTraceJson(const EventLog &log,
                              const ChromeTraceOptions &options = {});

/**
 * Write toChromeTraceJson(@p log) to @p path.
 * @return true on success; warns and returns false on I/O failure.
 */
bool writeChromeTrace(const std::string &path, const EventLog &log,
                      const ChromeTraceOptions &options = {});

// ---------------------------------------------------------------------
// Cross-process trace aggregation (DESIGN.md §14).
// ---------------------------------------------------------------------

/**
 * One trial's trace as drained by a (possibly remote) worker process:
 * the EventLog plus the coordinates that place it on the merged
 * timeline.  Serialized as a compact JSON spill file — the durable
 * per-trial form workers write under the campaign's state dir
 * (`<dir>/trace-w<worker>-t<index>.json`, via writeFileAtomic), which
 * the daemon or `svc_client trace` later merges into one Perfetto
 * document.
 */
struct TraceSpill
{
    unsigned worker = 0;
    std::size_t trial = 0;
    /** Machine cycle at trial hand-off (TrialContext::forkCycle) —
     *  lets a viewer separate shared-warmup from per-trial spans. */
    std::uint64_t forkCycle = 0;
    EventLog log;
};

/** Compact spill serialization: `{"worker","trial","fork_cycle",
 *  "dropped","total","events":[[cycle,kind,a,b,addr],...]}`. */
std::string traceSpillToJson(const TraceSpill &spill);

/** Inverse of traceSpillToJson; nullopt on malformed input. */
std::optional<TraceSpill> parseTraceSpill(const std::string &text);

/** Canonical spill filename for (worker, trial) under @p dir. */
std::string traceSpillPath(const std::string &dir, unsigned worker,
                           std::size_t trial);

/**
 * Persist @p spill atomically under @p dir (created on demand).
 * @return true on success; warns and returns false on failure.
 */
bool writeTraceSpill(const std::string &dir, const TraceSpill &spill);

/**
 * Read every `trace-*.json` spill under @p dir, sorted by filename;
 * unparseable files warn and are skipped.
 */
std::vector<TraceSpill> loadTraceSpills(const std::string &dir);

/**
 * Merge per-trial spills from many worker processes into ONE Chrome
 * trace-event document: each worker becomes a `pid` lane (with a
 * process_name metadata record), each trial a group of `tid` tracks
 * inside its worker's lane (replay/walker/mem/fault/core, named
 * `t<trial> <track>`), so a 4-worker campaign renders as four
 * side-by-side process lanes sharing one cycle axis.  Duplicate
 * spills for one trial (a steal race executed it twice — byte-
 * identical by the determinism contract) are deduplicated, keeping
 * the lowest worker id.  Drop/cap accounting is summed across spills
 * into otherData, never silent.
 */
std::string mergeChromeTraces(std::vector<TraceSpill> spills,
                              const ChromeTraceOptions &options = {});

} // namespace uscope::obs

#endif // USCOPE_OBS_CHROME_TRACE_HH
