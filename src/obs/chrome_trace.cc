#include "obs/chrome_trace.hh"

#include <cstdio>
#include <filesystem>

#include "common/json.hh"
#include "common/logging.hh"

namespace uscope::obs
{

namespace
{

/** Virtual thread ids (Chrome "tid") per subsystem track. */
constexpr int tidReplay = 0;
constexpr int tidWalker = 1;
constexpr int tidMem = 2;
constexpr int tidFault = 3;
constexpr int tidCoreBase = 10;  ///< +ctx

const char *
levelName(unsigned level)
{
    static const char *const names[] = {"L1", "L2", "L3", "DRAM"};
    return level < 4 ? names[level] : "?";
}

/** Mirrors fault::Site (obs cannot depend on the fault library). */
const char *
faultSiteName(unsigned site)
{
    static const char *const names[] = {"interrupt", "preemption",
                                        "port-jitter", "probe-jitter",
                                        "sample-drop"};
    return site < 5 ? names[site] : "?";
}

std::string
hex(std::uint64_t value)
{
    return format("0x%llx", static_cast<unsigned long long>(value));
}

/** One trace-event dict.  @p ph is "B"/"E"/"i"/"M". */
json::Value
traceEvent(const char *name, const char *ph, std::uint64_t ts, int tid)
{
    json::Value v = json::Value::object()
                        .set("name", name)
                        .set("ph", ph)
                        .set("ts", ts)
                        .set("pid", 0)
                        .set("tid", tid);
    if (ph[0] == 'i')
        v.set("s", "t");  // instant scoped to its thread/track.
    return v;
}

json::Value
convert(const Event &e)
{
    switch (e.kind) {
      case EventKind::WalkStart:
        return traceEvent("page-walk", "B", e.cycle, tidWalker)
            .set("args", json::Value::object()
                             .set("va", hex(e.addr))
                             .set("start_level", std::uint64_t{e.a}));
      case EventKind::WalkEnd:
        return traceEvent("page-walk", "E", e.cycle, tidWalker)
            .set("args", json::Value::object()
                             .set("va", hex(e.addr))
                             .set("fault", e.a != 0)
                             .set("latency", std::uint64_t{e.b}));
      case EventKind::WalkStep:
        return traceEvent("walk-step", "i", e.cycle, tidWalker)
            .set("args", json::Value::object()
                             .set("level", std::uint64_t{e.a})
                             .set("latency", std::uint64_t{e.b})
                             .set("entry_pa", hex(e.addr)));
      case EventKind::TlbMiss:
        return traceEvent("tlb-miss", "i", e.cycle, tidWalker)
            .set("args", json::Value::object().set("va", hex(e.addr)));
      case EventKind::PageFault:
        return traceEvent("page-fault", "i", e.cycle, tidWalker)
            .set("args", json::Value::object()
                             .set("ctx", std::uint64_t{e.a})
                             .set("va", hex(e.addr)));
      case EventKind::SpecIssue:
        return traceEvent("issue", "i", e.cycle, tidCoreBase + e.a)
            .set("args", json::Value::object()
                             .set("op", std::uint64_t{e.b})
                             .set("pc", e.addr));
      case EventKind::Retire:
        return traceEvent("retire", "i", e.cycle, tidCoreBase + e.a)
            .set("args", json::Value::object()
                             .set("op", std::uint64_t{e.b})
                             .set("pc", e.addr));
      case EventKind::Squash:
        return traceEvent("squash", "i", e.cycle, tidCoreBase + e.a)
            .set("args", json::Value::object()
                             .set("entries", std::uint64_t{e.b})
                             .set("pc", e.addr));
      case EventKind::PortConflict:
        return traceEvent("port-conflict", "i", e.cycle,
                          tidCoreBase + e.a)
            .set("args", json::Value::object()
                             .set("op", std::uint64_t{e.b})
                             .set("pc", e.addr));
      case EventKind::CacheAccess:
        return traceEvent("cache-access", "i", e.cycle, tidMem)
            .set("args", json::Value::object()
                             .set("level", levelName(e.a))
                             .set("latency", std::uint64_t{e.b})
                             .set("line", hex(e.addr)));
      case EventKind::Probe:
        return traceEvent("probe", "i", e.cycle, tidMem)
            .set("args", json::Value::object()
                             .set("level", levelName(e.a))
                             .set("latency", std::uint64_t{e.b})
                             .set("line", hex(e.addr)));
      case EventKind::ReplayBoundary:
        return traceEvent("replay", "i", e.cycle, tidReplay)
            .set("args",
                 json::Value::object()
                     .set("page", e.a == 2 ? "pivot" : "handle")
                     .set("replay", std::uint64_t{e.b})
                     .set("episode", e.addr));
      case EventKind::EpisodeEnd:
        return traceEvent("episode-end", "i", e.cycle, tidReplay)
            .set("args", json::Value::object()
                             .set("replays", std::uint64_t{e.b})
                             .set("episode", e.addr));
      case EventKind::FaultInject:
        return traceEvent("fault-inject", "i", e.cycle, tidFault)
            .set("args", json::Value::object()
                             .set("site", faultSiteName(e.a))
                             .set("magnitude", std::uint64_t{e.b})
                             .set("payload", hex(e.addr)));
    }
    return traceEvent(eventKindName(e.kind), "i", e.cycle, tidMem);
}

json::Value
threadNameMeta(int tid, const char *name)
{
    return json::Value::object()
        .set("name", "thread_name")
        .set("ph", "M")
        .set("pid", 0)
        .set("tid", tid)
        .set("args", json::Value::object().set("name", name));
}

} // anonymous namespace

std::string
toChromeTraceJson(const EventLog &log, const ChromeTraceOptions &options)
{
    json::Value events = json::Value::array();
    events.push(threadNameMeta(tidReplay, "replay"));
    events.push(threadNameMeta(tidWalker, "walker"));
    events.push(threadNameMeta(tidMem, "mem"));
    events.push(threadNameMeta(tidFault, "fault"));
    events.push(threadNameMeta(tidCoreBase + 0, "core.ctx0"));
    events.push(threadNameMeta(tidCoreBase + 1, "core.ctx1"));

    std::size_t emitted = 0;
    std::size_t capped = 0;
    for (const Event &e : log.events) {
        if (emitted >= options.maxEvents) {
            ++capped;
            continue;
        }
        events.push(convert(e));
        ++emitted;
    }

    if (capped)
        warn("chrome trace: emitted %zu of %zu retained events "
             "(writer cap %zu); %zu dropped from the tail",
             emitted, log.events.size(), options.maxEvents, capped);
    if (log.dropped)
        warn("chrome trace: ring buffer overwrote %llu of %llu "
             "recorded events before export",
             static_cast<unsigned long long>(log.dropped),
             static_cast<unsigned long long>(log.total));

    json::Value doc =
        json::Value::object()
            .set("traceEvents", std::move(events))
            .set("displayTimeUnit", "ms")
            .set("otherData",
                 json::Value::object()
                     .set("cycles_per_us", 1)
                     .set("events_recorded", log.total)
                     .set("events_ring_dropped", log.dropped)
                     .set("events_writer_capped",
                          std::uint64_t{capped}));
    return doc.dump();
}

bool
writeChromeTrace(const std::string &path, const EventLog &log,
                 const ChromeTraceOptions &options)
{
    const std::string body = toChromeTraceJson(log, options);
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file) {
        warn("chrome trace: cannot open '%s' for writing", path.c_str());
        return false;
    }
    const std::size_t written =
        std::fwrite(body.data(), 1, body.size(), file);
    std::fclose(file);
    if (written != body.size()) {
        warn("chrome trace: short write to '%s' (%zu of %zu bytes)",
             path.c_str(), written, body.size());
        return false;
    }
    return true;
}

} // namespace uscope::obs
