#include "obs/chrome_trace.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/fsio.hh"
#include "common/json.hh"
#include "common/logging.hh"

namespace uscope::obs
{

namespace
{

/** Virtual thread ids (Chrome "tid") per subsystem track. */
constexpr int tidReplay = 0;
constexpr int tidWalker = 1;
constexpr int tidMem = 2;
constexpr int tidFault = 3;
constexpr int tidCoreBase = 10;  ///< +ctx

const char *
levelName(unsigned level)
{
    static const char *const names[] = {"L1", "L2", "L3", "DRAM"};
    return level < 4 ? names[level] : "?";
}

/** Mirrors fault::Site (obs cannot depend on the fault library). */
const char *
faultSiteName(unsigned site)
{
    static const char *const names[] = {"interrupt", "preemption",
                                        "port-jitter", "probe-jitter",
                                        "sample-drop"};
    return site < 5 ? names[site] : "?";
}

std::string
hex(std::uint64_t value)
{
    return format("0x%llx", static_cast<unsigned long long>(value));
}

/** One trace-event dict.  @p ph is "B"/"E"/"i"/"M". */
json::Value
traceEvent(const char *name, const char *ph, std::uint64_t ts, int tid)
{
    json::Value v = json::Value::object()
                        .set("name", name)
                        .set("ph", ph)
                        .set("ts", ts)
                        .set("pid", 0)
                        .set("tid", tid);
    if (ph[0] == 'i')
        v.set("s", "t");  // instant scoped to its thread/track.
    return v;
}

json::Value
convert(const Event &e)
{
    switch (e.kind) {
      case EventKind::WalkStart:
        return traceEvent("page-walk", "B", e.cycle, tidWalker)
            .set("args", json::Value::object()
                             .set("va", hex(e.addr))
                             .set("start_level", std::uint64_t{e.a}));
      case EventKind::WalkEnd:
        return traceEvent("page-walk", "E", e.cycle, tidWalker)
            .set("args", json::Value::object()
                             .set("va", hex(e.addr))
                             .set("fault", e.a != 0)
                             .set("latency", std::uint64_t{e.b}));
      case EventKind::WalkStep:
        return traceEvent("walk-step", "i", e.cycle, tidWalker)
            .set("args", json::Value::object()
                             .set("level", std::uint64_t{e.a})
                             .set("latency", std::uint64_t{e.b})
                             .set("entry_pa", hex(e.addr)));
      case EventKind::TlbMiss:
        return traceEvent("tlb-miss", "i", e.cycle, tidWalker)
            .set("args", json::Value::object().set("va", hex(e.addr)));
      case EventKind::PageFault:
        return traceEvent("page-fault", "i", e.cycle, tidWalker)
            .set("args", json::Value::object()
                             .set("ctx", std::uint64_t{e.a})
                             .set("va", hex(e.addr)));
      case EventKind::SpecIssue:
        return traceEvent("issue", "i", e.cycle, tidCoreBase + e.a)
            .set("args", json::Value::object()
                             .set("op", std::uint64_t{e.b})
                             .set("pc", e.addr));
      case EventKind::Retire:
        return traceEvent("retire", "i", e.cycle, tidCoreBase + e.a)
            .set("args", json::Value::object()
                             .set("op", std::uint64_t{e.b})
                             .set("pc", e.addr));
      case EventKind::Squash:
        return traceEvent("squash", "i", e.cycle, tidCoreBase + e.a)
            .set("args", json::Value::object()
                             .set("entries", std::uint64_t{e.b})
                             .set("pc", e.addr));
      case EventKind::PortConflict:
        return traceEvent("port-conflict", "i", e.cycle,
                          tidCoreBase + e.a)
            .set("args", json::Value::object()
                             .set("op", std::uint64_t{e.b})
                             .set("pc", e.addr));
      case EventKind::CacheAccess:
        return traceEvent("cache-access", "i", e.cycle, tidMem)
            .set("args", json::Value::object()
                             .set("level", levelName(e.a))
                             .set("latency", std::uint64_t{e.b})
                             .set("line", hex(e.addr)));
      case EventKind::Probe:
        return traceEvent("probe", "i", e.cycle, tidMem)
            .set("args", json::Value::object()
                             .set("level", levelName(e.a))
                             .set("latency", std::uint64_t{e.b})
                             .set("line", hex(e.addr)));
      case EventKind::ReplayBoundary:
        return traceEvent("replay", "i", e.cycle, tidReplay)
            .set("args",
                 json::Value::object()
                     .set("page", e.a == 2 ? "pivot" : "handle")
                     .set("replay", std::uint64_t{e.b})
                     .set("episode", e.addr));
      case EventKind::EpisodeEnd:
        return traceEvent("episode-end", "i", e.cycle, tidReplay)
            .set("args", json::Value::object()
                             .set("replays", std::uint64_t{e.b})
                             .set("episode", e.addr));
      case EventKind::FaultInject:
        return traceEvent("fault-inject", "i", e.cycle, tidFault)
            .set("args", json::Value::object()
                             .set("site", faultSiteName(e.a))
                             .set("magnitude", std::uint64_t{e.b})
                             .set("payload", hex(e.addr)));
    }
    return traceEvent(eventKindName(e.kind), "i", e.cycle, tidMem);
}

json::Value
threadNameMeta(int tid, const char *name)
{
    return json::Value::object()
        .set("name", "thread_name")
        .set("ph", "M")
        .set("pid", 0)
        .set("tid", tid)
        .set("args", json::Value::object().set("name", name));
}

} // anonymous namespace

std::string
toChromeTraceJson(const EventLog &log, const ChromeTraceOptions &options)
{
    json::Value events = json::Value::array();
    events.push(threadNameMeta(tidReplay, "replay"));
    events.push(threadNameMeta(tidWalker, "walker"));
    events.push(threadNameMeta(tidMem, "mem"));
    events.push(threadNameMeta(tidFault, "fault"));
    events.push(threadNameMeta(tidCoreBase + 0, "core.ctx0"));
    events.push(threadNameMeta(tidCoreBase + 1, "core.ctx1"));

    std::size_t emitted = 0;
    std::size_t capped = 0;
    for (const Event &e : log.events) {
        if (emitted >= options.maxEvents) {
            ++capped;
            continue;
        }
        events.push(convert(e));
        ++emitted;
    }

    if (capped)
        warn("chrome trace: emitted %zu of %zu retained events "
             "(writer cap %zu); %zu dropped from the tail",
             emitted, log.events.size(), options.maxEvents, capped);
    if (log.dropped)
        warn("chrome trace: ring buffer overwrote %llu of %llu "
             "recorded events before export",
             static_cast<unsigned long long>(log.dropped),
             static_cast<unsigned long long>(log.total));

    json::Value doc =
        json::Value::object()
            .set("traceEvents", std::move(events))
            .set("displayTimeUnit", "ms")
            .set("otherData",
                 json::Value::object()
                     .set("cycles_per_us", 1)
                     .set("events_recorded", log.total)
                     .set("events_ring_dropped", log.dropped)
                     .set("events_writer_capped",
                          std::uint64_t{capped}));
    return doc.dump();
}

// ---------------------------------------------------------------------
// Cross-process trace aggregation (DESIGN.md §14).
// ---------------------------------------------------------------------

namespace
{

/** tid stride per trial in a merged document: room for the subsystem
 *  tracks (tidCoreBase + ctx stays well below it). */
constexpr std::size_t tidStride = 32;

/** Re-home a converted event onto (pid = worker, tid group = trial). */
json::Value
retarget(json::Value event, unsigned pid, std::size_t tidBase)
{
    const json::Value *tid = event.get("tid");
    const std::uint64_t local = tid ? tid->asU64() : 0;
    event.set("pid", std::uint64_t{pid});
    event.set("tid", tidBase + local);
    return event;
}

json::Value
processNameMeta(unsigned pid, const std::string &name)
{
    return json::Value::object()
        .set("name", "process_name")
        .set("ph", "M")
        .set("pid", std::uint64_t{pid})
        .set("tid", 0)
        .set("args", json::Value::object().set("name", name));
}

/** The subsystem tracks a trial's tid group contains, mirrored from
 *  the single-machine writer's thread-name metadata. */
constexpr std::pair<int, const char *> trialTracks[] = {
    {tidReplay, "replay"}, {tidWalker, "walker"}, {tidMem, "mem"},
    {tidFault, "fault"},   {tidCoreBase + 0, "core.ctx0"},
    {tidCoreBase + 1, "core.ctx1"},
};

} // anonymous namespace

std::string
traceSpillToJson(const TraceSpill &spill)
{
    json::Value events = json::Value::array();
    for (const Event &e : spill.log.events) {
        events.push(json::Value::array()
                        .push(e.cycle)
                        .push(std::uint64_t{
                            static_cast<unsigned>(e.kind)})
                        .push(std::uint64_t{e.a})
                        .push(std::uint64_t{e.b})
                        .push(e.addr));
    }
    return json::Value::object()
        .set("worker", std::uint64_t{spill.worker})
        .set("trial", std::uint64_t{spill.trial})
        .set("fork_cycle", spill.forkCycle)
        .set("dropped", spill.log.dropped)
        .set("total", spill.log.total)
        .set("events", std::move(events))
        .dump();
}

std::optional<TraceSpill>
parseTraceSpill(const std::string &text)
{
    const std::optional<json::Value> doc = json::Value::parse(text);
    if (!doc || !doc->isObject())
        return std::nullopt;
    const json::Value *worker = doc->get("worker");
    const json::Value *trial = doc->get("trial");
    const json::Value *events = doc->get("events");
    if (!worker || !trial || !events || !events->isArray())
        return std::nullopt;

    TraceSpill spill;
    spill.worker = static_cast<unsigned>(worker->asU64());
    spill.trial = static_cast<std::size_t>(trial->asU64());
    if (const json::Value *fork = doc->get("fork_cycle"))
        spill.forkCycle = fork->asU64();
    if (const json::Value *dropped = doc->get("dropped"))
        spill.log.dropped = dropped->asU64();
    for (const json::Value &row : events->items()) {
        if (!row.isArray() || row.items().size() != 5)
            return std::nullopt;
        const auto &f = row.items();
        const std::uint64_t kind = f[1].asU64();
        if (kind >= numEventKinds)
            return std::nullopt;
        Event e;
        e.cycle = f[0].asU64();
        e.kind = static_cast<EventKind>(kind);
        e.a = static_cast<std::uint8_t>(f[2].asU64());
        e.b = static_cast<std::uint16_t>(f[3].asU64());
        e.addr = f[4].asU64();
        spill.log.events.push_back(e);
    }
    spill.log.total = doc->get("total")
                          ? doc->get("total")->asU64()
                          : spill.log.events.size() + spill.log.dropped;
    return spill;
}

std::string
traceSpillPath(const std::string &dir, unsigned worker,
               std::size_t trial)
{
    return dir + format("/trace-w%03u-t%06zu.json", worker, trial);
}

bool
writeTraceSpill(const std::string &dir, const TraceSpill &spill)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("trace spill: cannot create '%s': %s", dir.c_str(),
             ec.message().c_str());
        return false;
    }
    try {
        writeFileAtomic(traceSpillPath(dir, spill.worker, spill.trial),
                        traceSpillToJson(spill));
    } catch (const SimFatal &e) {
        // A failed spill loses observability, never results; the
        // campaign keeps running.
        warn("trace spill: %s", e.what());
        return false;
    }
    return true;
}

std::vector<TraceSpill>
loadTraceSpills(const std::string &dir)
{
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("trace-", 0) == 0 &&
            name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            paths.push_back(entry.path().string());
    }
    if (ec)
        warn("trace spills: cannot list '%s': %s", dir.c_str(),
             ec.message().c_str());
    std::sort(paths.begin(), paths.end());

    std::vector<TraceSpill> spills;
    for (const std::string &path : paths) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        if (!in) {
            warn("trace spill: cannot read '%s'", path.c_str());
            continue;
        }
        if (std::optional<TraceSpill> spill =
                parseTraceSpill(buffer.str()))
            spills.push_back(std::move(*spill));
        else
            warn("trace spill: '%s' is malformed; skipped",
                 path.c_str());
    }
    return spills;
}

std::string
mergeChromeTraces(std::vector<TraceSpill> spills,
                  const ChromeTraceOptions &options)
{
    // Deterministic layout regardless of spill discovery order — and
    // the dedup rule for steal races (two workers executed one trial;
    // the logs are byte-identical, keep the lowest worker id).
    std::sort(spills.begin(), spills.end(),
              [](const TraceSpill &a, const TraceSpill &b) {
                  return a.trial != b.trial ? a.trial < b.trial
                                            : a.worker < b.worker;
              });
    std::size_t duplicates = 0;
    std::vector<TraceSpill> unique;
    for (TraceSpill &spill : spills) {
        if (!unique.empty() && unique.back().trial == spill.trial)
            ++duplicates;
        else
            unique.push_back(std::move(spill));
    }

    json::Value events = json::Value::array();
    std::set<unsigned> workers;
    for (const TraceSpill &spill : unique)
        workers.insert(spill.worker);
    for (unsigned worker : workers)
        events.push(
            processNameMeta(worker, format("worker %u", worker)));

    std::uint64_t ringDropped = 0, recorded = 0;
    std::size_t emitted = 0, capped = 0;
    for (const TraceSpill &spill : unique) {
        const std::size_t tidBase = spill.trial * tidStride;
        for (const auto &[tid, name] : trialTracks) {
            events.push(
                threadNameMeta(tid, format("t%zu %s", spill.trial,
                                           name).c_str())
                    .set("pid", std::uint64_t{spill.worker})
                    .set("tid", tidBase + tid));
        }
        for (const Event &e : spill.log.events) {
            if (emitted >= options.maxEvents) {
                ++capped;
                continue;
            }
            events.push(retarget(convert(e), spill.worker, tidBase));
            ++emitted;
        }
        ringDropped += spill.log.dropped;
        recorded += spill.log.total;
    }
    if (capped)
        warn("merged trace: emitted %zu events (writer cap %zu); %zu "
             "dropped from the tail",
             emitted, options.maxEvents, capped);
    if (ringDropped)
        warn("merged trace: worker rings overwrote %llu of %llu "
             "recorded events before export",
             static_cast<unsigned long long>(ringDropped),
             static_cast<unsigned long long>(recorded));

    return json::Value::object()
        .set("traceEvents", std::move(events))
        .set("displayTimeUnit", "ms")
        .set("otherData",
             json::Value::object()
                 .set("cycles_per_us", 1)
                 .set("workers", std::uint64_t{workers.size()})
                 .set("trials", std::uint64_t{unique.size()})
                 .set("duplicate_spills", std::uint64_t{duplicates})
                 .set("events_recorded", recorded)
                 .set("events_ring_dropped", ringDropped)
                 .set("events_writer_capped", std::uint64_t{capped}))
        .dump();
}

bool
writeChromeTrace(const std::string &path, const EventLog &log,
                 const ChromeTraceOptions &options)
{
    const std::string body = toChromeTraceJson(log, options);
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file) {
        warn("chrome trace: cannot open '%s' for writing", path.c_str());
        return false;
    }
    const std::size_t written =
        std::fwrite(body.data(), 1, body.size(), file);
    std::fclose(file);
    if (written != body.size()) {
        warn("chrome trace: short write to '%s' (%zu of %zu bytes)",
             path.c_str(), written, body.size());
        return false;
    }
    return true;
}

} // namespace uscope::obs
