/**
 * @file
 * A hierarchical registry of named metrics.
 *
 * Names are dot-separated paths mirroring the component tree
 * ("core.rob.squashes", "mem.l1d.misses", "vm.walker.steps",
 * "os.faults.replayed").  Three metric kinds exist:
 *
 *  - Counter: a monotonically meaningful uint64 (sums across merges);
 *  - Gauge:   a double (also summed across merges — per-trial gauges
 *             are really totals in a campaign context);
 *  - Latency: a streaming Summary (count/mean/variance/min/max)
 *             merged with Summary::merge, inheriting its determinism
 *             contract.
 *
 * Components implement exportMetrics(MetricRegistry&), writing their
 * existing stats counters into the registry at snapshot time — the
 * hot simulation paths carry no registry pointers and pay nothing.
 *
 * Thread-safety / ownership rule: a MetricRegistry (like the Machine
 * whose metrics it exports) is confined to one thread at a time, so
 * registration and updates are lock-free by design.  Cross-thread
 * aggregation happens exclusively through immutable MetricSnapshot
 * values merged in trial-index order by the campaign runner — the
 * same contract Summary::merge already obeys.  Registering the same
 * name twice with the same kind returns the same slot (idempotent);
 * re-registering under a different kind is a simulator bug and panics.
 */

#ifndef USCOPE_OBS_METRICS_HH
#define USCOPE_OBS_METRICS_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"

namespace uscope::obs
{

enum class MetricKind : std::uint8_t { Counter, Gauge, Latency };

const char *metricKindName(MetricKind kind);

/** A monotonic 64-bit event count. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void set(std::uint64_t value) { value_ = value; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** A point-in-time double (occupancies, ratios, totals). */
class Gauge
{
  public:
    void set(double value) { value_ = value; }
    void add(double delta) { value_ += delta; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** A latency/size distribution summarized via common/stats Summary. */
class LatencyStat
{
  public:
    void record(double sample) { summary_.add(sample); }
    /** Fold a component-maintained Summary in wholesale. */
    void fold(const Summary &summary) { summary_.merge(summary); }
    const Summary &summary() const { return summary_; }

  private:
    Summary summary_;
};

/** One metric's value, frozen at snapshot time. */
struct MetricValue
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    Summary latency;

    uscope::json::Value toJson() const;
};

/**
 * An immutable, name-sorted capture of a registry.  Snapshots are the
 * unit of cross-thread aggregation: merge() combines two snapshots
 * name-wise (counters and gauges sum, latencies Summary::merge) and
 * is bit-deterministic when applied in a fixed order.
 */
struct MetricSnapshot
{
    /** Sorted by name (strcmp order). */
    std::vector<MetricValue> values;

    bool empty() const { return values.empty(); }
    std::size_t size() const { return values.size(); }

    /** Lookup by exact name; nullptr when absent. */
    const MetricValue *find(const std::string &name) const;

    /**
     * Fold @p other in.  Shared names must agree on kind (else
     * panic); names unique to either side are kept.
     */
    void merge(const MetricSnapshot &other);

    /**
     * A copy with every name prefixed by @p prefix (e.g.
     * "svc.worker3." + "core.issued" -> "svc.worker3.core.issued").
     * A uniform prefix preserves the name-sort order, so the result is
     * still a valid snapshot for merge().  This is how the campaign
     * service tags per-worker metric streams with the worker id
     * without kind collisions against the untagged aggregate.
     */
    MetricSnapshot prefixed(const std::string &prefix) const;

    /** {"name": value-or-summary-object, ...} in name order. */
    uscope::json::Value toJson() const;
};

/** The registry components export into. */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** Find-or-create; panics if @p name exists with another kind. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    LatencyStat &latency(const std::string &name);

    std::size_t size() const { return slots_.size(); }

    /** Freeze current values, sorted by name. */
    MetricSnapshot snapshot() const;

  private:
    struct Slot
    {
        std::string name;
        MetricKind kind;
        Counter counter;
        Gauge gauge;
        LatencyStat latency;
    };

    Slot &slot(const std::string &name, MetricKind kind);

    /** deque: stable addresses for handed-out references. */
    std::deque<Slot> slots_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace uscope::obs

#endif // USCOPE_OBS_METRICS_HH
