/**
 * @file
 * EventTrace: a fixed-capacity ring buffer of typed event records.
 *
 * Overhead-when-disabled guarantee: record() is a single predictable
 * branch on a plain bool and an immediate return — no formatting, no
 * allocation, no atomic, no function call (it is inline).  Components
 * therefore call record() unconditionally on hot paths; the simulator
 * only pays for tracing when a harness turned it on.
 *
 * When enabled, a record is two stores into a preallocated ring; when
 * the ring is full the oldest records are overwritten and counted as
 * dropped (reported by drain(), never silently).
 *
 * Ownership rule: an EventTrace belongs to exactly one Machine and is
 * only touched from the thread simulating it, so the hot path needs no
 * locks (see DESIGN.md §observability).
 */

#ifndef USCOPE_OBS_EVENT_TRACE_HH
#define USCOPE_OBS_EVENT_TRACE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/event.hh"

namespace uscope::obs
{

/** The per-Machine event ring. */
class EventTrace
{
  public:
    /** @param capacity Ring slots; rounded up to a power of two.
     *  A zero capacity leaves the ring unallocated (records are
     *  counted but not retained — enable() requires capacity). */
    explicit EventTrace(std::size_t capacity = 0);

    /** Allocate (or resize) the ring and clear it. */
    void reserve(std::size_t capacity);

    bool enabled() const { return enabled_; }

    /** Turn recording on/off.  Enabling with no capacity panics. */
    void setEnabled(bool enabled);

    /** Bind the cycle counter record() stamps events with. */
    void bindClock(const std::uint64_t *cycle) { clock_ = cycle; }

    /** Record one event.  The entire disabled-path cost is this
     *  branch. */
    void
    record(EventKind kind, std::uint8_t a = 0, std::uint16_t b = 0,
           std::uint64_t addr = 0)
    {
        if (!enabled_)
            return;
        recordAt(clock_ ? *clock_ : 0, kind, a, b, addr);
    }

    /** Record with an explicit timestamp.  Sub-events of an atomic
     *  simulation step (e.g. the fetches inside one page walk, which
     *  completes without advancing the core clock) use this to spread
     *  themselves over the latency the step charged. */
    void
    recordAt(std::uint64_t cycle, EventKind kind, std::uint8_t a = 0,
             std::uint16_t b = 0, std::uint64_t addr = 0)
    {
        if (!enabled_)
            return;
        Event &e = ring_[static_cast<std::size_t>(total_) & mask_];
        e.cycle = cycle;
        e.kind = kind;
        e.a = a;
        e.b = b;
        e.addr = addr;
        ++total_;
    }

    /** The cycle record() would stamp right now. */
    std::uint64_t now() const { return clock_ ? *clock_ : 0; }

    std::size_t capacity() const { return ring_.size(); }

    /** Events recorded over this trace's lifetime (incl. dropped). */
    std::uint64_t totalRecorded() const { return total_; }

    /** Events overwritten by wrap-around so far. */
    std::uint64_t dropped() const
    {
        return total_ > ring_.size() ? total_ - ring_.size() : 0;
    }

    /** Copy out the retained events (oldest first) + drop counts. */
    EventLog drain() const;

    /** Forget every recorded event (capacity is kept). */
    void clear() { total_ = 0; }

    /**
     * Adopt @p other's recorded events, counters, and enable flag
     * (snapshot forking, DESIGN.md §12).  The clock binding is NOT
     * copied: it points into the owning Machine's core and would
     * dangle across machines — each trace keeps its own.
     *
     * Only the live slots are copied: no reader (drain(), record()'s
     * overwrite cursor) ever touches a slot past min(total_, size),
     * so the garbage beyond them need not travel.  Restore-heavy
     * paths (differential replay) copy near-empty traces constantly;
     * hauling the full preallocated ring dominated their cost.
     */
    void copyStateFrom(const EventTrace &other)
    {
        enabled_ = other.enabled_;
        total_ = other.total_;
        mask_ = other.mask_;
        if (ring_.size() != other.ring_.size()) {
            ring_ = other.ring_;
            return;
        }
        const std::size_t live = static_cast<std::size_t>(
            std::min<std::uint64_t>(total_, other.ring_.size()));
        std::copy_n(other.ring_.begin(), live, ring_.begin());
    }

  private:
    bool enabled_ = false;
    const std::uint64_t *clock_ = nullptr;
    std::uint64_t total_ = 0;
    std::size_t mask_ = 0;
    std::vector<Event> ring_;
};

} // namespace uscope::obs

#endif // USCOPE_OBS_EVENT_TRACE_HH
