/**
 * @file
 * The per-Machine observability hub.
 *
 * A Machine owns one Observer; components (hierarchy, MMU/walker,
 * core, kernel) hold a raw `Observer *` wired by the Machine at
 * construction (null when the component is used standalone, e.g. in
 * unit tests).  The Observer owns the event ring; metrics are not
 * held here — they are exported on demand into a caller-provided
 * MetricRegistry (Machine::exportMetrics), keeping hot paths free of
 * metric bookkeeping entirely.
 *
 * Ownership rule (thread safety): an Observer is part of its Machine
 * and is touched only by the thread simulating that Machine, so all
 * of its state is lock-free.  Campaign workers each own a private
 * Machine + Observer; aggregation crosses threads only via immutable
 * MetricSnapshot / EventLog values.
 */

#ifndef USCOPE_OBS_OBSERVER_HH
#define USCOPE_OBS_OBSERVER_HH

#include <cstddef>

#include "obs/event_trace.hh"
#include "obs/metrics.hh"

namespace uscope::obs
{

/** Observability knobs carried in MachineConfig. */
struct ObsConfig
{
    /** Record events into the ring (off: record() is one branch). */
    bool traceEvents = false;
    /** Ring slots (rounded up to a power of two). */
    std::size_t traceCapacity = std::size_t{1} << 16;

    /** Structural equality (snapshot/pool compatibility checks). */
    bool operator==(const ObsConfig &) const = default;
};

/** The hub itself. */
class Observer
{
  public:
    Observer() = default;

    explicit Observer(const ObsConfig &config)
    {
        configure(config);
    }

    void
    configure(const ObsConfig &config)
    {
        if (config.traceCapacity)
            trace.reserve(config.traceCapacity);
        trace.setEnabled(config.traceEvents);
    }

    EventTrace trace;
};

/** Hot-path gate: tracing is on and a hub is wired. */
inline bool
tracing(const Observer *obs)
{
    return obs && obs->trace.enabled();
}

} // namespace uscope::obs

#endif // USCOPE_OBS_OBSERVER_HH
