/**
 * @file
 * The benches' shared `--trace` / `--metrics` command-line surface.
 *
 * Flags:
 *   --trace[=PATH]     enable event tracing; dump a Chrome trace-event
 *                      JSON to PATH (default: the bench's canonical
 *                      path under bench-results/).
 *   --trace-capacity=N ring slots (rounded up to a power of two).
 *   --metrics          print a metrics snapshot to stdout (metrics
 *                      always flow into the campaign JSON regardless).
 *   --fast-forward={on,off}
 *                      force event-driven fast-forward on or off
 *                      (default: each bench's own choice — usually
 *                      both, as an A/B measurement).
 *   --obs=LEVEL        pin the campaign observability dial
 *                      (off|metrics|trace|full); unset means "bench
 *                      decides" — perf_campaign's obs section uses it
 *                      to re-run one arm of its A/B.
 *   --log-level=LEVEL  structured-log threshold (error|warn|info|
 *                      debug); applied via obs::configureLog.
 *   --log-json         NDJSON log lines on stderr.
 *
 * Unknown arguments warn and are ignored so the benches stay ctest-
 * and script-friendly.  parseBenchObsOptions() also calls
 * configureLogFromEnv() first, so USCOPE_LOG works on every bench.
 */

#ifndef USCOPE_OBS_CLI_HH
#define USCOPE_OBS_CLI_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "obs/metrics.hh"
#include "obs/prof.hh"

namespace uscope::obs
{

/**
 * Strict parse of an unsigned numeric flag value (base 10, or 0x/0
 * prefixed).  Unlike bare atoi/strtoull, garbage never silently
 * becomes 0 and negatives never wrap: empty strings, trailing junk,
 * minus signs, and out-of-range values all yield nullopt.
 */
std::optional<std::uint64_t> parseUnsignedValue(const char *text);

/**
 * parseUnsignedValue plus enforcement: panics with a message naming
 * @p flag when @p text does not parse or exceeds @p max.  For benches
 * and tools whose flag errors are fatal (the common case).
 */
std::uint64_t requireUnsignedFlag(const char *flag, const char *text,
                                  std::uint64_t max = ~std::uint64_t{0});

/** Parsed bench observability options. */
struct BenchObsOptions
{
    bool trace = false;
    std::string tracePath;
    std::size_t traceCapacity = std::size_t{1} << 16;
    bool metrics = false;
    /** --fast-forward: unset means "bench decides" (typically A/B). */
    std::optional<bool> fastForward;
    /** --obs: unset means "bench decides". */
    std::optional<ObsLevel> obsLevel;
};

/**
 * Parse argv.  @p default_trace_path seeds tracePath when --trace is
 * given without a value.
 */
BenchObsOptions parseBenchObsOptions(
    int argc, char **argv, const std::string &default_trace_path);

/** Pretty-print a snapshot, one `name = value` line per metric. */
void printMetrics(const MetricSnapshot &snapshot);

} // namespace uscope::obs

#endif // USCOPE_OBS_CLI_HH
