#include "obs/metrics.hh"

#include <algorithm>

#include "common/logging.hh"

namespace uscope::obs
{

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Latency: return "latency";
    }
    return "?";
}

json::Value
MetricValue::toJson() const
{
    switch (kind) {
      case MetricKind::Counter:
        return json::Value(counter);
      case MetricKind::Gauge:
        return json::Value(gauge);
      case MetricKind::Latency:
        return json::Value::object()
            .set("count", latency.count())
            .set("mean", latency.mean())
            .set("stddev", latency.stddev())
            .set("min", latency.min())
            .set("max", latency.max());
    }
    return json::Value();
}

const MetricValue *
MetricSnapshot::find(const std::string &name) const
{
    const auto it = std::lower_bound(
        values.begin(), values.end(), name,
        [](const MetricValue &v, const std::string &n) {
            return v.name < n;
        });
    if (it == values.end() || it->name != name)
        return nullptr;
    return &*it;
}

void
MetricSnapshot::merge(const MetricSnapshot &other)
{
    // Merge-join of two name-sorted vectors; preserves sortedness.
    std::vector<MetricValue> merged;
    merged.reserve(values.size() + other.values.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < values.size() || j < other.values.size()) {
        if (j >= other.values.size() ||
            (i < values.size() &&
             values[i].name < other.values[j].name)) {
            merged.push_back(std::move(values[i++]));
            continue;
        }
        if (i >= values.size() ||
            other.values[j].name < values[i].name) {
            merged.push_back(other.values[j++]);
            continue;
        }
        MetricValue combined = std::move(values[i++]);
        const MetricValue &rhs = other.values[j++];
        if (combined.kind != rhs.kind)
            panic("MetricSnapshot::merge: '%s' is a %s here but a %s "
                  "in the other snapshot",
                  combined.name.c_str(), metricKindName(combined.kind),
                  metricKindName(rhs.kind));
        switch (combined.kind) {
          case MetricKind::Counter:
            combined.counter += rhs.counter;
            break;
          case MetricKind::Gauge:
            combined.gauge += rhs.gauge;
            break;
          case MetricKind::Latency:
            combined.latency.merge(rhs.latency);
            break;
        }
        merged.push_back(std::move(combined));
    }
    values = std::move(merged);
}

MetricSnapshot
MetricSnapshot::prefixed(const std::string &prefix) const
{
    MetricSnapshot out;
    out.values.reserve(values.size());
    for (const MetricValue &value : values) {
        MetricValue tagged = value;
        tagged.name = prefix + value.name;
        out.values.push_back(std::move(tagged));
    }
    return out;
}

json::Value
MetricSnapshot::toJson() const
{
    json::Value out = json::Value::object();
    for (const MetricValue &value : values)
        out.set(value.name, value.toJson());
    return out;
}

MetricRegistry::Slot &
MetricRegistry::slot(const std::string &name, MetricKind kind)
{
    const auto it = index_.find(name);
    if (it != index_.end()) {
        Slot &existing = slots_[it->second];
        if (existing.kind != kind)
            panic("MetricRegistry: '%s' already registered as a %s, "
                  "now requested as a %s",
                  name.c_str(), metricKindName(existing.kind),
                  metricKindName(kind));
        return existing;
    }
    index_.emplace(name, slots_.size());
    slots_.push_back(Slot{name, kind, Counter{}, Gauge{},
                          LatencyStat{}});
    return slots_.back();
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    return slot(name, MetricKind::Counter).counter;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    return slot(name, MetricKind::Gauge).gauge;
}

LatencyStat &
MetricRegistry::latency(const std::string &name)
{
    return slot(name, MetricKind::Latency).latency;
}

MetricSnapshot
MetricRegistry::snapshot() const
{
    MetricSnapshot snap;
    snap.values.reserve(slots_.size());
    for (const Slot &s : slots_) {
        MetricValue value;
        value.name = s.name;
        value.kind = s.kind;
        value.counter = s.counter.value();
        value.gauge = s.gauge.value();
        value.latency = s.latency.summary();
        snap.values.push_back(std::move(value));
    }
    std::sort(snap.values.begin(), snap.values.end(),
              [](const MetricValue &a, const MetricValue &b) {
                  return a.name < b.name;
              });
    return snap;
}

} // namespace uscope::obs
