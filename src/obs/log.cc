#include "obs/log.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/logging.hh"

namespace uscope::obs
{

namespace
{

/** Process-start anchor for the monotonic timestamp column.  A
 *  function-local static so the first log line from any translation
 *  unit initializes it without an ordering hazard. */
std::chrono::steady_clock::time_point
processStart()
{
    static const auto start = std::chrono::steady_clock::now();
    return start;
}

double
secondsSinceStart()
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         processStart())
        .count();
}

std::atomic<int> sinkLevel{static_cast<int>(LogLevel::Info)};
std::atomic<bool> sinkJson{false};

/** Serializes emission so concurrent lines never interleave. */
std::mutex &
emitLock()
{
    static std::mutex lock;
    return lock;
}

/** Minimal JSON string escaping — the message is the only field that
 *  can contain arbitrary bytes (components and level names are
 *  compile-time literals). */
std::string
jsonEscape(const char *s)
{
    std::string out;
    for (; *s; ++s) {
        const unsigned char c = static_cast<unsigned char>(*s);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20)
                out += format("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

void
emitLine(LogLevel level, const char *component,
         const std::uint64_t *cycle, const char *msg)
{
    const double ts = secondsSinceStart();
    std::string line;
    if (sinkJson.load(std::memory_order_relaxed)) {
        line = format("{\"ts\":%.6f,\"level\":\"%s\",\"component\":"
                      "\"%s\"",
                      ts, logLevelName(level), component);
        if (cycle)
            line += format(",\"cycle\":%llu",
                           static_cast<unsigned long long>(*cycle));
        line += format(",\"msg\":\"%s\"}", jsonEscape(msg).c_str());
    } else {
        line = format("[%9.3fs] %-5s %s: ", ts, logLevelName(level),
                      component);
        if (cycle)
            line += format("@%llu ",
                           static_cast<unsigned long long>(*cycle));
        line += msg;
    }
    std::lock_guard<std::mutex> guard(emitLock());
    std::fprintf(stderr, "%s\n", line.c_str());
    // Structured output is often tailed live (svc_client stats
    // --watch, CI smoke scripts); keep it unbuffered at line
    // granularity.
    std::fflush(stderr);
}

/** The common/logging bridge: severity 0 (panic/fatal) -> error,
 *  1 (warn) -> warn, 2 (inform) -> info, all under component "sim". */
void
simBridge(int severity, const char *msg)
{
    const LogLevel level = severity == 0 ? LogLevel::Error
                           : severity == 1 ? LogLevel::Warn
                                           : LogLevel::Info;
    if (!logEnabled(level))
        return;
    emitLine(level, "sim", nullptr, msg);
}

} // anonymous namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "error";
      case LogLevel::Warn: return "warn";
      case LogLevel::Info: return "info";
      case LogLevel::Debug: return "debug";
    }
    return "?";
}

std::optional<LogLevel>
parseLogLevel(const std::string &name)
{
    for (LogLevel level : {LogLevel::Error, LogLevel::Warn,
                           LogLevel::Info, LogLevel::Debug}) {
        if (name == logLevelName(level))
            return level;
    }
    return std::nullopt;
}

void
configureLog(const LogConfig &config)
{
    sinkLevel.store(static_cast<int>(config.level),
                    std::memory_order_relaxed);
    sinkJson.store(config.json, std::memory_order_relaxed);
}

LogConfig
logConfig()
{
    LogConfig config;
    config.level = static_cast<LogLevel>(
        sinkLevel.load(std::memory_order_relaxed));
    config.json = sinkJson.load(std::memory_order_relaxed);
    return config;
}

void
configureLogFromEnv()
{
    const char *value = std::getenv("USCOPE_LOG");
    if (!value || !*value)
        return;
    LogConfig config = logConfig();
    std::string token;
    const std::string spec = value;
    for (std::size_t pos = 0; pos <= spec.size(); ++pos) {
        if (pos < spec.size() && spec[pos] != ',') {
            token += spec[pos];
            continue;
        }
        if (token == "json")
            config.json = true;
        else if (auto level = parseLogLevel(token))
            config.level = *level;
        else if (!token.empty())
            warn("USCOPE_LOG: unrecognized token '%s' (expected a "
                 "level error|warn|info|debug, or 'json')",
                 token.c_str());
        token.clear();
    }
    configureLog(config);
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <=
           sinkLevel.load(std::memory_order_relaxed);
}

void
installSimLogBridge()
{
    setLogHandler(&simBridge);
}

void
Logger::vlog(LogLevel level, const std::uint64_t *cycle,
             const char *fmt, std::va_list ap) const
{
    if (!logEnabled(level))
        return;
    const std::string msg = vformat(fmt, ap);
    emitLine(level, component_, cycle, msg.c_str());
}

#define USCOPE_LOG_FRONT(name, level)                                  \
    void Logger::name(const char *fmt, ...) const                      \
    {                                                                  \
        if (!logEnabled(level))                                        \
            return;                                                    \
        std::va_list ap;                                               \
        va_start(ap, fmt);                                             \
        vlog(level, nullptr, fmt, ap);                                 \
        va_end(ap);                                                    \
    }

USCOPE_LOG_FRONT(error, LogLevel::Error)
USCOPE_LOG_FRONT(warn, LogLevel::Warn)
USCOPE_LOG_FRONT(info, LogLevel::Info)
USCOPE_LOG_FRONT(debug, LogLevel::Debug)

#undef USCOPE_LOG_FRONT

void
Logger::infoAt(std::uint64_t cycle, const char *fmt, ...) const
{
    if (!logEnabled(LogLevel::Info))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vlog(LogLevel::Info, &cycle, fmt, ap);
    va_end(ap);
}

void
Logger::debugAt(std::uint64_t cycle, const char *fmt, ...) const
{
    if (!logEnabled(LogLevel::Debug))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vlog(LogLevel::Debug, &cycle, fmt, ap);
    va_end(ap);
}

} // namespace uscope::obs
