/**
 * @file
 * Service-scale structured logging (DESIGN.md §14).
 *
 * One process-wide sink, many component-tagged `Logger` fronts:
 *
 *     static const obs::Logger log("svc.daemon");
 *     log.info("worker %d spawned (pid %d)", id, pid);
 *
 * Every line carries a monotonic wall timestamp (seconds since
 * process start — steady_clock, so log deltas are real durations even
 * if NTP steps the wall clock mid-campaign), a severity, and the
 * component tag; the `*At` variants add the simulated cycle for
 * sim-correlated diagnostics.  Two output shapes, chosen per process:
 *
 *   pretty (default):  [  12.345s] warn  svc.daemon: message
 *   NDJSON (--log-json / USCOPE_LOG=json):
 *       {"ts":12.345,"level":"warn","component":"svc.daemon",
 *        "msg":"message"}
 *
 * Configuration is per-process: `configureLogFromEnv()` reads
 * `USCOPE_LOG` (comma-separated tokens: a level name `error|warn|
 * info|debug`, and/or `json`); daemons and workers also accept
 * `--log-level=L` / `--log-json` and forward them to children so one
 * flag configures the whole worker tree.
 *
 * The observation-must-not-perturb contract: loggers format and emit
 * only — they never touch simulation state, and campaign fingerprints
 * are proven (tests/test_log) byte-identical at every level,
 * error through debug, pretty and NDJSON alike.
 *
 * `installSimLogBridge()` reroutes the gem5-style free functions in
 * common/logging (warn()/inform(), plus panic()/fatal() text) through
 * this sink under the component "sim", so a daemon's stderr is one
 * uniform stream; the bridge honors the configured level (a warn()
 * from deep inside a Machine is dropped at --log-level=error just
 * like any other warn line).
 *
 * Thread safety: the sink config is written during process startup
 * and read with relaxed atomics; line emission serializes on an
 * internal mutex so concurrent lines never interleave mid-line.
 */

#ifndef USCOPE_OBS_LOG_HH
#define USCOPE_OBS_LOG_HH

#include <cstdarg>
#include <cstdint>
#include <optional>
#include <string>

namespace uscope::obs
{

/** Severity, most to least severe.  A sink at level L emits lines
 *  with severity <= L. */
enum class LogLevel : int
{
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

/** Printable name ("error", "warn", "info", "debug"). */
const char *logLevelName(LogLevel level);

/** Inverse of logLevelName; nullopt on anything else. */
std::optional<LogLevel> parseLogLevel(const std::string &name);

/** The process-wide sink configuration. */
struct LogConfig
{
    LogLevel level = LogLevel::Info;
    /** NDJSON lines instead of pretty ones. */
    bool json = false;
};

/** Install @p config as the process-wide sink. */
void configureLog(const LogConfig &config);

/** Current sink configuration. */
LogConfig logConfig();

/**
 * Configure from `USCOPE_LOG` — comma-separated tokens, each either a
 * level name or `json` (e.g. `USCOPE_LOG=debug,json`).  Unrecognized
 * tokens warn and are ignored; an unset/empty variable leaves the
 * defaults.  Idempotent and cheap; call it at the top of main().
 */
void configureLogFromEnv();

/** True when a line at @p level would be emitted (cheap gate for
 *  callers that want to skip formatting work entirely). */
bool logEnabled(LogLevel level);

/**
 * Reroute common/logging's warn()/inform() (and the text of
 * panic()/fatal(), which still throw) through this sink as component
 * "sim".  Safe to call more than once.
 */
void installSimLogBridge();

/**
 * One component's front onto the shared sink.  Cheap to construct
 * (stores a pointer); intended as a namespace-scope or static-local
 * constant per component.
 */
class Logger
{
  public:
    explicit constexpr Logger(const char *component)
        : component_(component)
    {
    }

    const char *component() const { return component_; }

    void error(const char *fmt, ...) const
        __attribute__((format(printf, 2, 3)));
    void warn(const char *fmt, ...) const
        __attribute__((format(printf, 2, 3)));
    void info(const char *fmt, ...) const
        __attribute__((format(printf, 2, 3)));
    void debug(const char *fmt, ...) const
        __attribute__((format(printf, 2, 3)));

    /** Cycle-correlated variants: the line additionally carries the
     *  simulated cycle (pretty: `@cycle`, NDJSON: `"cycle":N`). */
    void infoAt(std::uint64_t cycle, const char *fmt, ...) const
        __attribute__((format(printf, 3, 4)));
    void debugAt(std::uint64_t cycle, const char *fmt, ...) const
        __attribute__((format(printf, 3, 4)));

    /** The core emitter the convenience fronts funnel into. */
    void vlog(LogLevel level, const std::uint64_t *cycle,
              const char *fmt, std::va_list ap) const;

  private:
    const char *component_;
};

} // namespace uscope::obs

#endif // USCOPE_OBS_LOG_HH
