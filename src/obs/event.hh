/**
 * @file
 * The typed event taxonomy of the observability subsystem.
 *
 * An Event is a compact, fixed-size record — no strings, no
 * formatting — so the hot simulation loop can log one with a couple
 * of stores.  Decoding to something human-readable (names, Chrome
 * trace JSON) happens offline in chrome_trace.cc.
 *
 * Field conventions per kind (a/b are small scalar payloads, addr is
 * the address-like payload):
 *
 *   kind            a                 b                  addr
 *   --------------- ----------------- ------------------ -----------
 *   WalkStart       start level       -                  va
 *   WalkStep        pt level          fetch latency      entry pa
 *   WalkEnd         fault (0/1)       total walk latency va
 *   TlbMiss         -                 -                  va
 *   SpecIssue       ctx               op                 pc
 *   Retire          ctx               op                 pc
 *   Squash          ctx               entries squashed   pc
 *   PortConflict    ctx               op                 pc
 *   CacheAccess     hit level         latency            line pa
 *   PageFault       ctx               -                  va
 *   Probe           hit level         latency            line pa
 *   ReplayBoundary  1=handle 2=pivot  replay # (sat.)    episode
 *   EpisodeEnd      -                 replays (sat.)     episode
 *   FaultInject     fault::Site       magnitude          site payload
 */

#ifndef USCOPE_OBS_EVENT_HH
#define USCOPE_OBS_EVENT_HH

#include <cstdint>
#include <vector>

namespace uscope::obs
{

/** What happened. */
enum class EventKind : std::uint8_t
{
    WalkStart,
    WalkStep,
    WalkEnd,
    TlbMiss,
    SpecIssue,
    Retire,
    Squash,
    PortConflict,
    CacheAccess,
    PageFault,
    Probe,
    ReplayBoundary,
    EpisodeEnd,
    FaultInject,
};

constexpr unsigned numEventKinds =
    static_cast<unsigned>(EventKind::FaultInject) + 1;

/** Printable name of an event kind. */
const char *eventKindName(EventKind kind);

/** One timestamped event record (24 bytes). */
struct Event
{
    std::uint64_t cycle = 0;
    EventKind kind = EventKind::WalkStart;
    std::uint8_t a = 0;
    std::uint16_t b = 0;
    std::uint64_t addr = 0;
};

/** A drained trace: the retained events plus what the ring dropped. */
struct EventLog
{
    /** Retained events, oldest first. */
    std::vector<Event> events;
    /** Events recorded but overwritten by ring wrap-around. */
    std::uint64_t dropped = 0;
    /** Total events ever recorded (events.size() + dropped). */
    std::uint64_t total = 0;

    bool empty() const { return events.empty(); }
};

} // namespace uscope::obs

#endif // USCOPE_OBS_EVENT_HH
