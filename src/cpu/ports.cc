#include "cpu/ports.hh"

namespace uscope::cpu
{

PortChoices
portsFor(Op op)
{
    switch (op) {
      case Op::Div:
      case Op::Fdiv:
        return {portDiv, 0xFF};
      case Op::Mul:
      case Op::Fmul:
        return {portMul, 0xFF};
      case Op::Ld:
      case Op::Ld32:
      case Op::Ldf:
        return {portLoad0, portLoad1};
      case Op::St:
      case Op::St32:
      case Op::Stf:
        return {portStore, 0xFF};
      case Op::Jmp:
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Bge:
        return {portAlu1, 0xFF};
      case Op::Rdtsc:
      case Op::Rdrand:
      case Op::Fence:
      case Op::Txbegin:
      case Op::Txend:
      case Op::Halt:
      case Op::Nop:
        return {portAlu0, portAlu1};
      default:
        // Integer/FP ALU ops.
        return {portAlu0, portAlu1};
    }
}

bool
unpipelined(Op op)
{
    return op == Op::Div || op == Op::Fdiv;
}

PortState::PortState()
{
    busyUntil_.fill(0);
    usedThisCycle_.fill(false);
    issues_.fill(0);
}

void
PortState::newCycle()
{
    usedThisCycle_.fill(false);
}

bool
PortState::canIssue(unsigned port, Cycles now) const
{
    return !usedThisCycle_[port] && busyUntil_[port] <= now;
}

void
PortState::occupy(unsigned port, Cycles now, Cycles duration,
                  bool unpipelined_op)
{
    usedThisCycle_[port] = true;
    ++issues_[port];
    if (unpipelined_op)
        busyUntil_[port] = now + duration;
}

} // namespace uscope::cpu
