/**
 * @file
 * Memoized decode: the shared, immutable DecodedStream.
 *
 * The per-cycle fetch path used to re-derive every instruction
 * property (operand classes, port choices, barrier-ness) through
 * predicate switches on each dispatch, wakeup, issue, and retire.
 * Decode is pure per (program, pc), so it is evaluated once when a
 * Program is built and memoized as a DecodedInst table the core
 * indexes by pc.  The stream is refcounted through the owning
 * Program's shared_ptr: COW-forked machines, batched replay siblings,
 * and every SMT context running the same victim all read one decode
 * table — one fetch/decode evaluation drives N speculative windows
 * (DESIGN.md §17).
 *
 * DecodedStream is deeply immutable after construction; sharing it
 * across Machine forks (same thread or not) is safe because nothing
 * ever writes to it again.
 */

#ifndef USCOPE_CPU_DECODE_HH
#define USCOPE_CPU_DECODE_HH

#include <cstdint>
#include <vector>

#include "cpu/isa.hh"
#include "cpu/ports.hh"

namespace uscope::cpu
{

/** One instruction's memoized decode: flags + port choices. */
struct DecodedInst
{
    enum Flag : std::uint32_t
    {
        kLoad = 1u << 0,
        kStore = 1u << 1,
        kBranch = 1u << 2,       ///< Conditional branches and Jmp.
        kCondBranch = 1u << 3,
        kWritesInt = 1u << 4,
        kWritesFp = 1u << 5,
        kReadsSrc1 = 1u << 6,
        kReadsSrc2 = 1u << 7,
        kReadsFp1 = 1u << 8,
        kReadsFp2 = 1u << 9,
        kUnpipelined = 1u << 10,
        kJitterable = 1u << 11,  ///< Mul/Div/Fmul/Fdiv (issue jitter).
        kFence = 1u << 12,
        kRdrand = 1u << 13,
        kHalt = 1u << 14,
        kJmp = 1u << 15,
    };

    std::uint32_t flags = 0;
    PortChoices ports;

    bool isLoad() const { return flags & kLoad; }
    bool isStore() const { return flags & kStore; }
    bool isMem() const { return flags & (kLoad | kStore); }
    bool isBranch() const { return flags & kBranch; }
    bool isCondBranch() const { return flags & kCondBranch; }
    bool writesInt() const { return flags & kWritesInt; }
    bool writesFp() const { return flags & kWritesFp; }
    bool readsSrc1() const { return flags & kReadsSrc1; }
    bool readsSrc2() const { return flags & kReadsSrc2; }
    bool readsFp1() const { return flags & kReadsFp1; }
    bool readsFp2() const { return flags & kReadsFp2; }
    bool unpipelined() const { return flags & kUnpipelined; }
    bool jitterable() const { return flags & kJitterable; }
    bool isHalt() const { return flags & kHalt; }
    bool isJmp() const { return flags & kJmp; }

    /** Fence always serializes; Rdrand only on serializing cores. */
    bool isBarrier(bool rdrand_serializing) const
    {
        return (flags & kFence) ||
               (rdrand_serializing && (flags & kRdrand));
    }
};

/** Decode @p op alone (the memoization's single source of truth). */
DecodedInst decodeOp(Op op);

/**
 * The whole program's decode table, pc-indexed, with the same
 * beyond-the-end clamp as Program::at (a decoded Halt sentinel).
 */
class DecodedStream
{
  public:
    explicit DecodedStream(const std::vector<Instruction> &insts);

    /** Decoded instruction at @p pc; decoded Halt beyond the end. */
    const DecodedInst &at(std::uint64_t pc) const
    {
        return pc < decoded_.size() ? decoded_[pc] : haltDec_;
    }

    std::size_t size() const { return decoded_.size(); }

    /** Process-unique stream id (decode memoization key). */
    std::uint64_t id() const { return id_; }

    /** True when any instruction is Rdrand (entropy draws per
     *  execution make lockstep replay prefixes unsound). */
    bool hasRdrand() const { return hasRdrand_; }

  private:
    std::vector<DecodedInst> decoded_;
    DecodedInst haltDec_;
    std::uint64_t id_ = 0;
    bool hasRdrand_ = false;
};

} // namespace uscope::cpu

#endif // USCOPE_CPU_DECODE_HH
