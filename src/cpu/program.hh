/**
 * @file
 * Programs for the mini-ISA and an assembler-style builder.
 *
 * A Program is an immutable instruction vector; the PC is an index
 * into it.  (Instruction bytes are not modelled in memory — the attack
 * surface in the paper is the data side: D-TLB, data caches, execution
 * ports.)  ProgramBuilder provides mnemonic emitters with forward
 * label references, so victim listings read like the paper's assembly.
 */

#ifndef USCOPE_CPU_PROGRAM_HH
#define USCOPE_CPU_PROGRAM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cpu/decode.hh"
#include "cpu/isa.hh"

namespace uscope::cpu
{

/** An immutable instruction sequence with named labels. */
class Program
{
  public:
    Program();
    Program(std::vector<Instruction> insts,
            std::unordered_map<std::string, std::uint32_t> labels);

    bool empty() const { return insts_.empty(); }
    std::size_t size() const { return insts_.size(); }

    /** Instruction at @p pc; Halt beyond the end. */
    const Instruction &at(std::uint64_t pc) const;

    /**
     * The memoized decode table (DESIGN.md §17).  Built eagerly in
     * every constructor and shared by copies of the Program, so all
     * contexts, forks, and replay siblings running this program index
     * one immutable stream.  Never null.
     */
    const DecodedStream &decoded() const { return *decoded_; }

    /** The refcounted stream itself (for lifetime-extending callers). */
    const std::shared_ptr<const DecodedStream> &decodedStream() const
    {
        return decoded_;
    }

    /** Index of a named label; fatal if unknown. */
    std::uint32_t label(const std::string &name) const;

    /** Multi-line listing for debugging. */
    std::string disassemble() const;

  private:
    std::vector<Instruction> insts_;
    std::unordered_map<std::string, std::uint32_t> labels_;
    std::shared_ptr<const DecodedStream> decoded_;
    static const Instruction haltInst_;
};

/** Fluent assembler for Program. */
class ProgramBuilder
{
  public:
    /** Define a label at the current position. */
    ProgramBuilder &label(const std::string &name);

    ProgramBuilder &nop();
    ProgramBuilder &movi(Reg rd, std::int64_t imm);
    ProgramBuilder &mov(Reg rd, Reg rs1);
    ProgramBuilder &add(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &addi(Reg rd, Reg rs1, std::int64_t imm);
    ProgramBuilder &sub(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &and_(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &andi(Reg rd, Reg rs1, std::int64_t imm);
    ProgramBuilder &or_(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &xor_(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &shli(Reg rd, Reg rs1, unsigned amount);
    ProgramBuilder &shri(Reg rd, Reg rs1, unsigned amount);
    ProgramBuilder &mul(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &div(Reg rd, Reg rs1, Reg rs2);

    ProgramBuilder &fmovi(Reg fd, double value);
    ProgramBuilder &fmov(Reg fd, Reg fs1);
    ProgramBuilder &fadd(Reg fd, Reg fs1, Reg fs2);
    ProgramBuilder &fmul(Reg fd, Reg fs1, Reg fs2);
    ProgramBuilder &fdiv(Reg fd, Reg fs1, Reg fs2);

    ProgramBuilder &ld(Reg rd, Reg base, std::int64_t disp = 0);
    ProgramBuilder &ld32(Reg rd, Reg base, std::int64_t disp = 0);
    ProgramBuilder &ldf(Reg fd, Reg base, std::int64_t disp = 0);
    ProgramBuilder &st(Reg base, std::int64_t disp, Reg rs2);
    ProgramBuilder &st32(Reg base, std::int64_t disp, Reg rs2);
    ProgramBuilder &stf(Reg base, std::int64_t disp, Reg fs2);

    ProgramBuilder &jmp(const std::string &target);
    ProgramBuilder &beq(Reg rs1, Reg rs2, const std::string &target);
    ProgramBuilder &bne(Reg rs1, Reg rs2, const std::string &target);
    ProgramBuilder &blt(Reg rs1, Reg rs2, const std::string &target);
    ProgramBuilder &bge(Reg rs1, Reg rs2, const std::string &target);

    ProgramBuilder &rdtsc(Reg rd);
    ProgramBuilder &rdrand(Reg rd);
    ProgramBuilder &fence();
    ProgramBuilder &txbegin(const std::string &abort_target);
    ProgramBuilder &txend();
    ProgramBuilder &halt();

    /** Index the next emitted instruction will occupy. */
    std::uint32_t here() const;

    /** Resolve labels and produce the program; fatal on undefined. */
    Program build();

  private:
    ProgramBuilder &emit(Instruction inst);
    ProgramBuilder &emitBranch(Op op, Reg rs1, Reg rs2,
                               const std::string &target);

    struct Fixup
    {
        std::uint32_t index;
        std::string target;
    };

    std::vector<Instruction> insts_;
    std::unordered_map<std::string, std::uint32_t> labels_;
    std::vector<Fixup> fixups_;
};

} // namespace uscope::cpu

#endif // USCOPE_CPU_PROGRAM_HH
