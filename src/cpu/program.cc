#include "cpu/program.hh"

#include <bit>

#include "common/logging.hh"

namespace uscope::cpu
{

const Instruction Program::haltInst_{Op::Halt, 0, 0, 0, 0, 0};

Program::Program()
    : decoded_(std::make_shared<const DecodedStream>(insts_))
{
}

Program::Program(std::vector<Instruction> insts,
                 std::unordered_map<std::string, std::uint32_t> labels)
    : insts_(std::move(insts)), labels_(std::move(labels)),
      decoded_(std::make_shared<const DecodedStream>(insts_))
{
}

const Instruction &
Program::at(std::uint64_t pc) const
{
    if (pc >= insts_.size())
        return haltInst_;
    return insts_[pc];
}

std::uint32_t
Program::label(const std::string &name) const
{
    auto it = labels_.find(name);
    if (it == labels_.end())
        fatal("Program: unknown label '%s'", name.c_str());
    return it->second;
}

std::string
Program::disassemble() const
{
    std::string out;
    for (std::size_t i = 0; i < insts_.size(); ++i) {
        for (const auto &[name, idx] : labels_)
            if (idx == i)
                out += format("%s:\n", name.c_str());
        out += format("  %4zu: %s\n", i, insts_[i].toString().c_str());
    }
    return out;
}

ProgramBuilder &
ProgramBuilder::emit(Instruction inst)
{
    insts_.push_back(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::emitBranch(Op op, Reg rs1, Reg rs2,
                           const std::string &target)
{
    fixups_.push_back(
        {static_cast<std::uint32_t>(insts_.size()), target});
    return emit({op, 0, rs1, rs2, 0, 0});
}

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    if (labels_.count(name))
        fatal("ProgramBuilder: duplicate label '%s'", name.c_str());
    labels_[name] = static_cast<std::uint32_t>(insts_.size());
    return *this;
}

ProgramBuilder &
ProgramBuilder::nop()
{
    return emit({Op::Nop, 0, 0, 0, 0, 0});
}

ProgramBuilder &
ProgramBuilder::movi(Reg rd, std::int64_t imm)
{
    return emit({Op::Movi, rd, 0, 0, imm, 0});
}

ProgramBuilder &
ProgramBuilder::mov(Reg rd, Reg rs1)
{
    return emit({Op::Mov, rd, rs1, 0, 0, 0});
}

ProgramBuilder &
ProgramBuilder::add(Reg rd, Reg rs1, Reg rs2)
{
    return emit({Op::Add, rd, rs1, rs2, 0, 0});
}

ProgramBuilder &
ProgramBuilder::addi(Reg rd, Reg rs1, std::int64_t imm)
{
    return emit({Op::Addi, rd, rs1, 0, imm, 0});
}

ProgramBuilder &
ProgramBuilder::sub(Reg rd, Reg rs1, Reg rs2)
{
    return emit({Op::Sub, rd, rs1, rs2, 0, 0});
}

ProgramBuilder &
ProgramBuilder::and_(Reg rd, Reg rs1, Reg rs2)
{
    return emit({Op::And, rd, rs1, rs2, 0, 0});
}

ProgramBuilder &
ProgramBuilder::andi(Reg rd, Reg rs1, std::int64_t imm)
{
    return emit({Op::Andi, rd, rs1, 0, imm, 0});
}

ProgramBuilder &
ProgramBuilder::or_(Reg rd, Reg rs1, Reg rs2)
{
    return emit({Op::Or, rd, rs1, rs2, 0, 0});
}

ProgramBuilder &
ProgramBuilder::xor_(Reg rd, Reg rs1, Reg rs2)
{
    return emit({Op::Xor, rd, rs1, rs2, 0, 0});
}

ProgramBuilder &
ProgramBuilder::shli(Reg rd, Reg rs1, unsigned amount)
{
    return emit({Op::Shli, rd, rs1, 0,
                 static_cast<std::int64_t>(amount), 0});
}

ProgramBuilder &
ProgramBuilder::shri(Reg rd, Reg rs1, unsigned amount)
{
    return emit({Op::Shri, rd, rs1, 0,
                 static_cast<std::int64_t>(amount), 0});
}

ProgramBuilder &
ProgramBuilder::mul(Reg rd, Reg rs1, Reg rs2)
{
    return emit({Op::Mul, rd, rs1, rs2, 0, 0});
}

ProgramBuilder &
ProgramBuilder::div(Reg rd, Reg rs1, Reg rs2)
{
    return emit({Op::Div, rd, rs1, rs2, 0, 0});
}

ProgramBuilder &
ProgramBuilder::fmovi(Reg fd, double value)
{
    return emit({Op::Fmovi, fd, 0, 0,
                 static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(
                     value)),
                 0});
}

ProgramBuilder &
ProgramBuilder::fmov(Reg fd, Reg fs1)
{
    return emit({Op::Fmov, fd, fs1, 0, 0, 0});
}

ProgramBuilder &
ProgramBuilder::fadd(Reg fd, Reg fs1, Reg fs2)
{
    return emit({Op::Fadd, fd, fs1, fs2, 0, 0});
}

ProgramBuilder &
ProgramBuilder::fmul(Reg fd, Reg fs1, Reg fs2)
{
    return emit({Op::Fmul, fd, fs1, fs2, 0, 0});
}

ProgramBuilder &
ProgramBuilder::fdiv(Reg fd, Reg fs1, Reg fs2)
{
    return emit({Op::Fdiv, fd, fs1, fs2, 0, 0});
}

ProgramBuilder &
ProgramBuilder::ld(Reg rd, Reg base, std::int64_t disp)
{
    return emit({Op::Ld, rd, base, 0, disp, 0});
}

ProgramBuilder &
ProgramBuilder::ld32(Reg rd, Reg base, std::int64_t disp)
{
    return emit({Op::Ld32, rd, base, 0, disp, 0});
}

ProgramBuilder &
ProgramBuilder::ldf(Reg fd, Reg base, std::int64_t disp)
{
    return emit({Op::Ldf, fd, base, 0, disp, 0});
}

ProgramBuilder &
ProgramBuilder::st(Reg base, std::int64_t disp, Reg rs2)
{
    return emit({Op::St, 0, base, rs2, disp, 0});
}

ProgramBuilder &
ProgramBuilder::st32(Reg base, std::int64_t disp, Reg rs2)
{
    return emit({Op::St32, 0, base, rs2, disp, 0});
}

ProgramBuilder &
ProgramBuilder::stf(Reg base, std::int64_t disp, Reg fs2)
{
    return emit({Op::Stf, 0, base, fs2, disp, 0});
}

ProgramBuilder &
ProgramBuilder::jmp(const std::string &target)
{
    return emitBranch(Op::Jmp, 0, 0, target);
}

ProgramBuilder &
ProgramBuilder::beq(Reg rs1, Reg rs2, const std::string &target)
{
    return emitBranch(Op::Beq, rs1, rs2, target);
}

ProgramBuilder &
ProgramBuilder::bne(Reg rs1, Reg rs2, const std::string &target)
{
    return emitBranch(Op::Bne, rs1, rs2, target);
}

ProgramBuilder &
ProgramBuilder::blt(Reg rs1, Reg rs2, const std::string &target)
{
    return emitBranch(Op::Blt, rs1, rs2, target);
}

ProgramBuilder &
ProgramBuilder::bge(Reg rs1, Reg rs2, const std::string &target)
{
    return emitBranch(Op::Bge, rs1, rs2, target);
}

ProgramBuilder &
ProgramBuilder::rdtsc(Reg rd)
{
    return emit({Op::Rdtsc, rd, 0, 0, 0, 0});
}

ProgramBuilder &
ProgramBuilder::rdrand(Reg rd)
{
    return emit({Op::Rdrand, rd, 0, 0, 0, 0});
}

ProgramBuilder &
ProgramBuilder::fence()
{
    return emit({Op::Fence, 0, 0, 0, 0, 0});
}

ProgramBuilder &
ProgramBuilder::txbegin(const std::string &abort_target)
{
    return emitBranch(Op::Txbegin, 0, 0, abort_target);
}

ProgramBuilder &
ProgramBuilder::txend()
{
    return emit({Op::Txend, 0, 0, 0, 0, 0});
}

ProgramBuilder &
ProgramBuilder::halt()
{
    return emit({Op::Halt, 0, 0, 0, 0, 0});
}

std::uint32_t
ProgramBuilder::here() const
{
    return static_cast<std::uint32_t>(insts_.size());
}

Program
ProgramBuilder::build()
{
    for (const Fixup &fixup : fixups_) {
        auto it = labels_.find(fixup.target);
        if (it == labels_.end())
            fatal("ProgramBuilder: undefined label '%s'",
                  fixup.target.c_str());
        insts_[fixup.index].target = it->second;
    }
    return Program(std::move(insts_), std::move(labels_));
}

} // namespace uscope::cpu
